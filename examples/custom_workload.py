#!/usr/bin/env python
"""Building a custom workload and watching SAC adapt.

Defines a synthetic application outside the Table 4 suite — an iterative
solver whose first kernel scatters over a falsely shared grid (SM-side
friendly) and whose second kernel reduces over a large truly shared
vector (memory-side friendly) — and shows SAC choosing a different LLC
organization for each kernel, like the paper's BFS study (Figure 12).

Usage:
    python examples/custom_workload.py
"""

from repro.sim import simulate
from repro.workloads import (
    MEMORY_SIDE_PREFERRED,
    BenchmarkSpec,
    KernelSpec,
    PhaseSpec,
)


def build_solver() -> BenchmarkSpec:
    # Scatter: most traffic hits falsely shared grid cells plus a small
    # truly shared pivot set (~2 MB hot): replicating it per chip is
    # cheap, so an SM-side LLC serves it at intra-chip bandwidth.
    scatter = PhaseSpec(
        weight_true=0.25, weight_false=0.55, weight_private=0.20,
        hot_fraction=0.1, hot_fraction_true=0.08, hot_fraction_false=0.12,
        hot_weight=0.85, write_fraction=0.3, intensity=2800.0)
    # Reduce: a large truly shared accumulator (hot ~12 MB) plus a
    # per-chip private hot set near the LLC capacity; replicating the
    # accumulator evicts the private data and saturates DRAM, so the
    # memory-side organization wins.
    reduce_phase = PhaseSpec(
        weight_true=0.42, weight_false=0.03, weight_private=0.55,
        hot_fraction=0.2, hot_fraction_true=0.225, hot_fraction_private=0.03,
        hot_weight=0.92, write_fraction=0.25, intensity=7600.0,
        true_affinity=0.90)
    return BenchmarkSpec(
        name="solver", suite="custom", num_ctas=8192,
        footprint_mb=400, true_shared_mb=40, false_shared_mb=20,
        preference=MEMORY_SIDE_PREFERRED,  # grouping label only
        kernels=(
            # The reduce kernel runs first: its home-affine sweep is what
            # establishes first-touch page placement for the shared data.
            KernelSpec(name="solver.reduce", phase=reduce_phase, epochs=3),
            KernelSpec(name="solver.scatter", phase=scatter, epochs=5),
        ),
        iterations=2, seed=20230617)


def main() -> None:
    spec = build_solver()
    results = {org: simulate(spec, org)
               for org in ("memory-side", "sm-side", "sac")}
    mem = results["memory-side"]

    print("Custom iterative solver: scatter (falsely shared) + reduce "
          "(large truly shared)")
    print()
    print(f"{'organization':14} {'cycles':>12} {'speedup':>8}")
    for org, stats in results.items():
        print(f"{org:14} {stats.cycles:12.0f} "
              f"{mem.cycles / stats.cycles:8.2f}")
    print()
    print("Per-kernel view (speedup vs memory-side, SAC's chosen mode):")
    for i, kernel in enumerate(mem.kernels):
        sm = results["sm-side"].kernels[i]
        sac = results["sac"].kernels[i]
        print(f"  {kernel.name:18} sm-side={kernel.cycles / sm.cycles:5.2f}  "
              f"sac={kernel.cycles / sac.cycles:5.2f}  "
              f"sac-mode={sac.organization}")


if __name__ == "__main__":
    main()
