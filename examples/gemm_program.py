#!/usr/bin/env python
"""Building a workload structurally, as a CTA-level kernel program.

Instead of statistical region mixtures, this example describes a tiled
GEMM (C = A x B) the way a CUDA programmer would: three arrays and how
each CTA accesses them.

* ``A`` (row panels)   — partitioned across CTAs: each output tile reads
  its own row panel, so with distributed CTA scheduling the traffic is
  chip-local;
* ``B`` (column panels) — broadcast: every CTA re-reads the same matrix,
  which makes it *truly shared* across chips;
* ``C`` (output tiles) — partitioned, write-mostly.

How much the SM-side organization wins by is decided by whether B's
hot panel set still fits a chip's LLC once replicated per chip.  We
sweep B's size across that boundary and watch the SM-side benefit
collapse from ~4x toward parity — the same shape as the paper's
input-set study (Figure 13a).

Usage:
    python examples/gemm_program.py
"""

from repro.workloads import (
    Array,
    ArrayAccess,
    Broadcast,
    KernelProgram,
    Partitioned,
    ProgramWorkload,
    simulate_program,
)

MB = 1024 * 1024
SCALE = 1.0 / 16  # shrink the caches; array sizes below are pre-shrunk


def build_gemm(b_size_mb: float) -> ProgramWorkload:
    a = Array("A", int(24 * MB * SCALE))
    b = Array("B", int(b_size_mb * MB * SCALE))
    c = Array("C", int(24 * MB * SCALE))
    kernel = KernelProgram(
        name=f"gemm-B{b_size_mb:g}MB",
        accesses=[
            ArrayAccess(a, Partitioned(hot_fraction=0.3), weight=0.35),
            ArrayAccess(b, Broadcast(hot_fraction=0.6), weight=0.45),
            ArrayAccess(c, Partitioned(hot_fraction=0.3), weight=0.20,
                        write_fraction=0.6),
        ],
        ctas=2048, accesses_per_cta=192, intensity=5200.0)
    return ProgramWorkload(
        name=kernel.name, kernels=[kernel], num_chips=4,
        accesses_per_epoch_per_chip=8192, iterations=2)


def main() -> None:
    print("Tiled GEMM as a kernel program: sweeping the shared matrix B")
    print("(per-chip LLC: 4 MB; B's hot panels replicate under SM-side)")
    print()
    print(f"{'B size':>8} {'sm-side':>8} {'sac':>6}  sac decisions")
    for b_size in (2, 6, 16, 48):
        workload = build_gemm(b_size)
        mem = simulate_program(workload, "memory-side", scale=SCALE)
        sm = simulate_program(workload, "sm-side", scale=SCALE)
        sac = simulate_program(workload, "sac", scale=SCALE)
        decisions = {k.organization for k in sac.kernels}
        print(f"{b_size:>6}MB {mem.cycles / sm.cycles:8.2f} "
              f"{mem.cycles / sac.cycles:6.2f}  {sorted(decisions)}")
    print()
    print("Small B: replicating the shared panels fits each chip's LLC ->")
    print("SM-side wins big and SAC follows. As B outgrows the LLC, the")
    print("replicas thrash and the benefit collapses toward parity.")


if __name__ == "__main__":
    main()
