#!/usr/bin/env python
"""Exploring the multi-chip design space (paper Figure 14, interactive).

Sweeps the inter-chip link generation (PCIe through MCM interposers) for
one SM-side-preferred and one memory-side-preferred benchmark, showing
how the gap between the LLC organizations — and therefore SAC's benefit
— depends on the intra-chip vs inter-chip bandwidth ratio.

Usage:
    python examples/design_space.py
"""

from repro.arch import (
    INTER_CHIP_SWEEP_GBPS,
    baseline,
    with_inter_chip_bandwidth,
)
from repro.sim import simulate
from repro.workloads import get


def main() -> None:
    base = baseline()
    for name in ("CFD", "SRAD"):
        spec = get(name)
        print(f"{spec.name} ({spec.preference} preferred): speedup vs "
              f"memory-side across inter-chip bandwidths")
        print(f"  {'pair BW':>10} {'sm-side':>8} {'sac':>8}")
        for gbps in INTER_CHIP_SWEEP_GBPS:
            config = with_inter_chip_bandwidth(base, gbps)
            mem = simulate(spec, "memory-side", config=config)
            sm = simulate(spec, "sm-side", config=config)
            sac = simulate(spec, "sac", config=config)
            star = " *" if gbps == 96 else ""
            print(f"  {gbps:>7} GB/s {mem.cycles / sm.cycles:8.2f} "
                  f"{mem.cycles / sac.cycles:8.2f}{star}")
        print()
    print("(* = Table 3 baseline. As inter-chip bandwidth approaches "
          "intra-chip bandwidth,\n caching remote data locally matters "
          "less and the organizations converge.)")


if __name__ == "__main__":
    main()
