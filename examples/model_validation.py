#!/usr/bin/env python
"""Cross-validating the two timing models.

The library carries two independent timing models over the same
functional caches:

* the **epoch model** (``repro.sim.SimulationEngine``) — per-epoch
  bottleneck-resource service time; fast, used by every experiment;
* the **event-driven model** (``repro.sim.EventDrivenEngine``) — an
  open-loop FCFS queueing-network replay where every access traverses
  its resource path through single-server queues.

Absolute cycle counts differ (the event model is open-loop and does not
overlap latencies), but both must agree on the question every figure in
the SAC paper depends on: *which LLC organization wins, and roughly by
how much*.  This example runs both models on one SM-side-preferred and
one memory-side-preferred benchmark and compares.

Usage:
    python examples/model_validation.py
"""

from repro.sim import validate_against_epoch_model
from repro.workloads import get


def main() -> None:
    print("Cross-model validation: epoch model vs event-driven replay")
    print()
    for name in ("CFD", "NN"):
        spec = get(name)
        results = validate_against_epoch_model(spec)
        print(f"{spec.name} ({spec.preference} preferred):")
        print(f"  {'model':14} {'memory-side':>12} {'sm-side':>10} "
              f"{'sm/mem':>7}")
        for row, model in ((0, "epoch"), (1, "event-driven")):
            mem = results["memory-side"][row]
            sm = results["sm-side"][row]
            print(f"  {model:14} {mem:12.0f} {sm:10.0f} {mem / sm:7.2f}")
        epoch_winner = min(results, key=lambda o: results[o][0])
        event_winner = min(results, key=lambda o: results[o][1])
        agreement = "AGREE" if epoch_winner == event_winner else "DISAGREE"
        print(f"  -> winners {agreement}: epoch={epoch_winner}, "
              f"event={event_winner}")
        print()


if __name__ == "__main__":
    main()
