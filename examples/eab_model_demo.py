#!/usr/bin/env python
"""Using the EAB analytical model standalone.

The EAB (Effective Available Bandwidth) model is the brain of SAC: it
predicts whether a memory-side or SM-side LLC provides more bandwidth
for a given sharing profile.  This example drives the model directly —
no simulation — sweeping the SM-side hit rate (the quantity the CRD
estimates in hardware) and the remote-request fraction to map out the
decision boundary.

Usage:
    python examples/eab_model_demo.py
"""

from repro.arch import baseline
from repro.core import (
    EABInputs,
    architecture_bandwidths,
    decide,
    eab_memory_side,
    eab_sm_side,
)


def main() -> None:
    config = baseline()
    bandwidths = architecture_bandwidths(config)
    print("Architecture-derived EAB terms (bytes/cycle):")
    for name, value in bandwidths.items():
        print(f"  {name:8} = {value:10.1f}")
    print()

    # A sharing profile measured during a profiling window: the
    # memory-side hit rate and both LSUs are fixed; we sweep the CRD's
    # SM-side hit-rate estimate and the remote fraction.
    print("Decision map: rows = SM-side hit rate (CRD estimate), "
          "columns = remote-request fraction")
    r_remote_values = [0.15, 0.3, 0.45, 0.6, 0.75]
    header = "  hit_sm \\ r_remote " + "".join(
        f"{r:>8.2f}" for r in r_remote_values)
    print(header)
    for hit_sm in (0.9, 0.7, 0.5, 0.3, 0.1):
        cells = []
        for r_remote in r_remote_values:
            inputs = EABInputs(
                r_local=1.0 - r_remote,
                lsu_memory_side=0.7,
                lsu_sm_side=0.85,
                llc_hit_memory_side=0.85,
                llc_hit_sm_side=hit_sm,
                **bandwidths)
            choice = decide(inputs, theta=config.sac.theta)
            cells.append("SM" if choice == "sm-side" else "MEM")
        print(f"  {hit_sm:18.2f} " + "".join(f"{c:>8}" for c in cells))
    print()

    # One fully worked example with the EAB split local/remote.
    inputs = EABInputs(
        r_local=0.4, lsu_memory_side=0.6, lsu_sm_side=0.8,
        llc_hit_memory_side=0.85, llc_hit_sm_side=0.8, **bandwidths)
    mem = eab_memory_side(inputs)
    sm = eab_sm_side(inputs)
    print("Worked example (r_local=0.4, hit_mem=0.85, hit_sm=0.80):")
    print(f"  memory-side EAB: local={mem.local:8.1f} "
          f"remote={mem.remote:8.1f} total={mem.total:8.1f}")
    print(f"  SM-side EAB:     local={sm.local:8.1f} "
          f"remote={sm.remote:8.1f} total={sm.total:8.1f}")
    print(f"  decision (theta={config.sac.theta:.0%}): "
          f"{decide(inputs, theta=config.sac.theta)}")


if __name__ == "__main__":
    main()
