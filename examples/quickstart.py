#!/usr/bin/env python
"""Quickstart: simulate one benchmark under every LLC organization.

Runs the CFD benchmark (SM-side preferred) on the Table 3 baseline
multi-chip GPU under the five evaluated LLC organizations and prints the
speedup over the memory-side baseline, the LLC hit rate and the
effective LLC bandwidth — the three quantities at the heart of the SAC
paper.

Usage:
    python examples/quickstart.py [benchmark-name]
"""

import sys

from repro.sim import ORGANIZATIONS, simulate
from repro.workloads import get


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "CFD"
    spec = get(name)
    print(f"Benchmark {spec.name} ({spec.suite}): "
          f"{spec.footprint_mb:.0f} MB footprint, "
          f"{spec.true_shared_mb:.0f} MB truly shared, "
          f"{spec.false_shared_mb:.0f} MB falsely shared "
          f"-> paper preference: {spec.preference}")
    print()

    results = {}
    for organization in ORGANIZATIONS:
        print(f"simulating {organization} ...", flush=True)
        results[organization] = simulate(spec, organization)
    baseline_cycles = results["memory-side"].cycles

    print()
    print(f"{'organization':14} {'speedup':>8} {'LLC hit':>8} "
          f"{'eff. LLC BW':>12} {'inter-chip MB':>14}")
    for organization, stats in results.items():
        print(f"{organization:14} {baseline_cycles / stats.cycles:8.2f} "
              f"{stats.llc_hit_rate:8.3f} "
              f"{stats.effective_llc_bandwidth:12.3f} "
              f"{stats.inter_chip_bytes / 1e6:14.1f}")

    sac = results["sac"]
    modes = [k.organization for k in sac.kernels]
    print()
    print(f"SAC per-kernel decisions: {modes}")
    best = min(results, key=lambda org: results[org].cycles)
    print(f"Best fixed organization: {best}; "
          f"SAC within {results['sac'].cycles / results[best].cycles - 1:.1%} "
          f"of it (profiling + reconfiguration overhead).")


if __name__ == "__main__":
    main()
