"""Bench: cross-model validation of the epoch timing model.

Runs the epoch-based engine and the independent event-driven
queueing-network replay on the same traces and checks that they agree
on which LLC organization wins (the quantity every figure depends on).
"""

from repro.sim.eventsim import validate_against_epoch_model
from repro.workloads import get

BENCHMARKS = ("RN", "CFD", "SRAD", "NN")


def test_validation(benchmark, capsys):
    def compute():
        return {name: validate_against_epoch_model(get(name))
                for name in BENCHMARKS}

    results = benchmark.pedantic(compute, rounds=1, iterations=1,
                                 warmup_rounds=0)
    with capsys.disabled():
        print()
        print("Cross-model validation (cycles; lower wins):")
        print(f"  {'bench':6} {'model':18} {'memory-side':>12} "
              f"{'sm-side':>9}  winner")
        for name, result in results.items():
            for row, model in ((0, "epoch (primary)"),
                               (1, "event-driven")):
                mem = result["memory-side"][row]
                sm = result["sm-side"][row]
                winner = "sm-side" if sm < mem else "memory-side"
                print(f"  {name:6} {model:18} {mem:12.0f} {sm:9.0f}  "
                      f"{winner}")
    for name, result in results.items():
        epoch_winner = min(result, key=lambda o: result[o][0])
        event_winner = min(result, key=lambda o: result[o][1])
        assert epoch_winner == event_winner, name
