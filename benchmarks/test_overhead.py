"""Bench: Section 3.6 hardware-overhead budget and NoC power/area model."""

from repro.arch import baseline, with_sectored_llc
from repro.core.overhead import overhead_report
from repro.noc import power


def test_overhead_budget(benchmark, capsys):
    def compute():
        config = baseline()
        return {
            "conventional": overhead_report(config, sectored=False),
            "sectored": overhead_report(with_sectored_llc(config),
                                        sectored=True),
            "noc": power.report(config.chip.noc),
        }

    result = benchmark.pedantic(compute, rounds=1, iterations=1,
                                warmup_rounds=0)
    conventional = result["conventional"]
    sectored = result["sectored"]
    noc = result["noc"]
    with capsys.disabled():
        print()
        print("Section 3.6 overhead (per chip):")
        print(f"  conventional: CRD={conventional.crd_bytes}B "
              f"LSU={conventional.lsu_counter_bytes}B "
              f"scalars={conventional.scalar_counter_bytes}B "
              f"total={conventional.total_bytes}B")
        print(f"  sectored:     CRD={sectored.crd_bytes}B "
              f"total={sectored.total_bytes}B")
        sm = noc["sm_side_vs_memory_side"]
        sac = noc["sac_vs_memory_side"]
        print(f"  SM-side NoC vs memory-side: power {sm.power:+.1%}, "
              f"area {sm.area:+.1%}")
        print(f"  SAC bypass vs memory-side:  power {sac.power:+.1%}, "
              f"area {sac.area:+.1%}")
    # Paper Section 3.6: 544/736 B CRD; 620/812 B total per chip.
    assert conventional.crd_bytes == 544
    assert conventional.total_bytes == 620
    assert sectored.crd_bytes == 736
    assert sectored.total_bytes == 812
    # Paper Section 2.1: two-NoC SM-side costs ~21% power / ~18% area.
    assert 0.15 < noc["sm_side_vs_memory_side"].power < 0.27
    assert 0.12 < noc["sm_side_vs_memory_side"].area < 0.24
    # Paper Section 3.6: bypass logic ~1.6% power / ~1.9% area.
    assert 0.005 < noc["sac_vs_memory_side"].power < 0.03
    assert 0.005 < noc["sac_vs_memory_side"].area < 0.03
