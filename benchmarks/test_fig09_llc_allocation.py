"""Bench: regenerate Figure 9 (LLC local vs remote data allocation)."""

from repro.experiments import fig09_llc_allocation
from repro.workloads import MP_BENCHMARKS, SP_BENCHMARKS


def test_fig09_llc_allocation(experiment_bencher):
    result = experiment_bencher(fig09_llc_allocation)
    fractions = result["remote_fraction"]
    for bench, orgs in fractions.items():
        # A memory-side LLC by definition caches only local data.
        assert orgs["memory-side"] < 0.01, bench
        # The Static LLC reserves half its ways for remote data; remote
        # occupancy stays at or below that bound.
        assert orgs["static"] <= 0.6, bench
    # Shape: SAC allocates a large remote fraction for SP benchmarks...
    sp_sac = [fractions[b.name]["sac"] for b in SP_BENCHMARKS]
    assert sum(sp_sac) / len(sp_sac) > 0.3
    # ...and (almost) only local data for MP benchmarks.
    mp_sac = [fractions[b.name]["sac"] for b in MP_BENCHMARKS]
    assert sum(mp_sac) / len(mp_sac) < 0.1
