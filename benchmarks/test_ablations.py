"""Bench: SAC ablations (CRD, LSU, reconfiguration cost) + oracle bound."""

from repro.experiments import ablations


def test_ablations(experiment_bencher):
    result = experiment_bencher(ablations, benchmarks=(
        "RN", "CFD", "BFS", "SRAD", "NN", "GEMM"))
    aggregate = result["aggregate"]
    # Full SAC must approach the oracle (within profiling/reconfig cost).
    assert aggregate["sac"] > 0.85 * aggregate["oracle"]
    # Removing the CRD can only hurt (or tie): without the SM-side hit
    # estimate, the model mispredicts replication-heavy benchmarks.
    assert aggregate["sac-no-crd"] <= aggregate["sac"] * 1.02
    # Free reconfiguration can only help (or tie).
    assert aggregate["sac-free-reconfig"] >= aggregate["sac"] * 0.98
