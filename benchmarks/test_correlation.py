"""Bench: speedup-vs-effective-bandwidth correlation (Section 5.2)."""

from repro.experiments import correlation


def test_correlation(experiment_bencher):
    result = experiment_bencher(correlation)
    # Paper Section 5.2: the correlation is strong.
    assert result["correlation"] > 0.75
