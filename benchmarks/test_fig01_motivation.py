"""Bench: regenerate Figure 1 (motivation: perf, miss rate, bandwidth)."""

from repro.experiments import fig01_motivation


def test_fig01_motivation(experiment_bencher):
    result = experiment_bencher(fig01_motivation)
    perf = result["performance"]
    # Shape: SP group prefers SM-side, MP group prefers memory-side, and
    # SAC tracks (or beats) the winner in both groups.
    assert perf["SP"]["sm-side"] > 1.2
    assert perf["MP"]["sm-side"] < 1.0
    assert perf["SP"]["sac"] > 0.9 * perf["SP"]["sm-side"]
    assert perf["MP"]["sac"] > 0.95 * perf["MP"]["memory-side"]
    # Shape: the SM-side LLC has a higher miss rate in both groups.
    miss = result["miss_rate"]
    assert miss["SP"]["sm-side"] > miss["SP"]["memory-side"]
    assert miss["MP"]["sm-side"] > miss["MP"]["memory-side"]
    # Shape: effective LLC bandwidth explains the preference.
    bandwidth = result["bandwidth"]
    assert bandwidth["SP"]["sm-side"] > 1.0
    assert bandwidth["SP"]["sac"] > 1.0
