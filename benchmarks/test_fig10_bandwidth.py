"""Bench: regenerate Figure 10 (effective LLC bandwidth breakdown)."""

from repro.experiments import fig10_bandwidth_breakdown
from repro.workloads import MP_BENCHMARKS, SP_BENCHMARKS


def test_fig10_bandwidth(experiment_bencher):
    result = experiment_bencher(fig10_bandwidth_breakdown)
    breakdown = result["breakdown"]
    # Shape: for SP benchmarks SAC trades remote-LLC responses for
    # local-LLC responses and raises the total effective bandwidth.
    sp_gain = 0
    for bench in (b.name for b in SP_BENCHMARKS):
        mem = breakdown[bench]["memory-side"]
        sac = breakdown[bench]["sac"]
        if sum(sac.values()) > sum(mem.values()):
            sp_gain += 1
        assert sac["local_llc"] >= mem["local_llc"] * 0.9, bench
    assert sp_gain >= len(SP_BENCHMARKS) - 1
    # Shape: for MP benchmarks SAC keeps the memory-side profile.
    for bench in (b.name for b in MP_BENCHMARKS):
        sac = breakdown[bench]["sac"]
        local = sac["local_llc"] + sac["local_mem"]
        remote = sac["remote_llc"] + sac["remote_mem"]
        assert local > remote, bench
