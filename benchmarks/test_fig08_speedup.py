"""Bench: regenerate Figure 8 (speedups) + the Section 5.1 headlines."""

from repro.experiments import fig08_speedup
from repro.workloads import MP_BENCHMARKS, SP_BENCHMARKS


def test_fig08_speedup(experiment_bencher):
    result = experiment_bencher(fig08_speedup)
    speedups = result["speedups"]
    # Shape: every SP benchmark prefers SM-side, every MP benchmark
    # prefers memory-side.
    for bench in (b.name for b in SP_BENCHMARKS):
        assert speedups[(bench, "sm-side")] > 1.0, bench
    for bench in (b.name for b in MP_BENCHMARKS):
        assert speedups[(bench, "sm-side")] < 1.0, bench
    # Shape: SAC beats every alternative on the overall harmonic mean
    # (paper: +76% / +12% / +31% / +18%).
    headline = result["headline"]
    assert headline["sac_vs_memory_side"] > 0.15
    assert headline["sac_vs_sm_side"] > 0.0
    assert headline["sac_vs_static"] > 0.0
    assert headline["sac_vs_dynamic"] > 0.0
    # Shape: on the SP group, the partial-remote organizations land
    # between the two extremes: mem-side < static < dynamic < sm-side,
    # with SAC at (or near) the top.
    sp = result["aggregates"]["SP"]
    assert sp["memory-side"] < sp["static"] < sp["dynamic"] < sp["sm-side"]
    assert sp["sac"] > 0.9 * sp["sm-side"]
    # Shape: on the MP group, memory-side (and SAC, which follows it
    # within profiling overhead) stays on top; static over-allocates
    # remote data and loses most.
    mp = result["aggregates"]["MP"]
    assert mp["sac"] >= 0.98 * max(mp.values())
    assert mp["sac"] > mp["sm-side"]
    assert mp["static"] == min(mp.values())
    # Overall, SAC is the best organization.
    overall = result["aggregates"]["all"]
    assert overall["sac"] == max(overall.values())
