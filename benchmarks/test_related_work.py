"""Bench: related-work comparison (page migration vs SAC)."""

from repro.experiments import related_work


def test_related_work(experiment_bencher):
    result = experiment_bencher(related_work)
    aggregate = result["aggregate"]
    # Shape (paper Section 6): beyond-LLC page migration cannot capture
    # the sharing benefit — SAC clearly beats it on average.
    assert aggregate["sac"] > aggregate["migration"]
    # Migration neither helps much (shared pages have no dominant
    # accessor; first-touch already places private pages correctly)
    # nor hurts much (the policy stays quiet when there is no winner).
    assert 0.9 < aggregate["migration"] < 1.15
    # LADM captures part of the SM-side benefit (it is "in effect
    # similar to SM-side caching" for reused remote data) but cannot
    # reconfigure the whole LLC, so SAC still wins on average.
    assert aggregate["ladm"] > aggregate["migration"]
    assert aggregate["sac"] > 0.95 * aggregate["ladm"]
