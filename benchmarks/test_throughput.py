"""Bench: simulator throughput of the batched epoch fast path.

Times the per-access (serial) and batched engine paths on the paper's
first benchmark under memory-side and SM-side LLCs at the default
experiment scale, asserts the batched path is at least 3x faster, and
records the accesses/sec figures into ``BENCH_throughput.json``.
"""

import json
from pathlib import Path

from repro.sim import EngineParams
from repro.sim.run import simulate
from repro.workloads.suite import SUITE

REPORT_PATH = Path(__file__).resolve().parent.parent / \
    "BENCH_throughput.json"

#: Best-of-N repetitions; simulation is single-threaded and allocation-
#: bound, so max accesses/sec is the noise-robust statistic.
REPS = 3

SPEEDUP_FLOOR = 3.0


def best_rate(organization, batched):
    rate = 0.0
    stats = None
    for _ in range(REPS):
        stats = simulate(SUITE[0], organization,
                         params=EngineParams(batched=batched))
        rate = max(rate, stats.accesses_per_second)
    return rate, stats


def test_batched_throughput(benchmark, capsys):
    def measure():
        report = {}
        for organization in ("memory-side", "sm-side"):
            serial_rate, serial_stats = best_rate(organization, False)
            batched_rate, batched_stats = best_rate(organization, True)
            assert batched_stats.comparable_dict() == \
                serial_stats.comparable_dict()
            report[organization] = {
                "serial_accesses_per_second": round(serial_rate),
                "batched_accesses_per_second": round(batched_rate),
                "speedup": round(batched_rate / serial_rate, 2),
                "accesses": serial_stats.accesses,
                "fast_epochs": batched_stats.fast_epochs,
                "bottleneck": batched_stats.bottleneck_summary(),
            }
        return report

    report = benchmark.pedantic(measure, rounds=1, iterations=1,
                                warmup_rounds=0)
    REPORT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True)
                           + "\n")
    with capsys.disabled():
        print()
        print("Engine throughput (accesses/sec, best of "
              f"{REPS}):")
        for organization, row in report.items():
            print(f"  {organization:12} serial "
                  f"{row['serial_accesses_per_second']:>9,} -> batched "
                  f"{row['batched_accesses_per_second']:>9,} "
                  f"({row['speedup']:.2f}x)")
    for organization, row in report.items():
        assert row["speedup"] >= SPEEDUP_FLOOR, (
            f"batched path only {row['speedup']}x on {organization}; "
            f"expected >= {SPEEDUP_FLOOR}x")
