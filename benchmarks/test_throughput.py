"""Bench: simulator throughput of the batched and vectorized paths.

Times the per-access (serial) engine, the batched path with the
per-access probe loop, and the batched path with the vectorized
tag-store kernel on the paper's first benchmark under all five LLC
organizations at the default experiment scale, then records the
accesses/sec figures and the probe-phase share of epoch wall time into
``BENCH_throughput.json``.  The way-partitioned organizations (static,
dynamic, SAC) resolve through the staged kernel and must report zero
``demotions``.  A second test records the stacked five-organization
sweep (``stacked_sweep`` row): kernel-invocation counts, wall and
probe seconds vs the per-pair path, and the fallback count (zero means
every lane shared one tag store).  A third records the shared
reuse-encoding sweep (``stacked_shared`` row): sweep accesses/sec,
encoding-vs-replay telemetry, and the speedup over the recorded PR 5
stacked rate.  A fourth records the lane-batched replay kernel
(``stacked_lane_batched`` row): sweep accesses/sec with the fused
per-lane replay axis, the lane-batching telemetry (rounds, replay
seconds, residual ``_SetReplay`` batches), and the speedup over the
recorded PR 6 shared-encoding rate.

Two classes of floor are asserted:

* machine-independent ratios measured in the same run — the batched
  probe loop vs serial, and the vectorized kernel vs the probe loop;
* absolute floors tied to the reference machine: the >= 3x of the
  vectorized kernel over the *recorded* PR 1 batched-path rates, and
  the >= 3x of the partitioned organizations' vectorized rate over
  their per-access scalar rate.  These are skipped when
  ``REPRO_BENCH_SMOKE=1`` (the CI smoke job sets it).
"""

import json
import os
from pathlib import Path

from repro.sim import ORGANIZATIONS, EngineParams
from repro.sim.run import simulate, simulate_stacked
from repro.workloads.suite import SUITE

REPORT_PATH = Path(__file__).resolve().parent.parent / \
    "BENCH_throughput.json"

#: Best-of-N repetitions; simulation is single-threaded and allocation-
#: bound, so max accesses/sec is the noise-robust statistic.  The slow
#: serial baseline gets fewer reps: at ~3 s per run its relative noise
#: is tiny, and the extra wall time only heats the machine under the
#: fast paths' measurements.
REPS = 5
SERIAL_REPS = 2

#: Batched probe loop vs serial, same run.
SPEEDUP_FLOOR = 3.0

#: Vectorized kernel vs the batched probe loop, same run.
VECTOR_OVER_LOOP_FLOOR = 1.5

#: Vectorized kernel vs the recorded PR 1 batched-path rates below.
VECTOR_OVER_PR1_FLOOR = 3.0

#: Staged vectorized kernel vs the per-access scalar engine on the
#: way-partitioned organizations (static/dynamic/sac).
VECTOR_OVER_SCALAR_FLOOR = 3.0

#: Batched-path accesses/sec recorded by PR 1's run of this bench on the
#: reference machine (BENCH_throughput.json before the vectorized
#: kernel landed).  The vectorized kernel is measured against these.
PR1_BATCHED_RATES = {"memory-side": 524459, "sm-side": 463770}

#: Stacked five-organization sweep vs per-pair: minimum ratio of bank
#: (kernel) invocations.  This is deterministic — the stacked driver
#: issues at most one grouped and one staged call per round regardless
#: of lane count — so it is asserted even under REPRO_BENCH_SMOKE.
STACKED_INVOCATION_FLOOR = 2.0

#: Stacked-sweep accesses/sec recorded by PR 5's run of this bench on
#: the reference machine (BENCH_throughput.json before the shared
#: reuse encodings landed).  The shared-encoding sweep is measured
#: against this.
PR5_STACKED_RATE = 869163

#: Shared-encoding stacked sweep vs the recorded PR 5 rate above.
#: Reference-machine floor: skipped under REPRO_BENCH_SMOKE.
SHARED_OVER_PR5_FLOOR = 1.5

#: Stacked-sweep accesses/sec recorded by PR 6's run of this bench on
#: the reference machine (BENCH_throughput.json before the lane-batched
#: replay kernel landed).  The lane-batched sweep is measured against
#: this.
PR6_SHARED_RATE = 918895

#: Lane-batched stacked sweep vs the recorded PR 6 rate above.  The
#: recorded full-bench run measured 1.49x (fused replay axis, the
#: vectorized repartition drain, shared per-epoch derivations and the
#: shaved non-probe accounting, measured warm like the PR 6 recording
#: was); the floor sits at the 1.3x design target to leave headroom
#: for the reference machine's run-to-run wall noise.
#: Reference-machine floor: skipped under REPRO_BENCH_SMOKE.
LANE_BATCHED_OVER_PR6_FLOOR = 1.3

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


def best_run(organization, reps=REPS, **params_kwargs):
    """Best accesses/sec (and its stats) over ``reps`` runs."""
    rate = 0.0
    best_stats = None
    for _ in range(reps):
        stats = simulate(SUITE[0], organization,
                         params=EngineParams(**params_kwargs))
        if stats.accesses_per_second >= rate:
            rate = stats.accesses_per_second
            best_stats = stats
    return rate, best_stats


def probe_share(stats):
    """Fraction of the run's wall clock spent in the cache-probe phase."""
    if stats.wall_seconds <= 0.0:
        return 0.0
    return stats.probe_seconds / stats.wall_seconds


def test_batched_throughput(benchmark, capsys):
    def measure():
        orgs = ("memory-side", "sm-side")
        # Vectorized legs first (for every organization): they are the
        # most timing-sensitive and the baselines' long runs heat the
        # machine.
        vector = {org: best_run(org, batched=True, vectorized=True)
                  for org in orgs}
        loop = {org: best_run(org, batched=True, vectorized=False)
                for org in orgs}
        # Serial legs run with vectorized=False too: the per-access
        # engine over plain scalar caches is the honest "scalar path"
        # baseline (and does not pay the array store's scalar-access
        # interpreter).
        serial = {org: best_run(org, reps=SERIAL_REPS, batched=False,
                                vectorized=False)
                  for org in orgs}
        report = {}
        for organization in orgs:
            vector_rate, vector_stats = vector[organization]
            loop_rate, loop_stats = loop[organization]
            serial_rate, serial_stats = serial[organization]
            assert loop_stats.comparable_dict() == \
                serial_stats.comparable_dict()
            assert vector_stats.comparable_dict() == \
                serial_stats.comparable_dict()
            assert vector_stats.vector_epochs > 0
            report[organization] = {
                "serial_accesses_per_second": round(serial_rate),
                "batched_accesses_per_second": round(loop_rate),
                "vectorized_accesses_per_second": round(vector_rate),
                "speedup": round(loop_rate / serial_rate, 2),
                "vectorized_speedup_over_loop":
                    round(vector_rate / loop_rate, 2),
                "pr1_batched_accesses_per_second":
                    PR1_BATCHED_RATES[organization],
                "vectorized_speedup_over_pr1_batched":
                    round(vector_rate / PR1_BATCHED_RATES[organization],
                          2),
                "loop_probe_share": round(probe_share(loop_stats), 3),
                "vectorized_probe_share":
                    round(probe_share(vector_stats), 3),
                "accesses": serial_stats.accesses,
                "fast_epochs": loop_stats.fast_epochs,
                "vector_epochs": vector_stats.vector_epochs,
                "bottleneck": vector_stats.bottleneck_summary(),
            }
        # Way-partitioned organizations: the staged kernel vs the
        # per-access scalar engine (their pre-PR scalar fallback made
        # "batched" and "serial" nearly indistinguishable here).
        for organization in ("static", "dynamic", "sac"):
            vector_rate, vector_stats = best_run(
                organization, batched=True, vectorized=True)
            loop_rate, loop_stats = best_run(
                organization, reps=SERIAL_REPS, batched=True,
                vectorized=False)
            serial_rate, serial_stats = best_run(
                organization, reps=SERIAL_REPS, batched=False,
                vectorized=False)
            assert loop_stats.comparable_dict() == \
                serial_stats.comparable_dict()
            assert vector_stats.comparable_dict() == \
                serial_stats.comparable_dict()
            assert vector_stats.vector_epochs > 0
            assert vector_stats.demotions == 0
            report[organization] = {
                "serial_accesses_per_second": round(serial_rate),
                "batched_accesses_per_second": round(loop_rate),
                "vectorized_accesses_per_second": round(vector_rate),
                "vectorized_speedup_over_scalar":
                    round(vector_rate / serial_rate, 2),
                "vectorized_speedup_over_loop":
                    round(vector_rate / loop_rate, 2),
                "vectorized_probe_share":
                    round(probe_share(vector_stats), 3),
                "accesses": serial_stats.accesses,
                "vector_epochs": vector_stats.vector_epochs,
                "demotions": vector_stats.demotions,
                "bottleneck": vector_stats.bottleneck_summary(),
            }
        return report

    report = benchmark.pedantic(measure, rounds=1, iterations=1,
                                warmup_rounds=0)
    REPORT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True)
                           + "\n")
    with capsys.disabled():
        print()
        print(f"Engine throughput (accesses/sec, best of {REPS}):")
        for organization, row in report.items():
            if "speedup" in row:
                print(f"  {organization:12} serial "
                      f"{row['serial_accesses_per_second']:>9,} -> loop "
                      f"{row['batched_accesses_per_second']:>9,} "
                      f"({row['speedup']:.2f}x) -> vectorized "
                      f"{row['vectorized_accesses_per_second']:>9,} "
                      f"({row['vectorized_speedup_over_loop']:.2f}x, "
                      f"{row['vectorized_speedup_over_pr1_batched']:.2f}x "
                      f"vs PR1; probe share "
                      f"{row['loop_probe_share']:.0%} -> "
                      f"{row['vectorized_probe_share']:.0%})")
            else:
                print(f"  {organization:12} serial "
                      f"{row['serial_accesses_per_second']:>9,} -> loop "
                      f"{row['batched_accesses_per_second']:>9,} -> "
                      f"vectorized "
                      f"{row['vectorized_accesses_per_second']:>9,} "
                      f"({row['vectorized_speedup_over_scalar']:.2f}x vs "
                      f"scalar; demotions {row['demotions']})")
    for organization, row in report.items():
        if "speedup" not in row:
            if not SMOKE:
                assert row["vectorized_speedup_over_scalar"] >= \
                    VECTOR_OVER_SCALAR_FLOOR, (
                        f"staged kernel only "
                        f"{row['vectorized_speedup_over_scalar']}x over "
                        f"the scalar engine on {organization}; expected "
                        f">= {VECTOR_OVER_SCALAR_FLOOR}x (set "
                        f"REPRO_BENCH_SMOKE=1 off the reference machine)")
            continue
        assert row["speedup"] >= SPEEDUP_FLOOR, (
            f"batched path only {row['speedup']}x on {organization}; "
            f"expected >= {SPEEDUP_FLOOR}x")
        assert row["vectorized_speedup_over_loop"] >= \
            VECTOR_OVER_LOOP_FLOOR, (
                f"vectorized kernel only "
                f"{row['vectorized_speedup_over_loop']}x over the probe "
                f"loop on {organization}; expected >= "
                f"{VECTOR_OVER_LOOP_FLOOR}x")
        if not SMOKE:
            assert row["vectorized_speedup_over_pr1_batched"] >= \
                VECTOR_OVER_PR1_FLOOR, (
                    f"vectorized kernel only "
                    f"{row['vectorized_speedup_over_pr1_batched']}x over "
                    f"the recorded PR 1 batched rate on {organization}; "
                    f"expected >= {VECTOR_OVER_PR1_FLOOR}x (set "
                    f"REPRO_BENCH_SMOKE=1 off the reference machine)")


def test_stacked_sweep_throughput(benchmark, capsys):
    """Stacked five-organization sweep vs per-pair simulation.

    The stacked path's win is kernel *invocations*: one grouped plus at
    most one staged bank call per round resolves every lane, so the
    five-organization sweep issues ~2.4x fewer calls than five per-pair
    runs (O(configs) -> ~O(1) per epoch).  Wall clock is recorded too
    (``stacked_speedup_over_matrix``) but is row-work bound at the
    default trace density, so only the deterministic invocation ratio
    carries an always-on floor.
    """
    spec = SUITE[0]
    orgs = list(ORGANIZATIONS)

    def measure():
        # Stacked legs first (same heat-ordering rationale as above).
        stacked = None
        for _ in range(REPS):
            result = simulate_stacked(spec, orgs)
            if stacked is None or result.telemetry.wall_seconds < \
                    stacked.telemetry.wall_seconds:
                stacked = result
        solo = {}
        for _ in range(SERIAL_REPS):
            for org in orgs:
                stats = simulate(spec, org)
                if org not in solo or \
                        stats.wall_seconds < solo[org].wall_seconds:
                    solo[org] = stats
        for org, lane in zip(orgs, stacked.stats):
            assert lane.comparable_dict() == solo[org].comparable_dict()
        tele = stacked.telemetry
        matrix_wall = sum(s.wall_seconds for s in solo.values())
        matrix_probe = sum(s.probe_seconds for s in solo.values())
        matrix_invocations = sum(s.vector_epochs for s in solo.values())
        return {
            "organizations": orgs,
            "kernel_invocations_matrix": matrix_invocations,
            "kernel_invocations_stacked": tele.bank_invocations,
            "kernel_invocation_ratio":
                round(matrix_invocations / tele.bank_invocations, 2),
            "matrix_wall_seconds": round(matrix_wall, 3),
            "stacked_wall_seconds": round(tele.wall_seconds, 3),
            "stacked_speedup_over_matrix":
                round(matrix_wall / tele.wall_seconds, 2),
            "matrix_probe_seconds": round(matrix_probe, 3),
            "stacked_probe_seconds": round(tele.probe_seconds, 3),
            "stacked_lanes": tele.stacked_lanes,
            "stacked_fallbacks": tele.solo_lanes,
            "shared_banks": tele.banks,
            "comment": (
                f"invocation ratio "
                f"{round(matrix_invocations / tele.bank_invocations, 2)}x "
                f"is the structural win; wall speedup "
                f"{round(matrix_wall / tele.wall_seconds, 2)}x is "
                f"row-work bound at the default trace density (the "
                f"stacked path saves dispatch, not tag-store row work)"),
        }

    row = benchmark.pedantic(measure, rounds=1, iterations=1,
                             warmup_rounds=0)
    report = {}
    if REPORT_PATH.exists():
        report = json.loads(REPORT_PATH.read_text())
    report["stacked_sweep"] = row
    REPORT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True)
                           + "\n")
    with capsys.disabled():
        print()
        print(f"Stacked five-organization sweep (best of {REPS}):")
        print(f"  kernel invocations "
              f"{row['kernel_invocations_matrix']} -> "
              f"{row['kernel_invocations_stacked']} "
              f"({row['kernel_invocation_ratio']:.2f}x fewer); wall "
              f"{row['matrix_wall_seconds']}s -> "
              f"{row['stacked_wall_seconds']}s "
              f"({row['stacked_speedup_over_matrix']:.2f}x); "
              f"fallbacks {row['stacked_fallbacks']}")
    # The five-organization sweep must be fully hosted in one shared
    # bank: any fallback lane means the stacked path silently
    # disengaged (this is the CI smoke gate).
    assert row["stacked_fallbacks"] == 0
    assert row["stacked_lanes"] == len(orgs)
    assert row["shared_banks"] == 1
    assert row["kernel_invocation_ratio"] >= STACKED_INVOCATION_FLOOR, (
        f"stacked sweep only cut kernel invocations by "
        f"{row['kernel_invocation_ratio']}x; expected >= "
        f"{STACKED_INVOCATION_FLOOR}x")


def test_stacked_shared_throughput(benchmark, capsys):
    """Shared reuse encodings on the stacked five-organization sweep.

    Records the ``stacked_shared`` row: sweep accesses/sec with the
    encode-once/replay-per-lane kernel, the sharing telemetry
    (encodings vs replays), and the speedup over the PR 5 recorded
    stacked rate.  The always-on asserts are machine-independent facts
    about the sharing path itself: every lane rides the shared bank
    (zero fallbacks), at least one encoding is reused (strictly more
    replays than encodings — the round solved L lanes off fewer than L
    stream solves), and encodings never exceed replays (per round the
    encoding pass runs at most once per unique (set, tag) stream).
    The >= 1.5x floor over the recorded PR 5 rate is tied to the
    reference machine and skipped under ``REPRO_BENCH_SMOKE=1``.
    """
    spec = SUITE[0]
    orgs = list(ORGANIZATIONS)

    def measure():
        best = None
        for _ in range(REPS):
            result = simulate_stacked(spec, orgs)
            if best is None or result.telemetry.wall_seconds < \
                    best.telemetry.wall_seconds:
                best = result
        tele = best.telemetry
        accesses = sum(s.accesses for s in best.stats)
        rate = accesses / tele.wall_seconds
        shared_lanes = sum(1 for s in best.stats
                           if s.stacked_shared_streams > 0)
        return {
            "organizations": orgs,
            "accesses": accesses,
            "accesses_per_second": round(rate),
            "shared_encodings": tele.shared_encodings,
            "shared_replays": tele.shared_replays,
            "encoding_reuse_ratio":
                round(tele.shared_replays / tele.shared_encodings, 2),
            "lanes_with_shared_streams": shared_lanes,
            "stacked_fallbacks": tele.solo_lanes,
            "duplicate_lanes": tele.duplicate_lanes,
            "shared_speedup_over_pr5":
                round(rate / PR5_STACKED_RATE, 2),
        }

    row = benchmark.pedantic(measure, rounds=1, iterations=1,
                             warmup_rounds=0)
    report = {}
    if REPORT_PATH.exists():
        report = json.loads(REPORT_PATH.read_text())
    report["stacked_shared"] = row
    REPORT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True)
                           + "\n")
    with capsys.disabled():
        print()
        print(f"Shared-encoding stacked sweep (best of {REPS}):")
        print(f"  {row['accesses_per_second']} accesses/sec over "
              f"{row['accesses']} accesses; "
              f"{row['shared_encodings']} encodings -> "
              f"{row['shared_replays']} replays "
              f"({row['encoding_reuse_ratio']:.2f}x reuse); "
              f"{row['shared_speedup_over_pr5']:.2f}x over PR 5 "
              f"recorded rate")
    # Sharing path engaged: every lane in the shared bank, encodings
    # strictly reused, and never more encodings than replays (this is
    # the CI smoke gate for the shared-encoding path).
    assert row["stacked_fallbacks"] == 0
    assert row["shared_encodings"] > 0
    assert row["shared_replays"] > row["shared_encodings"]
    assert row["lanes_with_shared_streams"] >= 2
    if not SMOKE:
        assert row["shared_speedup_over_pr5"] >= SHARED_OVER_PR5_FLOOR, (
            f"shared-encoding sweep ran at only "
            f"{row['shared_speedup_over_pr5']}x the recorded PR 5 "
            f"stacked rate; expected >= {SHARED_OVER_PR5_FLOOR}x "
            f"(set REPRO_BENCH_SMOKE=1 off the reference machine)")


def test_stacked_lane_batched_throughput(benchmark, capsys):
    """Lane-batched replay on the stacked five-organization sweep.

    Records the ``stacked_lane_batched`` row: sweep accesses/sec with
    the fused per-lane replay axis, the lane-batching telemetry
    (lane-batched rounds, replay seconds, residual per-lane
    ``_SetReplay`` batches), and the speedup over the PR 6 recorded
    shared-encoding rate.  The always-on asserts are
    machine-independent facts about the lane-batched path: the sweep
    takes the lane-major replay at least once per kernel, mid-stream
    repartitions drain through the vectorized over-allotment path
    (zero ``_SetReplay`` demotions), and every lane stays in the
    shared bank.  The wall-rate floor over the recorded PR 6 rate is
    tied to the reference machine and skipped under
    ``REPRO_BENCH_SMOKE=1``.
    """
    spec = SUITE[0]
    orgs = list(ORGANIZATIONS)

    def measure():
        best = None
        for _ in range(REPS):
            result = simulate_stacked(spec, orgs)
            if best is None or result.telemetry.wall_seconds < \
                    best.telemetry.wall_seconds:
                best = result
        tele = best.telemetry
        accesses = sum(s.accesses for s in best.stats)
        rate = accesses / tele.wall_seconds
        return {
            "organizations": orgs,
            "accesses": accesses,
            "accesses_per_second": round(rate),
            "lane_batched_rounds": tele.lane_batched_rounds,
            "replay_seconds": round(tele.replay_seconds, 3),
            "set_replay_batches": tele.set_replay_batches,
            "stacked_fallbacks": tele.solo_lanes,
            "lane_batched_speedup_over_pr6":
                round(rate / PR6_SHARED_RATE, 2),
        }

    row = benchmark.pedantic(measure, rounds=1, iterations=1,
                             warmup_rounds=0)
    report = {}
    if REPORT_PATH.exists():
        report = json.loads(REPORT_PATH.read_text())
    report["stacked_lane_batched"] = row
    REPORT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True)
                           + "\n")
    with capsys.disabled():
        print()
        print(f"Lane-batched stacked sweep (best of {REPS}):")
        print(f"  {row['accesses_per_second']} accesses/sec over "
              f"{row['accesses']} accesses; "
              f"{row['lane_batched_rounds']} lane-batched rounds, "
              f"{row['replay_seconds']}s replay, "
              f"{row['set_replay_batches']} _SetReplay batches; "
              f"{row['lane_batched_speedup_over_pr6']:.2f}x over PR 6 "
              f"recorded rate")
    # Lane-batched path engaged: the lane-major replay ran, mid-stream
    # repartitions drained vectorized (no per-lane _SetReplay
    # demotions), and no lane fell out of the shared bank (this is the
    # CI smoke gate for the lane-batched path).
    assert row["stacked_fallbacks"] == 0
    assert row["lane_batched_rounds"] > 0
    assert row["set_replay_batches"] == 0
    if not SMOKE:
        assert row["lane_batched_speedup_over_pr6"] >= \
            LANE_BATCHED_OVER_PR6_FLOOR, (
                f"lane-batched sweep ran at only "
                f"{row['lane_batched_speedup_over_pr6']}x the recorded "
                f"PR 6 stacked rate; expected >= "
                f"{LANE_BATCHED_OVER_PR6_FLOOR}x (set REPRO_BENCH_SMOKE=1 "
                f"off the reference machine)")
