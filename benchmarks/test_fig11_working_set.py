"""Bench: regenerate Figure 11 (windowed working-set sharing profile).

Deviation note: our synthetic traces carry heavier cold-streaming tails
than the paper's real workloads, so the raw touched-byte counts are
inflated for the symmetric SP benchmarks.  The capacity-relevant shape
is carried by the *active* (re-referenced) per-chip demand: it must fit
one chip's LLC for an SM-side organization to win, and it exceeds that
capacity for the core MP benchmarks.
"""

from repro.experiments import fig11_working_set
from repro.workloads import MP_BENCHMARKS

ATYPICAL = ("BP", "DWT")


def test_fig11_working_set(experiment_bencher):
    result = experiment_bencher(fig11_working_set)
    profiles = result["profiles"]
    per_chip = result["llc_per_chip_mb"]

    def largest_window(bench):
        return max(profiles[bench], key=lambda p: p["window_cycles"])

    # Shape: every benchmark with published true sharing shows a truly
    # shared working set, growing (weakly) with the window size.
    for bench, points in profiles.items():
        ordered = sorted(points, key=lambda p: p["window_cycles"])
        assert ordered[-1]["true_mb"] >= ordered[0]["true_mb"] - 1e-6, bench
    # Shape: the core MP benchmarks' active per-chip demand exceeds the
    # per-chip LLC (replication cannot fit).
    mp_core = [b.name for b in MP_BENCHMARKS if b.name not in ATYPICAL]
    mp = [largest_window(b)["active_demand_mb"] for b in mp_core]
    for bench, demand in zip(mp_core, mp):
        assert demand > per_chip, bench
    # Shape: the atypical benchmarks (BP, DWT) have the smallest active
    # demands of the MP group (their near-tie comes from being barely
    # memory-bound, not from capacity pressure).
    for bench in ATYPICAL:
        assert largest_window(bench)["active_demand_mb"] < min(mp), bench
    # Shape: every core MP benchmark's truly shared working set exceeds a
    # quarter of the system LLC — replicating it four ways cannot fit.
    for bench in mp_core:
        assert largest_window(bench)["true_mb"] > \
            result["llc_capacity_mb"] / 4, bench
    # (Note: a raw SP-vs-MP comparison of whole-trace working sets is not
    # meaningful for our synthetic traces — symmetric SP sharing counts
    # 4x over full-trace windows; the group discrimination lives in the
    # simulator's capacity behaviour, asserted by Figures 1/8.)
