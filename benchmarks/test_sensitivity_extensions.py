"""Bench: theta / profiling-window sensitivity (paper-omitted analyses)."""

from repro.experiments import sensitivity_extensions


def test_sensitivity_extensions(experiment_bencher):
    result = experiment_bencher(sensitivity_extensions)
    theta = {p["theta"]: p["sac"] for p in result["theta"]}
    # A balanced theta beats an "always memory-side" policy (theta=1.0,
    # which makes SAC never reconfigure).
    assert theta[0.05] > theta[1.0]
    assert theta[0.08] > theta[1.0]
    # Across the sweep SAC never collapses below the baseline by much.
    assert min(theta.values()) > 0.9
    window = {p["window_cycles"]: p["sac"] for p in result["window"]}
    # A starved window (125 cycles) underperforms an adequate one.
    best = max(window.values())
    assert window[125] <= best
    assert window[500] > 0.95 * best
