"""Benchmark harness configuration.

Each bench regenerates one paper table/figure through
``repro.experiments`` and prints the rows/series.  The underlying
simulation runs are memoized per process (``repro.analysis.runner``), so
figures that share runs (1, 8, 9, 10) only simulate once per session.

Benches run with a single benchmark round: the timed quantity is the
experiment itself, and the printed report is the artifact of record
(captured into ``bench_output.txt`` by the top-level run command).
"""

import pytest


@pytest.fixture
def experiment_bencher(benchmark, capsys):
    """Run an experiment once under pytest-benchmark and print its report."""

    def bench(experiment_module, **kwargs):
        result = benchmark.pedantic(
            lambda: experiment_module.run_experiment(**kwargs),
            rounds=1, iterations=1, warmup_rounds=0)
        report = experiment_module.format_report(result)
        with capsys.disabled():
            print()
            print(report)
        return result

    return bench
