"""Bench: regenerate Figure 13 (input-set sensitivity)."""

from repro.experiments import fig13_input_sensitivity


def test_fig13_input_sensitivity(experiment_bencher):
    result = experiment_bencher(fig13_input_sensitivity)
    series = result["series"]
    # Shape: SAC is never (meaningfully) worse than the memory-side
    # baseline at any input size — its conservative choice is safe.
    for bench, points in series.items():
        for p in points:
            assert p["sac_speedup"] > 0.92, (bench, p)
    # Shape: for SP benchmarks SAC tracks (or beats) the better of the
    # two fixed organizations at every input size, and the SM-side
    # advantage shrinks as the input grows (replication starts
    # thrashing at x8).
    for bench in result["sp"]:
        points = sorted(series[bench], key=lambda p: p["factor"])
        for p in points:
            best = max(1.0, p["sm_side_speedup"])
            assert p["sac_speedup"] > 0.85 * best, (bench, p)
        assert points[0]["sm_side_speedup"] > points[-1]["sm_side_speedup"]
    # Shape: for MP benchmarks SM-side becomes viable at the smallest
    # inputs (the shared set becomes replicable).  SAC captures the
    # default-input preference exactly; at the most extreme reductions
    # our home-affine MP traces keep the EAB inputs local-dominated, so
    # SAC stays (safely) memory-side — see EXPERIMENTS.md.
    for bench in result["mp"]:
        points = sorted(series[bench], key=lambda p: p["factor"])
        assert points[0]["sm_side_speedup"] > points[-1]["sm_side_speedup"]
        default = next(p for p in points if p["factor"] == 1.0)
        assert default["sac_speedup"] >= 0.98
