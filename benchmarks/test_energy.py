"""Bench: data-movement energy comparison (extension)."""

from repro.experiments import energy_comparison


def test_energy_comparison(experiment_bencher):
    result = experiment_bencher(energy_comparison)
    rows = result["rows"]
    for bench, orgs in rows.items():
        # Energy accounting sanity: every ratio is positive and the
        # share terms are fractions.
        for org, row in orgs.items():
            assert row["energy_ratio"] > 0, (bench, org)
            assert 0.0 <= row["inter_chip_share"] <= 1.0
            assert 0.0 <= row["dram_share"] <= 1.0
        # SM-side always cuts the inter-chip energy share on SP
        # benchmarks (it stops shipping shared data over the ring).
    for bench in ("RN", "CFD"):
        mem = rows[bench]["memory-side"]
        sm = rows[bench]["sm-side"]
        assert sm["inter_chip_share"] < mem["inter_chip_share"]
    # SAC's energy never exceeds the worst fixed organization by much.
    for bench, orgs in rows.items():
        worst = max(row["energy_ratio"] for row in orgs.values())
        assert orgs["sac"]["energy_ratio"] <= worst * 1.05, bench
