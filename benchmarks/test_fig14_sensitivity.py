"""Bench: regenerate Figure 14 (design-space sensitivity)."""

from repro.experiments import fig14_sensitivity


def test_fig14_sensitivity(experiment_bencher):
    result = experiment_bencher(fig14_sensitivity)
    sweeps = result["sweeps"]
    # Shape: SAC never loses meaningfully anywhere in the design space;
    # at the extreme inter-chip bandwidths the organizations converge, so
    # SAC's profiling overhead can leave it marginally below 1.0.
    for sweep, points in sweeps.items():
        for point in points:
            assert point["sac"] > 0.97, (sweep, point)
    # Shape: SAC clearly wins at the baseline design point.
    for sweep, points in sweeps.items():
        starred = [p for p in points if p["label"].endswith("*")]
        for point in starred:
            assert point["sac"] > 1.05, (sweep, point)
    # Shape: SAC's margin over memory-side shrinks as inter-chip
    # bandwidth grows (less need to cache remote data locally).
    inter = sweeps["inter_chip_bandwidth"]
    assert inter[0]["sac"] > inter[-1]["sac"]
    # Shape: more LLC capacity -> more room to replicate -> bigger margin.
    llc = sweeps["llc_capacity"]
    assert llc[-1]["sac"] > llc[0]["sac"]
    # Shape: SAC still helps with sectored caches and larger pages.
    assert sweeps["sectored_cache"][1]["sac"] > 1.0
    assert sweeps["page_size"][1]["sac"] > 1.0
