"""Bench: regenerate Figure 12 (BFS time-varying kernel behaviour)."""

from repro.experiments import fig12_time_varying


def test_fig12_time_varying(experiment_bencher):
    result = experiment_bencher(fig12_time_varying)
    launches = result["launches"]
    k1 = [l for l in launches if "K1" in l["kernel"]]
    k2 = [l for l in launches if "K2" in l["kernel"]]
    assert k1 and k2
    # Shape: SM-side loses on K1 (memory-side preferred) and wins on K2.
    assert all(l["sm_side_speedup"] < 1.05 for l in k1)
    assert all(l["sm_side_speedup"] > 1.2 for l in k2)
    # Shape: SAC picks memory-side for K1 and SM-side for K2...
    assert all(l["sac_mode"] == "memory-side" for l in k1)
    assert sum(l["sac_mode"] == "sm-side" for l in k2) >= len(k2) - 1
    # ...and therefore beats the static SM-side configuration overall.
    assert result["overall"]["sac"] > result["overall"]["sm_side"]
