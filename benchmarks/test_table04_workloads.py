"""Bench: regenerate Table 4 (workload sharing characteristics)."""

from repro.experiments import table04_workloads


def test_table04_workloads(experiment_bencher):
    result = experiment_bencher(table04_workloads)
    for row in result["rows"]:
        # The generator must produce truly shared data when the paper
        # reports some, and roughly no more than the published amount
        # (the trace only touches the hot portions of huge footprints).
        if row["true_mb_paper"] > 0:
            assert row["true_mb_measured"] > 0, row["benchmark"]
        assert row["true_mb_measured"] <= row["true_mb_paper"] * 1.3 + 1, row
        if row["false_mb_paper"] > 0:
            assert row["false_mb_measured"] > 0, row["benchmark"]
        assert row["touched_mb_measured"] <= row["footprint_mb"] * 1.3 + 1, row
