"""Shared experiment plumbing.

Every experiment module exposes ``run_experiment(...) -> dict`` plus a
``format_report(result) -> str`` used by the benchmark harness to print
the paper's rows/series.

Experiments run at the reduced scale described in
:mod:`repro.sim.run`; the *shape* of each figure (who wins, by roughly
what factor, where crossovers fall) is the reproduction target, not the
absolute numbers.  ``fast=True`` additionally reduces the trace density
(used by the test suite; benches use the default density).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..arch.config import SystemConfig
from ..analysis.runner import run_matrix
from ..sim.run import DEFAULT_ACCESSES_PER_EPOCH, DEFAULT_SCALE
from ..sim.stats import RunStats
from ..workloads.spec import BenchmarkSpec
from ..workloads.suite import MP_BENCHMARKS, SP_BENCHMARKS, SUITE

#: The five organizations of the evaluation, in the paper's order.
ALL_ORGANIZATIONS: Tuple[str, ...] = (
    "memory-side", "sm-side", "static", "dynamic", "sac")

#: Representative subsets used by the wide sweeps (Figures 13/14):
#: one strongly and one moderately SM-side-preferred benchmark plus
#: their memory-side counterparts.  Wider subsets change the absolute
#: aggregates slightly but not the sweep shapes, at several times the
#: runtime (19 design points x benchmarks x 3 organizations).
SWEEP_SP: Tuple[str, ...] = ("RN", "CFD")
SWEEP_MP: Tuple[str, ...] = ("SRAD", "NN")

FAST_ACCESSES_PER_EPOCH = 2048


def trace_density(fast: bool) -> int:
    return FAST_ACCESSES_PER_EPOCH if fast else DEFAULT_ACCESSES_PER_EPOCH


def run_suite(organizations: Iterable[str] = ALL_ORGANIZATIONS,
              specs: Iterable[BenchmarkSpec] = SUITE,
              config: Optional[SystemConfig] = None,
              scale: float = DEFAULT_SCALE,
              fast: bool = False,
              n_jobs: Optional[int] = None,
              cache_dir: Optional[Union[str, Path]] = None
              ) -> Dict[Tuple[str, str], RunStats]:
    """Run (benchmark, organization) pairs through the cached runner.

    Delegates to :func:`repro.analysis.runner.run_matrix`, so the
    process pool (``n_jobs``, env ``REPRO_JOBS``) and the persistent
    disk cache (``cache_dir``) reach every experiment.
    """
    return run_matrix(list(specs), list(organizations), config=config,
                      scale=scale, accesses_per_epoch=trace_density(fast),
                      n_jobs=n_jobs, cache_dir=cache_dir)


def group_names() -> Dict[str, List[str]]:
    """Benchmark names by preference group, plus 'all'."""
    sp = [b.name for b in SP_BENCHMARKS]
    mp = [b.name for b in MP_BENCHMARKS]
    return {"SP": sp, "MP": mp, "all": sp + mp}
