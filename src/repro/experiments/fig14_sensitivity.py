"""Figure 14: SAC across the design space.

Seven sensitivity sweeps, each reporting the harmonic-mean speedup of
SM-side and SAC over the memory-side LLC on a representative benchmark
subset:

* inter-chip bandwidth (48 GB/s PCIe ... 768 GB/s MCM interposer),
* LLC capacity (0.5x, 1x, 2x),
* memory interface (GDDR5, GDDR6, HBM2),
* coherence protocol (software vs hardware),
* GPU count (2 vs 4 chips at constant total inter-chip bandwidth),
* sectored LLC,
* page size (4 KB vs 64 KB).

Shape targets: SAC beats memory-side everywhere; its margin shrinks as
inter-chip bandwidth grows, grows with LLC capacity and with memory
bandwidth, and grows with chip count.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.runner import run_matrix
from ..arch import presets
from ..arch.config import SystemConfig
from ..sim.stats import harmonic_mean
from .common import SWEEP_MP, SWEEP_SP, trace_density
from ..workloads.suite import get

DEFAULT_BENCHMARKS: Tuple[str, ...] = SWEEP_SP + SWEEP_MP

ORGS = ("memory-side", "sm-side", "sac")


def _point(label: str, config: SystemConfig, benchmarks: Sequence[str],
           density: int, starred: bool = False) -> Dict[str, object]:
    speedups: Dict[str, List[float]] = {org: [] for org in ORGS[1:]}
    # One matrix per sweep point: every benchmark's three organizations
    # share a trace, so the runner dispatches them as one stacked sweep
    # instead of per-pair simulations (cache semantics are unchanged).
    results = run_matrix([get(name) for name in benchmarks], ORGS,
                         config=config, accesses_per_epoch=density)
    for name in benchmarks:
        mem = results[(name, "memory-side")].cycles
        for org in ORGS[1:]:
            speedups[org].append(mem / results[(name, org)].cycles)
    return {
        "label": label + (" *" if starred else ""),
        "sm_side": harmonic_mean(speedups["sm-side"]),
        "sac": harmonic_mean(speedups["sac"]),
    }


def run_experiment(config: Optional[SystemConfig] = None,
                   benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
                   fast: bool = False) -> Dict[str, object]:
    base = config or presets.baseline()
    density = trace_density(fast)
    sweeps: Dict[str, List[Dict[str, object]]] = {}

    sweeps["inter_chip_bandwidth"] = [
        _point(f"{gbps} GB/s",
               presets.with_inter_chip_bandwidth(base, gbps),
               benchmarks, density, starred=(gbps == 96))
        for gbps in presets.INTER_CHIP_SWEEP_GBPS]

    sweeps["llc_capacity"] = [
        _point(f"{factor:g}x LLC",
               presets.with_llc_capacity_scale(base, factor),
               benchmarks, density, starred=(factor == 1.0))
        for factor in (0.5, 1.0, 2.0)]

    sweeps["memory_interface"] = [
        _point(name, presets.with_memory_interface(base, name),
               benchmarks, density, starred=(name == "GDDR6"))
        for name in ("GDDR5", "GDDR6", "HBM2")]

    sweeps["coherence"] = [
        _point(protocol, presets.with_coherence(base, protocol),
               benchmarks, density, starred=(protocol == "software"))
        for protocol in ("software", "hardware")]

    sweeps["gpu_count"] = [
        _point(f"{chips} GPUs", presets.with_chip_count(base, chips),
               benchmarks, density, starred=(chips == 4))
        for chips in (2, 4)]

    sweeps["sectored_cache"] = [
        _point("conventional", base, benchmarks, density, starred=True),
        _point("sectored", presets.with_sectored_llc(base),
               benchmarks, density)]

    sweeps["page_size"] = [
        _point("4 KB pages", base, benchmarks, density, starred=True),
        _point("64 KB pages", presets.with_page_size(base, 65536),
               benchmarks, density)]

    return {"sweeps": sweeps, "benchmarks": list(benchmarks)}


def format_report(result: Dict[str, object]) -> str:
    lines = ["Figure 14: SAC sensitivity (hmean speedup vs memory-side; "
             "* = baseline)"]
    lines.append("benchmarks: " + ", ".join(result["benchmarks"]))
    for sweep, points in result["sweeps"].items():
        lines.append(f"{sweep}:")
        for point in points:
            lines.append(
                "  {label:16} sm-side={sm_side:5.2f}  sac={sac:5.2f}"
                .format(**point))
    return "\n".join(lines)
