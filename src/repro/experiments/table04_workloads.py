"""Table 4: simulated workloads and their sharing characteristics.

Reports, per benchmark, the spec's published values (CTAs, footprint,
truly and falsely shared MB) next to the values *measured* from the
generated trace (whole-trace sharing classification, scaled back to
paper-scale MB) — validating that the synthetic generator reproduces
the published sharing profile.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..analysis.working_set import (
    SHARING_FALSE,
    SHARING_TRUE,
    classify_lines,
    _flatten_trace,
)
from ..arch.config import SystemConfig
from ..arch.presets import baseline
from ..analysis.tables import format_table
from ..sim.run import DEFAULT_SCALE, scaled_config
from ..workloads.generator import TraceGenerator
from ..workloads.suite import SUITE
from .common import trace_density

MB = 1024 * 1024


def run_experiment(config: Optional[SystemConfig] = None,
                   fast: bool = False) -> Dict[str, object]:
    base = config or baseline()
    run_config = scaled_config(base, DEFAULT_SCALE)
    density = trace_density(fast)
    rows = []
    for spec in SUITE:
        generator = TraceGenerator(
            spec, num_chips=run_config.num_chips,
            clusters_per_chip=run_config.chip.num_clusters,
            line_size=run_config.line_size,
            page_size=run_config.page_size,
            accesses_per_epoch_per_chip=density,
            scale=DEFAULT_SCALE)
        chips, addrs, _times = _flatten_trace(generator.kernels())
        classes = classify_lines(chips, addrs, run_config.line_size,
                                 run_config.page_size)
        line_mb = run_config.line_size / DEFAULT_SCALE / MB
        measured_true = sum(
            1 for c in classes.values() if c == SHARING_TRUE) * line_mb
        measured_false = sum(
            1 for c in classes.values() if c == SHARING_FALSE) * line_mb
        measured_total = len(classes) * line_mb
        rows.append({
            "benchmark": spec.name,
            "suite": spec.suite,
            "ctas": spec.num_ctas,
            "footprint_mb": spec.footprint_mb,
            "true_mb_paper": spec.true_shared_mb,
            "false_mb_paper": spec.false_shared_mb,
            "touched_mb_measured": measured_total,
            "true_mb_measured": measured_true,
            "false_mb_measured": measured_false,
            "preference": spec.preference,
        })
    return {"rows": rows}


def format_report(result: Dict[str, object]) -> str:
    headers = ["benchmark", "suite", "CTAs", "footprint",
               "true(paper)", "true(meas)", "false(paper)", "false(meas)",
               "preference"]
    rows = [[r["benchmark"], r["suite"], r["ctas"],
             f"{r['footprint_mb']:.0f}",
             f"{r['true_mb_paper']:.0f}", f"{r['true_mb_measured']:.1f}",
             f"{r['false_mb_paper']:.0f}", f"{r['false_mb_measured']:.1f}",
             r["preference"]]
            for r in result["rows"]]
    return ("Table 4: workloads (paper vs measured sharing, MB)\n"
            + format_table(headers, rows))
