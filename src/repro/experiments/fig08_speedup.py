"""Figure 8: speedup of every LLC organization relative to memory-side.

Also produces the paper's headline aggregates (Section 5.1): SAC's
harmonic-mean speedup over memory-side, SM-side, Static and Dynamic,
for the SP group, the MP group and overall.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..analysis.charts import bar_chart
from ..analysis.runner import speedups_vs_baseline
from ..analysis.tables import format_table
from ..arch.config import SystemConfig
from ..sim.stats import harmonic_mean
from ..workloads.suite import SUITE
from .common import ALL_ORGANIZATIONS, group_names, run_suite


def run_experiment(config: Optional[SystemConfig] = None,
                   scale: Optional[float] = None,
                   fast: bool = False) -> Dict[str, object]:
    """Run the 16x5 matrix and compute speedups + aggregates."""
    kwargs = {} if scale is None else {"scale": scale}
    results = run_suite(ALL_ORGANIZATIONS, config=config, fast=fast, **kwargs)
    names = [b.name for b in SUITE]
    speedups = speedups_vs_baseline(results, names, ALL_ORGANIZATIONS)
    groups = group_names()
    aggregates: Dict[str, Dict[str, float]] = {}
    for group, members in groups.items():
        aggregates[group] = {
            org: harmonic_mean([speedups[(b, org)] for b in members])
            for org in ALL_ORGANIZATIONS}
    sac = aggregates["all"]["sac"]
    headline = {
        "sac_vs_memory_side": sac / aggregates["all"]["memory-side"] - 1.0,
        "sac_vs_sm_side": sac / aggregates["all"]["sm-side"] - 1.0,
        "sac_vs_static": sac / aggregates["all"]["static"] - 1.0,
        "sac_vs_dynamic": sac / aggregates["all"]["dynamic"] - 1.0,
        "sac_vs_memory_side_max": max(
            speedups[(b, "sac")] / speedups[(b, "memory-side")] - 1.0
            for b in names),
        "sac_vs_sm_side_max": max(
            speedups[(b, "sac")] / speedups[(b, "sm-side")] - 1.0
            for b in names),
    }
    return {"speedups": speedups, "aggregates": aggregates,
            "headline": headline, "benchmarks": names}


def format_report(result: Dict[str, object]) -> str:
    speedups = result["speedups"]
    rows = []
    for bench in result["benchmarks"]:
        rows.append([bench] + [speedups[(bench, org)]
                               for org in ALL_ORGANIZATIONS])
    for group, values in result["aggregates"].items():
        rows.append([f"hmean({group})"] + [values[org]
                                           for org in ALL_ORGANIZATIONS])
    table = format_table(["benchmark"] + list(ALL_ORGANIZATIONS), rows)
    headline = result["headline"]
    summary = (
        "SAC vs memory-side: {:+.0%} (max {:+.0%}); vs SM-side: {:+.0%} "
        "(max {:+.0%}); vs static: {:+.0%}; vs dynamic: {:+.0%}"
        .format(headline["sac_vs_memory_side"],
                headline["sac_vs_memory_side_max"],
                headline["sac_vs_sm_side"],
                headline["sac_vs_sm_side_max"],
                headline["sac_vs_static"],
                headline["sac_vs_dynamic"]))
    chart = bar_chart(
        {bench: speedups[(bench, "sac")] for bench in result["benchmarks"]},
        reference=1.0)
    return ("Figure 8: speedup over the memory-side LLC\n"
            + table + "\n" + summary
            + "\n\nSAC speedup per benchmark (| = memory-side baseline):\n"
            + chart)
