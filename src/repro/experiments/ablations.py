"""Ablations of SAC's design choices (beyond the paper's figures).

Three ablations quantify what each SAC component contributes:

* **no-CRD** — the EAB model receives the *measured memory-side* hit
  rate in place of the CRD's SM-side estimate; without the CRD, the
  model cannot see the replication-induced miss-rate increase and
  mispredicts the MP benchmarks.
* **no-LSU** — both LSU terms are pinned to 1, removing the slice-
  uniformity signal.
* **free-reconfig** — reconfiguration (drain + flush) is free; the gap
  to real SAC is the reconfiguration overhead the paper models.

An **oracle** selector (per-benchmark best of memory-side/SM-side)
bounds what any profiling-based policy could achieve.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..analysis.runner import run
from ..arch.config import SystemConfig
from ..arch.presets import baseline
from ..core.sac import SharingAwareCaching
from ..sim.run import DEFAULT_SCALE, scaled_config, simulate
from ..sim.stats import harmonic_mean
from ..workloads.suite import SUITE, get
from .common import trace_density

DEFAULT_BENCHMARKS = tuple(b.name for b in SUITE)

VARIANTS = ("sac", "sac-no-crd", "sac-no-lsu", "sac-free-reconfig")


def _variant_kwargs(variant: str) -> Dict[str, object]:
    if variant == "sac":
        return {}
    if variant == "sac-no-crd":
        return {"use_crd": False}
    if variant == "sac-no-lsu":
        return {"use_lsu": False}
    if variant == "sac-free-reconfig":
        return {"zero_reconfig_cost": True}
    raise ValueError(f"unknown SAC variant {variant!r}")


def run_experiment(config: Optional[SystemConfig] = None,
                   benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
                   fast: bool = False) -> Dict[str, object]:
    base = config or baseline()
    density = trace_density(fast)
    run_config = scaled_config(base, DEFAULT_SCALE)
    per_bench: Dict[str, Dict[str, float]] = {}
    for name in benchmarks:
        spec = get(name)
        mem = run(spec, "memory-side", config=base,
                  accesses_per_epoch=density)
        sm = run(spec, "sm-side", config=base, accesses_per_epoch=density)
        row = {"oracle": max(mem.cycles / mem.cycles,
                             mem.cycles / sm.cycles)}
        for variant in VARIANTS:
            org = SharingAwareCaching(run_config,
                                      **_variant_kwargs(variant))
            stats = simulate(spec, org, config=base,
                             accesses_per_epoch=density)
            row[variant] = mem.cycles / stats.cycles
        per_bench[name] = row
    columns = VARIANTS + ("oracle",)
    aggregate = {column: harmonic_mean([per_bench[b][column]
                                        for b in benchmarks])
                 for column in columns}
    return {"per_benchmark": per_bench, "aggregate": aggregate}


def format_report(result: Dict[str, object]) -> str:
    lines = ["SAC ablations (speedup vs memory-side)"]
    columns = VARIANTS + ("oracle",)
    header = "  {:8}".format("bench") + "".join(
        f"{c:>18}" for c in columns)
    lines.append(header)
    for bench, row in result["per_benchmark"].items():
        lines.append("  {:8}".format(bench) + "".join(
            f"{row[c]:18.2f}" for c in columns))
    lines.append("  {:8}".format("hmean") + "".join(
        f"{result['aggregate'][c]:18.2f}" for c in columns))
    return "\n".join(lines)
