"""Figure 13: input-set sensitivity.

The paper scales input sets from x8 to /4 for the SM-side preferred
benchmarks and from x4 to /32 for the memory-side preferred ones, then
reports SM-side and SAC speedups over the memory-side LLC.  For
benchmarks whose input cannot be changed (RN, AN, SN, BT) it scales the
LLC capacity instead (a larger LLC is equivalent to a smaller input).

Shape targets: SAC tracks the winner at every input size — it reverts to
memory-side for the largest SP inputs (the replicated shared set starts
thrashing) and switches to SM-side for the smallest MP inputs (the
shared set becomes small enough to replicate).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.runner import run
from ..arch.config import SystemConfig
from ..arch.presets import baseline, with_llc_capacity_scale
from ..workloads.suite import get
from .common import trace_density

#: Input scale factors (paper: SP from x8 down to /4, MP from x4 to /32).
SP_FACTORS: Tuple[float, ...] = (8.0, 2.0, 1.0, 0.25)
MP_FACTORS: Tuple[float, ...] = (4.0, 1.0, 0.125, 1.0 / 32.0)

#: Benchmarks whose input cannot change; the LLC is scaled by 1/factor
#: instead, which moves the same decision boundary.
LLC_SCALED: Tuple[str, ...] = ("RN", "AN", "SN", "BT")

DEFAULT_SP: Tuple[str, ...] = ("RN", "CFD")
DEFAULT_MP: Tuple[str, ...] = ("SRAD", "NN")


def run_experiment(config: Optional[SystemConfig] = None,
                   sp_benchmarks: Sequence[str] = DEFAULT_SP,
                   mp_benchmarks: Sequence[str] = DEFAULT_MP,
                   fast: bool = False) -> Dict[str, object]:
    base = config or baseline()
    density = trace_density(fast)
    series: Dict[str, List[Dict[str, object]]] = {}
    plan = ([(name, SP_FACTORS) for name in sp_benchmarks]
            + [(name, MP_FACTORS) for name in mp_benchmarks])
    for name, factors in plan:
        spec = get(name)
        points = []
        for factor in factors:
            if name in LLC_SCALED:
                run_spec = spec
                run_config = with_llc_capacity_scale(base, 1.0 / factor)
            else:
                run_spec = spec.scaled_input(factor) if factor != 1.0 else spec
                run_config = base
            results = {org: run(run_spec, org, config=run_config,
                                accesses_per_epoch=density)
                       for org in ("memory-side", "sm-side", "sac")}
            mem = results["memory-side"].cycles
            points.append({
                "factor": factor,
                "sm_side_speedup": mem / results["sm-side"].cycles,
                "sac_speedup": mem / results["sac"].cycles,
            })
        series[name] = points
    return {"series": series, "sp": list(sp_benchmarks),
            "mp": list(mp_benchmarks)}


def format_report(result: Dict[str, object]) -> str:
    lines = ["Figure 13: input-set sensitivity (speedup vs memory-side)"]
    for bench, points in result["series"].items():
        group = "SP" if bench in result["sp"] else "MP"
        lines.append(f"{bench} ({group}):")
        for p in points:
            factor = p["factor"]
            label = f"x{factor:g}" if factor >= 1 else f"/{1 / factor:g}"
            lines.append(
                f"  input {label:>5}: sm-side={p['sm_side_speedup']:5.2f}  "
                f"sac={p['sac_speedup']:5.2f}")
    return "\n".join(lines)
