"""Figure 10: effective LLC bandwidth breakdown by response origin.

For each benchmark and organization, the LLC responses per cycle are
split by where the data came from — the local LLC, a remote LLC, the
local memory partition or a remote memory partition — and normalized to
the memory-side total.

Shape targets: for SP benchmarks, SAC trades remote-LLC responses for
local-LLC responses and raises the total; for MP benchmarks, SAC keeps
the memory-side profile (local LLC / local memory dominated).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..arch.config import SystemConfig
from ..sim.stats import ORIGINS
from ..workloads.suite import SUITE
from .common import ALL_ORGANIZATIONS, run_suite


def run_experiment(config: Optional[SystemConfig] = None,
                   fast: bool = False) -> Dict[str, object]:
    results = run_suite(ALL_ORGANIZATIONS, config=config, fast=fast)
    breakdown: Dict[str, Dict[str, Dict[str, float]]] = {}
    for bench in (b.name for b in SUITE):
        reference = results[(bench, "memory-side")].effective_llc_bandwidth
        breakdown[bench] = {}
        for org in ALL_ORGANIZATIONS:
            series = results[(bench, org)].bandwidth_breakdown()
            breakdown[bench][org] = {
                origin: (series[origin] / reference if reference else 0.0)
                for origin in ORIGINS}
    return {"breakdown": breakdown}


def format_report(result: Dict[str, object]) -> str:
    lines = ["Figure 10: normalized effective LLC bandwidth breakdown "
             "(responses/cycle vs memory-side total)"]
    for bench, orgs in result["breakdown"].items():
        lines.append(f"{bench}:")
        for org, series in orgs.items():
            total = sum(series.values())
            parts = " ".join(f"{origin}={value:.2f}"
                             for origin, value in series.items())
            lines.append(f"  {org:12} total={total:.2f}  {parts}")
    return "\n".join(lines)
