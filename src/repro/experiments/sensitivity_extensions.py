"""Extension studies the paper mentions but omits for space.

* **Theta sensitivity** (paper Section 3.5: "sensitivity analysis
  omitted due to space constraints") — sweeps the EAB comparison
  threshold and reports SAC's harmonic-mean speedup.  Too small a theta
  risks flipping borderline kernels to SM-side and paying coherence/
  reconfiguration costs for nothing; too large a theta forfeits real
  SM-side wins.
* **Profiling-window sensitivity** (paper Section 3.2: "2K cycles ...
  is adequate") — sweeps the window length.  Too short starves the CRD
  of samples; too long burns kernel time in the memory-side
  configuration on SM-side-preferred kernels.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from ..arch.config import SystemConfig
from ..arch.presets import baseline
from ..core.sac import SharingAwareCaching
from ..sim.run import DEFAULT_SCALE, scaled_config, simulate
from ..sim.stats import harmonic_mean
from ..analysis.runner import run
from ..workloads.suite import get
from .common import trace_density

DEFAULT_BENCHMARKS = ("RN", "CFD", "BFS", "SRAD", "NN")

THETA_SWEEP = (0.0, 0.05, 0.08, 0.15, 0.30, 1.0)
WINDOW_SWEEP = (125, 250, 500, 1000, 2000)


def _sac_speedups(config: SystemConfig, sac_overrides: Dict[str, object],
                  benchmarks: Sequence[str], density: int) -> float:
    base_scaled = scaled_config(config, DEFAULT_SCALE)
    sac_cfg = dataclasses.replace(base_scaled.sac, **sac_overrides)
    run_config = base_scaled.with_updates(sac=sac_cfg)
    speedups: List[float] = []
    for name in benchmarks:
        spec = get(name)
        mem = run(spec, "memory-side", config=config,
                  accesses_per_epoch=density)
        org = SharingAwareCaching(run_config)
        stats = simulate(spec, org, config=config,
                         accesses_per_epoch=density)
        speedups.append(mem.cycles / stats.cycles)
    return harmonic_mean(speedups)


def run_experiment(config: Optional[SystemConfig] = None,
                   benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
                   fast: bool = False) -> Dict[str, object]:
    base = config or baseline()
    density = trace_density(fast)
    theta_points = [
        {"theta": theta,
         "sac": _sac_speedups(base, {"theta": theta}, benchmarks, density)}
        for theta in THETA_SWEEP]
    window_points = [
        {"window_cycles": window,
         "sac": _sac_speedups(base, {"profile_window_cycles": window},
                              benchmarks, density)}
        for window in WINDOW_SWEEP]
    return {"theta": theta_points, "window": window_points,
            "benchmarks": list(benchmarks)}


def format_report(result: Dict[str, object]) -> str:
    lines = ["Extension: theta and profiling-window sensitivity "
             "(SAC hmean speedup vs memory-side)"]
    lines.append("benchmarks: " + ", ".join(result["benchmarks"]))
    lines.append("theta sweep:")
    for point in result["theta"]:
        lines.append(f"  theta={point['theta']:<5g} sac={point['sac']:5.2f}")
    lines.append("profiling-window sweep:")
    for point in result["window"]:
        lines.append(f"  window={point['window_cycles']:<5} "
                     f"sac={point['sac']:5.2f}")
    return "\n".join(lines)
