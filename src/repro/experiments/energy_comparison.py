"""Extension: data-movement energy of the LLC organizations.

The paper evaluates performance; this extension estimates the
data-movement energy of each organization using the first-order model
in :mod:`repro.analysis.energy`.  The interesting shape: performance
and energy winners need not coincide — an SM-side LLC halves the
(expensive) inter-chip traffic but raises the miss rate and therefore
DRAM energy, while finishing earlier cuts the static term.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..analysis.energy import estimate_energy
from ..analysis.runner import run
from ..arch.config import SystemConfig
from ..workloads.suite import get
from .common import ALL_ORGANIZATIONS, trace_density

DEFAULT_BENCHMARKS = ("RN", "CFD", "SRAD", "NN")


def run_experiment(config: Optional[SystemConfig] = None,
                   benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
                   fast: bool = False) -> Dict[str, object]:
    density = trace_density(fast)
    rows: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in benchmarks:
        spec = get(name)
        baseline_stats = run(spec, "memory-side", config=config,
                             accesses_per_epoch=density)
        baseline_energy = estimate_energy(baseline_stats).total
        rows[name] = {}
        for org in ALL_ORGANIZATIONS:
            stats = run(spec, org, config=config,
                        accesses_per_epoch=density)
            estimate = estimate_energy(stats)
            rows[name][org] = {
                "energy_ratio": estimate.total / baseline_energy,
                "speedup": baseline_stats.cycles / stats.cycles,
                "inter_chip_share": estimate.inter_chip / estimate.total,
                "dram_share": estimate.dram / estimate.total,
            }
    return {"rows": rows, "benchmarks": list(benchmarks)}


def format_report(result: Dict[str, object]) -> str:
    lines = ["Extension: data-movement energy vs performance "
             "(ratios over memory-side)"]
    lines.append(f"  {'bench':6} {'org':12} {'energy':>7} {'speedup':>8} "
                 f"{'ring%':>6} {'dram%':>6}")
    for bench, orgs in result["rows"].items():
        for org, row in orgs.items():
            lines.append(
                f"  {bench:6} {org:12} {row['energy_ratio']:7.2f} "
                f"{row['speedup']:8.2f} {row['inter_chip_share']:6.1%} "
                f"{row['dram_share']:6.1%}")
    return "\n".join(lines)
