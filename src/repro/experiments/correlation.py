"""Section 5.2: speedup correlates with effective LLC bandwidth.

The paper's Figure 10 discussion claims that "the performance speedup
obtained through SAC correlates strongly with the effective LLC
bandwidth" (footnote 2 adds that the latency correlation is weaker,
because latency is only exposed when bandwidth is insufficient).

This experiment quantifies that claim over the 16x5 benchmark matrix:
for every (benchmark, organization) pair it collects the speedup over
memory-side and the *LLC-hit* bandwidth ratio (hits per cycle) over
memory-side, and reports the Pearson correlation.

(The total response rate would be tautological here: every access yields
exactly one response in the engine, so total responses/cycle is the
inverse of the runtime by construction.  Hit bandwidth is the component
that genuinely differs across organizations — it is what the EAB model's
``B_LLC_hit`` term captures.)
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from ..arch.config import SystemConfig
from ..workloads.suite import SUITE
from .common import ALL_ORGANIZATIONS, run_suite


def pearson(xs: List[float], ys: List[float]) -> float:
    """Pearson correlation coefficient."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need two equal-length samples of size >= 2")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        raise ValueError("a sample has zero variance")
    return cov / math.sqrt(var_x * var_y)


def run_experiment(config: Optional[SystemConfig] = None,
                   fast: bool = False) -> Dict[str, object]:
    results = run_suite(ALL_ORGANIZATIONS, config=config, fast=fast)
    points: List[Tuple[str, str, float, float]] = []
    for spec in SUITE:
        mem = results[(spec.name, "memory-side")]
        for org in ALL_ORGANIZATIONS:
            if org == "memory-side":
                continue
            stats = results[(spec.name, org)]
            speedup = mem.cycles / stats.cycles
            hit_bw = stats.llc_hits / stats.cycles
            mem_hit_bw = mem.llc_hits / mem.cycles
            bandwidth_ratio = hit_bw / mem_hit_bw if mem_hit_bw else 0.0
            points.append((spec.name, org, speedup, bandwidth_ratio))
    correlation = pearson([p[2] for p in points], [p[3] for p in points])
    return {"points": points, "correlation": correlation}


def format_report(result: Dict[str, object]) -> str:
    lines = ["Section 5.2: speedup vs effective LLC bandwidth "
             f"(Pearson r = {result['correlation']:.3f} over "
             f"{len(result['points'])} points)"]
    worst = sorted(result["points"],
                   key=lambda p: abs(p[2] - p[3]), reverse=True)[:5]
    lines.append("  largest divergences (bench, org, speedup, bw-ratio):")
    for bench, org, speedup, ratio in worst:
        lines.append(f"    {bench:6} {org:12} {speedup:5.2f} {ratio:5.2f}")
    return "\n".join(lines)
