"""Figure 1: motivation — performance, LLC miss rate and effective LLC
bandwidth per benchmark group.

The paper groups benchmarks into SM-side preferred (SP) and memory-side
preferred (MP) and reports, for each of the five organizations:

* (a) harmonic-mean speedup over the memory-side LLC,
* (b) mean LLC miss rate,
* (c) mean effective LLC bandwidth (normalized to memory-side).

Shape targets: SP prefers SM-side by a large margin, MP prefers
memory-side; the SM-side miss rate is uniformly higher; SAC tracks the
per-group winner in both performance and effective bandwidth.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..analysis.runner import speedups_vs_baseline
from ..analysis.tables import format_series
from ..arch.config import SystemConfig
from ..sim.stats import harmonic_mean
from .common import ALL_ORGANIZATIONS, group_names, run_suite


def run_experiment(config: Optional[SystemConfig] = None,
                   fast: bool = False) -> Dict[str, object]:
    results = run_suite(ALL_ORGANIZATIONS, config=config, fast=fast)
    groups = group_names()
    speedups = speedups_vs_baseline(results, groups["all"],
                                    ALL_ORGANIZATIONS)
    performance: Dict[str, Dict[str, float]] = {}
    miss_rate: Dict[str, Dict[str, float]] = {}
    bandwidth: Dict[str, Dict[str, float]] = {}
    for group in ("SP", "MP", "all"):
        members = groups[group]
        performance[group] = {
            org: harmonic_mean([speedups[(b, org)] for b in members])
            for org in ALL_ORGANIZATIONS}
        miss_rate[group] = {
            org: sum(results[(b, org)].llc_miss_rate for b in members)
            / len(members)
            for org in ALL_ORGANIZATIONS}
        bandwidth[group] = {}
        for org in ALL_ORGANIZATIONS:
            normalized = [
                results[(b, org)].effective_llc_bandwidth
                / results[(b, "memory-side")].effective_llc_bandwidth
                for b in members]
            bandwidth[group][org] = sum(normalized) / len(normalized)
    return {"performance": performance, "miss_rate": miss_rate,
            "bandwidth": bandwidth}


def format_report(result: Dict[str, object]) -> str:
    parts = [
        format_series("Figure 1a: hmean speedup vs memory-side (by group)",
                      result["performance"]),
        format_series("Figure 1b: mean LLC miss rate (by group)",
                      result["miss_rate"]),
        format_series("Figure 1c: mean effective LLC bandwidth, "
                      "normalized to memory-side (by group)",
                      result["bandwidth"]),
    ]
    return "\n".join(parts)
