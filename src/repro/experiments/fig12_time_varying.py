"""Figure 12: BFS time-varying behaviour.

BFS alternates a memory-side-preferred kernel (K1) with an SM-side-
preferred kernel (K2).  The figure reports, per kernel launch, the
performance of SM-side and SAC relative to memory-side.

Shape targets: SM-side loses on K1 launches and wins on K2 launches; SAC
picks memory-side for K1 and SM-side for K2 and therefore tracks the
per-kernel winner — which is how SAC ends up *beating* the static
SM-side configuration on BFS overall (the one SP benchmark where it
does).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..analysis.runner import run
from ..arch.config import SystemConfig
from ..workloads.suite import get
from .common import trace_density


def run_experiment(config: Optional[SystemConfig] = None,
                   fast: bool = False) -> Dict[str, object]:
    spec = get("BFS")
    density = trace_density(fast)
    results = {org: run(spec, org, config=config, accesses_per_epoch=density)
               for org in ("memory-side", "sm-side", "sac")}
    launches: List[Dict[str, object]] = []
    mem_kernels = results["memory-side"].kernels
    for index, kernel in enumerate(mem_kernels):
        sm = results["sm-side"].kernels[index]
        sac = results["sac"].kernels[index]
        launches.append({
            "kernel": kernel.name,
            "sm_side_speedup": kernel.cycles / sm.cycles,
            "sac_speedup": kernel.cycles / sac.cycles,
            "sac_mode": sac.organization,
        })
    overall = {
        "sm_side": results["memory-side"].cycles / results["sm-side"].cycles,
        "sac": results["memory-side"].cycles / results["sac"].cycles,
    }
    return {"launches": launches, "overall": overall}


def format_report(result: Dict[str, object]) -> str:
    lines = ["Figure 12: BFS per-kernel speedup vs memory-side"]
    for launch in result["launches"]:
        lines.append(
            "  {kernel:12} sm-side={sm_side_speedup:5.2f}  "
            "sac={sac_speedup:5.2f}  sac-mode={sac_mode}".format(**launch))
    overall = result["overall"]
    lines.append("  overall: sm-side={sm_side:.2f}  sac={sac:.2f}"
                 .format(**overall))
    return "\n".join(lines)
