"""Related-work comparison: beyond-LLC vs ahead-of-LLC optimization.

The paper's Section 6 argues that page migration (and other memory-side
data-management techniques) optimize bandwidth *beyond* the LLC and
therefore cannot capture SAC's benefit, which comes from maximizing the
effective bandwidth *ahead of* the LLC.

This experiment runs a representative benchmark subset under:

* the memory-side baseline,
* memory-side + dominant-accessor page migration (Griffin-style),
* the LADM-style Dynamic LLC with cache-remote-once insertion,
* SAC,

and reports speedups over the plain baseline.  Expected shape: migration
barely moves sharing-dominated workloads (shared pages have no dominant
accessor, and first-touch already places private pages correctly); LADM
captures part of the SM-side benefit on the SP benchmarks but cannot
reconfigure the whole LLC; SAC captures the full benefit.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..analysis.runner import run
from ..arch.config import SystemConfig
from ..arch.presets import baseline
from ..sim.engine import EngineParams
from ..sim.run import simulate
from ..sim.stats import harmonic_mean
from ..workloads.suite import get
from .common import trace_density

DEFAULT_BENCHMARKS = ("RN", "CFD", "BT", "SRAD", "NN")


def run_experiment(config: Optional[SystemConfig] = None,
                   benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
                   fast: bool = False) -> Dict[str, object]:
    base = config or baseline()
    density = trace_density(fast)
    rows: Dict[str, Dict[str, float]] = {}
    for name in benchmarks:
        spec = get(name)
        mem = run(spec, "memory-side", config=base,
                  accesses_per_epoch=density)
        migrated = simulate(spec, "memory-side", config=base,
                            accesses_per_epoch=density,
                            params=EngineParams(page_migration=True))
        ladm = run(spec, "ladm", config=base, accesses_per_epoch=density)
        sac = run(spec, "sac", config=base, accesses_per_epoch=density)
        rows[name] = {
            "migration": mem.cycles / migrated.cycles,
            "ladm": mem.cycles / ladm.cycles,
            "sac": mem.cycles / sac.cycles,
        }
    aggregate = {
        column: harmonic_mean([rows[b][column] for b in rows])
        for column in ("migration", "ladm", "sac")}
    return {"rows": rows, "aggregate": aggregate,
            "benchmarks": list(benchmarks)}


def format_report(result: Dict[str, object]) -> str:
    lines = ["Related work: page migration / LADM vs SAC, "
             "speedup over memory-side"]
    lines.append(f"  {'bench':8} {'migration':>10} {'ladm':>8} {'sac':>8}")
    for bench, row in result["rows"].items():
        lines.append(f"  {bench:8} {row['migration']:10.2f} "
                     f"{row['ladm']:8.2f} {row['sac']:8.2f}")
    agg = result["aggregate"]
    lines.append(f"  {'hmean':8} {agg['migration']:10.2f} "
                 f"{agg['ladm']:8.2f} {agg['sac']:8.2f}")
    return "\n".join(lines)
