"""Figure 9: fraction of the LLC caching local versus remote data.

Shape targets: memory-side caches only local data; Static sits near
50/50; SAC allocates a large remote fraction for the SP benchmarks while
allocating (almost) only local data for the MP benchmarks.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..analysis.tables import format_table
from ..arch.config import SystemConfig
from ..workloads.suite import SUITE
from .common import ALL_ORGANIZATIONS, run_suite


def run_experiment(config: Optional[SystemConfig] = None,
                   fast: bool = False) -> Dict[str, object]:
    results = run_suite(ALL_ORGANIZATIONS, config=config, fast=fast)
    fractions: Dict[str, Dict[str, float]] = {}
    for bench in (b.name for b in SUITE):
        fractions[bench] = {
            org: results[(bench, org)].llc_remote_fraction
            for org in ALL_ORGANIZATIONS}
    return {"remote_fraction": fractions}


def format_report(result: Dict[str, object]) -> str:
    fractions = result["remote_fraction"]
    rows = [[bench] + [fractions[bench][org] for org in ALL_ORGANIZATIONS]
            for bench in fractions]
    return ("Figure 9: fraction of LLC lines caching remote data\n"
            + format_table(["benchmark"] + list(ALL_ORGANIZATIONS), rows))
