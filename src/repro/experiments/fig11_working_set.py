"""Figure 11: working-set size across time windows under the SM-side LLC.

For every benchmark, the mean per-window working set (true-shared,
false-shared, non-shared) is computed for windows of 1K, 10K and 100K
cycles, with truly shared lines counted once per accessing chip (that is
what an SM-side LLC replicates).  The reference line is the system's
total LLC capacity.

Shape targets: the (replicated) truly shared working set stays below the
LLC capacity for the SP benchmarks and exceeds it over large windows for
the MP benchmarks.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..analysis.working_set import working_set_profile
from ..arch.config import SystemConfig
from ..arch.presets import baseline
from ..sim.run import DEFAULT_SCALE, scaled_config
from ..workloads.suite import SUITE
from .common import trace_density

MB = 1024 * 1024


def run_experiment(config: Optional[SystemConfig] = None,
                   window_cycles: Sequence[float] = (1_000, 10_000, 100_000),
                   fast: bool = False) -> Dict[str, object]:
    base = config or baseline()
    run_config = scaled_config(base, DEFAULT_SCALE)
    density = trace_density(fast)
    profiles: Dict[str, list] = {}
    for spec in SUITE:
        points = working_set_profile(
            spec, num_chips=run_config.num_chips,
            window_cycles=window_cycles,
            line_size=run_config.line_size,
            page_size=run_config.page_size,
            accesses_per_epoch=density,
            scale=DEFAULT_SCALE,
            clusters_per_chip=run_config.chip.num_clusters)
        # Rescale the measured bytes back to paper-scale MB.
        profiles[spec.name] = [
            {"window_cycles": p.window_cycles,
             "true_mb": p.true_shared_bytes / DEFAULT_SCALE / MB,
             "false_mb": p.false_shared_bytes / DEFAULT_SCALE / MB,
             "none_mb": p.non_shared_bytes / DEFAULT_SCALE / MB,
             "active_demand_mb": p.active_demand_bytes / DEFAULT_SCALE / MB}
            for p in points]
    return {"profiles": profiles,
            "llc_capacity_mb": base.total_llc_bytes / MB,
            "llc_per_chip_mb": base.chip.llc_capacity_bytes / MB}


def format_report(result: Dict[str, object]) -> str:
    lines = [f"Figure 11: working-set size by window "
             f"(system LLC = {result['llc_capacity_mb']:.0f} MB, "
             f"{result['llc_per_chip_mb']:.0f} MB/chip)"]
    for bench, points in result["profiles"].items():
        lines.append(f"{bench}:")
        for p in points:
            total = p["true_mb"] + p["false_mb"] + p["none_mb"]
            lines.append(
                "  window={:>7.0f}cyc  true={:6.1f}MB  false={:6.1f}MB  "
                "none={:6.1f}MB  total={:6.1f}MB  active/chip={:6.1f}MB"
                .format(p["window_cycles"], p["true_mb"], p["false_mb"],
                        p["none_mb"], total, p["active_demand_mb"]))
    return "\n".join(lines)
