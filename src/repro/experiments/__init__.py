"""Experiments: one module per paper table/figure.

Each module exposes ``run_experiment(...) -> dict`` and
``format_report(result) -> str``; the benchmark harness under
``benchmarks/`` drives them and prints the paper-shaped rows/series.
"""

from . import (
    ablations,
    correlation,
    energy_comparison,
    related_work,
    fig01_motivation,
    fig08_speedup,
    fig09_llc_allocation,
    fig10_bandwidth_breakdown,
    fig11_working_set,
    fig12_time_varying,
    fig13_input_sensitivity,
    fig14_sensitivity,
    sensitivity_extensions,
    table04_workloads,
)

#: Experiments by short name (used by ``python -m repro``).
REGISTRY = {
    "fig1": fig01_motivation,
    "fig8": fig08_speedup,
    "fig9": fig09_llc_allocation,
    "fig10": fig10_bandwidth_breakdown,
    "fig11": fig11_working_set,
    "fig12": fig12_time_varying,
    "fig13": fig13_input_sensitivity,
    "fig14": fig14_sensitivity,
    "table4": table04_workloads,
    "ablations": ablations,
    "related-work": related_work,
    "correlation": correlation,
    "energy": energy_comparison,
    "extensions": sensitivity_extensions,
}

__all__ = [
    "ablations",
    "related_work",
    "correlation",
    "energy_comparison",
    "fig01_motivation",
    "fig08_speedup",
    "fig09_llc_allocation",
    "fig10_bandwidth_breakdown",
    "fig11_working_set",
    "fig12_time_varying",
    "fig13_input_sensitivity",
    "fig14_sensitivity",
    "sensitivity_extensions",
    "table04_workloads",
    "REGISTRY",
]
