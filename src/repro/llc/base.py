"""LLC organization interface.

An :class:`LLCOrganization` decides, per request, which chip's LLC slices
are probed and in what order, which way-partition fills go to, and where
misses are serviced — i.e. it encodes the routing policies of Figure 6.
The engine walks the returned :class:`RoutePlan` stages and charges the
traversed NoC/ring/DRAM resources.

Organizations also expose lifecycle hooks so adaptive schemes (Dynamic
LLC, SAC) can observe epochs and kernels and reconfigure themselves.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sim.engine import EngineContext

#: Way-partition ids used by the Static and Dynamic organizations.
PARTITION_LOCAL = 0
PARTITION_REMOTE = 1

MEMORY_SIDE_MODE = "memory-side"
SM_SIDE_MODE = "sm-side"


@dataclass(frozen=True)
class LookupStage:
    """One LLC probe: which chip's slice array, under which partition."""

    chip: int
    partition: int = PARTITION_LOCAL
    allocate: bool = True


@dataclass(frozen=True)
class RoutePlan:
    """Ordered LLC probes for one request.

    ``stages`` holds one probe (memory-side, SM-side) or two (Static and
    Dynamic remote requests probe the requester's remote partition before
    the home chip's local partition).  A miss in every stage is serviced
    by the home chip's memory partition.
    """

    stages: Tuple[LookupStage, ...]

    def __post_init__(self) -> None:
        if not 1 <= len(self.stages) <= 2:
            raise ValueError("a route plan needs one or two stages")


class LLCOrganization(abc.ABC):
    """Base class for the five evaluated LLC organizations."""

    #: Display name used in reports (overridden per subclass).
    name: str = "llc"

    @property
    @abc.abstractmethod
    def mode(self) -> str:
        """Current behaviour: ``"memory-side"`` or ``"sm-side"``.

        Used by coherence (SM-side data needs LLC flushes / directory
        tracking) and by the Figure 9 local/remote classification.
        """

    @property
    def caches_remote_data(self) -> bool:
        """Whether any LLC slice may hold data homed on another chip."""
        return self.mode == SM_SIDE_MODE

    @abc.abstractmethod
    def plan(self, chip: int, home: int) -> RoutePlan:
        """Route a request from ``chip`` to a line homed on ``home``."""

    # -- Lifecycle hooks (default: no-ops) --------------------------------

    def attach(self, ctx: "EngineContext") -> None:
        """Called once when the engine is built."""

    def begin_kernel(self, ctx: "EngineContext", kernel_name: str) -> None:
        """Called at each kernel launch."""

    def end_kernel(self, ctx: "EngineContext") -> None:
        """Called when a kernel retires (before the coherence flush)."""

    def begin_epoch(self, ctx: "EngineContext", epoch_index: int) -> None:
        """Called before each epoch of the current kernel."""

    @property
    def profiling(self) -> bool:
        """Whether a profiling window is active (SAC only).

        When True, the engine runs only the profiling slice of the next
        epoch before calling :meth:`profile_boundary`.
        """
        return False

    def profile_boundary(self, ctx: "EngineContext") -> None:
        """Called when the profiling window ends (SAC decides here)."""

    def end_epoch(self, ctx: "EngineContext", epoch_index: int) -> None:
        """Called after each epoch's resources are settled."""

    def observe_access(self, ctx: "EngineContext", chip: int, addr: int,
                       home: int, hit_stage: Optional[int]) -> None:
        """Called per access (profiling hooks; default no-op)."""

    @property
    def observe_is_passive(self) -> bool:
        """True when :meth:`observe_access` is currently a no-op.

        The engine's batched epoch fast path skips the per-access
        ``observe_access`` callback entirely, so it may only run while
        this is True.  Organizations that override ``observe_access``
        but only act during certain windows (e.g. SAC while profiling)
        should override this to reflect the current state.
        """
        return type(self).observe_access is LLCOrganization.observe_access

    def flush_partitions(self) -> List[Tuple[Optional[int], int]]:
        """Partitions that software coherence must flush at kernel end.

        Returns ``(chip, partition)`` pairs; ``chip=None`` means every
        chip.  Memory-side organizations return nothing; SM-side returns
        every chip's whole cache (partition ``PARTITION_LOCAL`` — they do
        not partition); Static/Dynamic return the remote partitions.
        """
        return []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
