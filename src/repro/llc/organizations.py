"""The memory-side, SM-side, Static (L1.5) and Dynamic LLC organizations.

* :class:`MemorySideLLC` — every request is served by the home chip's LLC
  (the paper's baseline, Figure 3a).
* :class:`SMSideLLC` — every request is served by the requesting chip's
  LLC; misses travel to the home memory partition (Figure 3b).  The
  two-NoC implementation gives its inter-chip traffic a dedicated
  secondary network, which the engine models by exempting SM-side remote
  miss traffic from the primary crossbar's request budget.
* :class:`StaticLLC` — the L1.5 design (Arunkumar et al.): half the ways
  cache remote data on the requester side, half cache local data
  memory-side; remote requests probe the local remote-partition first.
* :class:`DynamicLLC` — Milic et al.'s runtime way partitioning between
  local and remote data, rebalanced every epoch to equalize the outgoing
  local memory bandwidth and the incoming inter-chip bandwidth.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from .base import (
    MEMORY_SIDE_MODE,
    PARTITION_LOCAL,
    PARTITION_REMOTE,
    SM_SIDE_MODE,
    LLCOrganization,
    LookupStage,
    RoutePlan,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.engine import EngineContext


def _plan_table(num_chips: int, build: Callable[[int, int], RoutePlan]
                ) -> Dict[Tuple[int, int], RoutePlan]:
    """Precompute the (chip, home) -> RoutePlan table."""
    table: Dict[Tuple[int, int], RoutePlan] = {}
    for chip in range(num_chips):
        for home in range(num_chips):
            table[(chip, home)] = build(chip, home)
    return table


class MemorySideLLC(LLCOrganization):
    """The baseline: LLC slices cache their local memory partition."""

    name = "memory-side"

    def __init__(self, num_chips: int) -> None:
        self._table = _plan_table(num_chips, self._build)

    @staticmethod
    def _build(chip: int, home: int) -> RoutePlan:
        return RoutePlan(stages=(LookupStage(chip=home), ))

    @property
    def mode(self) -> str:
        return MEMORY_SIDE_MODE

    def plan(self, chip: int, home: int) -> RoutePlan:
        return self._table[(chip, home)]


class SMSideLLC(LLCOrganization):
    """Two-NoC SM-side LLC: slices cache whatever the local SMs access."""

    name = "sm-side"

    #: The two-NoC implementation routes LLC<->memory and LLC<->link
    #: traffic on a dedicated secondary network (paper Section 2.1).
    dedicated_memory_network = True

    def __init__(self, num_chips: int) -> None:
        self._table = _plan_table(num_chips, self._build)

    @staticmethod
    def _build(chip: int, home: int) -> RoutePlan:
        return RoutePlan(stages=(LookupStage(chip=chip), ))

    @property
    def mode(self) -> str:
        return SM_SIDE_MODE

    def plan(self, chip: int, home: int) -> RoutePlan:
        return self._table[(chip, home)]

    def flush_partitions(self) -> List[Tuple[Optional[int], int]]:
        # Software coherence must flush the whole LLC at kernel end.
        return [(None, PARTITION_LOCAL)]


class StaticLLC(LLCOrganization):
    """The L1.5 static organization: fixed half-local / half-remote ways."""

    name = "static"

    def __init__(self, num_chips: int, remote_way_fraction: float = 0.5) -> None:
        if not 0.0 <= remote_way_fraction <= 1.0:
            raise ValueError("remote way fraction must be in [0, 1]")
        self.remote_way_fraction = remote_way_fraction
        self._table = _plan_table(num_chips, self._build)

    @staticmethod
    def _build(chip: int, home: int) -> RoutePlan:
        if chip == home:
            return RoutePlan(stages=(
                LookupStage(chip=chip, partition=PARTITION_LOCAL), ))
        return RoutePlan(stages=(
            LookupStage(chip=chip, partition=PARTITION_REMOTE),
            LookupStage(chip=home, partition=PARTITION_LOCAL)))

    @property
    def mode(self) -> str:
        # The local half behaves memory-side; the remote half caches
        # remote data like an SM-side cache.  For coherence purposes it
        # counts as caching remote data.
        return MEMORY_SIDE_MODE

    @property
    def caches_remote_data(self) -> bool:
        return self.remote_way_fraction > 0.0

    def attach(self, ctx: "EngineContext") -> None:
        ways = ctx.config.chip.llc_slice.associativity
        remote = round(ways * self.remote_way_fraction)
        remote = min(max(remote, 0), ways)
        ctx.set_llc_partitioning({PARTITION_LOCAL: ways - remote,
                                  PARTITION_REMOTE: remote})

    def plan(self, chip: int, home: int) -> RoutePlan:
        return self._table[(chip, home)]

    def flush_partitions(self) -> List[Tuple[Optional[int], int]]:
        if self.remote_way_fraction <= 0.0:
            return []
        return [(None, PARTITION_REMOTE)]


class DynamicLLC(LLCOrganization):
    """Milic et al.'s dynamic way partitioning between local and remote data.

    Starting half/half, every epoch the organization compares the local
    memory traffic against the incoming inter-chip traffic and moves one
    way toward whichever side is the bottleneck, within
    ``[min_ways, ways - min_ways]``.  The heuristic balances bandwidth
    *beyond* the LLC, which is exactly the behaviour the paper shows to be
    suboptimal (it can settle in a local optimum that under-allocates
    local data).

    The per-epoch repartition is applied in place on the vectorized tag
    store (``VectorCache.set_partition``), so the two-stage epochs stay
    on the staged kernel across reconfigurations: sets left over their
    new allotment are replayed exactly until they drain back under it.
    """

    name = "dynamic"

    def __init__(self, num_chips: int, min_local_ways: int = 6,
                 min_remote_ways: int = 1) -> None:
        if min_local_ways < 0 or min_remote_ways < 0:
            raise ValueError("way floors cannot be negative")
        self.min_local_ways = min_local_ways
        self.min_remote_ways = min_remote_ways
        self._table = _plan_table(num_chips, StaticLLC._build)
        self._remote_ways = 0
        self._total_ways = 0
        # Epoch traffic observed through the engine's counters.
        self._last_dram = 0
        self._last_inter = 0

    @property
    def mode(self) -> str:
        return MEMORY_SIDE_MODE

    @property
    def caches_remote_data(self) -> bool:
        return self._remote_ways > 0

    @property
    def remote_ways(self) -> int:
        return self._remote_ways

    def attach(self, ctx: "EngineContext") -> None:
        self._total_ways = ctx.config.chip.llc_slice.associativity
        self._remote_ways = self._total_ways // 2
        self._apply(ctx)
        self._last_dram = 0
        self._last_inter = 0

    def _apply(self, ctx: "EngineContext") -> None:
        ctx.set_llc_partitioning({
            PARTITION_LOCAL: self._total_ways - self._remote_ways,
            PARTITION_REMOTE: self._remote_ways})

    def plan(self, chip: int, home: int) -> RoutePlan:
        return self._table[(chip, home)]

    def end_epoch(self, ctx: "EngineContext", epoch_index: int) -> None:
        dram = ctx.stats.dram_bytes
        inter = ctx.stats.inter_chip_bytes
        dram_delta = dram - self._last_dram
        inter_delta = inter - self._last_inter
        self._last_dram = dram
        self._last_inter = inter
        # Normalize each traffic stream by its available bandwidth to find
        # the binding constraint, then grow the partition that relieves it:
        # more remote ways cut inter-chip traffic, more local ways cut
        # local memory traffic.
        dram_pressure = dram_delta / max(1e-9, ctx.total_dram_bw)
        inter_pressure = inter_delta / max(1e-9, ctx.total_inter_chip_bw)
        if inter_pressure > dram_pressure * 1.1:
            new_remote = min(self._total_ways - self.min_local_ways,
                             self._remote_ways + 1)
        elif dram_pressure > inter_pressure * 1.1:
            new_remote = max(self.min_remote_ways, self._remote_ways - 1)
        else:
            return
        if new_remote != self._remote_ways:
            self._remote_ways = new_remote
            self._apply(ctx)

    def flush_partitions(self) -> List[Tuple[Optional[int], int]]:
        if self._remote_ways <= 0:
            return []
        return [(None, PARTITION_REMOTE)]
