"""LLC organizations: memory-side, SM-side, Static (L1.5), Dynamic, SAC."""

from .base import (
    MEMORY_SIDE_MODE,
    PARTITION_LOCAL,
    PARTITION_REMOTE,
    SM_SIDE_MODE,
    LLCOrganization,
    LookupStage,
    RoutePlan,
)
from .ladm import LADMLLC, TouchFilter
from .organizations import DynamicLLC, MemorySideLLC, SMSideLLC, StaticLLC

__all__ = [
    "MEMORY_SIDE_MODE",
    "PARTITION_LOCAL",
    "PARTITION_REMOTE",
    "SM_SIDE_MODE",
    "LLCOrganization",
    "LookupStage",
    "RoutePlan",
    "DynamicLLC",
    "LADMLLC",
    "MemorySideLLC",
    "SMSideLLC",
    "StaticLLC",
    "TouchFilter",
]
