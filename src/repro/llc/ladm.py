"""LADM-style locality-aware LLC (related-work baseline).

LADM (Khairy et al., MICRO 2020) builds on the Dynamic LLC and adds a
compiler-assisted *cache-remote-once* insertion policy: remote data is
only installed into the requester-side remote partition when it is
expected to be reused, so falsely shared blocks that a chip touches once
do not waste remote-partition capacity.

Without a compiler, the classic hardware proxy for "will be reused" is a
second touch: the first access to a remote line bypasses the remote
partition (it is served by the home chip's LLC, exactly like a
memory-side access) and records the line in a small touch filter; a
second access within the filter's reach installs the line.  This module
implements that proxy on top of the Dynamic LLC's way partitioning.

The paper's position (Section 6) is that LADM is "in effect similar to
SM-side caching" for reused remote data, but — like the Dynamic LLC it
builds on — it cannot reconfigure the whole LLC, so SAC still wins on
workloads that fundamentally prefer one extreme.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, List, Optional, Tuple

from .base import (
    MEMORY_SIDE_MODE,
    PARTITION_REMOTE,
    LookupStage,
    RoutePlan,
)
from .organizations import DynamicLLC, StaticLLC

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.engine import EngineContext


class TouchFilter:
    """A small LRU set of recently first-touched remote lines."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("filter needs capacity")
        self.capacity = capacity
        self._seen: "OrderedDict[int, bool]" = OrderedDict()

    def touch(self, line: int) -> bool:
        """Record a touch; returns True if the line was touched before."""
        if line in self._seen:
            self._seen.move_to_end(line)
            return True
        if len(self._seen) >= self.capacity:
            self._seen.popitem(last=False)
        self._seen[line] = True
        return False

    def __len__(self) -> int:
        return len(self._seen)

    def clear(self) -> None:
        self._seen.clear()


class LADMLLC(DynamicLLC):
    """Dynamic LLC + cache-remote-once insertion (second-touch filter).

    Routing is the Static/Dynamic two-stage shape, but the remote-
    partition probe only *allocates* for lines that the requesting chip
    has touched before (per-chip touch filters).  The way partition
    still adapts with the Dynamic heuristic.
    """

    name = "ladm"

    def __init__(self, num_chips: int, min_local_ways: int = 6,
                 min_remote_ways: int = 1,
                 filter_capacity: int = 4096) -> None:
        super().__init__(num_chips, min_local_ways=min_local_ways,
                         min_remote_ways=min_remote_ways)
        self.num_chips = num_chips
        self._filters = [TouchFilter(filter_capacity)
                         for _ in range(num_chips)]
        self._line_shift: Optional[int] = None

    @property
    def caches_remote_data(self) -> bool:
        # LADM always reserves at least min_remote_ways for remote data.
        return True

    def attach(self, ctx: "EngineContext") -> None:
        super().attach(ctx)
        self._line_shift = ctx.line_size.bit_length() - 1

    def plan(self, chip: int, home: int) -> RoutePlan:
        # The base plan table is static; allocation is decided per access
        # in plan_for_addr (the engine calls plan(), so we override the
        # allocate flag by returning a fresh plan when needed).
        return super().plan(chip, home)

    def observe_access(self, ctx: "EngineContext", chip: int, addr: int,
                       home: int, hit_stage: Optional[int]) -> None:
        # Touch bookkeeping happens in the engine's routing via
        # remote_allocate(); nothing to do here.
        pass

    @property
    def observe_is_passive(self) -> bool:
        # observe_access is a no-op, but remote_allocate() still forces
        # the engine's per-access path (the touch filter is stateful).
        return True

    def remote_allocate(self, chip: int, addr: int) -> bool:
        """Whether this remote access may install into the L1.5 partition.

        First touch: record and bypass (cache-remote-once).  Second
        touch within the filter's reach: allocate.
        """
        shift = self._line_shift if self._line_shift is not None else 7
        return self._filters[chip].touch(addr >> shift)

    def begin_kernel(self, ctx: "EngineContext", kernel_name: str) -> None:
        # Kernel boundaries flush the remote partitions (software
        # coherence); reuse knowledge from the previous kernel is stale.
        for touch_filter in self._filters:
            touch_filter.clear()

    def flush_partitions(self) -> List[Tuple[Optional[int], int]]:
        return [(None, PARTITION_REMOTE)]
