"""Inter-chip ring network.

Chips are connected in a ring; each chip has ``links_per_chip``
bidirectional links split evenly between its two neighbours (3 links per
adjacent pair in the 4-chip baseline).  Traffic between non-adjacent
chips traverses intermediate hops and consumes bandwidth on every hop,
which is what makes inter-chip bandwidth the scarce resource that SAC
optimizes around.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..arch.config import InterChipConfig


@dataclass
class RingStats:
    """Cumulative inter-chip traffic counters."""

    messages: int = 0
    bytes_sent: int = 0
    hop_bytes: int = 0  # bytes x hops actually placed on links


class InterChipRing:
    """Bandwidth accounting for the inter-chip ring.

    Each directed adjacent pair ``(a, b)`` is one *segment* with
    ``pair_bw`` unidirectional bandwidth.  ``charge`` routes a message
    along the shorter ring direction (ties broken toward increasing chip
    id) and charges every traversed segment.
    """

    def __init__(self, config: InterChipConfig, num_chips: int) -> None:
        if num_chips < 1:
            raise ValueError("need at least one chip")
        self.config = config
        self.num_chips = num_chips
        self.stats = RingStats()
        self._pair_bw = config.pair_bw(num_chips)
        # Per-epoch byte charges per directed segment (src -> next).
        self._epoch_segment: Dict[Tuple[int, int], float] = {}

    def hops(self, src: int, dst: int) -> int:
        """Distance from ``src`` to ``dst`` (1 on a full mesh)."""
        if src == dst:
            return 0
        if self.config.topology == "fully-connected":
            return 1
        forward = (dst - src) % self.num_chips
        backward = (src - dst) % self.num_chips
        return min(forward, backward)

    def path(self, src: int, dst: int) -> List[Tuple[int, int]]:
        """Directed segments traversed from ``src`` to ``dst``."""
        if src == dst:
            return []
        if self.config.topology == "fully-connected":
            return [(src, dst)]
        forward = (dst - src) % self.num_chips
        backward = (src - dst) % self.num_chips
        step = 1 if forward <= backward else -1
        segments = []
        node = src
        while node != dst:
            nxt = (node + step) % self.num_chips
            segments.append((node, nxt))
            node = nxt
        return segments

    def charge(self, src: int, dst: int, num_bytes: float) -> None:
        """Charge a ``num_bytes`` message from chip ``src`` to chip ``dst``."""
        if src == dst:
            return
        self.stats.messages += 1
        self.stats.bytes_sent += int(num_bytes)
        for segment in self.path(src, dst):
            self._epoch_segment[segment] = \
                self._epoch_segment.get(segment, 0.0) + num_bytes
            self.stats.hop_bytes += int(num_bytes)

    def charge_bulk(self, src: int, dst: int, num_bytes: float,
                    messages: int) -> None:
        """Charge ``messages`` same-route messages totalling ``num_bytes``.

        Equivalent to ``messages`` individual :meth:`charge` calls whose
        byte counts sum to ``num_bytes`` (used by the engine's batched
        epoch fast path).
        """
        if src == dst or messages == 0:
            return
        self.stats.messages += messages
        self.stats.bytes_sent += int(num_bytes)
        for segment in self.path(src, dst):
            self._epoch_segment[segment] = \
                self._epoch_segment.get(segment, 0.0) + num_bytes
            self.stats.hop_bytes += int(num_bytes)

    def epoch_cycles(self) -> float:
        """Cycles to drain this epoch's traffic (bottleneck segment)."""
        if not self._epoch_segment:
            return 0.0
        if self._pair_bw == float("inf"):
            return 0.0
        return max(self._epoch_segment.values()) / self._pair_bw

    def epoch_bytes(self) -> float:
        return sum(self._epoch_segment.values())

    def segment_loads(self) -> Dict[Tuple[int, int], float]:
        return dict(self._epoch_segment)

    def end_epoch(self) -> None:
        self._epoch_segment.clear()

    def reset(self) -> None:
        self.stats = RingStats()
        self.end_epoch()
