"""Intra-chip concentrated hierarchical crossbar model.

The baseline NoC is a 38x22 crossbar: 32 SM-cluster ports plus 6
inter-chip link ports on the input side, 16 LLC-slice ports plus 6
inter-chip link ports on the output side (paper Section 2).  The engine
charges request/response bytes to ports; epoch service time is the demand
of the busiest port plus a bisection constraint.

Two logical networks are modelled (request and response), mirroring the
paper's "separate request and response networks"; each owns half the
bisection bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..arch.config import NoCConfig


@dataclass
class CrossbarStats:
    """Cumulative traffic counters for one chip's crossbar."""

    request_bytes: int = 0
    response_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return self.request_bytes + self.response_bytes


class Crossbar:
    """One chip's intra-chip NoC.

    Ports are addressed by kind:

    * SM input ports ``0..sm_ports-1``
    * LLC output ports ``0..llc_ports-1``
    * inter-chip ports ``0..inter_chip_ports-1`` (exist on both sides)
    """

    def __init__(self, config: NoCConfig, chip: int) -> None:
        self.config = config
        self.chip = chip
        self.stats = CrossbarStats()
        ports = config.llc_ports + config.inter_chip_ports
        # Per-epoch byte charges on output-side ports, request/response nets.
        self._epoch_req: List[float] = [0.0] * ports
        self._epoch_rsp: List[float] = [0.0] * ports
        self._epoch_req_total = 0.0
        self._epoch_rsp_total = 0.0

    # Output-side port index helpers.
    def llc_port(self, slice_index: int) -> int:
        if not 0 <= slice_index < self.config.llc_ports:
            raise IndexError(f"LLC port {slice_index} out of range")
        return slice_index

    def inter_chip_port(self, link_index: int) -> int:
        if not 0 <= link_index < self.config.inter_chip_ports:
            raise IndexError(f"inter-chip port {link_index} out of range")
        return self.config.llc_ports + link_index

    def charge_request(self, port: int, num_bytes: float) -> None:
        """Charge request-network bytes headed to output ``port``."""
        self._epoch_req[port] += num_bytes
        self._epoch_req_total += num_bytes
        self.stats.request_bytes += int(num_bytes)

    def charge_response(self, port: int, num_bytes: float) -> None:
        """Charge response-network bytes sourced from output-side ``port``."""
        self._epoch_rsp[port] += num_bytes
        self._epoch_rsp_total += num_bytes
        self.stats.response_bytes += int(num_bytes)

    def epoch_cycles(self) -> float:
        """Cycles to drain this epoch's traffic through this crossbar.

        The binding constraint is the busier of (a) the hottest port at
        its per-port bandwidth and (b) the whole net at the bisection
        bandwidth.  Request and response nets drain concurrently, so the
        result is the max of the two nets.
        """
        port_bw = self.config.port_bw_bytes_per_cycle
        # Each net owns half the bisection.
        net_bw = self.config.bisection_bw_bytes_per_cycle / 2
        req = max(max(self._epoch_req, default=0.0) / port_bw,
                  self._epoch_req_total / net_bw)
        rsp = max(max(self._epoch_rsp, default=0.0) / port_bw,
                  self._epoch_rsp_total / net_bw)
        return max(req, rsp)

    def epoch_bytes(self) -> float:
        return self._epoch_req_total + self._epoch_rsp_total

    def port_loads(self) -> Dict[str, List[float]]:
        """This epoch's per-port loads (for diagnostics)."""
        return {"request": list(self._epoch_req),
                "response": list(self._epoch_rsp)}

    def end_epoch(self) -> None:
        for i in range(len(self._epoch_req)):
            self._epoch_req[i] = 0.0
            self._epoch_rsp[i] = 0.0
        self._epoch_req_total = 0.0
        self._epoch_rsp_total = 0.0

    def reset(self) -> None:
        self.stats = CrossbarStats()
        self.end_epoch()
