"""First-order NoC power and area model (DSENT/CACTI-inspired).

The paper's only power/area claims are relative (Section 2.1 / 3.6):

* a two-NoC SM-side LLC costs ~21% more NoC power and ~18% more NoC area
  than the single-NoC memory-side LLC;
* SAC's bypass logic (selection logic, muxes, wires) adds ~1.6% power and
  ~1.9% area on top of the memory-side NoC.

We model a crossbar's power/area as the sum of a per-crosspoint term, a
per-port term and a wiring term, calibrated at a 22 nm-like operating
point so that the baseline geometry reproduces the paper's deltas.  The
model stays meaningful for other geometries because the terms scale with
the port counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.config import NoCConfig

# Calibrated per-unit costs (arbitrary units; only ratios are meaningful).
# The port/link coefficients are solved so the baseline 38x22 crossbar vs.
# the two-NoC SM-side organization (32x16 + 16x14) reproduces the paper's
# +21% power / +18% area deltas.
_CROSSPOINT_POWER = 1.0
_PORT_POWER = 36.0
_LINK_POWER = 15.0
_CROSSPOINT_AREA = 1.0
_PORT_AREA = 24.0
_LINK_AREA = 10.8

# The secondary (LLC <-> memory-controller / inter-chip) NoC of an SM-side
# organization is smaller than the primary SM <-> LLC crossbar: it connects
# the LLC slices to the memory controllers and the inter-chip links.
_SECONDARY_SCALE = 1.0

# SAC's bypass additions per LLC slice: selection logic, a mux and a demux
# on both the SM side and the memory side, plus the bypass wires.
# Calibrated so 16 slices add ~1.6% power / ~1.9% area over the memory-side
# NoC (paper Section 3.6).
_BYPASS_POWER_PER_SLICE = 3.9
_BYPASS_AREA_PER_SLICE = 3.47


@dataclass(frozen=True)
class NoCCost:
    """Power and area of one NoC configuration (relative units)."""

    power: float
    area: float

    def relative_to(self, other: "NoCCost") -> "NoCCost":
        """Return ``(self - other) / other`` for both metrics."""
        return NoCCost(power=self.power / other.power - 1.0,
                       area=self.area / other.area - 1.0)


def crossbar_cost(inputs: int, outputs: int) -> NoCCost:
    """Cost of one ``inputs`` x ``outputs`` crossbar with its ports."""
    if inputs < 1 or outputs < 1:
        raise ValueError("a crossbar needs at least one input and one output")
    crosspoints = inputs * outputs
    ports = inputs + outputs
    power = (crosspoints * _CROSSPOINT_POWER + ports * _PORT_POWER
             + ports * _LINK_POWER)
    area = (crosspoints * _CROSSPOINT_AREA + ports * _PORT_AREA
            + ports * _LINK_AREA)
    return NoCCost(power=power, area=area)


def memory_side_noc_cost(config: NoCConfig) -> NoCCost:
    """Single crossbar: (SM clusters + links) x (LLC slices + links)."""
    return crossbar_cost(config.input_ports, config.output_ports)


def sm_side_noc_cost(config: NoCConfig) -> NoCCost:
    """Two crossbars: SM <-> LLC plus LLC <-> (memory + links).

    The primary network no longer carries inter-chip ports on the LLC
    side (they move behind the LLC), and a secondary network connects the
    LLC slices to the memory controllers and inter-chip links.
    """
    primary = crossbar_cost(config.sm_ports, config.llc_ports)
    # Secondary: LLC slices on the input side; memory controllers (one per
    # two slices, as in the baseline's 16 slices / 8 channels) plus
    # inter-chip links on the output side.
    mem_ports = max(1, config.llc_ports // 2)
    secondary = crossbar_cost(config.llc_ports,
                              mem_ports + config.inter_chip_ports)
    return NoCCost(
        power=primary.power + _SECONDARY_SCALE * secondary.power,
        area=primary.area + _SECONDARY_SCALE * secondary.area)


def sac_noc_cost(config: NoCConfig) -> NoCCost:
    """Memory-side NoC plus per-slice bypass logic (paper Section 3.6)."""
    base = memory_side_noc_cost(config)
    return NoCCost(
        power=base.power + config.llc_ports * _BYPASS_POWER_PER_SLICE,
        area=base.area + config.llc_ports * _BYPASS_AREA_PER_SLICE)


def report(config: NoCConfig) -> dict:
    """Summarize all three organizations relative to memory-side."""
    mem = memory_side_noc_cost(config)
    sm = sm_side_noc_cost(config)
    sac = sac_noc_cost(config)
    return {
        "memory_side": mem,
        "sm_side": sm,
        "sac": sac,
        "sm_side_vs_memory_side": sm.relative_to(mem),
        "sac_vs_memory_side": sac.relative_to(mem),
    }
