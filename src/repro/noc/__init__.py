"""NoC substrate: intra-chip crossbar, inter-chip ring and power/area model."""

from .crossbar import Crossbar, CrossbarStats
from .power import (
    NoCCost,
    crossbar_cost,
    memory_side_noc_cost,
    report,
    sac_noc_cost,
    sm_side_noc_cost,
)
from .ring import InterChipRing, RingStats

__all__ = [
    "Crossbar",
    "CrossbarStats",
    "InterChipRing",
    "RingStats",
    "NoCCost",
    "crossbar_cost",
    "memory_side_noc_cost",
    "report",
    "sac_noc_cost",
    "sm_side_noc_cost",
]
