"""Cache substrate: functional set-associative, sectored and partitioned caches."""

from .cache import (
    UNPARTITIONED,
    AccessResult,
    CacheLine,
    CacheStats,
    PartitionFullError,
    SetAssociativeCache,
)
from .replacement import (
    POLICIES,
    LRUPolicy,
    ReplacementPolicy,
    SRRIPPolicy,
    TreePLRUPolicy,
    make_policy,
)
from .vector import BatchResult, VectorBank, VectorCache
from .waycache import WayOrganizedCache, make_cache

__all__ = [
    "BatchResult",
    "VectorBank",
    "VectorCache",
    "UNPARTITIONED",
    "AccessResult",
    "CacheLine",
    "CacheStats",
    "PartitionFullError",
    "SetAssociativeCache",
    "POLICIES",
    "LRUPolicy",
    "ReplacementPolicy",
    "SRRIPPolicy",
    "TreePLRUPolicy",
    "make_policy",
    "WayOrganizedCache",
    "make_cache",
]
