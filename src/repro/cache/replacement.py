"""Replacement policies for the set-associative cache.

The baseline uses true LRU (matching the paper's conventional caches);
real GPU LLCs often approximate it.  Three policies are provided:

* :class:`LRUPolicy` — true least-recently-used (the default).
* :class:`TreePLRUPolicy` — tree-based pseudo-LRU, the common hardware
  approximation (one bit per internal node of a binary tree over ways).
* :class:`SRRIPPolicy` — static re-reference interval prediction
  (Jaleel et al.), which resists scanning: new lines enter with a long
  re-reference prediction and must be re-referenced to be retained.

A policy manages way metadata for one cache set.  The cache asks it for
a victim way and notifies it on hits and fills.  Policies are stateless
across sets: the cache instantiates one per set.
"""

from __future__ import annotations

import abc
from typing import List, Optional


class ReplacementPolicy(abc.ABC):
    """Per-set replacement state for ``num_ways`` ways."""

    def __init__(self, num_ways: int) -> None:
        if num_ways < 1:
            raise ValueError("need at least one way")
        self.num_ways = num_ways

    @abc.abstractmethod
    def on_hit(self, way: int) -> None:
        """A resident line in ``way`` was re-referenced."""

    @abc.abstractmethod
    def on_fill(self, way: int) -> None:
        """A new line was installed into ``way``."""

    @abc.abstractmethod
    def victim(self, candidates: List[int]) -> int:
        """Choose a victim among ``candidates`` (non-empty way indices)."""

    def _check(self, way: int) -> None:
        if not 0 <= way < self.num_ways:
            raise IndexError(f"way {way} out of range")


class LRUPolicy(ReplacementPolicy):
    """True LRU via an explicit recency stack."""

    name = "lru"

    def __init__(self, num_ways: int) -> None:
        super().__init__(num_ways)
        # Most recent last.
        self._stack: List[int] = []

    def on_hit(self, way: int) -> None:
        self._check(way)
        if way in self._stack:
            self._stack.remove(way)
        self._stack.append(way)

    def on_fill(self, way: int) -> None:
        self.on_hit(way)

    def victim(self, candidates: List[int]) -> int:
        if not candidates:
            raise ValueError("no victim candidates")
        # Ways never touched are the coldest of all.
        touched = set(self._stack)
        for way in candidates:
            if way not in touched:
                return way
        candidate_set = set(candidates)
        for way in self._stack:
            if way in candidate_set:
                return way
        return candidates[0]


class TreePLRUPolicy(ReplacementPolicy):
    """Tree pseudo-LRU: one direction bit per internal node.

    Ways must be a power of two.  On an access, the bits along the path
    to the way are pointed *away* from it; the victim is found by
    following the bits from the root.
    """

    name = "tree-plru"

    def __init__(self, num_ways: int) -> None:
        super().__init__(num_ways)
        if num_ways & (num_ways - 1):
            raise ValueError("tree PLRU needs a power-of-two way count")
        self._bits = [False] * max(1, num_ways - 1)

    def _touch(self, way: int) -> None:
        node = 0
        span = self.num_ways
        while span > 1:
            half = span // 2
            go_right = way % span >= half
            # Point away from the accessed half.
            self._bits[node] = not go_right
            node = 2 * node + (2 if go_right else 1)
            span = half

    def on_hit(self, way: int) -> None:
        self._check(way)
        self._touch(way)

    def on_fill(self, way: int) -> None:
        self.on_hit(way)

    def victim(self, candidates: List[int]) -> int:
        if not candidates:
            raise ValueError("no victim candidates")
        candidate_set = set(candidates)
        node = 0
        way = 0
        span = self.num_ways
        while span > 1:
            half = span // 2
            go_right = self._bits[node]
            node = 2 * node + (2 if go_right else 1)
            if go_right:
                way += half
            span = half
        if way in candidate_set:
            return way
        # The tree points at a way that is not evictable (e.g. a
        # different partition); fall back to the first candidate.
        return candidates[0]


class SRRIPPolicy(ReplacementPolicy):
    """Static RRIP with 2-bit re-reference prediction values.

    Fills enter with RRPV = 2 (long interval); hits promote to 0; the
    victim is a way with RRPV = 3, aging every way until one appears.
    """

    name = "srrip"

    MAX_RRPV = 3
    INSERT_RRPV = 2

    def __init__(self, num_ways: int) -> None:
        super().__init__(num_ways)
        self._rrpv = [self.MAX_RRPV] * num_ways

    def on_hit(self, way: int) -> None:
        self._check(way)
        self._rrpv[way] = 0

    def on_fill(self, way: int) -> None:
        self._check(way)
        self._rrpv[way] = self.INSERT_RRPV

    def victim(self, candidates: List[int]) -> int:
        if not candidates:
            raise ValueError("no victim candidates")
        while True:
            for way in candidates:
                if self._rrpv[way] >= self.MAX_RRPV:
                    return way
            for way in candidates:
                self._rrpv[way] += 1


POLICIES = {
    "lru": LRUPolicy,
    "tree-plru": TreePLRUPolicy,
    "srrip": SRRIPPolicy,
}


def make_policy(name: str, num_ways: int) -> ReplacementPolicy:
    """Build a replacement policy by name."""
    try:
        cls = POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(POLICIES))
        raise ValueError(f"unknown replacement policy {name!r}; "
                         f"known: {known}") from None
    return cls(num_ways)
