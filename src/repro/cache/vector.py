"""Vectorized set-associative cache backend (structure-of-arrays).

:class:`VectorCache` keeps the functional LRU tag state of one cache in
numpy arrays shaped ``num_sets x associativity`` (tags, dirty bits and a
per-set occupancy count, with resident ways packed at the low slots in
LRU -> MRU order) and resolves a whole batch of accesses at once with
:meth:`VectorCache.access_many`: accesses are grouped by set and each
group's hits, misses, dirty evictions and final LRU state are derived
with an LRU stack-distance computation instead of one Python probe per
access.  :class:`VectorBank` stacks many slices into one shared array so
the simulation engine can resolve an entire epoch across every (chip,
slice) pair with a single kernel invocation.

The batch kernel is *bit-identical* to :class:`SetAssociativeCache` for
the configurations it covers (true-LRU, non-sectored, write-allocate,
unpartitioned): same per-access hit/miss outcomes, same eviction
addresses and dirty bits, same ``CacheStats``.  Everything it does not
cover — way partitioning, sectored lines, no-allocate probes, scalar
``access``/``fill`` calls — transparently *demotes* the cache to an
internal :class:`SetAssociativeCache` delegate that shares the same
``CacheStats`` object, so behaviour off the fast path is the OrderedDict
model itself, not a reimplementation.  A later batch call *promotes* the
state back into array form when it is safe to do so.

How the kernel works (per set, over the batch's accesses in order):

* Every access ``j`` gets a link ``pi_j``: the within-set rank of the
  previous access to the same tag, or ``-(depth+1)`` if the tag's first
  touch finds it resident at LRU-depth ``depth`` (0 = MRU) in the
  pre-batch state, or ``-(A+1)`` if it is absent.  An access is the
  *first touch since* rank ``r`` of its tag exactly when ``pi_j <= r``.
* LRU depth of a line last touched at rank ``r`` equals the number of
  distinct tags touched since ``r`` — i.e. the number of later accesses
  with ``pi_j <= r``.  Hence access ``j`` hits iff
  ``max(0, -pi_j - 1) + #{i in (pi_j, j) : pi_i <= pi_j} < A``.
* A line last touched at rank ``r`` (and not re-touched, or whose next
  touch misses) is evicted by the access at which the running count of
  ``pi_i <= r`` (``i > r``) reaches ``A``; pre-batch lines at depth
  ``d`` are evicted when the count of ``pi_i < -(d+1)`` reaches
  ``A - d``, unless their first touch happens earlier.  The evicting
  access is always a miss, and the evicted line's dirty bit follows the
  write history of its tag's access chain (seeded from the pre-batch
  dirty bit when the first touch hits).
* Survivors — untouched pre-batch lines below every touched line, then
  tag chains ordered by last-touch rank — are packed back into the
  arrays in LRU -> MRU order.

Groups are bucketed by size so the ``O(m * M)`` dominance windows pay
for the bucket's maximum group size ``M`` rather than the batch's; very
large groups are resolved in sequential rank chunks, which composes
exactly because the kernel is equivalent to replaying the chunk.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from ..arch.config import CacheConfig
from .cache import (
    UNPARTITIONED,
    AccessResult,
    CacheLine,
    CacheStats,
    PartitionFullError,
    SetAssociativeCache,
)

#: Group-size bucket upper bounds for the stack-distance kernel; groups
#: larger than the last edge are resolved in rank chunks of that size.
_BUCKET_EDGES = (2, 4, 8, 16, 48)


class BatchResult(NamedTuple):
    """Per-access outcomes of one batch, in stream order."""

    hits: np.ndarray          # bool (m,)
    evicted_addr: np.ndarray  # int64 (m,); -1 where nothing was evicted
    evicted_dirty: np.ndarray  # bool (m,); True only where evicted_addr >= 0


class _Geometry(NamedTuple):
    """Address-splitting constants shared by a bank's caches."""

    num_sets: int
    associativity: int
    line_shift: int
    sets_pow2: bool
    index_bits: int
    set_mask: int
    write_back: bool

    def split(self, addrs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        lines = addrs >> np.int64(self.line_shift)
        if self.sets_pow2:
            return lines & np.int64(self.set_mask), \
                lines >> np.int64(self.index_bits)
        return lines % np.int64(self.num_sets), \
            lines // np.int64(self.num_sets)

    def rebuild(self, sets: np.ndarray, tags: np.ndarray) -> np.ndarray:
        if self.sets_pow2:
            lines = (tags << np.int64(self.index_bits)) | sets
        else:
            lines = tags * np.int64(self.num_sets) + sets
        return lines << np.int64(self.line_shift)


def _geometry_of(config: CacheConfig) -> _Geometry:
    num_sets = config.num_sets
    return _Geometry(
        num_sets=num_sets,
        associativity=config.associativity,
        line_shift=config.line_size.bit_length() - 1,
        sets_pow2=(num_sets & (num_sets - 1)) == 0,
        index_bits=num_sets.bit_length() - 1,
        set_mask=num_sets - 1,
        write_back=config.write_back)


def _batch_resolve(tags: np.ndarray, dirty: np.ndarray, count: np.ndarray,
                   geo: _Geometry, rows: np.ndarray, tg: np.ndarray,
                   wr: np.ndarray) -> BatchResult:
    """Resolve a batch against packed LRU rows, updating state in place.

    ``tags``/``dirty`` are ``(R, A)`` arrays and ``count`` is ``(R,)``;
    row ``r`` holds ``count[r]`` resident lines at slots ``0..count-1``
    in LRU -> MRU order.  ``rows``/``tg``/``wr`` give each access's row,
    tag and write flag in stream order.
    """
    m = rows.shape[0]
    hits = np.zeros(m, dtype=bool)
    ev_addr = np.full(m, -1, dtype=np.int64)
    ev_dirty = np.zeros(m, dtype=bool)
    if m == 0:
        return BatchResult(hits, ev_addr, ev_dirty)

    # Per-row access counts -> within-row rank of every access.
    row_counts = np.bincount(rows, minlength=tags.shape[0])
    active = np.flatnonzero(row_counts)
    lut = np.zeros(tags.shape[0], dtype=np.int64)
    lut[active] = np.arange(active.size, dtype=np.int64)
    g = lut[rows]
    counts = row_counts[active]
    # Group ids almost always fit int16, where numpy's stable sort is a
    # radix sort (~8x faster than the int64 mergesort).
    if active.size <= 32767:
        order = np.argsort(g.astype(np.int16), kind="stable")
    else:
        order = np.argsort(g, kind="stable")
    starts = np.zeros(active.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])
    rank = np.empty(m, dtype=np.int64)
    rank[order] = np.arange(m, dtype=np.int64) - np.repeat(starts, counts)

    gsize = counts[g]
    lo = 0
    for hi in _BUCKET_EDGES:
        sel = (gsize > lo) & (gsize <= hi)
        lo = hi
        if sel.any():
            _solve_groups(tags, dirty, count, geo, rows, tg, wr, rank,
                          np.flatnonzero(sel), 0, hits, ev_addr, ev_dirty)
    chunk = _BUCKET_EDGES[-1]
    big = gsize > chunk
    if big.any():
        idx_big = np.flatnonzero(big)
        rank_big = rank[idx_big]
        for start in range(0, int(rank_big.max()) + 1, chunk):
            sub = idx_big[(rank_big >= start) & (rank_big < start + chunk)]
            if sub.size:
                _solve_groups(tags, dirty, count, geo, rows, tg, wr, rank,
                              sub, start, hits, ev_addr, ev_dirty)
    return BatchResult(hits, ev_addr, ev_dirty)


def _solve_groups(tags: np.ndarray, dirty: np.ndarray, count: np.ndarray,
                  geo: _Geometry, rows: np.ndarray, tg: np.ndarray,
                  wr: np.ndarray, rank: np.ndarray, idx: np.ndarray,
                  rank_offset: int, hits: np.ndarray, ev_addr: np.ndarray,
                  ev_dirty: np.ndarray) -> None:
    """Stack-distance resolution for one bucket of set groups.

    ``idx`` selects the bucket's accesses (in stream order); every group
    touched by ``idx`` must appear with *all* of its accesses of rank
    ``rank_offset`` onward that fall in this call (chunked callers pass
    consecutive rank windows in order).
    """
    A = geo.associativity
    srows = rows[idx]
    row_hits = np.bincount(srows, minlength=tags.shape[0])
    rows_l = np.flatnonzero(row_hits)          # row id per local group
    gcount = row_hits[rows_l]                  # real accesses per group
    lut = np.zeros(tags.shape[0], dtype=np.int64)
    lut[rows_l] = np.arange(rows_l.size, dtype=np.int64)
    gl = lut[srows]
    ngroups = rows_l.size
    mwidth = int(gcount.max())
    rl = rank[idx] - rank_offset
    stg = tg[idx]
    ml = idx.size

    # Same-tag chains: previous/next access of each tag, via a stable
    # sort on (group, tag).  Small keys take two int16 radix passes
    # (LSD: sort by tag, then stably by group); larger tags fall back to
    # one composite-key mergesort or a full lexsort.
    tmax = int(stg.max())
    if tmax <= 32767 and ngroups <= 32767:
        s16 = stg.astype(np.int16)
        g16 = gl.astype(np.int16)
        p1 = np.argsort(s16, kind="stable")
        o2 = p1[np.argsort(g16[p1], kind="stable")]
        g2 = g16[o2]
        t2 = s16[o2]
    else:
        if tmax < (1 << 44) and ngroups < (1 << 19):
            o2 = np.argsort((gl << np.int64(44)) | stg, kind="stable")
        else:
            o2 = np.lexsort((stg, gl))
        g2 = gl[o2]
        t2 = stg[o2]
    same = (g2[1:] == g2[:-1]) & (t2[1:] == t2[:-1])
    succ = o2[1:][same]
    pred = o2[:-1][same]
    pi = np.full(ml, -1, dtype=np.int64)
    pi[succ] = rl[pred]
    nxt = np.full(ml, -1, dtype=np.int64)
    nxt[pred] = succ

    # First touches: find the tag in the pre-batch state; depth d (0 =
    # MRU) encodes as pi = -(d+1), absence as pi = -(A+1).
    first = np.flatnonzero(pi < 0)
    frows = rows_l[gl[first]]
    fcount = count[frows]
    slot_ok = np.arange(A, dtype=np.int64)[None, :] < fcount[:, None]
    eq = (tags[frows] == stg[first][:, None]) & slot_ok
    way = np.argmax(eq, axis=1)
    found = eq[np.arange(first.size, dtype=np.int64), way]
    depth = fcount - 1 - way
    pi[first] = np.where(found, -(depth + 1), -(A + 1))
    init_dirty = dirty[frows, way] & found

    # First-touch rank per pre-batch (group, way); sentinel = untouched.
    untouched_rank = mwidth + 1
    first_rank = np.full((ngroups, A), untouched_rank, dtype=np.int64)
    ffi = first[found]
    first_rank[gl[ffi], way[found]] = rl[ffi]

    # Rank-indexed pi and access-id tables per group (padded columns get
    # a pi larger than any comparison bound, so they never contribute).
    # The pi values span [-(A+1), mwidth), so the dominance windows run
    # on the narrowest integer type that holds the pad sentinel: the
    # windows are pure memory traffic and shrink 8x vs int64.
    pad = mwidth + A + 2
    if pad <= 127:
        dt = np.int8
    elif pad <= 32767:
        dt = np.int16
    else:
        dt = np.int64
    pi_s = pi.astype(dt)
    rl_s = rl.astype(dt)
    pi_tab = np.full((ngroups, mwidth), pad, dtype=dt)
    acc_tab = np.zeros((ngroups, mwidth), dtype=np.int64)
    pi_tab[gl, rl] = pi_s
    acc_tab[gl, rl] = idx
    cols = np.arange(mwidth, dtype=dt)

    # Hits: stack depth at access j = base(pi_j) + dominance count, but
    # the count is bounded by the reuse window, so most accesses are
    # decided by inspection: a window shorter than A - base always hits
    # (absent tags, base = A, always miss).  Only the remainder pays for
    # a dominance window.
    base = np.maximum(-pi - 1, 0)
    width = rl - np.maximum(pi + 1, 0)
    hitb = base < A
    need = np.flatnonzero(hitb & (base + width >= A))
    if need.size:
        pic = pi_s[need][:, None]
        dom = ((cols > pic) & (cols < rl_s[need][:, None])
               & (pi_tab[gl[need]] <= pic)).sum(axis=1)
        hitb[need] = base[need] + dom < A
    hits[idx] = hitb

    # Chain-final instances: last touch of a tag, or a touch whose next
    # same-tag access misses (a fresh instance is filled at that point).
    nxt_hit = np.zeros(ml, dtype=bool)
    has_nxt = nxt >= 0
    nxt_hit[has_nxt] = hitb[nxt[has_nxt]]
    final = np.flatnonzero(~nxt_hit)
    gfin = gl[final]
    rfin = rl[final]
    # Per-group cumulative histogram of pi values: H[g, t + A + 1] =
    # #{i in g : pi_i <= t}.  Because pi_i < i always, exactly r + 1
    # accesses at ranks <= r satisfy pi_i <= r, so the count of distinct
    # tags touched *after* rank r is H[g, r + A + 1] - (r + 1): every
    # eviction verdict is an O(1) lookup, and the rank scan that places
    # the eviction runs only over lines that really go.
    W = mwidth + A + 1
    H = np.bincount(gl * W + (pi + (A + 1)),
                    minlength=ngroups * W).reshape(ngroups, W)
    np.cumsum(H, axis=1, out=H)
    evicted = H[gfin, rfin + A + 1] - (rfin + 1) >= A
    when = np.zeros(final.size, dtype=np.int64)
    scan = np.flatnonzero(evicted)
    if scan.size:
        fsc = final[scan]
        rfs = rl_s[fsc][:, None]
        distinct = (cols > rfs) & (pi_tab[gl[fsc]] <= rfs)
        reached = np.cumsum(distinct, axis=1, dtype=dt) >= A
        when[scan] = np.argmax(reached, axis=1)
    evr = final[evicted]

    # Dirty bits travel along each tag's chain of consecutive touches of
    # one instance: segment boundaries at first touches and at misses;
    # first-touch *hits* inherit the pre-batch line's dirty bit.
    w_eff = wr[idx] & geo.write_back
    wseed = w_eff.copy()
    wseed[first] |= init_dirty & hitb[first]
    chain_head = np.ones(ml, dtype=bool)
    chain_head[succ] = False
    seg_start = chain_head[o2] | ~hitb[o2]
    seg = np.cumsum(seg_start, dtype=np.int32)
    running = np.maximum.accumulate(seg * 2 + wseed[o2])
    dirty_at = np.empty(ml, dtype=bool)
    dirty_at[o2] = running - seg * 2 >= 1

    if evr.size:
        targets = acc_tab[gfin[evicted], when[evicted]]
        sets_e = rows_l[gfin[evicted]] % np.int64(geo.num_sets)
        ev_addr[targets] = geo.rebuild(sets_e, stg[evr])
        ev_dirty[targets] = dirty_at[evr]

    # Pre-batch lines: line at depth d is evicted when the count of
    # accesses with pi < -(d+1) (first touches of deeper-or-absent tags)
    # reaches A - d, unless its own first touch comes earlier.  The
    # histogram answers "does the count get there at all" for every
    # (group, slot) at once; only lines that really go pay a rank scan.
    cnt0 = count[rows_l]
    slots_a = np.arange(A, dtype=np.int64)
    depth_tab = cnt0[:, None] - 1 - slots_a[None, :]
    live = slots_a[None, :] < cnt0[:, None]
    vq = np.where(live, A - depth_tab - 1, 0)
    pot = live & (H[np.arange(ngroups, dtype=np.int64)[:, None], vq]
                  >= A - depth_tab)
    init_evicted = np.zeros((ngroups, A), dtype=bool)
    gp, sp = np.nonzero(pot)
    if gp.size:
        depth_p = cnt0[gp] - 1 - sp
        # Only accesses with pi <= -2 (first touches of deeper-or-absent
        # tags) can push an init line out, so the rank scan runs over a
        # per-group table compacted to just those columns: code -pi at
        # column j, with the rank remembered for the answer.
        gn, rn = np.nonzero(pi_tab <= np.array(-2, dtype=dt))
        nneg = np.bincount(gn, minlength=ngroups)
        nwidth = int(nneg.max()) if gn.size else 1
        offs_n = np.zeros(ngroups, dtype=np.int64)
        np.cumsum(nneg[:-1], out=offs_n[1:])
        jn = np.arange(gn.size, dtype=np.int64) - offs_n[gn]
        code_tab = np.zeros((ngroups, nwidth), dtype=dt)
        code_tab[gn, jn] = -pi_tab[gn, rn]
        rank_n = np.zeros((ngroups, nwidth), dtype=np.int64)
        rank_n[gn, jn] = rn
        deeper = code_tab[gp] >= (depth_p + 2).astype(dt)[:, None]
        reached4 = np.cumsum(deeper, axis=1, dtype=dt) >= \
            (A - depth_p).astype(dt)[:, None]
        when4 = rank_n[gp, np.argmax(reached4, axis=1)]
        gone = when4 < first_rank[gp, sp]
        if gone.any():
            gp_e = gp[gone]
            sp_e = sp[gone]
            targets = acc_tab[gp_e, when4[gone]]
            rows_e = rows_l[gp_e]
            ev_addr[targets] = geo.rebuild(
                rows_e % np.int64(geo.num_sets), tags[rows_e, sp_e])
            ev_dirty[targets] = dirty[rows_e, sp_e]
            init_evicted[gp_e, sp_e] = True

    # Survivors: untouched, un-evicted pre-batch lines (still below all
    # touched lines, in their original depth order), then chain-final
    # instances without an eviction, ordered by last-touch rank.  Both
    # partial orders fall out of row-major ``np.nonzero`` scans over
    # (group, slot) / (group, rank) tables, so no sort is needed.
    live = np.arange(A, dtype=np.int64)[None, :] < cnt0[:, None]
    keep = live & (first_rank > mwidth) & ~init_evicted
    gi, si = np.nonzero(keep)
    fin_keep = final[~evicted]
    fin_tab = np.zeros((ngroups, mwidth), dtype=bool)
    fin_tab[gl[fin_keep], rl[fin_keep]] = True
    loc_tab = np.zeros((ngroups, mwidth), dtype=np.int32)
    loc_tab[gl, rl] = np.arange(ml, dtype=np.int32)
    gi2, ri2 = np.nonzero(fin_tab)
    loc_f = loc_tab[gi2, ri2]
    ninit = np.bincount(gi, minlength=ngroups)
    nreal = np.bincount(gi2, minlength=ngroups)
    offs_i = np.zeros(ngroups, dtype=np.int64)
    np.cumsum(ninit[:-1], out=offs_i[1:])
    offs_r = np.zeros(ngroups, dtype=np.int64)
    np.cumsum(nreal[:-1], out=offs_r[1:])
    rows_i = rows_l[gi]
    slot_i = np.arange(gi.size, dtype=np.int64) - offs_i[gi]
    t_init = tags[rows_i, si]          # advanced indexing copies, so the
    d_init = dirty[rows_i, si]         # compacting writes cannot alias
    tags[rows_i, slot_i] = t_init
    dirty[rows_i, slot_i] = d_init
    rows_r = rows_l[gi2]
    slot_r = ninit[gi2] + np.arange(gi2.size, dtype=np.int64) - offs_r[gi2]
    tags[rows_r, slot_r] = stg[loc_f]
    dirty[rows_r, slot_r] = dirty_at[loc_f]
    count[rows_l] = ninit + nreal


class VectorCache:
    """Drop-in :class:`SetAssociativeCache` with a vectorized batch path.

    Scalar operations and unsupported configurations are served by an
    internal :class:`SetAssociativeCache` delegate (sharing this cache's
    ``stats``), created on first need; batch calls promote the state
    back into array form when every resident line is unpartitioned.
    """

    def __init__(self, config: CacheConfig, name: str = "cache",
                 _state: Optional[Tuple[np.ndarray, np.ndarray,
                                        np.ndarray]] = None) -> None:
        if config.replacement != "lru":
            raise ValueError(
                f"VectorCache requires LRU replacement, "
                f"got {config.replacement!r}")
        if config.sectored:
            raise ValueError("VectorCache does not model sectored lines")
        self.config = config
        self.name = name
        self.stats = CacheStats()
        self._geo = _geometry_of(config)
        if _state is None:
            num_sets, assoc = config.num_sets, config.associativity
            self._tags = np.zeros((num_sets, assoc), dtype=np.int64)
            self._dirty = np.zeros((num_sets, assoc), dtype=bool)
            self._count = np.zeros(num_sets, dtype=np.int64)
        else:
            self._tags, self._dirty, self._count = _state
        self._delegate: Optional[SetAssociativeCache] = None

    # -- Address helpers -------------------------------------------------

    def line_addr(self, addr: int) -> int:
        return addr >> self._geo.line_shift << self._geo.line_shift

    # -- Delegation ------------------------------------------------------

    def _demote(self) -> SetAssociativeCache:
        """Materialize the OrderedDict delegate from the array state."""
        if self._delegate is None:
            delegate = SetAssociativeCache(self.config, self.name)
            delegate.stats = self.stats
            for index in range(self._geo.num_sets):
                cache_set = delegate._sets[index]
                for slot in range(int(self._count[index])):
                    tag = int(self._tags[index, slot])
                    cache_set[tag] = CacheLine(
                        tag=tag, dirty=bool(self._dirty[index, slot]))
            self._delegate = delegate
            # Route subsequent scalar probes straight to the delegate.
            self.access = delegate.access  # type: ignore[method-assign]
        return self._delegate

    def _promote(self) -> bool:
        """Fold the delegate back into array state; False if unsafe."""
        delegate = self._delegate
        if delegate is None:
            return True
        if delegate._partition_ways is not None:
            return False
        for cache_set in delegate._sets:
            for line in cache_set.values():
                if line.partition != UNPARTITIONED:
                    return False
        for index, cache_set in enumerate(delegate._sets):
            for slot, line in enumerate(cache_set.values()):
                self._tags[index, slot] = line.tag
                self._dirty[index, slot] = line.dirty
            self._count[index] = len(cache_set)
        self._delegate = None
        self.__dict__.pop("access", None)
        return True

    def _batch_ready(self) -> bool:
        """Whether the array kernel may serve the next batch."""
        if not self.config.write_allocate:
            return False
        return self._promote()

    # -- Scalar operations (delegated) -----------------------------------

    def access(self, addr: int, is_write: bool = False,
               partition: int = UNPARTITIONED,
               allocate_on_miss: bool = True) -> AccessResult:
        return self._demote().access(addr, is_write, partition=partition,
                                     allocate_on_miss=allocate_on_miss)

    def fill(self, addr: int, is_write: bool = False,
             partition: int = UNPARTITIONED) -> AccessResult:
        return self._demote().fill(addr, is_write, partition=partition)

    # -- Batch operations -------------------------------------------------

    def access_many(self, addrs: Sequence[int], writes: Sequence[bool],
                    partition: int = UNPARTITIONED,
                    allocate_on_miss: bool = True) -> BatchResult:
        """Resolve a whole access stream; outcomes are in stream order.

        Equivalent to calling :meth:`access` per element (a raised
        ``PartitionFullError`` records a miss with no eviction, as the
        engine's probe loop does).
        """
        addrs_np = np.ascontiguousarray(addrs, dtype=np.int64)
        writes_np = np.ascontiguousarray(writes, dtype=bool)
        if (partition == UNPARTITIONED and allocate_on_miss
                and self._batch_ready()):
            sets, tg = self._geo.split(addrs_np)
            result = _batch_resolve(self._tags, self._dirty, self._count,
                                    self._geo, sets, tg, writes_np)
            n = addrs_np.shape[0]
            nhits = int(result.hits.sum())
            nev = int((result.evicted_addr >= 0).sum())
            stats = self.stats
            stats.accesses += n
            stats.hits += nhits
            stats.misses += n - nhits
            stats.fills += n - nhits
            stats.evictions += nev
            stats.dirty_evictions += int(result.evicted_dirty.sum())
            return result
        return self._access_many_scalar(addrs_np, writes_np, partition,
                                        allocate_on_miss)

    def _access_many_scalar(self, addrs: np.ndarray, writes: np.ndarray,
                            partition: int,
                            allocate_on_miss: bool) -> BatchResult:
        n = addrs.shape[0]
        hits = np.zeros(n, dtype=bool)
        ev_addr = np.full(n, -1, dtype=np.int64)
        ev_dirty = np.zeros(n, dtype=bool)
        addrs_l = addrs.tolist()
        writes_l = writes.tolist()
        # Scalar fallback for configurations the array kernel does not
        # cover (partitions, no-allocate); semantics come from the
        # OrderedDict delegate, one probe at a time by design.
        for i in range(n):  # repro: noqa(hot-loop)
            try:
                result = self.access(addrs_l[i], writes_l[i],
                                     partition=partition,
                                     allocate_on_miss=allocate_on_miss)
            except PartitionFullError:
                continue
            hits[i] = result.hit
            if result.evicted_addr is not None:
                ev_addr[i] = result.evicted_addr
                ev_dirty[i] = result.evicted_dirty
        return BatchResult(hits, ev_addr, ev_dirty)

    # -- Partitioning ----------------------------------------------------

    def set_partition(self, ways_by_partition: Optional[Dict[int, int]]
                      ) -> None:
        if ways_by_partition is None:
            if self._delegate is not None:
                self._delegate.set_partition(None)
            return
        self._demote().set_partition(ways_by_partition)

    @property
    def partition_ways(self) -> Optional[Dict[int, int]]:
        if self._delegate is None:
            return None
        return self._delegate.partition_ways

    # -- Core queries ------------------------------------------------------

    def probe(self, addr: int) -> bool:
        if self._delegate is not None:
            return self._delegate.probe(addr)
        sets, tg = self._geo.split(np.asarray([addr], dtype=np.int64))
        index = int(sets[0])
        resident = self._tags[index, :int(self._count[index])]
        return bool((resident == int(tg[0])).any())

    # -- Flush / invalidate ----------------------------------------------

    def flush(self) -> Tuple[int, int]:
        if self._delegate is not None:
            return self._delegate.flush()
        invalidated = int(self._count.sum())
        live = np.arange(self._geo.associativity,
                         dtype=np.int64)[None, :] < \
            self._count[:, None]
        dirty = int((self._dirty & live).sum())
        self._count[:] = 0
        return invalidated, dirty

    def invalidate(self, addr: int) -> bool:
        if self._delegate is not None:
            return self._delegate.invalidate(addr)
        sets, tg = self._geo.split(np.asarray([addr], dtype=np.int64))
        index = int(sets[0])
        cnt = int(self._count[index])
        resident = self._tags[index, :cnt]
        matches = np.flatnonzero(resident == int(tg[0]))
        if matches.size == 0:
            return False
        slot = int(matches[0])
        self._tags[index, slot:cnt - 1] = self._tags[index, slot + 1:cnt]
        self._dirty[index, slot:cnt - 1] = self._dirty[index, slot + 1:cnt]
        self._count[index] = cnt - 1
        return True

    def invalidate_partition(self, partition: int) -> Tuple[int, int]:
        if self._delegate is not None:
            return self._delegate.invalidate_partition(partition)
        if partition != UNPARTITIONED:
            return 0, 0
        return self.flush()

    # -- Introspection ----------------------------------------------------

    def occupancy(self) -> int:
        if self._delegate is not None:
            return self._delegate.occupancy()
        return int(self._count.sum())

    def occupancy_by_partition(self) -> Dict[int, int]:
        if self._delegate is not None:
            return self._delegate.occupancy_by_partition()
        total = int(self._count.sum())
        return {UNPARTITIONED: total} if total else {}

    def resident_lines(self) -> Iterator[Tuple[int, CacheLine]]:
        if self._delegate is not None:
            yield from self._delegate.resident_lines()
            return
        geo = self._geo
        for index in range(geo.num_sets):
            for slot in range(int(self._count[index])):
                tag = int(self._tags[index, slot])
                if geo.sets_pow2:
                    line = tag << geo.index_bits | index
                else:
                    line = tag * geo.num_sets + index
                yield line << geo.line_shift, CacheLine(
                    tag=tag, dirty=bool(self._dirty[index, slot]))

    def dirty_addrs(self) -> Optional[np.ndarray]:
        """Line addresses of every dirty resident line (array mode only)."""
        if self._delegate is not None:
            return None
        live = np.arange(self._geo.associativity,
                         dtype=np.int64)[None, :] < \
            self._count[:, None]
        sets, slots = np.nonzero(self._dirty & live)
        return self._geo.rebuild(sets, self._tags[sets, slots])

    def resident_addrs(self) -> Optional[np.ndarray]:
        """Line addresses of every resident line (array mode only)."""
        if self._delegate is not None:
            return None
        counts = self._count
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        sets = np.repeat(np.arange(self._geo.num_sets, dtype=np.int64),
                         counts)
        offs = np.zeros(self._geo.num_sets, dtype=np.int64)
        np.cumsum(counts[:-1], out=offs[1:])
        slots = np.arange(total, dtype=np.int64) - offs[sets]
        return self._geo.rebuild(sets, self._tags[sets, slots])

    def reset(self) -> None:
        if self._delegate is not None:
            self._delegate.reset()
        else:
            self._count[:] = 0
            self.stats.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"VectorCache(name={self.name!r}, "
                f"size={self.config.size_bytes}, "
                f"ways={self.config.associativity}, "
                f"occupancy={self.occupancy()}, "
                f"delegated={self._delegate is not None})")


class VectorBank:
    """A stack of :class:`VectorCache` slices sharing one array store.

    The engine groups an epoch's accesses by flat cache index and
    resolves them against the shared ``(C, S, A)`` arrays with a single
    kernel invocation; each cache's ``stats`` are updated from the batch
    outcome, exactly as per-cache calls would have.
    """

    def __init__(self, config: CacheConfig, names: Sequence[str]) -> None:
        num = len(names)
        num_sets, assoc = config.num_sets, config.associativity
        self.config = config
        self.tags = np.zeros((num, num_sets, assoc), dtype=np.int64)
        self.dirty = np.zeros((num, num_sets, assoc), dtype=bool)
        self.count = np.zeros((num, num_sets), dtype=np.int64)
        self.caches = [
            VectorCache(config, name,
                        _state=(self.tags[i], self.dirty[i], self.count[i]))
            for i, name in enumerate(names)]
        self._geo = self.caches[0]._geo if num else _geometry_of(config)

    def access_many_grouped(self, cache_idx: np.ndarray, addrs: np.ndarray,
                            writes: np.ndarray) -> Optional[BatchResult]:
        """Resolve one epoch across every cache of the bank at once.

        ``cache_idx`` maps each access to its flat cache index.  Returns
        None (caller falls back to per-access probes) when any cache
        cannot take the batch path — partitioned lines, no-write-allocate
        configs — so behaviour always matches the scalar model.
        """
        for cache in self.caches:
            if not cache._batch_ready():
                return None
        geo = self._geo
        sets, tg = geo.split(addrs)
        rows = cache_idx * np.int64(geo.num_sets) + sets
        result = _batch_resolve(
            self.tags.reshape(-1, geo.associativity),
            self.dirty.reshape(-1, geo.associativity),
            self.count.reshape(-1), geo, rows, tg, writes)
        num = len(self.caches)
        acc = np.bincount(cache_idx, minlength=num)
        hit = np.bincount(cache_idx[result.hits], minlength=num)
        ev = np.bincount(cache_idx[result.evicted_addr >= 0], minlength=num)
        dev = np.bincount(cache_idx[result.evicted_dirty], minlength=num)
        for i, cache in enumerate(self.caches):
            stats = cache.stats
            n = int(acc[i])
            nhits = int(hit[i])
            stats.accesses += n
            stats.hits += nhits
            stats.misses += n - nhits
            stats.fills += n - nhits
            stats.evictions += int(ev[i])
            stats.dirty_evictions += int(dev[i])
        return result
