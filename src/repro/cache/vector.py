"""Vectorized set-associative cache backend (structure-of-arrays).

:class:`VectorCache` keeps the functional LRU tag state of one cache in
numpy arrays and resolves whole batches of accesses at once with an LRU
stack-distance computation instead of one Python probe per access.
:class:`VectorBank` stacks many slices into one shared array store so
the simulation engine can resolve an entire epoch across every (chip,
slice) pair with a single kernel invocation
(:meth:`VectorBank.access_many_grouped` for uniform single-stage
epochs, :meth:`VectorBank.access_many_staged` for the partitioned
two-stage lookup plans of the static/dynamic/SAC organizations).

The batch kernel is *bit-identical* to :class:`SetAssociativeCache`
for every configuration it covers — true-LRU, write-allocate,
**including way-partitioned and sectored caches**: same per-access
hit/miss/sector-miss outcomes, same eviction addresses and dirty bits,
same ``CacheStats``, same final state.

State layout (the *slot store*): one ``(C, S, A)`` block of
tags/dirty bits per *partition slot*, where a line's slot is its
partition id for its whole lifetime (slot 0 is ``UNPARTITIONED`` ==
``PARTITION_LOCAL``).  A way-partitioned lookup with ``ways[p] = k``
is then an ordinary LRU solve over slot ``p``'s rows with a *logical
capacity* ``cap = k`` instead of the physical associativity — the
same stack-distance kernel, parameterized.  Sectored caches add a
sector-valid bitmask column; per-access sector verdicts come from a
segmented OR along each tag's access chain.  A lazily-created
``stamp`` column (global access counter) records every line's last
touch so per-set LRU order can be merged *across* slots when scalar
semantics require a global view.

Rows the capacity argument cannot describe — a partition occupying
more ways than its current allotment (after ``set_partition``
shrinks it), or a batch whose tag is resident in a *different* slot —
are *replayed*: a stream-order interpreter (:class:`_SetReplay`)
resolves just those sets with exact scalar semantics and writes the
state back into the arrays.  Replay is self-draining: once the
over-full partition evicts down to its allotment, subsequent batches
take the kernel again.  No scalar delegate object exists any more;
scalar ``access``/``fill`` calls are served natively from the arrays.

How the kernel works (per set, over the batch's accesses in order):

* Every access ``j`` gets a link ``pi_j``: the within-set rank of the
  previous access to the same tag, or ``-(depth+1)`` if the tag's first
  touch finds it resident at LRU-depth ``depth`` (0 = MRU) in the
  pre-batch state, or ``-(cap+1)`` if it is absent.  An access is the
  *first touch since* rank ``r`` of its tag exactly when ``pi_j <= r``.
* LRU depth of a line last touched at rank ``r`` equals the number of
  distinct tags touched since ``r`` — i.e. the number of later accesses
  with ``pi_j <= r``.  Hence access ``j`` hits iff
  ``max(0, -pi_j - 1) + #{i in (pi_j, j) : pi_i <= pi_j} < cap``.
* A line last touched at rank ``r`` (and not re-touched, or whose next
  touch misses) is evicted by the access at which the running count of
  ``pi_i <= r`` (``i > r``) reaches ``cap``; pre-batch lines at depth
  ``d`` are evicted when the count of ``pi_i < -(d+1)`` reaches
  ``cap - d``, unless their first touch happens earlier.  The evicting
  access is always a miss, and the evicted line's dirty bit follows the
  write history of its tag's access chain (seeded from the pre-batch
  dirty bit when the first touch hits).
* Survivors — untouched pre-batch lines below every touched line, then
  tag chains ordered by last-touch rank — are packed back into the
  arrays in LRU -> MRU order.

Groups are bucketed by size so the ``O(m * M)`` dominance windows pay
for the bucket's maximum group size ``M`` rather than the batch's; very
large groups are resolved in sequential rank chunks, which composes
exactly because the kernel is equivalent to replaying the chunk.
"""

from __future__ import annotations

import time
from typing import (
    Dict,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..arch.config import CacheConfig
from ..core import sanitize as _sanitize
from .cache import (
    UNPARTITIONED,
    AccessResult,
    CacheLine,
    CacheStats,
    PartitionFullError,
    _HIT,
    _MISS,
    _SECTOR_MISS,
    validate_partition_ways,
)

#: Group-size bucket upper bounds for the stack-distance kernel; groups
#: larger than the last edge are resolved in rank chunks of that size.
_BUCKET_EDGES = (2, 4, 8, 16, 48)


class BatchResult(NamedTuple):
    """Per-access outcomes of one batch, in stream order."""

    hits: np.ndarray          # bool (m,)
    evicted_addr: np.ndarray  # int64 (m,); -1 where nothing was evicted
    evicted_dirty: np.ndarray  # bool (m,); True only where evicted_addr >= 0
    sector_miss: Optional[np.ndarray] = None  # bool (m,); sectored only


class StagedResult(NamedTuple):
    """Outcomes of a two-stage partitioned epoch, in stream order."""

    hit_stage: np.ndarray     # int64 (n,); -1 miss, 0 stage-0 hit, 1 stage-1
    evicted_cache: np.ndarray  # int64 (k,); flat cache index, dirty evictions
    evicted_addr: np.ndarray  # int64 (k,); line addresses, dirty evictions


class GroupedLaneCall(NamedTuple):
    """One lane's uniform epoch in a shared-stream bank call.

    ``stream`` labels the lane's (cache_idx, addrs, writes) arrays:
    calls carrying equal ids hold element-identical arrays, so the bank
    encodes that stream once and replays it per lane.  ``cache_idx`` is
    lane-local; ``lane`` is the absolute ``[lo, hi)`` cache range.
    """

    lane: Tuple[int, int]
    cache_idx: np.ndarray
    addrs: np.ndarray
    writes: np.ndarray
    stream: int


class StagedLaneCall(NamedTuple):
    """One lane's two-stage epoch in a shared-stream bank call.

    ``stream`` ids follow the same contract as
    :class:`GroupedLaneCall`, over all seven per-access arrays.
    ``idx0``/``idx1`` are lane-local cache indices.
    """

    lane: Tuple[int, int]
    addrs: np.ndarray
    writes: np.ndarray
    idx0: np.ndarray
    part0: np.ndarray
    two_stage: np.ndarray
    idx1: np.ndarray
    part1: np.ndarray
    stream: int


class _Geometry(NamedTuple):
    """Address-splitting constants shared by a bank's caches."""

    num_sets: int
    associativity: int
    line_shift: int
    sets_pow2: bool
    index_bits: int
    set_mask: int
    write_back: bool
    write_allocate: bool = True
    sectored: bool = False
    sector_shift: int = 0
    sectors: int = 1

    def split(self, addrs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        lines = addrs >> np.int64(self.line_shift)
        if self.sets_pow2:
            return lines & np.int64(self.set_mask), \
                lines >> np.int64(self.index_bits)
        return lines % np.int64(self.num_sets), \
            lines // np.int64(self.num_sets)

    def rebuild(self, sets: np.ndarray, tags: np.ndarray) -> np.ndarray:
        if self.sets_pow2:
            lines = (tags << np.int64(self.index_bits)) | sets
        else:
            lines = tags * np.int64(self.num_sets) + sets
        return lines << np.int64(self.line_shift)

    def rebuild_one(self, index: int, tag: int) -> int:
        if self.sets_pow2:
            line = tag << self.index_bits | index
        else:
            line = tag * self.num_sets + index
        return line << self.line_shift

    def sector_of(self, addrs: np.ndarray) -> np.ndarray:
        offsets = addrs & np.int64((1 << self.line_shift) - 1)
        return offsets >> np.int64(self.sector_shift)

    def sector_of_one(self, addr: int) -> int:
        return (addr & ((1 << self.line_shift) - 1)) >> self.sector_shift


def _geometry_of(config: CacheConfig) -> _Geometry:
    num_sets = config.num_sets
    sectored = config.sectored
    sector_shift = config.sector_size.bit_length() - 1 if sectored else 0
    line_shift = config.line_size.bit_length() - 1
    return _Geometry(
        num_sets=num_sets,
        associativity=config.associativity,
        line_shift=line_shift,
        sets_pow2=(num_sets & (num_sets - 1)) == 0,
        index_bits=num_sets.bit_length() - 1,
        set_mask=num_sets - 1,
        write_back=config.write_back,
        write_allocate=config.write_allocate,
        sectored=sectored,
        sector_shift=sector_shift,
        sectors=1 << (line_shift - sector_shift) if sectored else 1)


class _BucketEncoding(NamedTuple):
    """Config-independent reuse encoding of one bucket of set groups.

    Every field is a function of the access stream alone — rows, tags,
    write flags — never of cache state, associativity or partition
    caps: the stream-local group layout, within-group ranks, same-tag
    chains and the rank-indexed lookup tables.  One encoding can
    therefore be *replayed* against any lane's state and capacity
    vector (see :func:`_replay_encoding`).
    """

    idx: np.ndarray         # int64 (ml,): stream positions, stream order
    rows_l: np.ndarray      # int64 (G,): stream-local row id per group
    gl: np.ndarray          # int64 (ml,): local group id per access
    rl: np.ndarray          # int64 (ml,): window-relative rank
    stg: np.ndarray         # int64 (ml,): tag per access
    wl: np.ndarray          # bool (ml,): write flag per access
    o2: np.ndarray          # int64 (ml,): stable (group, tag) order
    nxt: np.ndarray         # int64 (ml,): next same-tag access, or -1
    first: np.ndarray       # int64: chain-first accesses (no pred)
    chain_head: np.ndarray  # bool (ml,): True at chain firsts
    pi_chain: np.ndarray    # int64 (ml,): rank links; -1 at firsts
    acc_tab: np.ndarray     # int64 (G, mwidth): stream position by rank
    gro: np.ndarray         # int64 (ml,): bucket positions, (group, rank)
    first_gro: np.ndarray   # int64: chain firsts, (group, rank) order
    mwidth: int
    sec_l: Optional[np.ndarray] = None  # int64 (ml,): sector indices


class _StreamEncoding(NamedTuple):
    """Reuse encoding of one (row, tag) access stream (all buckets)."""

    n: int                  # stream length
    nrows: int              # stream-local row-id space
    buckets: Tuple[_BucketEncoding, ...]


def _encode_stream(rows: np.ndarray, tg: np.ndarray, wr: np.ndarray,
                   nrows: int, sec: Optional[np.ndarray] = None
                   ) -> _StreamEncoding:
    """Encode a (row, tag) access stream independent of cache state.

    ``rows``/``tg``/``wr`` give each access's row, tag and write flag
    in stream order; ``rows`` may be *stream-local* (a lane's row
    offset — any multiple of the set count — is applied at replay
    time) and ``nrows`` bounds the row-id space.  The encoding carries
    the expensive stream-only work — group layout, within-row ranks,
    the same-tag chain sorts and lookup tables — so replaying it
    against a lane's arrays costs only the state-dependent verdicts.
    """
    m = rows.shape[0]
    if m == 0:
        return _StreamEncoding(0, nrows, ())

    # Per-row access counts -> within-row rank of every access.
    row_counts = np.bincount(rows, minlength=nrows)
    active = np.flatnonzero(row_counts)
    lut = np.zeros(nrows, dtype=np.int64)
    lut[active] = np.arange(active.size, dtype=np.int64)
    g = lut[rows]
    counts = row_counts[active]
    # Group ids almost always fit int16, where numpy's stable sort is a
    # radix sort (~8x faster than the int64 mergesort).
    if active.size <= 32767:
        order = np.argsort(g.astype(np.int16), kind="stable")
    else:
        order = np.argsort(g, kind="stable")
    starts = np.zeros(active.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])
    rank = np.empty(m, dtype=np.int64)
    rank[order] = np.arange(m, dtype=np.int64) - np.repeat(starts, counts)

    buckets: List[_BucketEncoding] = []
    gsize = counts[g]
    lo = 0
    for hi in _BUCKET_EDGES:
        sel = (gsize > lo) & (gsize <= hi)
        lo = hi
        if sel.any():
            buckets.append(_encode_bucket(
                rows, tg, wr, sec, rank, np.flatnonzero(sel), 0, nrows))
    chunk = _BUCKET_EDGES[-1]
    big = gsize > chunk
    if big.any():
        idx_big = np.flatnonzero(big)
        rank_big = rank[idx_big]
        for start in range(0, int(rank_big.max()) + 1, chunk):
            sub = idx_big[(rank_big >= start) & (rank_big < start + chunk)]
            if sub.size:
                buckets.append(_encode_bucket(
                    rows, tg, wr, sec, rank, sub, start, nrows))
    enc = _StreamEncoding(m, nrows, tuple(buckets))
    if _sanitize.enabled():
        # Every array in the encoding is freshly allocated above, so
        # freezing cannot alias caller-owned state; replay reads the
        # encoding only (its sole derived mutable is a .copy()).
        _sanitize.freeze(enc)
    return enc


def _encode_bucket(rows: np.ndarray, tg: np.ndarray, wr: np.ndarray,
                   sec: Optional[np.ndarray], rank: np.ndarray,
                   idx: np.ndarray, rank_offset: int,
                   nrows: int) -> _BucketEncoding:
    """Encode one bucket of set groups (config-independent half).

    ``idx`` selects the bucket's accesses (in stream order); every
    group touched by ``idx`` must appear with *all* of its accesses of
    rank ``rank_offset`` onward that fall in this call (chunked
    callers pass consecutive rank windows in order).
    """
    srows = rows[idx]
    row_hits = np.bincount(srows, minlength=nrows)
    rows_l = np.flatnonzero(row_hits)          # row id per local group
    gcount = row_hits[rows_l]                  # real accesses per group
    lut = np.zeros(nrows, dtype=np.int64)
    lut[rows_l] = np.arange(rows_l.size, dtype=np.int64)
    gl = lut[srows]
    ngroups = rows_l.size
    mwidth = int(gcount.max())
    rl = rank[idx] - rank_offset
    ml = idx.size
    stg = tg[idx]

    # Same-tag chains: previous/next access of each tag, via a stable
    # sort on (group, tag).  Small keys take two int16 radix passes
    # (LSD: sort by tag, then stably by group); larger tags fall back to
    # one composite-key mergesort or a full lexsort.
    tmax = int(stg.max())
    if tmax <= 32767 and ngroups <= 32767:
        s16 = stg.astype(np.int16)
        g16 = gl.astype(np.int16)
        p1 = np.argsort(s16, kind="stable")
        o2 = p1[np.argsort(g16[p1], kind="stable")]
        g2 = g16[o2]
        t2 = s16[o2]
    else:
        if tmax < (1 << 44) and ngroups < (1 << 19):
            o2 = np.argsort((gl << np.int64(44)) | stg, kind="stable")
        else:
            o2 = np.lexsort((stg, gl))
        g2 = gl[o2]
        t2 = stg[o2]
    same = (g2[1:] == g2[:-1]) & (t2[1:] == t2[:-1])
    succ = o2[1:][same]
    pred = o2[:-1][same]
    pi_chain = np.full(ml, -1, dtype=np.int64)
    pi_chain[succ] = rl[pred]
    nxt = np.full(ml, -1, dtype=np.int64)
    nxt[pred] = succ
    chain_head = np.ones(ml, dtype=bool)
    chain_head[succ] = False
    first = np.flatnonzero(chain_head)

    # Rank-indexed stream-position tables per group (state-independent;
    # the replay's pi table is rebuilt per lane, these are not).
    acc_tab = np.zeros((ngroups, mwidth), dtype=np.int64)
    acc_tab[gl, rl] = idx
    # (group, rank)-major orders (bucket positions are stream-ordered,
    # so a stable sort by group alone yields rank order within groups);
    # the replay uses these instead of row-major table scans.
    if ngroups <= 32767:
        gro = np.argsort(gl.astype(np.int16), kind="stable")
        first_gro = first[np.argsort(gl[first].astype(np.int16),
                                     kind="stable")]
    else:
        gro = np.argsort(gl, kind="stable")
        first_gro = first[np.argsort(gl[first], kind="stable")]
    return _BucketEncoding(
        idx=idx, rows_l=rows_l, gl=gl, rl=rl, stg=stg, wl=wr[idx],
        o2=o2, nxt=nxt, first=first, chain_head=chain_head,
        pi_chain=pi_chain, acc_tab=acc_tab, gro=gro,
        first_gro=first_gro, mwidth=mwidth,
        sec_l=sec[idx] if sec is not None else None)


def _batch_resolve(tags: np.ndarray, dirty: np.ndarray, count: np.ndarray,
                   geo: _Geometry, rows: np.ndarray, tg: np.ndarray,
                   wr: np.ndarray,
                   cap: Union[int, np.ndarray, None] = None,
                   sector: Optional[np.ndarray] = None,
                   sec: Optional[np.ndarray] = None,
                   stamp: Optional[np.ndarray] = None,
                   stamp_vals: Optional[np.ndarray] = None) -> BatchResult:
    """Resolve a batch against packed LRU rows, updating state in place.

    ``tags``/``dirty`` are ``(R, A)`` arrays and ``count`` is ``(R,)``;
    row ``r`` holds ``count[r]`` resident lines at slots ``0..count-1``
    in LRU -> MRU order.  ``rows``/``tg``/``wr`` give each access's row,
    tag and write flag in stream order.  ``cap`` is the *logical* row
    capacity (defaults to the physical associativity) — a scalar, or a
    per-access vector that is constant within each row; every touched
    row must hold at most its cap on entry, and zero-cap rows resolve
    as misses that neither fill nor evict (the vectorized
    ``PartitionFullError`` outcome).  For sectored caches, ``sector``
    is the ``(R, A)`` sector-valid bitmask column, ``sec`` each
    access's sector index, and the returned ``sector_miss`` marks
    tag-hits whose sector was absent.  ``stamp`` (with per-access
    ``stamp_vals``) is an optional last-touch column, maintained but
    never read by the kernel.

    This is the encode-then-replay pipeline in one call: the stream's
    reuse encoding (:func:`_encode_stream`) followed by one replay of
    it against the given state (:func:`_replay_encoding`).  Stacked
    lanes sharing an identical stream skip straight to the replay.
    """
    m = rows.shape[0]
    hits = np.zeros(m, dtype=bool)
    ev_addr = np.full(m, -1, dtype=np.int64)
    ev_dirty = np.zeros(m, dtype=bool)
    sm_out = np.zeros(m, dtype=bool) if sector is not None else None
    if m == 0:
        return BatchResult(hits, ev_addr, ev_dirty, sm_out)
    if cap is None:
        cap = geo.associativity
    enc = _encode_stream(rows, tg, wr, tags.shape[0], sec=sec)
    _replay_encoding(enc, tags, dirty, count, geo, 0, cap,
                     hits, ev_addr, ev_dirty, sector=sector,
                     stamp=stamp, stamp_vals=stamp_vals, sm_out=sm_out)
    return BatchResult(hits, ev_addr, ev_dirty, sm_out)


def _replay_encoding(enc: _StreamEncoding, tags: np.ndarray,
                     dirty: np.ndarray, count: np.ndarray, geo: _Geometry,
                     row_offset: int, caps: Union[int, np.ndarray],
                     hits: np.ndarray, ev_addr: np.ndarray,
                     ev_dirty: np.ndarray,
                     ok: Optional[np.ndarray] = None,
                     sector: Optional[np.ndarray] = None,
                     stamp: Optional[np.ndarray] = None,
                     stamp_vals: Optional[np.ndarray] = None,
                     sm_out: Optional[np.ndarray] = None) -> None:
    """Replay one lane's state through a stream encoding (cheap half).

    ``row_offset`` (a multiple of the set count) relocates the
    encoding's stream-local rows into the lane's rows of the state
    arrays.  ``caps`` is a scalar or per-access capacity vector
    (constant within each row); ``ok`` optionally masks accesses whose
    rows this lane must not resolve (flagged sets routed to replay,
    zero-way partitions) — masked groups produce no output and no
    state writes.  Outputs land in ``hits``/``ev_addr``/``ev_dirty``
    (and ``sm_out``) at the encoding's stream positions.
    """
    for bk in enc.buckets:
        ngroups = bk.rows_l.size
        if isinstance(caps, np.ndarray):
            capg = np.zeros(ngroups, dtype=np.int64)
            capg[bk.gl] = caps[bk.idx]
        else:
            capg = np.full(ngroups, int(caps), dtype=np.int64)
        okg: Optional[np.ndarray] = None
        if ok is not None:
            okg = np.zeros(ngroups, dtype=bool)
            okg[bk.gl] = ok[bk.idx]
        _replay_bucket(bk, tags, dirty, count, geo, row_offset, capg,
                       okg, hits, ev_addr, ev_dirty, sector, stamp,
                       stamp_vals, sm_out)


class _LaneEncoding(NamedTuple):
    """Lane-major tiling of one stream encoding across ``lanes`` lanes.

    The tiling folds the lane axis into the kernel's group axis: every
    per-group table gains ``lanes`` copies whose group ids, bucket
    positions and stream positions are offset per lane, and whose rows
    carry each lane's absolute row offset baked in.  One
    :func:`_replay_encoding_lanes` call over the folded buckets then
    resolves all lanes' verdicts and state writes at once —
    bit-identical to ``lanes`` sequential :func:`_replay_encoding`
    calls, because the kernel's histograms, chains and verdicts are
    strictly per-group and lanes own disjoint store rows.
    """

    lanes: int
    n: int                  # per-lane stream length
    buckets: Tuple[_BucketEncoding, ...]


def _tile_encoding_lanes(enc: _StreamEncoding,
                         row_offsets: Sequence[int]) -> _LaneEncoding:
    """Fold a stream encoding across lanes at the given row offsets.

    ``row_offsets`` (multiples of the set count, one per lane) relocate
    the encoding's stream-local rows into each lane's rows of the state
    arrays; outputs of a replay over the tiled encoding are lane-major,
    ``lanes * n`` long, lane ``k`` owning ``[k * n, (k + 1) * n)``.
    """
    L = len(row_offsets)
    n = enc.n
    offs = np.asarray(row_offsets, dtype=np.int64)[:, None]
    lane_idx = (np.arange(L, dtype=np.int64) * n)[:, None]
    buckets: List[_BucketEncoding] = []
    for bk in enc.buckets:
        ml = bk.idx.size
        G = bk.rows_l.size
        pos = (np.arange(L, dtype=np.int64) * ml)[:, None]
        grp = (np.arange(L, dtype=np.int64) * G)[:, None]
        nxt = np.where(bk.nxt[None, :] >= 0,
                       bk.nxt[None, :] + pos, -1).reshape(-1)
        buckets.append(_BucketEncoding(
            idx=(bk.idx[None, :] + lane_idx).reshape(-1),
            rows_l=(bk.rows_l[None, :] + offs).reshape(-1),
            gl=(bk.gl[None, :] + grp).reshape(-1),
            rl=np.tile(bk.rl, L),
            stg=np.tile(bk.stg, L),
            wl=np.tile(bk.wl, L),
            o2=(bk.o2[None, :] + pos).reshape(-1),
            nxt=nxt,
            first=(bk.first[None, :] + pos).reshape(-1),
            chain_head=np.tile(bk.chain_head, L),
            pi_chain=np.tile(bk.pi_chain, L),
            acc_tab=(bk.acc_tab[None, :, :]
                     + lane_idx[:, :, None]).reshape(L * G, bk.mwidth),
            gro=(bk.gro[None, :] + pos).reshape(-1),
            first_gro=(bk.first_gro[None, :] + pos).reshape(-1),
            mwidth=bk.mwidth,
            sec_l=np.tile(bk.sec_l, L) if bk.sec_l is not None else None))
    lenc = _LaneEncoding(L, n, tuple(buckets))
    if _sanitize.enabled():
        # Tiled arrays are freshly allocated above; freezing them makes
        # any cross-lane in-place write raise, exactly as for the
        # per-stream encoding the tiling derives from.
        _sanitize.freeze(lenc)
    return lenc


def _replay_encoding_lanes(lenc: _LaneEncoding, tags: np.ndarray,
                           dirty: np.ndarray, count: np.ndarray,
                           geo: _Geometry,
                           caps: Union[int, np.ndarray],
                           hits: np.ndarray, ev_addr: np.ndarray,
                           ev_dirty: np.ndarray,
                           ok: Optional[np.ndarray] = None,
                           sector: Optional[np.ndarray] = None,
                           stamp: Optional[np.ndarray] = None,
                           stamp_vals: Optional[np.ndarray] = None,
                           sm_out: Optional[np.ndarray] = None) -> None:
    """Replay all lanes of a tiled encoding in one batched kernel pass.

    ``caps``/``ok``/``stamp_vals`` and the output arrays are lane-major
    (``lanes * n`` long, lane ``k`` at ``[k * n, (k + 1) * n)``); row
    offsets are already baked into the tiled buckets, so the replay
    runs at offset zero.  Bit-identical per lane to ``lanes``
    sequential :func:`_replay_encoding` calls.
    """
    for bk in lenc.buckets:
        ngroups = bk.rows_l.size
        if isinstance(caps, np.ndarray):
            capg = np.zeros(ngroups, dtype=np.int64)
            capg[bk.gl] = caps[bk.idx]
        else:
            capg = np.full(ngroups, int(caps), dtype=np.int64)
        okg: Optional[np.ndarray] = None
        if ok is not None:
            okg = np.zeros(ngroups, dtype=bool)
            okg[bk.gl] = ok[bk.idx]
        _replay_bucket(bk, tags, dirty, count, geo, 0, capg,
                       okg, hits, ev_addr, ev_dirty, sector, stamp,
                       stamp_vals, sm_out)


def _replay_bucket(bk: _BucketEncoding, tags: np.ndarray,
                   dirty: np.ndarray, count: np.ndarray, geo: _Geometry,
                   row_offset: int, capg: np.ndarray,
                   okg: Optional[np.ndarray], hits: np.ndarray,
                   ev_addr: np.ndarray, ev_dirty: np.ndarray,
                   sector: Optional[np.ndarray],
                   stamp: Optional[np.ndarray],
                   stamp_vals: Optional[np.ndarray],
                   sm_out: Optional[np.ndarray]) -> None:
    """Stack-distance verdicts for one bucket encoding (state half).

    ``capg`` is the per-group logical capacity; groups masked by
    ``okg`` (or holding zero capacity) have their verdicts computed on
    garbage first-touch state but written to *neither* the outputs nor
    the arrays — safe because histograms, chains and verdicts are
    strictly per-group, so masked groups cannot contaminate live ones.
    """
    A = geo.associativity
    idx = bk.idx
    gl = bk.gl
    rl = bk.rl
    stg = bk.stg
    o2 = bk.o2
    nxt = bk.nxt
    first = bk.first
    chain_head = bk.chain_head
    acc_tab = bk.acc_tab
    ml = idx.size
    ngroups = bk.rows_l.size
    mwidth = bk.mwidth
    rows_abs = bk.rows_l + np.int64(row_offset)
    # Zero-cap groups resolve as fill-less misses: fold them into the
    # mask so their (garbage) verdicts are dropped with the others.
    if okg is not None:
        okg = okg & (capg > 0)
    elif bool((capg <= 0).any()):
        okg = capg > 0

    # First touches: find the tag in the pre-batch state; depth d (0 =
    # MRU) encodes as pi = -(d+1), absence as pi = -(cap+1).
    pi = bk.pi_chain.copy()
    frows = rows_abs[gl[first]]
    fcount = count[frows]
    slot_ok = np.arange(A, dtype=np.int64)[None, :] < fcount[:, None]
    eq = (tags[frows] == stg[first][:, None]) & slot_ok
    way = np.argmax(eq, axis=1)
    found = eq[np.arange(first.size, dtype=np.int64), way]
    capf = capg[gl[first]]
    if okg is not None:
        # Masked groups read garbage state; force "absent" so their pi
        # codes stay within this replay's capacity range.
        found = found & okg[gl[first]]
    depth = fcount - 1 - way
    pi[first] = np.where(found, -(depth + 1), -(capf + 1))
    init_dirty = dirty[frows, way] & found
    if sector is not None:
        init_sec = np.where(found, sector[frows, way], 0)

    # First-touch rank per pre-batch (group, way); sentinel = untouched.
    untouched_rank = mwidth + 1
    first_rank = np.full((ngroups, A), untouched_rank, dtype=np.int64)
    ffi = first[found]
    first_rank[gl[ffi], way[found]] = rl[ffi]

    # Rank-indexed pi table per group (padded columns get a pi larger
    # than any comparison bound, so they never contribute).  The pi
    # values span [-(capmax+1), mwidth), so the dominance windows run
    # on the narrowest integer type that holds the pad sentinel: the
    # windows are pure memory traffic and shrink 8x vs int64.
    capmax = int(capg.max())
    pad = mwidth + capmax + 2
    if pad <= 127:
        dt = np.int8
    elif pad <= 32767:
        dt = np.int16
    else:
        dt = np.int64
    pi_s = pi.astype(dt)
    rl_s = rl.astype(dt)
    pi_tab = np.full((ngroups, mwidth), pad, dtype=dt)
    pi_tab[gl, rl] = pi_s
    cols = np.arange(mwidth, dtype=dt)

    # Tag hits: stack depth at access j = base(pi_j) + dominance count,
    # but the count is bounded by the reuse window, so most accesses are
    # decided by inspection: a window shorter than cap - base always
    # hits (absent tags, base = cap, always miss).  Only the remainder
    # pays for a dominance window.
    cap_acc = capg[gl]
    oka = okg[gl] if okg is not None else None
    base = np.maximum(-pi - 1, 0)
    width = rl - np.maximum(pi + 1, 0)
    hitb = base < cap_acc
    needb = hitb & (base + width >= cap_acc)
    if oka is not None:
        needb &= oka
    need = np.flatnonzero(needb)
    if need.size:
        pic = pi_s[need][:, None]
        dom = ((cols > pic) & (cols < rl_s[need][:, None])
               & (pi_tab[gl[need]] <= pic)).sum(axis=1)
        hitb[need] = base[need] + dom < cap_acc[need]
    if sector is None:
        hits[idx] = hitb if oka is None else hitb & oka

    # Chain-final instances: last touch of a tag, or a touch whose next
    # same-tag access misses (a fresh instance is filled at that point).
    nxt_hit = np.zeros(ml, dtype=bool)
    has_nxt = nxt >= 0
    nxt_hit[has_nxt] = hitb[nxt[has_nxt]]
    final = np.flatnonzero(~nxt_hit)
    gfin = gl[final]
    rfin = rl[final]
    # Per-group cumulative histogram of pi values: H[g, t + capmax + 1]
    # = #{i in g : pi_i <= t}.  Because pi_i < i always, exactly r + 1
    # accesses at ranks <= r satisfy pi_i <= r, so the count of distinct
    # tags touched *after* rank r is H[g, r + capmax + 1] - (r + 1):
    # every eviction verdict is an O(1) lookup, and the rank scan that
    # places the eviction runs only over lines that really go.  The
    # histogram offset uses capmax for a shared layout; each verdict
    # still compares against its own group's cap.
    W = mwidth + capmax + 1
    H = np.bincount(gl * W + (pi + (capmax + 1)),
                    minlength=ngroups * W).reshape(ngroups, W)
    np.cumsum(H, axis=1, out=H)
    evicted = H[gfin, rfin + capmax + 1] - (rfin + 1) >= capg[gfin]
    if okg is not None:
        evicted &= okg[gfin]
    when = np.zeros(final.size, dtype=np.int64)
    scan = np.flatnonzero(evicted)
    if scan.size:
        fsc = final[scan]
        rfs = rl_s[fsc][:, None]
        distinct = (cols > rfs) & (pi_tab[gl[fsc]] <= rfs)
        reached = np.cumsum(distinct, axis=1, dtype=dt) >= \
            capg[gl[fsc]].astype(dt)[:, None]
        when[scan] = np.argmax(reached, axis=1)
    evr = final[evicted]

    # Dirty bits travel along each tag's chain of consecutive touches of
    # one instance: segment boundaries at first touches and at (tag)
    # misses; first-touch *hits* inherit the pre-batch line's dirty bit.
    w_eff = bk.wl & geo.write_back
    wseed = w_eff.copy()
    wseed[first] |= init_dirty & hitb[first]
    seg_start = chain_head[o2] | ~hitb[o2]
    seg = np.cumsum(seg_start, dtype=np.int32)
    running = np.maximum.accumulate(seg * 2 + wseed[o2])
    dirty_at = np.empty(ml, dtype=bool)
    dirty_at[o2] = running - seg * 2 >= 1

    # Sector verdicts ride the same instance segments: for each sector
    # bit, "present before access j" is a segmented OR of the bits
    # contributed by earlier touches of the same instance (seeded from
    # the pre-batch mask when the first touch tag-hits); an access's own
    # bit joins the running mask from the next touch on.  A tag hit
    # whose sector is absent is a sector miss (no refill), exactly the
    # scalar model's verdict.
    if sector is not None:
        assert bk.sec_l is not None and sm_out is not None
        sec_l = bk.sec_l
        seed_acc = np.zeros(ml, dtype=np.int64)
        fh = found & hitb[first]
        seed_acc[first[fh]] = init_sec[fh]
        sec_chain = sec_l[o2]
        seed_chain = seed_acc[o2]
        own_chain = np.zeros(ml, dtype=bool)
        incl_chain = np.zeros(ml, dtype=np.int64)
        sh = np.zeros(ml, dtype=np.int32)
        for b in range(geo.sectors):
            contrib = sec_chain == np.int64(b)
            sh[1:] = contrib[:-1]
            if ml:
                sh[0] = 0
            np.copyto(sh, (seed_chain >> np.int64(b)) & np.int64(1),
                      where=seg_start, casting="unsafe")
            run_b = np.maximum.accumulate(seg * 2 + sh)
            excl = run_b - seg * 2 >= 1
            np.copyto(own_chain, excl, where=contrib)
            incl_chain |= np.where(excl | contrib, np.int64(1 << b),
                                   np.int64(0))
        own_ok = np.zeros(ml, dtype=bool)
        own_ok[o2] = own_chain
        incl = np.zeros(ml, dtype=np.int64)
        incl[o2] = incl_chain
        if oka is None:
            hits[idx] = hitb & own_ok
            sm_out[idx] = hitb & ~own_ok
        else:
            hits[idx] = hitb & own_ok & oka
            sm_out[idx] = hitb & ~own_ok & oka

    if evr.size:
        targets = acc_tab[gfin[evicted], when[evicted]]
        sets_e = rows_abs[gfin[evicted]] % np.int64(geo.num_sets)
        ev_addr[targets] = geo.rebuild(sets_e, stg[evr])
        ev_dirty[targets] = dirty_at[evr]

    # Pre-batch lines: line at depth d is evicted when the count of
    # accesses with pi < -(d+1) (first touches of deeper-or-absent tags)
    # reaches cap - d, unless its own first touch comes earlier.  The
    # histogram answers "does the count get there at all" for every
    # (group, slot) at once; only lines that really go pay a rank scan.
    cnt0 = count[rows_abs]
    slots_a = np.arange(A, dtype=np.int64)
    depth_tab = cnt0[:, None] - 1 - slots_a[None, :]
    live = slots_a[None, :] < cnt0[:, None]
    if okg is not None:
        live = live & okg[:, None]
    # Column for "#accesses with pi <= -(d+2)" under the shared
    # capmax-based layout; the *threshold* below still uses each
    # group's own cap.
    vq = np.where(live, capmax - depth_tab - 1, 0)
    pot = live & (H[np.arange(ngroups, dtype=np.int64)[:, None], vq]
                  >= capg[:, None] - depth_tab)
    init_evicted = np.zeros((ngroups, A), dtype=bool)
    gp, sp = np.nonzero(pot)
    if gp.size:
        depth_p = cnt0[gp] - 1 - sp
        # Only accesses with pi <= -2 (first touches of deeper-or-absent
        # tags) can push an init line out, so the rank scan runs over a
        # per-group table compacted to just those columns: code -pi at
        # column j, with the rank remembered for the answer.
        fneg = bk.first_gro[pi[bk.first_gro] <= -2]
        gn = gl[fneg]
        rn = rl[fneg]
        nneg = np.bincount(gn, minlength=ngroups)
        nwidth = int(nneg.max()) if gn.size else 1
        offs_n = np.zeros(ngroups, dtype=np.int64)
        np.cumsum(nneg[:-1], out=offs_n[1:])
        jn = np.arange(gn.size, dtype=np.int64) - offs_n[gn]
        code_tab = np.zeros((ngroups, nwidth), dtype=dt)
        code_tab[gn, jn] = -pi_s[fneg]
        rank_n = np.zeros((ngroups, nwidth), dtype=np.int64)
        rank_n[gn, jn] = rn
        deeper = code_tab[gp] >= (depth_p + 2).astype(dt)[:, None]
        reached4 = np.cumsum(deeper, axis=1, dtype=dt) >= \
            (capg[gp] - depth_p).astype(dt)[:, None]
        when4 = rank_n[gp, np.argmax(reached4, axis=1)]
        gone = when4 < first_rank[gp, sp]
        if gone.any():
            gp_e = gp[gone]
            sp_e = sp[gone]
            targets = acc_tab[gp_e, when4[gone]]
            rows_e = rows_abs[gp_e]
            ev_addr[targets] = geo.rebuild(
                rows_e % np.int64(geo.num_sets), tags[rows_e, sp_e])
            ev_dirty[targets] = dirty[rows_e, sp_e]
            init_evicted[gp_e, sp_e] = True

    # Survivors: untouched, un-evicted pre-batch lines (still below all
    # touched lines, in their original depth order), then chain-final
    # instances without an eviction, ordered by last-touch rank.  Both
    # partial orders fall out of row-major ``np.nonzero`` scans over
    # (group, slot) / (group, rank) tables, so no sort is needed.
    keep = live & (first_rank > mwidth) & ~init_evicted
    gi, si = np.nonzero(keep)
    if okg is None:
        fin_keep = final[~evicted]
    else:
        fin_keep = final[~evicted & okg[gfin]]
    fmask = np.zeros(ml, dtype=bool)
    fmask[fin_keep] = True
    loc_f = bk.gro[fmask[bk.gro]]
    gi2 = gl[loc_f]
    ninit = np.bincount(gi, minlength=ngroups)
    nreal = np.bincount(gi2, minlength=ngroups)
    offs_i = np.zeros(ngroups, dtype=np.int64)
    np.cumsum(ninit[:-1], out=offs_i[1:])
    offs_r = np.zeros(ngroups, dtype=np.int64)
    np.cumsum(nreal[:-1], out=offs_r[1:])
    rows_i = rows_abs[gi]
    slot_i = np.arange(gi.size, dtype=np.int64) - offs_i[gi]
    t_init = tags[rows_i, si]          # advanced indexing copies, so the
    d_init = dirty[rows_i, si]         # compacting writes cannot alias
    s_init = sector[rows_i, si] if sector is not None else None
    st_init = stamp[rows_i, si] if stamp is not None else None
    tags[rows_i, slot_i] = t_init
    dirty[rows_i, slot_i] = d_init
    if sector is not None:
        sector[rows_i, slot_i] = s_init
    if stamp is not None:
        stamp[rows_i, slot_i] = st_init
    rows_r = rows_abs[gi2]
    slot_r = ninit[gi2] + np.arange(gi2.size, dtype=np.int64) - offs_r[gi2]
    tags[rows_r, slot_r] = stg[loc_f]
    dirty[rows_r, slot_r] = dirty_at[loc_f]
    if sector is not None:
        sector[rows_r, slot_r] = incl[loc_f]
    if stamp is not None:
        assert stamp_vals is not None
        sv_l = stamp_vals[idx]
        stamp[rows_r, slot_r] = sv_l[loc_f]
    if okg is None:
        count[rows_abs] = ninit + nreal
    else:
        count[rows_abs[okg]] = (ninit + nreal)[okg]

class _SlotStore:
    """Slot-major array state shared by a bank's caches.

    One ``(C, S, A)`` block of state per partition *slot*; a line lives
    in the slot of the partition it was filled with for its whole
    lifetime (slot 0 is ``UNPARTITIONED``).  The flat kernel row of
    (slot, cache, set) is ``(slot * C + cache) * S + set``, so
    ``row % S`` recovers the set index for address rebuilding.
    """

    def __init__(self, config: CacheConfig, num_caches: int) -> None:
        S, A = config.num_sets, config.associativity
        C = num_caches
        self.num_caches = C
        self.num_sets = S
        self.associativity = A
        self.tags = np.zeros((1, C, S, A), dtype=np.int64)
        self.dirty = np.zeros((1, C, S, A), dtype=bool)
        self.count = np.zeros((1, C, S), dtype=np.int64)
        self.sector: Optional[np.ndarray] = (
            np.zeros((1, C, S, A), dtype=np.int64) if config.sectored
            else None)
        #: Last-touch stamps (global access counter), created lazily the
        #: first time multi-slot state needs a cross-slot LRU order.
        self.stamp: Optional[np.ndarray] = None
        self.clock = 0
        #: Batch-path uses of the :class:`_SetReplay` interpreter
        #: (scalar ``access``/``fill`` calls are not counted: they are
        #: legitimate single-probe uses, not kernel demotions).
        self.set_replay_batches = 0
        #: slot index -> partition id (slot 0 is always UNPARTITIONED).
        self.slot_ids: List[int] = [UNPARTITIONED]
        #: partition id -> slot index.
        self.slot_of: Dict[int, int] = {UNPARTITIONED: 0}

    @property
    def num_slots(self) -> int:
        return len(self.slot_ids)

    def ensure_slot(self, partition: int) -> int:
        """Return the slot of ``partition``, growing the store if new."""
        slot = self.slot_of.get(partition)
        if slot is not None:
            return slot
        C, S, A = self.num_caches, self.num_sets, self.associativity
        self.tags = np.concatenate(
            [self.tags, np.zeros((1, C, S, A), dtype=np.int64)], axis=0)
        self.dirty = np.concatenate(
            [self.dirty, np.zeros((1, C, S, A), dtype=bool)], axis=0)
        self.count = np.concatenate(
            [self.count, np.zeros((1, C, S), dtype=np.int64)], axis=0)
        if self.sector is not None:
            self.sector = np.concatenate(
                [self.sector, np.zeros((1, C, S, A), dtype=np.int64)],
                axis=0)
        if self.stamp is not None:
            self.stamp = np.concatenate(
                [self.stamp, np.zeros((1, C, S, A), dtype=np.int64)],
                axis=0)
        slot = len(self.slot_ids)
        self.slot_ids.append(partition)
        self.slot_of[partition] = slot
        return slot

    def ensure_stamps(self) -> None:
        """Create the last-touch column, synthesizing slot-0 order.

        Before stamps exist only slot 0 can hold lines (every other
        path maintains stamps), so positional order *is* LRU order:
        stamp the packed slots ``0..A-1`` and start the clock above
        them.
        """
        if self.stamp is not None:
            return
        P, C, S, A = (self.num_slots, self.num_caches, self.num_sets,
                      self.associativity)
        stamp = np.zeros((P, C, S, A), dtype=np.int64)
        stamp[0] = np.arange(A, dtype=np.int64)
        self.stamp = stamp
        self.clock = max(self.clock, A)

    def flat(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                            Optional[np.ndarray], Optional[np.ndarray]]:
        """Fresh 2-D/1-D kernel views of the current arrays."""
        A = self.associativity
        return (self.tags.reshape(-1, A), self.dirty.reshape(-1, A),
                self.count.reshape(-1),
                self.sector.reshape(-1, A) if self.sector is not None
                else None,
                self.stamp.reshape(-1, A) if self.stamp is not None
                else None)

    def row_base(self, slot: int, cache_idx: int) -> int:
        return (slot * self.num_caches + cache_idx) * self.num_sets


class _SetReplay:
    """Stream-order interpreter for sets the kernel cannot solve.

    Materializes each touched set as one LRU -> MRU list of
    ``[tag, dirty, sector_mask, partition, stamp]`` entries merged
    across every slot (by stamp), replays accesses with exact scalar
    semantics (:class:`SetAssociativeCache`), and writes the state
    back per slot.  Used for over-allotment partitions after a
    repartition, cross-slot tag aliases, and scalar ``access``/``fill``
    calls on multi-slot state.
    """

    def __init__(self, store: _SlotStore, geo: _Geometry) -> None:
        assert store.stamp is not None
        self._store = store
        self._geo = geo
        self._rows: Dict[Tuple[int, int], List[List[int]]] = {}
        # Per-row lookup accelerators kept in lockstep with the LRU
        # list: tag -> entries in LRU order (cross-slot aliases give a
        # tag more than one entry) and partition -> resident count.
        self._by_tag: Dict[Tuple[int, int], Dict[int, List[List[int]]]] = {}
        self._occ: Dict[Tuple[int, int], Dict[int, int]] = {}

    def _load(self, ci: int, index: int
              ) -> Tuple[List[List[int]], Dict[int, List[List[int]]],
                         Dict[int, int]]:
        key = (ci, index)
        entries = self._rows.get(key)
        if entries is not None:
            return entries, self._by_tag[key], self._occ[key]
        store = self._store
        sector = store.sector
        stamp = store.stamp
        assert stamp is not None
        entries = []
        for s in range(store.num_slots):
            cnt = int(store.count[s, ci, index])
            pid = store.slot_ids[s]
            for k in range(cnt):
                entries.append([
                    int(store.tags[s, ci, index, k]),
                    int(store.dirty[s, ci, index, k]),
                    int(sector[s, ci, index, k]) if sector is not None
                    else 0,
                    pid,
                    int(stamp[s, ci, index, k])])
        entries.sort(key=lambda e: e[4])
        by_tag: Dict[int, List[List[int]]] = {}
        occ: Dict[int, int] = {}
        for e in entries:
            by_tag.setdefault(e[0], []).append(e)
            occ[e[3]] = occ.get(e[3], 0) + 1
        self._rows[key] = entries
        self._by_tag[key] = by_tag
        self._occ[key] = occ
        return entries, by_tag, occ

    def touch(self, ci: int, index: int, tag: int, is_write: bool,
              partition: int, allocate: bool, sector_idx: int,
              ways: Optional[Dict[int, int]], stamp: int
              ) -> Tuple[bool, bool, bool, int, int]:
        """One scalar access; returns (hit, sector_miss, filled,
        evicted_addr or -1, evicted_dirty)."""
        geo = self._geo
        entries, by_tag, occ = self._load(ci, index)
        bucket = by_tag.get(tag)
        if bucket:
            # Aliased tags keep one entry per slot; the match is the
            # LRU-most (bucket order mirrors the LRU list).
            e = bucket[0]
            sector_miss = False
            if geo.sectored and not e[2] >> sector_idx & 1:
                sector_miss = True
                e[2] |= 1 << sector_idx
            if is_write and geo.write_back:
                e[1] = 1
            e[4] = stamp
            entries.remove(e)
            entries.append(e)
            if len(bucket) > 1:
                del bucket[0]
                bucket.append(e)
            return (not sector_miss, sector_miss, False, -1, 0)
        if not allocate or (is_write and not geo.write_allocate):
            return (False, False, False, -1, 0)
        return self._fill(entries, by_tag, occ, index, tag, is_write,
                          partition, sector_idx, ways, stamp)

    def fill_touch(self, ci: int, index: int, tag: int, is_write: bool,
                   partition: int, sector_idx: int,
                   ways: Optional[Dict[int, int]], stamp: int
                   ) -> Tuple[bool, bool, int, int]:
        """Scalar ``fill`` semantics; returns (hit, filled,
        evicted_addr or -1, evicted_dirty)."""
        geo = self._geo
        entries, by_tag, occ = self._load(ci, index)
        bucket = by_tag.get(tag)
        if bucket:
            e = bucket[0]
            if geo.sectored:
                e[2] |= 1 << sector_idx
            if is_write and geo.write_back:
                e[1] = 1
            e[4] = stamp
            entries.remove(e)
            entries.append(e)
            if len(bucket) > 1:
                del bucket[0]
                bucket.append(e)
            return (True, False, -1, 0)
        _, _, filled, ev_addr, ev_dirty = self._fill(
            entries, by_tag, occ, index, tag, is_write, partition,
            sector_idx, ways, stamp)
        return (False, filled, ev_addr, ev_dirty)

    def _fill(self, entries: List[List[int]],
              by_tag: Dict[int, List[List[int]]], occ: Dict[int, int],
              index: int, tag: int, is_write: bool, partition: int,
              sector_idx: int, ways: Optional[Dict[int, int]], stamp: int
              ) -> Tuple[bool, bool, bool, int, int]:
        geo = self._geo
        A = geo.associativity
        victim: Optional[int] = None
        if ways is None:
            if len(entries) >= A:
                victim = 0
        else:
            limit = ways.get(partition, 0)
            if limit == 0:
                raise PartitionFullError(partition)
            occupancy = occ.get(partition, 0)
            if occupancy >= limit or len(entries) >= A:
                if occupancy >= limit:
                    victim = next(k for k, e in enumerate(entries)
                                  if e[3] == partition)
                else:
                    over = {p for p, o in occ.items()
                            if o > ways.get(p, 0)}
                    victim = next(
                        (k for k, e in enumerate(entries)
                         if e[3] in over), 0)
        ev_addr = -1
        ev_dirty = 0
        if victim is not None:
            ve = entries.pop(victim)
            vb = by_tag[ve[0]]
            vb.remove(ve)
            if not vb:
                del by_tag[ve[0]]
            occ[ve[3]] -= 1
            ev_addr = self._geo.rebuild_one(index, ve[0])
            ev_dirty = ve[1]
        ne = [tag, int(is_write and geo.write_back),
              1 << sector_idx if geo.sectored else 0, partition, stamp]
        entries.append(ne)
        by_tag.setdefault(tag, []).append(ne)
        occ[partition] = occ.get(partition, 0) + 1
        return (False, False, True, ev_addr, ev_dirty)

    def flush_back(self) -> None:
        """Write every touched set back into the slot arrays."""
        store = self._store
        for entries in self._rows.values():
            for e in entries:
                store.ensure_slot(e[3])
        tags = store.tags
        dirty = store.dirty
        count = store.count
        sector = store.sector
        stamp = store.stamp
        assert stamp is not None
        num_slots = store.num_slots
        for (ci, index), entries in self._rows.items():
            per: Dict[int, List[List[int]]] = {}
            for e in entries:
                per.setdefault(store.slot_of[e[3]], []).append(e)
            for s in range(num_slots):
                lst = per.get(s)
                if lst is None:
                    count[s, ci, index] = 0
                    continue
                count[s, ci, index] = len(lst)
                for k, e in enumerate(lst):
                    tags[s, ci, index, k] = e[0]
                    dirty[s, ci, index, k] = bool(e[1])
                    if sector is not None:
                        sector[s, ci, index, k] = e[2]
                    stamp[s, ci, index, k] = e[4]
        self._rows.clear()
        self._by_tag.clear()
        self._occ.clear()

class VectorCache:
    """Drop-in :class:`SetAssociativeCache` backed by slot-major arrays.

    All operations — batched and scalar, partitioned and sectored — are
    served natively from the array state; there is no scalar delegate.
    Batches take the stack-distance kernel whenever every touched row's
    state is describable by a single logical capacity; everything else
    (over-allotment rows after a repartition, cross-slot tag aliases)
    is replayed per set in stream order with exact scalar semantics.
    """

    def __init__(self, config: CacheConfig, name: str = "cache",
                 _store: Optional[_SlotStore] = None,
                 _index: int = 0) -> None:
        if config.replacement != "lru":
            raise ValueError(
                f"VectorCache requires LRU replacement, "
                f"got {config.replacement!r}")
        self.config = config
        self.name = name
        self.stats = CacheStats()
        self._geo = _geometry_of(config)
        if _store is None:
            _store = _SlotStore(config, 1)
            _index = 0
        self._store = _store
        self._index = _index
        self._ways: Optional[Dict[int, int]] = None

    # -- Address helpers -------------------------------------------------

    def line_addr(self, addr: int) -> int:
        return addr >> self._geo.line_shift << self._geo.line_shift

    def _index_tag(self, addr: int) -> Tuple[int, int]:
        geo = self._geo
        line = addr >> geo.line_shift
        if geo.sets_pow2:
            return line & geo.set_mask, line >> geo.index_bits
        return line % geo.num_sets, line // geo.num_sets

    # -- Mode predicates -------------------------------------------------

    def _foreign_free(self) -> bool:
        """No resident line outside slot 0 anywhere in this cache."""
        store = self._store
        return store.num_slots == 1 or \
            not store.count[1:, self._index].any()

    # -- Scalar operations -----------------------------------------------

    def access(self, addr: int, is_write: bool = False,
               partition: int = UNPARTITIONED,
               allocate_on_miss: bool = True) -> AccessResult:
        stats = self.stats
        stats.accesses += 1
        geo = self._geo
        store = self._store
        line = addr >> geo.line_shift
        if geo.sets_pow2:
            index = line & geo.set_mask
            tag = line >> geo.index_bits
        else:
            index = line % geo.num_sets
            tag = line // geo.num_sets
        ci = self._index
        if (self._ways is None and partition == UNPARTITIONED
                and (store.num_slots == 1
                     or not store.count[1:, ci, index].any())):
            return self._access_direct(ci, index, tag, addr, is_write,
                                       allocate_on_miss)
        return self._access_interp(ci, index, tag, is_write, partition,
                                   allocate_on_miss, addr)

    def _access_direct(self, ci: int, index: int, tag: int, addr: int,
                       is_write: bool, allocate: bool) -> AccessResult:
        """Scalar probe of a slot-0-only set, straight on the arrays."""
        geo = self._geo
        store = self._store
        stats = self.stats
        trow = store.tags[0, ci, index]
        drow = store.dirty[0, ci, index]
        cnt = int(store.count[0, ci, index])
        stamp = store.stamp
        sector = store.sector
        resident: List[int] = trow[:cnt].tolist()
        try:
            slot = resident.index(tag)
        except ValueError:
            slot = -1
        if slot >= 0:
            d = bool(drow[slot]) or (is_write and geo.write_back)
            smask = int(sector[0, ci, index, slot]) \
                if sector is not None else 0
            if slot != cnt - 1:
                trow[slot:cnt - 1] = trow[slot + 1:cnt].copy()
                trow[cnt - 1] = tag
                drow[slot:cnt - 1] = drow[slot + 1:cnt].copy()
                if sector is not None:
                    srow = sector[0, ci, index]
                    srow[slot:cnt - 1] = srow[slot + 1:cnt].copy()
                if stamp is not None:
                    strow = stamp[0, ci, index]
                    strow[slot:cnt - 1] = strow[slot + 1:cnt].copy()
            drow[cnt - 1] = d
            if stamp is not None:
                stamp[0, ci, index, cnt - 1] = store.clock
                store.clock += 1
            if sector is not None:
                sec_idx = geo.sector_of_one(addr)
                if not smask >> sec_idx & 1:
                    sector[0, ci, index, cnt - 1] = smask | (1 << sec_idx)
                    stats.misses += 1
                    stats.sector_misses += 1
                    return _SECTOR_MISS
                sector[0, ci, index, cnt - 1] = smask
            stats.hits += 1
            return _HIT
        stats.misses += 1
        if not allocate or (is_write and not geo.write_allocate):
            return _MISS
        ev_addr = -1
        ev_dirty = False
        if cnt < geo.associativity:
            slot = cnt
            store.count[0, ci, index] = cnt + 1
        else:
            ev_addr = geo.rebuild_one(index, int(trow[0]))
            ev_dirty = bool(drow[0])
            trow[0:cnt - 1] = trow[1:cnt].copy()
            drow[0:cnt - 1] = drow[1:cnt].copy()
            if sector is not None:
                srow = sector[0, ci, index]
                srow[0:cnt - 1] = srow[1:cnt].copy()
            if stamp is not None:
                strow = stamp[0, ci, index]
                strow[0:cnt - 1] = strow[1:cnt].copy()
            slot = cnt - 1
        trow[slot] = tag
        drow[slot] = is_write and geo.write_back
        if sector is not None:
            sector[0, ci, index, slot] = 1 << geo.sector_of_one(addr)
        if stamp is not None:
            stamp[0, ci, index, slot] = store.clock
            store.clock += 1
        stats.fills += 1
        if ev_addr < 0:
            return _MISS
        stats.evictions += 1
        if ev_dirty:
            stats.dirty_evictions += 1
        return AccessResult(hit=False, evicted_dirty=ev_dirty,
                            evicted_addr=ev_addr)

    def _access_interp(self, ci: int, index: int, tag: int,
                       is_write: bool, partition: int, allocate: bool,
                       addr: int) -> AccessResult:
        """Scalar probe through the replay interpreter (multi-slot)."""
        geo = self._geo
        store = self._store
        store.ensure_stamps()
        stats = self.stats
        rep = _SetReplay(store, geo)
        sec_idx = geo.sector_of_one(addr) if geo.sectored else 0
        try:
            hit, sector_miss, filled, ev_addr, ev_dirty = rep.touch(
                ci, index, tag, is_write, partition, allocate, sec_idx,
                self._ways, store.clock)
        except PartitionFullError:
            stats.misses += 1
            raise
        rep.flush_back()
        store.clock += 1
        if hit:
            stats.hits += 1
            return _HIT
        stats.misses += 1
        if sector_miss:
            stats.sector_misses += 1
            return _SECTOR_MISS
        if filled:
            stats.fills += 1
            if ev_addr >= 0:
                stats.evictions += 1
                if ev_dirty:
                    stats.dirty_evictions += 1
                return AccessResult(hit=False, evicted_dirty=bool(ev_dirty),
                                    evicted_addr=ev_addr)
        return _MISS

    def fill(self, addr: int, is_write: bool = False,
             partition: int = UNPARTITIONED) -> AccessResult:
        """Insert a line without counting a lookup (response-path fill)."""
        geo = self._geo
        store = self._store
        store.ensure_stamps()
        stats = self.stats
        index, tag = self._index_tag(addr)
        rep = _SetReplay(store, geo)
        sec_idx = geo.sector_of_one(addr) if geo.sectored else 0
        hit, filled, ev_addr, ev_dirty = rep.fill_touch(
            self._index, index, tag, is_write, partition, sec_idx,
            self._ways, store.clock)
        rep.flush_back()
        store.clock += 1
        if hit:
            return AccessResult(hit=True)
        evicted = ev_addr >= 0
        if filled:
            stats.fills += 1
            if evicted:
                stats.evictions += 1
                if ev_dirty:
                    stats.dirty_evictions += 1
        return AccessResult(hit=False, evicted_dirty=bool(ev_dirty),
                            evicted_addr=ev_addr if evicted else None)

    # -- Batch operations -------------------------------------------------

    def access_many(self, addrs: Sequence[int], writes: Sequence[bool],
                    partition: int = UNPARTITIONED,
                    allocate_on_miss: bool = True) -> BatchResult:
        """Resolve a whole access stream; outcomes are in stream order.

        Equivalent to calling :meth:`access` per element (a raised
        ``PartitionFullError`` records a miss with no eviction, as the
        engine's probe loop does).
        """
        addrs_np = np.ascontiguousarray(addrs, dtype=np.int64)
        writes_np = np.ascontiguousarray(writes, dtype=bool)
        if not (allocate_on_miss and self.config.write_allocate):
            return self._access_many_scalar(addrs_np, writes_np, partition,
                                            allocate_on_miss)
        if (self._ways is None and partition == UNPARTITIONED
                and self._foreign_free()):
            return self._batch_fast(addrs_np, writes_np)
        return self._batch_slotted(addrs_np, writes_np, partition)

    def _batch_fast(self, addrs: np.ndarray,
                    writes: np.ndarray) -> BatchResult:
        """Single-slot, uncapped batch: one kernel call, no replay."""
        geo = self._geo
        store = self._store
        n = addrs.shape[0]
        sets, tg = geo.split(addrs)
        rows = np.int64(store.row_base(0, self._index)) + sets
        ftags, fdirty, fcount, fsector, fstamp = store.flat()
        sec = geo.sector_of(addrs) if geo.sectored else None
        stamp_vals = None
        if fstamp is not None:
            stamp_vals = np.arange(store.clock, store.clock + n,
                                   dtype=np.int64)
        result = _batch_resolve(ftags, fdirty, fcount, geo, rows, tg,
                                writes, sector=fsector, sec=sec,
                                stamp=fstamp, stamp_vals=stamp_vals)
        if fstamp is not None:
            store.clock += n
        nhits = int(result.hits.sum())
        nsm = int(result.sector_miss.sum()) \
            if result.sector_miss is not None else 0
        stats = self.stats
        stats.accesses += n
        stats.hits += nhits
        stats.misses += n - nhits
        stats.sector_misses += nsm
        stats.fills += n - nhits - nsm
        stats.evictions += int((result.evicted_addr >= 0).sum())
        stats.dirty_evictions += int(result.evicted_dirty.sum())
        return result

    def _batch_slotted(self, addrs: np.ndarray, writes: np.ndarray,
                       partition: int) -> BatchResult:
        """Partitioned (or multi-slot) batch: capped kernel + replay.

        Sets whose per-slot occupancy exceeds the partition's current
        allotment, and sets where the batch's tags alias a line resident
        in a *different* slot (the scalar lookup is global across
        partitions), are replayed in stream order; every other set takes
        the kernel over the partition's slot block with ``cap`` set to
        its way allotment.
        """
        geo = self._geo
        store = self._store
        store.ensure_stamps()
        n = addrs.shape[0]
        ci = self._index
        A = geo.associativity
        ways = self._ways
        if ways is not None:
            cap = int(ways.get(partition, 0))
            slot = store.ensure_slot(partition) if cap > 0 \
                else store.slot_of.get(partition, -1)
        elif partition == UNPARTITIONED:
            cap, slot = A, 0
        else:
            cap, slot = -1, -1  # foreign partition: replay everything
        sets, tg = geo.split(addrs)
        sec = geo.sector_of(addrs) if geo.sectored else None
        clock0 = store.clock

        counts = store.count[:, ci, :]          # (P, S)
        caps_vec = np.zeros(store.num_slots, dtype=np.int64)
        if ways is not None:
            for pid, w in ways.items():
                sl = store.slot_of.get(pid, -1)
                if sl >= 0:
                    caps_vec[sl] = w
        else:
            caps_vec[0] = A
        row_flag = (counts > caps_vec[:, None]).any(axis=0)  # (S,)
        replay_sel = row_flag[sets]
        if cap < 0:
            replay_sel = np.ones(n, dtype=bool)
        else:
            # Cross-slot tag aliases: route the whole set to replay so
            # intra-set ordering survives.
            for q in range(store.num_slots):
                if q == slot:
                    continue
                cq = counts[q]
                if not cq.any():
                    continue
                tq = store.tags[q, ci]
                live = np.arange(A, dtype=np.int64)[None, :] < \
                    cq[sets][:, None]
                conflict = ((tq[sets] == tg[:, None]) & live).any(axis=1)
                if conflict.any():
                    badsets = np.zeros(geo.num_sets, dtype=bool)
                    badsets[sets[conflict]] = True
                    replay_sel |= badsets[sets]

        hits = np.zeros(n, dtype=bool)
        ev_addr = np.full(n, -1, dtype=np.int64)
        ev_dirty = np.zeros(n, dtype=bool)
        sm = np.zeros(n, dtype=bool) if geo.sectored else None
        fills = 0

        iv = np.flatnonzero(~replay_sel)
        if iv.size and cap > 0:
            ftags, fdirty, fcount, fsector, fstamp = store.flat()
            krows = np.int64(store.row_base(slot, ci)) + sets[iv]
            sv = np.arange(clock0, clock0 + n, dtype=np.int64)
            res = _batch_resolve(
                ftags, fdirty, fcount, geo, krows, tg[iv], writes[iv],
                cap=cap, sector=fsector,
                sec=sec[iv] if sec is not None else None,
                stamp=fstamp, stamp_vals=sv[iv])
            hits[iv] = res.hits
            ev_addr[iv] = res.evicted_addr
            ev_dirty[iv] = res.evicted_dirty
            ksm = 0
            if sm is not None and res.sector_miss is not None:
                sm[iv] = res.sector_miss
                ksm = int(res.sector_miss.sum())
            fills += iv.size - int(res.hits.sum()) - ksm
        # cap == 0: every non-replayed access misses without filling
        # (the scalar model raises PartitionFullError after counting
        # the access and the miss); cap < 0 leaves nothing here.

        ir = np.flatnonzero(replay_sel)
        if ir.size:
            store.set_replay_batches += 1
            rep = _SetReplay(store, geo)
            sets_l = sets[ir].tolist()
            tg_l = tg[ir].tolist()
            wr_l = writes[ir].tolist()
            sec_l = sec[ir].tolist() if sec is not None else None
            for k in range(ir.size):
                j = int(ir[k])
                try:
                    h, smiss, filled, ea, ed = rep.touch(
                        ci, sets_l[k], tg_l[k], wr_l[k], partition, True,
                        sec_l[k] if sec_l is not None else 0,
                        ways, clock0 + j)
                except PartitionFullError:
                    continue
                hits[j] = h
                if sm is not None and smiss:
                    sm[j] = True
                if filled:
                    fills += 1
                if ea >= 0:
                    ev_addr[j] = ea
                    ev_dirty[j] = bool(ed)
            rep.flush_back()

        store.clock = clock0 + n
        nh = int(hits.sum())
        nsm = int(sm.sum()) if sm is not None else 0
        stats = self.stats
        stats.accesses += n
        stats.hits += nh
        stats.misses += n - nh
        stats.sector_misses += nsm
        stats.fills += fills
        stats.evictions += int((ev_addr >= 0).sum())
        stats.dirty_evictions += int(ev_dirty.sum())
        return BatchResult(hits, ev_addr, ev_dirty, sm)

    def _access_many_scalar(self, addrs: np.ndarray, writes: np.ndarray,
                            partition: int,
                            allocate_on_miss: bool) -> BatchResult:
        n = addrs.shape[0]
        hits = np.zeros(n, dtype=bool)
        ev_addr = np.full(n, -1, dtype=np.int64)
        ev_dirty = np.zeros(n, dtype=bool)
        addrs_l = addrs.tolist()
        writes_l = writes.tolist()
        # Scalar fallback for streams the batch paths do not cover
        # (no-allocate probes, no-write-allocate configs); semantics are
        # the scalar model's, one probe at a time by design.
        for i in range(n):  # repro: noqa(hot-loop)
            try:
                result = self.access(addrs_l[i], writes_l[i],
                                     partition=partition,
                                     allocate_on_miss=allocate_on_miss)
            except PartitionFullError:
                # A full partition is a miss that cannot fill; the
                # access itself is already counted (accesses/misses)
                # before the raise, so record the outcome explicitly.
                hits[i] = False
                continue
            hits[i] = result.hit
            if result.evicted_addr is not None:
                ev_addr[i] = result.evicted_addr
                ev_dirty[i] = result.evicted_dirty
        return BatchResult(hits, ev_addr, ev_dirty)

    # -- Partitioning ----------------------------------------------------

    def set_partition(self, ways_by_partition: Optional[Dict[int, int]]
                      ) -> None:
        """Repartition in place: array state is untouched, over-full
        partitions drain lazily through the replay path."""
        if ways_by_partition is None:
            self._ways = None
            return
        validate_partition_ways(self.config.associativity,
                                ways_by_partition)
        store = self._store
        for pid, w in ways_by_partition.items():
            if w > 0:
                store.ensure_slot(pid)
        store.ensure_stamps()
        self._ways = dict(ways_by_partition)

    @property
    def partition_ways(self) -> Optional[Dict[int, int]]:
        if self._ways is None:
            return None
        return dict(self._ways)

    # -- Core queries ------------------------------------------------------

    def probe(self, addr: int) -> bool:
        """Check residency without updating LRU or stats."""
        geo = self._geo
        store = self._store
        index, tag = self._index_tag(addr)
        ci = self._index
        for s in range(store.num_slots):
            cnt = int(store.count[s, ci, index])
            if not cnt:
                continue
            matches = np.flatnonzero(store.tags[s, ci, index, :cnt] == tag)
            if matches.size:
                if geo.sectored:
                    assert store.sector is not None
                    mask = int(store.sector[s, ci, index, int(matches[0])])
                    return bool(mask >> geo.sector_of_one(addr) & 1)
                return True
        return False

    # -- Flush / invalidate ----------------------------------------------

    def drain(self, partition: Optional[int] = None,
              dirty_only: bool = False) -> Tuple[np.ndarray, int, int]:
        """Vectorized invalidation; returns (dirty line addrs, lines
        invalidated, dirty lines).

        ``partition`` restricts to one partition's lines (its slot),
        ``dirty_only`` writes back and removes only dirty lines, keeping
        clean lines resident in LRU order.
        """
        geo = self._geo
        store = self._store
        ci = self._index
        A = geo.associativity
        if partition is None:
            slots = list(range(store.num_slots))
        else:
            s = store.slot_of.get(partition, -1)
            if s < 0:
                return np.empty(0, dtype=np.int64), 0, 0
            slots = [s]
        addr_parts: List[np.ndarray] = []
        invalidated = 0
        ndirty = 0
        for s in slots:
            cnt = store.count[s, ci]
            if not cnt.any():
                continue
            live = np.arange(A, dtype=np.int64)[None, :] < cnt[:, None]
            dsel = store.dirty[s, ci] & live
            drows, dslots = np.nonzero(dsel)
            if drows.size:
                addr_parts.append(geo.rebuild(
                    drows, store.tags[s, ci][drows, dslots]))
            ndirty += int(drows.size)
            if not dirty_only:
                invalidated += int(cnt.sum())
                cnt[:] = 0
                continue
            invalidated += int(drows.size)
            keep = live & ~dsel
            krows, kslots = np.nonzero(keep)
            nkeep = np.bincount(krows, minlength=geo.num_sets)
            offs = np.zeros(geo.num_sets, dtype=np.int64)
            np.cumsum(nkeep[:-1], out=offs[1:])
            newslot = np.arange(krows.size, dtype=np.int64) - offs[krows]
            kt = store.tags[s, ci][krows, kslots]
            store.tags[s, ci][krows, newslot] = kt
            store.dirty[s, ci][krows, newslot] = False
            if store.sector is not None:
                ks = store.sector[s, ci][krows, kslots]
                store.sector[s, ci][krows, newslot] = ks
            if store.stamp is not None:
                kst = store.stamp[s, ci][krows, kslots]
                store.stamp[s, ci][krows, newslot] = kst
            cnt[:] = nkeep
        if addr_parts:
            dirty_addrs = np.concatenate(addr_parts)
        else:
            dirty_addrs = np.empty(0, dtype=np.int64)
        return dirty_addrs, invalidated, ndirty

    def flush(self) -> Tuple[int, int]:
        _, invalidated, ndirty = self.drain()
        return invalidated, ndirty

    def invalidate(self, addr: int) -> bool:
        store = self._store
        index, tag = self._index_tag(addr)
        ci = self._index
        for s in range(store.num_slots):
            cnt = int(store.count[s, ci, index])
            if not cnt:
                continue
            matches = np.flatnonzero(store.tags[s, ci, index, :cnt] == tag)
            if not matches.size:
                continue
            k = int(matches[0])
            trow = store.tags[s, ci, index]
            drow = store.dirty[s, ci, index]
            trow[k:cnt - 1] = trow[k + 1:cnt].copy()
            drow[k:cnt - 1] = drow[k + 1:cnt].copy()
            if store.sector is not None:
                srow = store.sector[s, ci, index]
                srow[k:cnt - 1] = srow[k + 1:cnt].copy()
            if store.stamp is not None:
                strow = store.stamp[s, ci, index]
                strow[k:cnt - 1] = strow[k + 1:cnt].copy()
            store.count[s, ci, index] = cnt - 1
            return True
        return False

    def invalidate_partition(self, partition: int) -> Tuple[int, int]:
        _, invalidated, ndirty = self.drain(partition=partition)
        return invalidated, ndirty

    # -- Introspection ----------------------------------------------------

    def occupancy(self) -> int:
        return int(self._store.count[:, self._index].sum())

    def occupancy_by_partition(self) -> Dict[int, int]:
        store = self._store
        out: Dict[int, int] = {}
        for s in range(store.num_slots):
            total = int(store.count[s, self._index].sum())
            if total:
                out[store.slot_ids[s]] = total
        return out

    def resident_lines(self) -> Iterator[Tuple[int, CacheLine]]:
        """Yield ``(line_address, line)``, LRU -> MRU within each set."""
        geo = self._geo
        store = self._store
        ci = self._index
        sector = store.sector
        stamp = store.stamp
        for index in range(geo.num_sets):
            entries: List[Tuple[int, int, int]] = []
            for s in range(store.num_slots):
                cnt = int(store.count[s, ci, index])
                for k in range(cnt):
                    st = int(stamp[s, ci, index, k]) \
                        if stamp is not None else k
                    entries.append((st, s, k))
            entries.sort()
            for st, s, k in entries:
                tag = int(store.tags[s, ci, index, k])
                yield geo.rebuild_one(index, tag), CacheLine(
                    tag=tag,
                    dirty=bool(store.dirty[s, ci, index, k]),
                    partition=store.slot_ids[s],
                    sector_valid=int(sector[s, ci, index, k])
                    if sector is not None else 0)

    def dirty_addrs(self) -> np.ndarray:
        """Line addresses of every dirty resident line."""
        geo = self._geo
        store = self._store
        ci = self._index
        A = geo.associativity
        parts: List[np.ndarray] = []
        for s in range(store.num_slots):
            cnt = store.count[s, ci]
            if not cnt.any():
                continue
            live = np.arange(A, dtype=np.int64)[None, :] < cnt[:, None]
            rows, slots = np.nonzero(store.dirty[s, ci] & live)
            if rows.size:
                parts.append(geo.rebuild(
                    rows, store.tags[s, ci][rows, slots]))
        if parts:
            return np.concatenate(parts)
        return np.empty(0, dtype=np.int64)

    def resident_addrs(self) -> np.ndarray:
        """Line addresses of every resident line."""
        geo = self._geo
        store = self._store
        ci = self._index
        parts: List[np.ndarray] = []
        for s in range(store.num_slots):
            cnt = store.count[s, ci]
            total = int(cnt.sum())
            if not total:
                continue
            sets = np.repeat(np.arange(geo.num_sets, dtype=np.int64), cnt)
            offs = np.zeros(geo.num_sets, dtype=np.int64)
            np.cumsum(cnt[:-1], out=offs[1:])
            slots = np.arange(total, dtype=np.int64) - offs[sets]
            parts.append(geo.rebuild(sets, store.tags[s, ci][sets, slots]))
        if parts:
            return np.concatenate(parts)
        return np.empty(0, dtype=np.int64)

    def reset(self) -> None:
        self._store.count[:, self._index] = 0
        self.stats.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"VectorCache(name={self.name!r}, "
                f"size={self.config.size_bytes}, "
                f"ways={self.config.associativity}, "
                f"occupancy={self.occupancy()}, "
                f"partitioned={self._ways is not None})")

class VectorBank:
    """A stack of :class:`VectorCache` slices sharing one slot store.

    The engine groups an epoch's accesses by flat cache index and
    resolves them against the shared arrays in one kernel invocation:
    :meth:`access_many_grouped` for uniform single-stage epochs, and
    :meth:`access_many_staged` for partitioned two-stage route plans
    (static/dynamic/SAC's SM-side mode), which decomposes the epoch
    into three row-disjoint phases — stage-0 kernel, stream-order
    replay of flagged sets, then the stage-1 + single-stage kernel —
    each exact because no row is touched by more than one phase.
    """

    def __init__(self, config: CacheConfig, names: Sequence[str]) -> None:
        self.config = config
        self._store = _SlotStore(config, len(names))
        self.caches = [
            VectorCache(config, name, _store=self._store, _index=i)
            for i, name in enumerate(names)]
        self._geo = _geometry_of(config)
        #: Reuse encodings built and lane replays resolved against them
        #: by the shared-stream entry points (host telemetry).
        self.shared_encodings = 0
        self.shared_replays = 0
        #: Rounds resolved by one lane-major batched replay call (>= 2
        #: lanes folded into a single kernel pass) and the wall seconds
        #: spent inside replay kernel passes (host telemetry).
        self.lane_batched_rounds = 0
        self.replay_seconds = 0.0

    @property
    def set_replay_batches(self) -> int:
        """Stream-order interpreter batches the shared store resolved."""
        return self._store.set_replay_batches

    def access_many_grouped(self, cache_idx: np.ndarray, addrs: np.ndarray,
                            writes: np.ndarray,
                            lanes: Optional[Sequence[Tuple[int, int]]] = None
                            ) -> Optional[BatchResult]:
        """Resolve one uniform epoch across every cache of the bank.

        ``cache_idx`` maps each access to its flat cache index.  Returns
        None (caller falls back) when any cache cannot take the plain
        batch path — partitioned ways, foreign-slot residents,
        no-write-allocate configs — so behaviour always matches the
        scalar model.

        ``lanes`` restricts the eligibility gate (and the per-cache
        stats update) to the given ``[lo, hi)`` cache ranges — the lanes
        this call actually probes.  Lanes are row-disjoint in the shared
        store, so a way-partitioned lane elsewhere in a stacked bank
        must not force *this* lane off the kernel.  Omitted, the whole
        bank is one lane (the single-engine behaviour).
        """
        if not _sanitize.enabled():
            return self._grouped_epoch(cache_idx, addrs, writes, lanes)
        site = "VectorBank.access_many_grouped"
        n = addrs.shape[0]
        _sanitize.expect(site, "addrs", addrs, "int64", n)
        _sanitize.expect(site, "writes", writes, "bool", n)
        _sanitize.expect(site, "cache_idx", cache_idx, "int64", n)
        with _sanitize.guarded(site):
            return self._grouped_epoch(cache_idx, addrs, writes, lanes)

    def _grouped_epoch(self, cache_idx: np.ndarray, addrs: np.ndarray,
                       writes: np.ndarray,
                       lanes: Optional[Sequence[Tuple[int, int]]]
                       ) -> Optional[BatchResult]:
        """Kernel body of :meth:`access_many_grouped`."""
        geo = self._geo
        store = self._store
        if not geo.write_allocate:
            return None
        ranges = tuple(lanes) if lanes is not None else \
            ((0, len(self.caches)),)
        # Per-lane gate: each probed lane's caches must be unpartitioned
        # and foreign-free (no resident line outside slot 0).
        for lo, hi in ranges:
            if any(c._ways is not None for c in self.caches[lo:hi]):
                return None
            if store.num_slots > 1 and store.count[1:, lo:hi].any():
                return None
        sets, tg = geo.split(addrs)
        rows = cache_idx * np.int64(geo.num_sets) + sets
        n = addrs.shape[0]
        ftags, fdirty, fcount, fsector, fstamp = store.flat()
        sec = geo.sector_of(addrs) if geo.sectored else None
        stamp_vals = None
        if fstamp is not None:
            stamp_vals = np.arange(store.clock, store.clock + n,
                                   dtype=np.int64)
        result = _batch_resolve(ftags, fdirty, fcount, geo, rows, tg,
                                writes, sector=fsector, sec=sec,
                                stamp=fstamp, stamp_vals=stamp_vals)
        if fstamp is not None:
            store.clock += n
        num = len(self.caches)
        acc = np.bincount(cache_idx, minlength=num)
        hit = np.bincount(cache_idx[result.hits], minlength=num)
        ev = np.bincount(cache_idx[result.evicted_addr >= 0],
                         minlength=num)
        dev = np.bincount(cache_idx[result.evicted_dirty], minlength=num)
        if result.sector_miss is not None:
            smc = np.bincount(cache_idx[result.sector_miss], minlength=num)
        else:
            smc = np.zeros(num, dtype=np.int64)
        for lo, hi in ranges:
            for i in range(lo, hi):
                stats = self.caches[i].stats
                ni = int(acc[i])
                nhits = int(hit[i])
                nsm = int(smc[i])
                stats.accesses += ni
                stats.hits += nhits
                stats.misses += ni - nhits
                stats.sector_misses += nsm
                stats.fills += ni - nhits - nsm
                stats.evictions += int(ev[i])
                stats.dirty_evictions += int(dev[i])
        return result

    def access_many_grouped_shared(
            self, calls: Sequence[GroupedLaneCall]
    ) -> List[Optional[BatchResult]]:
        """Resolve several lanes' uniform epochs, encoding once per stream.

        Calls carrying equal ``stream`` ids replay one shared reuse
        encoding at their own row offsets, so a round over L lanes
        sharing a trace costs O(unique streams) encoding work plus O(L)
        replays.  Entries that fail the plain-batch gate come back as
        ``None`` (the caller falls back for those lanes only); the
        other lanes still share.
        """
        if not _sanitize.enabled():
            return self._grouped_shared_epochs(calls)
        site = "VectorBank.access_many_grouped_shared"
        for call in calls:
            n = call.addrs.shape[0]
            _sanitize.expect(site, "addrs", call.addrs, "int64", n)
            _sanitize.expect(site, "writes", call.writes, "bool", n)
            _sanitize.expect(site, "cache_idx", call.cache_idx, "int64", n)
        with _sanitize.guarded(site):
            return self._grouped_shared_epochs(calls)

    def _grouped_shared_epochs(
            self, calls: Sequence[GroupedLaneCall]
    ) -> List[Optional[BatchResult]]:
        """Kernel body of :meth:`access_many_grouped_shared`.

        Same-stream lanes are folded into one lane-major replay
        (:func:`_replay_encoding_lanes`): per round the encoding pass
        runs once per unique stream and the replay pass once per
        *stream group*, not once per lane.  Per-lane clock bases follow
        call order, exactly as the sequential path stamps them — lanes
        own disjoint store rows, so batched state writes commute.
        """
        geo = self._geo
        store = self._store
        results: List[Optional[BatchResult]] = [None] * len(calls)
        if not geo.write_allocate:
            return results
        S = geo.num_sets
        # Per-lane eligibility gate, then stream grouping of survivors.
        eligible: List[int] = []
        for k, call in enumerate(calls):
            lo, hi = call.lane
            if any(c._ways is not None for c in self.caches[lo:hi]):
                continue
            if store.num_slots > 1 and store.count[1:, lo:hi].any():
                continue
            eligible.append(k)
        if not eligible:
            return results
        groups: Dict[int, List[int]] = {}
        for k in eligible:
            groups.setdefault(calls[k].stream, []).append(k)
        bases: Dict[int, int] = {}
        clock = store.clock
        if store.stamp is not None:
            for k in eligible:
                bases[k] = clock
                clock += calls[k].addrs.shape[0]
            store.clock = clock
        encodings: Dict[int, Tuple[_StreamEncoding, np.ndarray,
                                   Optional[np.ndarray]]] = {}
        for sid, members in groups.items():
            first_call = calls[members[0]]
            cached = encodings.get(sid)
            if cached is None:
                sets, tg = geo.split(first_call.addrs)
                rows = first_call.cache_idx * np.int64(S) + sets
                sec = geo.sector_of(first_call.addrs) if geo.sectored \
                    else None
                cached = (_encode_stream(rows, tg, first_call.writes,
                                         len(self.caches) * S, sec=sec),
                          tg, sec)
                encodings[sid] = cached
                self.shared_encodings += 1
            enc, tg, sec = cached
            n = first_call.addrs.shape[0]
            lanes_lo = [calls[k].lane[0] for k in members]
            batched = n > 0 and len(members) > 1 and \
                len(set(lanes_lo)) == len(lanes_lo)
            ftags, fdirty, fcount, fsector, fstamp = store.flat()
            t0 = time.perf_counter()
            if batched:
                L = len(members)
                lenc = _tile_encoding_lanes(enc, [lo * S
                                                  for lo in lanes_lo])
                stamp_vals = None
                if fstamp is not None:
                    stamp_vals = np.concatenate(
                        [np.arange(bases[k], bases[k] + n,
                                   dtype=np.int64) for k in members])
                hits = np.zeros(L * n, dtype=bool)
                ev_addr = np.full(L * n, -1, dtype=np.int64)
                ev_dirty = np.zeros(L * n, dtype=bool)
                sm_out = np.zeros(L * n, dtype=bool) \
                    if fsector is not None else None
                _replay_encoding_lanes(lenc, ftags, fdirty, fcount, geo,
                                       geo.associativity, hits, ev_addr,
                                       ev_dirty, sector=fsector,
                                       stamp=fstamp,
                                       stamp_vals=stamp_vals,
                                       sm_out=sm_out)
                self.shared_replays += L
                self.lane_batched_rounds += 1
                for j, k in enumerate(members):
                    sl = slice(j * n, (j + 1) * n)
                    results[k] = BatchResult(
                        hits[sl], ev_addr[sl], ev_dirty[sl],
                        sm_out[sl] if sm_out is not None else None)
            else:
                for k in members:
                    ftags, fdirty, fcount, fsector, fstamp = store.flat()
                    stamp_vals = None
                    if fstamp is not None:
                        stamp_vals = np.arange(bases[k], bases[k] + n,
                                               dtype=np.int64)
                    hits = np.zeros(n, dtype=bool)
                    ev_addr = np.full(n, -1, dtype=np.int64)
                    ev_dirty = np.zeros(n, dtype=bool)
                    sm_out = np.zeros(n, dtype=bool) \
                        if fsector is not None else None
                    if n:
                        _replay_encoding(
                            enc, ftags, fdirty, fcount, geo,
                            calls[k].lane[0] * S, geo.associativity,
                            hits, ev_addr, ev_dirty, sector=fsector,
                            stamp=fstamp, stamp_vals=stamp_vals,
                            sm_out=sm_out)
                    self.shared_replays += 1
                    results[k] = BatchResult(hits, ev_addr, ev_dirty,
                                             sm_out)
            self.replay_seconds += time.perf_counter() - t0
            for k in members:
                self._charge_lane_stats(calls[k].lane, calls[k].cache_idx,
                                        results[k])
        return results

    def _charge_lane_stats(self, lane: Tuple[int, int],
                           cache_idx: np.ndarray,
                           result: Optional[BatchResult]) -> None:
        """Fold one lane's batch outcome into its per-cache stats."""
        if result is None:
            return
        lo, hi = lane
        width = hi - lo
        acc = np.bincount(cache_idx, minlength=width)
        hit = np.bincount(cache_idx[result.hits], minlength=width)
        ev = np.bincount(cache_idx[result.evicted_addr >= 0],
                         minlength=width)
        dev = np.bincount(cache_idx[result.evicted_dirty],
                          minlength=width)
        if result.sector_miss is not None:
            smc = np.bincount(cache_idx[result.sector_miss],
                              minlength=width)
        else:
            smc = np.zeros(width, dtype=np.int64)
        for i in range(lo, hi):
            stats = self.caches[i].stats
            ni = int(acc[i - lo])
            nhits = int(hit[i - lo])
            nsm = int(smc[i - lo])
            stats.accesses += ni
            stats.hits += nhits
            stats.misses += ni - nhits
            stats.sector_misses += nsm
            stats.fills += ni - nhits - nsm
            stats.evictions += int(ev[i - lo])
            stats.dirty_evictions += int(dev[i - lo])

    def _partition_caps(self, ways_list: Sequence[Optional[Dict[int, int]]]
                        ) -> np.ndarray:
        """(cache, slot) way-allotment table for the given lane caches.

        Out-of-lane caches (``None`` entries) keep zero capacity: they
        are never addressed by the call building the table.
        """
        store = self._store
        cap_of = np.zeros((len(self.caches), store.num_slots),
                          dtype=np.int64)
        for ci, w in enumerate(ways_list):
            if w is None:
                continue
            for pid, ww in w.items():
                sl = store.slot_of.get(pid, -1)
                if sl >= 0:
                    cap_of[ci, sl] = ww
        return cap_of

    def _slots_for(self, parts: np.ndarray) -> np.ndarray:
        """Map per-access partition ids to store slot indices (-1: none).

        Iterates the slot map (a handful of partitions) instead of the
        access array's unique values — no 32k-element sort per epoch.
        """
        out = np.full(parts.shape, -1, dtype=np.int64)
        for pid, slot in self._store.slot_of.items():
            out[parts == pid] = slot
        return out

    def _flag_replay_rows(self, flagged: np.ndarray, idx0: np.ndarray,
                          sets: np.ndarray, tg: np.ndarray,
                          slot0: np.ndarray, idx1: np.ndarray,
                          slot1: np.ndarray, two_stage: np.ndarray,
                          ranges: Sequence[Tuple[int, int]]
                          ) -> Tuple[np.ndarray, np.ndarray]:
        """Cross-slot alias scan plus replay-set closure for one epoch.

        Extends ``flagged`` (rows the capacity model cannot describe)
        with (cache, set) pairs holding a cross-slot alias of a probed
        tag, then closes the set: a replayed access claims *all* rows
        of the (cache, set) pairs it touches, so kernel phases and the
        replay interpreter never share a row.  Returns the closed table
        and the per-access replay mask.  Cache indices are absolute;
        ``ranges`` are the probed cache ranges — slots with no occupancy
        inside them cannot alias any probed tag and are skipped.
        """
        store = self._store
        A = self._geo.associativity
        n = idx0.shape[0]
        active = []
        for q in range(store.num_slots):
            if any(store.count[q][lo:hi].any() for lo, hi in ranges):
                active.append(q)
        if active and n:
            # Streams reuse lines heavily, so the per-slot tag scans run
            # over the unique (cache, set, tag) probes — typically far
            # fewer than the accesses — and both probe stages share one
            # pass.  Residency per slot lands in a bitmask; an access
            # aliases when any slot other than its own holds its tag.
            ts = np.flatnonzero(two_stage)
            rows_all = np.concatenate((idx0, idx1[ts]))
            sets_all = np.concatenate((sets, sets[ts]))
            tg_all = np.concatenate((tg, tg[ts]))
            slots_all = np.concatenate((slot0, slot1[ts]))
            num_sets = store.count.shape[-1]
            key_rs = rows_all * num_sets + sets_all
            # A single packed sort key beats a two-key lexsort ~5x;
            # fall back only when the tag span cannot pack exactly.
            tmin = int(tg_all.min())
            span = int(tg_all.max()) - tmin + 1
            if span <= (1 << 62) // (int(key_rs.max()) + 1):
                key = key_rs * np.int64(span) + (tg_all - np.int64(tmin))
                order = np.argsort(key)
                ks = key[order]
                head = np.ones(ks.shape[0], dtype=bool)
                head[1:] = ks[1:] != ks[:-1]
            else:
                order = np.lexsort((tg_all, key_rs))
                ko, to = key_rs[order], tg_all[order]
                head = np.ones(ko.shape[0], dtype=bool)
                head[1:] = (ko[1:] != ko[:-1]) | (to[1:] != to[:-1])
            uniq = order[head]
            inv = np.empty(order.shape[0], dtype=np.int64)
            inv[order] = np.cumsum(head) - 1
            ur, us, ut = rows_all[uniq], sets_all[uniq], tg_all[uniq]
            ar = np.arange(A, dtype=np.int64)[None, :]
            hit_mask = np.zeros(ur.shape[0], dtype=np.int64)
            for q in active:
                live = ar < store.count[q][ur, us][:, None]
                hit = ((store.tags[q][ur, us] == ut[:, None])
                       & live).any(axis=1)
                hit_mask[hit] |= np.int64(1) << q
            own = np.where(slots_all >= 0,
                           np.int64(1) << np.maximum(slots_all, 0),
                           np.int64(0))
            alias = (hit_mask[inv] & ~own) != 0
            if alias.any():
                flagged[rows_all[alias], sets_all[alias]] = True
        replay = np.zeros(n, dtype=bool)
        for _ in range(n + 1):
            r0 = flagged[idx0, sets]
            r1 = np.zeros(n, dtype=bool)
            r1[two_stage] = flagged[idx1[two_stage], sets[two_stage]]
            replay = r0 | r1
            nf = flagged.copy()
            nf[idx0[replay], sets[replay]] = True
            ts_r = replay & two_stage
            nf[idx1[ts_r], sets[ts_r]] = True
            if np.array_equal(nf, flagged):
                break
            flagged = nf
        return flagged, replay

    def _drain_rows_static(self, cap_of: np.ndarray, count0: np.ndarray
                           ) -> Tuple[np.ndarray, np.ndarray]:
        """State-side drain eligibility per (cache, set) row.

        A row qualifies when exactly one slot holds more lines than its
        allotment (the *over* slot), the cache's allotments sum to the
        associativity (so under-slot growth and over-slot surplus are
        two views of one quantity) and the over slot keeps at least one
        way.  Returns the candidate table and the per-row over slot.
        """
        A = self._geo.associativity
        C = len(self.caches)
        over = count0 > cap_of.T[:, :, None]          # (P, C, S)
        o_slot = over.argmax(axis=0)                  # (C, S)
        cand = over.sum(axis=0) == 1
        cand &= (cap_of.sum(axis=1) == A)[:, None]
        cand &= np.take_along_axis(
            cap_of, o_slot.reshape(C, -1), axis=1).reshape(o_slot.shape) \
            > 0
        return cand, o_slot

    def _drain_viol(self, o_slot: np.ndarray, idx0: np.ndarray,
                    sets: np.ndarray, slot0: np.ndarray,
                    idx1: np.ndarray, slot1: np.ndarray,
                    two_stage: np.ndarray) -> np.ndarray:
        """Stream-side drain disqualifications per (cache, set) row.

        The drain model needs the phase split to mirror the interpreter
        exactly: stage-0 probes of a drained row must target under
        slots (they run in phase 1, before any drain) and later-phase
        probes must target the over slot (they run in the multi-pass
        phase 3, between drains).  Any probe on the wrong side marks
        the row for the interpreter instead.
        """
        viol = np.zeros(o_slot.shape, dtype=bool)
        o0 = o_slot[idx0, sets]
        m = two_stage & (slot0 == o0)
        viol[idx0[m], sets[m]] = True
        m = ~two_stage & (slot0 != o0)
        viol[idx0[m], sets[m]] = True
        m = two_stage & (slot1 != o_slot[idx1, sets])
        viol[idx1[m], sets[m]] = True
        return viol

    def _drain_events(self, drains: np.ndarray, o_slot: np.ndarray,
                      count0: np.ndarray, cap0: np.ndarray,
                      idx0: np.ndarray, sets: np.ndarray,
                      two_stage: np.ndarray, replay: np.ndarray,
                      f0: np.ndarray, krow0_abs: np.ndarray
                      ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                 np.ndarray, np.ndarray]:
        """Order one epoch's over-slot drains from phase-1 growth fills.

        An under-slot fill that lands in a *full* row (total occupancy
        at the associativity) evicts the over slot's LRU line instead
        of appending — the scalar interpreter's over-eviction.  Phase 1
        has already solved the under slots natively; this derives, per
        drained row, which of its fills grew occupancy (rank among the
        row's fills below the allotment headroom), splits them into
        free appends and drains at the row's free-slot cutoff, and
        returns the drain events as (stream position, over kernel row,
        row id, drain index) plus the per-row over-slot occupancy
        snapshot that phase 3 uses as its pass-0 capacity.
        """
        geo = self._geo
        S = geo.num_sets
        A = geo.associativity
        C = len(self.caches)
        store = self._store
        fcount0 = count0.reshape(-1)
        rid_all = np.arange(C * S, dtype=np.int64)
        occ_over = np.take_along_axis(
            count0.reshape(store.num_slots, C * S),
            o_slot.reshape(1, C * S), axis=0)[0]
        over_krow = o_slot.reshape(-1) * np.int64(C * S) + rid_all
        empty = np.zeros(0, dtype=np.int64)
        gf = np.flatnonzero(f0 & two_stage & ~replay & drains[idx0, sets])
        if not gf.size:
            return empty, empty, empty, empty, occ_over

        def _seg_rank(keys: np.ndarray) -> np.ndarray:
            # Rank of each element within its key group, stream order.
            order = np.argsort(keys, kind="stable")
            ko = keys[order]
            m = ko.size
            pos = np.arange(m, dtype=np.int64)
            starts = np.where(np.r_[True, ko[1:] != ko[:-1]], pos, 0)
            ranks = pos - np.maximum.accumulate(starts)
            out = np.empty(m, dtype=np.int64)
            out[order] = ranks
            return out

        # Growth fills: the first (cap - occupancy) fills per under
        # kernel row raise its occupancy; later fills replace in-slot.
        rows_u = krow0_abs[gf]
        growth = _seg_rank(rows_u) < cap0[gf] - fcount0[rows_u]
        gfi = gf[growth]
        if not gfi.size:
            return empty, empty, empty, empty, occ_over
        # Merge growth fills per (cache, set) row: below the row's free
        # space they append; past it each one drains the over slot.
        rid_g = idx0[gfi] * np.int64(S) + sets[gfi]
        cut = A - count0.sum(axis=0).reshape(-1)[rid_g]
        t_of = _seg_rank(rid_g) - cut
        dsel = t_of >= 0
        return (gfi[dsel], over_krow[rid_g[dsel]], rid_g[dsel],
                t_of[dsel], occ_over)

    def _apply_drain(self, rows_d: np.ndarray, pos_d: np.ndarray,
                     ea0: np.ndarray, ed0: np.ndarray) -> None:
        """Evict each row's over-slot LRU line into its draining access.

        Kernel rows keep physical order as recency order (index 0 is
        the LRU side), so the drain is a one-line shift: report line 0
        as the eviction of the under-slot fill at ``pos_d``, slide the
        row down and shrink its count.
        """
        store = self._store
        geo = self._geo
        ftags, fdirty, fcount, fsector, fstamp = store.flat()
        ea0[pos_d] = geo.rebuild(rows_d % np.int64(geo.num_sets),
                                 ftags[rows_d, 0])
        ed0[pos_d] = fdirty[rows_d, 0]
        ftags[rows_d, :-1] = ftags[rows_d, 1:]
        fdirty[rows_d, :-1] = fdirty[rows_d, 1:]
        if fsector is not None:
            fsector[rows_d, :-1] = fsector[rows_d, 1:]
        if fstamp is not None:
            fstamp[rows_d, :-1] = fstamp[rows_d, 1:]
        fcount[rows_d] -= 1

    def _replay_flagged(self, ir: np.ndarray, idx0: np.ndarray,
                        idx1: np.ndarray, sets: np.ndarray,
                        tg: np.ndarray, writes: np.ndarray,
                        sec: Optional[np.ndarray], part0: np.ndarray,
                        part1: np.ndarray, two_stage: np.ndarray,
                        ways_list: Sequence[Optional[Dict[int, int]]],
                        clock0: int, h0: np.ndarray, sm0: np.ndarray,
                        f0: np.ndarray, ea0: np.ndarray, ed0: np.ndarray,
                        h1: np.ndarray, sm1: np.ndarray, f1: np.ndarray,
                        ea1: np.ndarray, ed1: np.ndarray) -> None:
        """Stream-order replay of flagged sets (both stages)."""
        self._store.set_replay_batches += 1
        rep = _SetReplay(self._store, self._geo)
        touch = rep.touch
        # Gather the replayed subset into plain lists once; per-access
        # numpy scalar reads/writes dominate this loop otherwise.
        ir_l = ir.tolist()
        i0_l = idx0.take(ir).tolist()
        i1_l = idx1.take(ir).tolist()
        st_l = sets.take(ir).tolist()
        tg_l = tg.take(ir).tolist()
        w_l = writes.take(ir).tolist()
        sx_l = sec.take(ir).tolist() if sec is not None else None
        p0_l = part0.take(ir).tolist()
        p1_l = part1.take(ir).tolist()
        ts_l = two_stage.take(ir).tolist()
        out0: List[Tuple[bool, bool, bool, int, int]] = []
        j1: List[int] = []
        out1: List[Tuple[bool, bool, bool, int, int]] = []
        for k in range(len(ir_l)):
            j = ir_l[k]
            st_i = st_l[k]
            t_i = tg_l[k]
            w_i = bool(w_l[k])
            sx = sx_l[k] if sx_l is not None else 0
            ci0 = i0_l[k]
            w0 = ways_list[ci0]
            assert w0 is not None  # addressed caches are in-lane
            try:
                r = touch(ci0, st_i, t_i, w_i, p0_l[k], True, sx,
                          w0, clock0 + j)
            except PartitionFullError:
                r = (False, False, False, -1, 0)
            out0.append(r)
            if ts_l[k] and not r[0]:
                ci1 = i1_l[k]
                w1 = ways_list[ci1]
                assert w1 is not None  # addressed caches are in-lane
                try:
                    r = touch(ci1, st_i, t_i, w_i, p1_l[k], True, sx,
                              w1, clock0 + j)
                except PartitionFullError:
                    r = (False, False, False, -1, 0)
                j1.append(j)
                out1.append(r)
        rep.flush_back()
        if out0:
            a0 = np.array(out0, dtype=np.int64)
            h0[ir] = a0[:, 0].astype(bool)
            sm0[ir] = a0[:, 1].astype(bool)
            f0[ir] = a0[:, 2].astype(bool)
            ea0[ir] = a0[:, 3]
            ed0[ir] = a0[:, 4].astype(bool)
        if out1:
            a1 = np.array(out1, dtype=np.int64)
            jj = np.array(j1, dtype=np.int64)
            h1[jj] = a1[:, 0].astype(bool)
            sm1[jj] = a1[:, 1].astype(bool)
            f1[jj] = a1[:, 2].astype(bool)
            ea1[jj] = a1[:, 3]
            ed1[jj] = a1[:, 4].astype(bool)

    def _staged_outcome(self, ranges: Sequence[Tuple[int, int]],
                        idx0: np.ndarray, idx1: np.ndarray,
                        two_stage: np.ndarray, h0: np.ndarray,
                        sm0: np.ndarray, f0: np.ndarray, ea0: np.ndarray,
                        ed0: np.ndarray, h1: np.ndarray, sm1: np.ndarray,
                        f1: np.ndarray, ea1: np.ndarray, ed1: np.ndarray
                        ) -> StagedResult:
        """Charge per-cache stats and assemble one epoch's outcome.

        Stage 0 probes every access at ``idx0``; stage 1 probes
        two-stage accesses whose stage-0 probe missed.  Cache indices
        are absolute; the returned eviction indices are too.
        """
        C = len(self.caches)
        n = idx0.shape[0]
        p1 = two_stage & ~h0
        acc0 = np.bincount(idx0, minlength=C)
        hit0 = np.bincount(idx0[h0], minlength=C)
        smc0 = np.bincount(idx0[sm0], minlength=C)
        fil0 = np.bincount(idx0[f0], minlength=C)
        ev0 = np.bincount(idx0[ea0 >= 0], minlength=C)
        dev0 = np.bincount(idx0[ed0], minlength=C)
        acc1 = np.bincount(idx1[p1], minlength=C)
        hit1 = np.bincount(idx1[p1 & h1], minlength=C)
        smc1 = np.bincount(idx1[sm1], minlength=C)
        fil1 = np.bincount(idx1[f1], minlength=C)
        ev1 = np.bincount(idx1[ea1 >= 0], minlength=C)
        dev1 = np.bincount(idx1[ed1], minlength=C)
        for lo, hi in ranges:
            for ci in range(lo, hi):
                st = self.caches[ci].stats
                a = int(acc0[ci] + acc1[ci])
                h = int(hit0[ci] + hit1[ci])
                st.accesses += a
                st.hits += h
                st.misses += a - h
                st.sector_misses += int(smc0[ci] + smc1[ci])
                st.fills += int(fil0[ci] + fil1[ci])
                st.evictions += int(ev0[ci] + ev1[ci])
                st.dirty_evictions += int(dev0[ci] + dev1[ci])
        hs = np.full(n, -1, dtype=np.int64)
        hs[p1 & h1] = 1
        hs[h0] = 0
        ev_cache = np.concatenate([idx0[ed0], idx1[ed1]])
        ev_addrs = np.concatenate([ea0[ed0], ea1[ed1]])
        return StagedResult(hs, ev_cache, ev_addrs)

    def access_many_staged(self, addrs: np.ndarray, writes: np.ndarray,
                           idx0: np.ndarray, part0: np.ndarray,
                           two_stage: np.ndarray, idx1: np.ndarray,
                           part1: np.ndarray,
                           lanes: Optional[Sequence[Tuple[int, int]]] = None
                           ) -> Optional[StagedResult]:
        """Resolve one partitioned two-stage epoch on the kernel.

        Every access probes cache ``idx0`` with partition ``part0``;
        where ``two_stage`` and the first probe misses, it then probes
        ``idx1`` with ``part1``.  All caches must be way-partitioned.
        Returns None when the epoch cannot be decomposed into
        row-disjoint phases (the engine's probe loop handles it).

        ``lanes`` narrows the all-partitioned requirement (and the stats
        update) to the probed ``[lo, hi)`` cache ranges of a stacked
        bank.  Out-of-lane caches keep a zero way allotment in the
        capacity table; ``idx0``/``idx1`` never address them, and the
        replay closure only propagates through addressed (cache, set)
        pairs, so their flagged sets are inert.
        """
        if not _sanitize.enabled():
            return self._staged_epoch(addrs, writes, idx0, part0,
                                      two_stage, idx1, part1, lanes)
        site = "VectorBank.access_many_staged"
        n = addrs.shape[0]
        _sanitize.expect(site, "addrs", addrs, "int64", n)
        _sanitize.expect(site, "writes", writes, "bool", n)
        _sanitize.expect(site, "idx0", idx0, "int64", n)
        _sanitize.expect(site, "part0", part0, "int64", n)
        _sanitize.expect(site, "two_stage", two_stage, "bool", n)
        _sanitize.expect(site, "idx1", idx1, "int64", n)
        _sanitize.expect(site, "part1", part1, "int64", n)
        with _sanitize.guarded(site):
            return self._staged_epoch(addrs, writes, idx0, part0,
                                      two_stage, idx1, part1, lanes)

    def _staged_epoch(self, addrs: np.ndarray, writes: np.ndarray,
                      idx0: np.ndarray, part0: np.ndarray,
                      two_stage: np.ndarray, idx1: np.ndarray,
                      part1: np.ndarray,
                      lanes: Optional[Sequence[Tuple[int, int]]]
                      ) -> Optional[StagedResult]:
        """Kernel body of :meth:`access_many_staged`."""
        if not self.config.write_allocate or not self.caches:
            return None
        ranges = tuple(lanes) if lanes is not None else \
            ((0, len(self.caches)),)
        ways_list: List[Optional[Dict[int, int]]] = \
            [None] * len(self.caches)
        for lo, hi in ranges:
            for ci in range(lo, hi):
                w = self.caches[ci]._ways
                if w is None:
                    return None
                ways_list[ci] = w
        store = self._store
        store.ensure_stamps()
        geo = self._geo
        C = len(self.caches)
        S = geo.num_sets
        n = addrs.shape[0]
        cap_of = self._partition_caps(ways_list)
        slot0 = self._slots_for(part0)
        slot1 = self._slots_for(part1)
        cap0 = np.where(slot0 >= 0, cap_of[idx0, np.maximum(slot0, 0)], 0)
        cap1 = np.where(slot1 >= 0, cap_of[idx1, np.maximum(slot1, 0)], 0)
        sets, tg = geo.split(addrs)
        sec = geo.sector_of(addrs) if geo.sectored else None
        clock0 = store.clock
        sv = np.arange(clock0, clock0 + n, dtype=np.int64)

        # Rows the capacity model cannot describe: cross-slot tag
        # aliases, plus whatever over-allotment occupancy the drain
        # model below cannot express.  Drain-eligible rows leave the
        # flagged table *before* the replay closure — the closure can
        # still pull one back (an access bridging it to a flagged row),
        # and then the interpreter handles it exactly.
        flagged = (store.count > cap_of.T[:, :, None]).any(axis=0)  # (C, S)
        drains: Optional[np.ndarray] = None
        count0 = o_slot = None
        if flagged.any():
            count0 = store.count.copy()
            cand, o_slot = self._drain_rows_static(cap_of, count0)
            cand &= ~self._drain_viol(o_slot, idx0, sets, slot0, idx1,
                                      slot1, two_stage)
            if cand.any():
                drains = cand
                flagged &= ~drains
        flagged, replay = self._flag_replay_rows(
            flagged, idx0, sets, tg, slot0, idx1, slot1, two_stage,
            ranges)
        if drains is not None:
            drains &= ~flagged
            if not drains.any():
                drains = None

        krow0 = (np.maximum(slot0, 0) * np.int64(C) + idx0) * \
            np.int64(S) + sets
        krow1 = (np.maximum(slot1, 0) * np.int64(C) + idx1) * \
            np.int64(S) + sets
        sel_a = two_stage & ~replay
        sel_b0 = ~two_stage & ~replay
        # Phase disjointness via a flat row-membership table — cheaper
        # than sorting both phases' rows to uniques and intersecting.
        in_a = np.zeros(store.num_slots * C * S, dtype=bool)
        in_a[krow0[sel_a & (cap0 > 0)]] = True
        if in_a[krow0[sel_b0 & (cap0 > 0)]].any() or \
                in_a[krow1[sel_a & (cap1 > 0)]].any():
            return None

        h0 = np.zeros(n, dtype=bool)
        sm0 = np.zeros(n, dtype=bool)
        f0 = np.zeros(n, dtype=bool)
        ea0 = np.full(n, -1, dtype=np.int64)
        ed0 = np.zeros(n, dtype=bool)
        h1 = np.zeros(n, dtype=bool)
        sm1 = np.zeros(n, dtype=bool)
        f1 = np.zeros(n, dtype=bool)
        ea1 = np.full(n, -1, dtype=np.int64)
        ed1 = np.zeros(n, dtype=bool)

        def run_kernel(gidx: np.ndarray, krows_g: np.ndarray,
                       caps_g: np.ndarray, hout: np.ndarray,
                       smout: np.ndarray, fout: np.ndarray,
                       eaout: np.ndarray, edout: np.ndarray) -> None:
            # One kernel call resolves every capacity at once: the
            # replay applies per-group caps natively, and zero-way
            # partitions come back as fill-less misses (the vectorized
            # PartitionFullError outcome) straight from the mask.
            # Fresh views every call: replay/slot growth between
            # phases can reallocate the store's arrays.
            ftags, fdirty, fcount, fsector, fstamp = store.flat()
            res = _batch_resolve(
                ftags, fdirty, fcount, geo, krows_g, tg[gidx],
                writes[gidx], cap=caps_g, sector=fsector,
                sec=sec[gidx] if sec is not None else None,
                stamp=fstamp, stamp_vals=sv[gidx])
            pos = caps_g > 0
            hout[gidx] = res.hits
            eaout[gidx] = res.evicted_addr
            edout[gidx] = res.evicted_dirty
            if res.sector_miss is not None:
                smout[gidx] = res.sector_miss
                fout[gidx] = ~(res.hits | res.sector_miss) & pos
            else:
                fout[gidx] = ~res.hits & pos

        # Phase 1: stage-0 probes of two-stage accesses.
        ia = np.flatnonzero(sel_a)
        if ia.size:
            run_kernel(ia, krow0[ia], cap0[ia], h0, sm0, f0, ea0, ed0)

        # Drained rows: phase 1 solved their under slots natively;
        # derive which of those fills evict the over slot's LRU.
        dr = None
        if drains is not None:
            assert count0 is not None and o_slot is not None
            dr = self._drain_events(drains, o_slot, count0, cap0, idx0,
                                    sets, two_stage, replay, f0, krow0)

        # Phase 2: stream-order replay of flagged sets (both stages).
        ir = np.flatnonzero(replay)
        if ir.size:
            self._replay_flagged(ir, idx0, idx1, sets, tg, writes, sec,
                                 part0, part1, two_stage, ways_list,
                                 clock0, h0, sm0, f0, ea0, ed0,
                                 h1, sm1, f1, ea1, ed1)

        # Phase 3: single-stage probes + stage-1 probes of stage-0
        # misses, interleaved in stream order.  At drained rows the
        # over slot behaves as a plain LRU of its current occupancy, so
        # its probes run in passes between drain applications, each
        # pass capped at the occupancy it observes.
        p1k = two_stage & ~replay & ~h0
        ib = np.flatnonzero(sel_b0 | p1k)
        if ib.size or (dr is not None and dr[0].size):
            use1 = p1k[ib]
            krow_b = np.where(use1, krow1[ib], krow0[ib])
            cap_b = np.where(use1, cap1[ib], cap0[ib])
            h_t = np.zeros(n, dtype=bool)
            sm_t = np.zeros(n, dtype=bool)
            f_t = np.zeros(n, dtype=bool)
            ea_t = np.full(n, -1, dtype=np.int64)
            ed_t = np.zeros(n, dtype=bool)
            if dr is None:
                run_kernel(ib, krow_b, cap_b, h_t, sm_t, f_t, ea_t, ed_t)
            else:
                dr_pos, dr_row, dr_rid, dr_t, occ_over = dr
                rid_b = np.where(use1, idx1[ib], idx0[ib]) * \
                    np.int64(S) + sets[ib]
                at_drain = drains.reshape(-1)[rid_b]
                pass_of = np.zeros(ib.size, dtype=np.int64)
                max_t = int(dr_t.max()) + 1 if dr_t.size else 0
                for t in range(max_t):
                    sel_t = dr_t == t
                    pos_at = np.full(len(self.caches) * S, n,
                                     dtype=np.int64)
                    pos_at[dr_rid[sel_t]] = dr_pos[sel_t]
                    pass_of[at_drain] += \
                        ib[at_drain] > pos_at[rid_b[at_drain]]
                cap_b = np.where(at_drain,
                                 occ_over[rid_b] - pass_of, cap_b)
                for t in range(max_t + 1):
                    selp = (pass_of == t) if t else \
                        (~at_drain | (pass_of == 0))
                    sub = np.flatnonzero(selp)
                    if sub.size:
                        run_kernel(ib[sub], krow_b[sub], cap_b[sub],
                                   h_t, sm_t, f_t, ea_t, ed_t)
                    if t < max_t:
                        sel_t = dr_t == t
                        self._apply_drain(dr_row[sel_t], dr_pos[sel_t],
                                          ea0, ed0)
            b0 = ib[~use1]
            h0[b0] = h_t[b0]
            sm0[b0] = sm_t[b0]
            f0[b0] = f_t[b0]
            ea0[b0] = ea_t[b0]
            ed0[b0] = ed_t[b0]
            b1 = ib[use1]
            h1[b1] = h_t[b1]
            sm1[b1] = sm_t[b1]
            f1[b1] = f_t[b1]
            ea1[b1] = ea_t[b1]
            ed1[b1] = ed_t[b1]

        store.clock = clock0 + n
        return self._staged_outcome(ranges, idx0, idx1, two_stage,
                                    h0, sm0, f0, ea0, ed0,
                                    h1, sm1, f1, ea1, ed1)

    def access_many_staged_shared(
            self, calls: Sequence[StagedLaneCall]
    ) -> List[Optional[StagedResult]]:
        """Resolve several lanes' two-stage epochs with shared encodings.

        The phase-1 stream — stage-0 probes of two-stage accesses — is
        a function of the shared trace alone (replay-set closure makes
        flagging whole-row, so per-lane eligibility is a group mask,
        not a different stream).  Calls with equal ``stream`` ids
        therefore replay one reuse encoding with per-lane capacity
        vectors and ok-masks; the flagged-set interpreter and the
        stream-order phase-3 kernel stay per-lane.  Entries whose lane
        fails the all-partitioned gate or the row-disjointness
        requirement come back as ``None`` (those lanes fall back; the
        rest still share).
        """
        if not _sanitize.enabled():
            return self._staged_shared_epochs(calls)
        site = "VectorBank.access_many_staged_shared"
        for call in calls:
            n = call.addrs.shape[0]
            _sanitize.expect(site, "addrs", call.addrs, "int64", n)
            _sanitize.expect(site, "writes", call.writes, "bool", n)
            _sanitize.expect(site, "idx0", call.idx0, "int64", n)
            _sanitize.expect(site, "part0", call.part0, "int64", n)
            _sanitize.expect(site, "two_stage", call.two_stage, "bool", n)
            _sanitize.expect(site, "idx1", call.idx1, "int64", n)
            _sanitize.expect(site, "part1", call.part1, "int64", n)
        with _sanitize.guarded(site):
            return self._staged_shared_epochs(calls)

    def _staged_shared_epochs(
            self, calls: Sequence[StagedLaneCall]
    ) -> List[Optional[StagedResult]]:
        """Kernel body of :meth:`access_many_staged_shared`.

        Same-stream phase-1 replays are hoisted ahead of the per-plan
        phase loop and fused lane-major (:func:`_replay_encoding_lanes`)
        — exact because lanes own disjoint store rows, every stamp
        window is explicit, and phase-1 ok-masks confine writes to
        rows no other phase shares.  Post-repartition rows run the
        vectorized over-allotment drain per plan, as in the solo path.
        """
        results: List[Optional[StagedResult]] = [None] * len(calls)
        if not self.config.write_allocate or not self.caches:
            return results
        store = self._store
        geo = self._geo
        C = len(self.caches)
        S = geo.num_sets
        # Per-lane partition gate; eligible lanes pool one cap table.
        ways_list: List[Optional[Dict[int, int]]] = [None] * C
        live: List[int] = []
        for k, call in enumerate(calls):
            lo, hi = call.lane
            lane_ways = [self.caches[ci]._ways for ci in range(lo, hi)]
            if any(w is None for w in lane_ways):
                continue
            ways_list[lo:hi] = lane_ways
            live.append(k)
        if not live:
            return results
        store.ensure_stamps()
        cap_of = self._partition_caps(ways_list)
        flagged = (store.count > cap_of.T[:, :, None]).any(axis=0)
        count0: Optional[np.ndarray] = None
        cand0 = o_slot = None
        if flagged.any():
            # Occupancy snapshot for the drain model: lanes own
            # disjoint rows, so one round-start copy serves every plan.
            count0 = store.count.copy()
            cand0, o_slot = self._drain_rows_static(cap_of, count0)

        # Stream-keyed pieces every same-trace lane reuses: the address
        # split, the partition->slot maps and (lazily, at phase time)
        # the phase-1 reuse encoding.
        split_of: Dict[int, Tuple[np.ndarray, np.ndarray,
                                  Optional[np.ndarray]]] = {}
        slots_of: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        enc_of: Dict[int, _StreamEncoding] = {}

        # Per-call setup runs before any phase touches state, exactly
        # as the single-call path sequences it.
        plans: List[Tuple[int, StagedLaneCall, int, np.ndarray,
                          np.ndarray, np.ndarray, np.ndarray,
                          Optional[np.ndarray], np.ndarray, np.ndarray,
                          np.ndarray, np.ndarray, np.ndarray,
                          np.ndarray, Optional[np.ndarray]]] = []
        for k in live:
            call = calls[k]
            lo = call.lane[0]
            sid = call.stream
            if sid not in split_of:
                sets, tg = geo.split(call.addrs)
                sec = geo.sector_of(call.addrs) if geo.sectored else None
                split_of[sid] = (sets, tg, sec)
                slots_of[sid] = (self._slots_for(call.part0),
                                 self._slots_for(call.part1))
            sets, tg, sec = split_of[sid]
            slot0, slot1 = slots_of[sid]
            idx0a = call.idx0 + lo
            idx1a = call.idx1 + lo
            cap0 = np.where(slot0 >= 0,
                            cap_of[idx0a, np.maximum(slot0, 0)], 0)
            cap1 = np.where(slot1 >= 0,
                            cap_of[idx1a, np.maximum(slot1, 0)], 0)
            # Drain-eligible rows of *this lane* leave the flagged
            # table before the closure; the closure can pull one back
            # (then the interpreter keeps it).  Other lanes' rows stay
            # untouched — their plans judge their own rows.
            drains_k: Optional[np.ndarray] = None
            if cand0 is not None:
                assert o_slot is not None
                cand = cand0.copy()
                cand[:lo] = False
                cand[call.lane[1]:] = False
                cand &= ~self._drain_viol(o_slot, idx0a, sets, slot0,
                                          idx1a, slot1, call.two_stage)
                if cand.any():
                    drains_k = cand
                    flagged &= ~drains_k
            flagged, replay = self._flag_replay_rows(
                flagged, idx0a, sets, tg, slot0, idx1a, slot1,
                call.two_stage, (call.lane,))
            if drains_k is not None:
                drains_k &= ~flagged
                if not drains_k.any():
                    drains_k = None
            # Lane-local kernel rows; the lane's cache offset is applied
            # as a row offset (a multiple of S) at replay time.
            krow0 = (np.maximum(slot0, 0) * np.int64(C) + call.idx0) * \
                np.int64(S) + sets
            krow1 = (np.maximum(slot1, 0) * np.int64(C) + call.idx1) * \
                np.int64(S) + sets
            sel_a = call.two_stage & ~replay
            sel_b0 = ~call.two_stage & ~replay
            # Same flat membership test as the single-call path.
            in_a = np.zeros(store.num_slots * C * S, dtype=bool)
            in_a[krow0[sel_a & (cap0 > 0)]] = True
            if in_a[krow0[sel_b0 & (cap0 > 0)]].any() or \
                    in_a[krow1[sel_a & (cap1 > 0)]].any():
                continue
            plans.append((k, call, lo, idx0a, idx1a, sets, tg, sec,
                          cap0, cap1, krow0, krow1, replay, sel_b0,
                          drains_k))

        # Per-plan clock windows, in plan order — identical to the
        # sequential stamping the plan loop used to do.
        bases: Dict[int, int] = {}
        clock = store.clock
        for p in plans:
            bases[p[0]] = clock
            clock += p[1].addrs.shape[0]
        store.clock = clock

        # Pre-pass: fuse same-stream phase-1 replays into one
        # lane-major kernel call.  Plans whose phase 1 is fully masked
        # (or whose stream appears once) keep the scalar replay below.
        pre1: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray,
                              np.ndarray, np.ndarray,
                              Optional[np.ndarray]]] = {}
        by_sid: Dict[int, List[Tuple[int, np.ndarray, np.ndarray]]] = {}
        for i, p in enumerate(plans):
            call, cap0, replay = p[1], p[8], p[12]
            ia2 = np.flatnonzero(call.two_stage)
            okv = (~replay & (cap0 > 0))[ia2]
            if ia2.size and bool(okv.any()):
                by_sid.setdefault(call.stream, []).append((i, ia2, okv))
        for sid, members in by_sid.items():
            los = [plans[i][2] for i, _, _ in members]
            if len(members) < 2 or len(set(los)) != len(los):
                continue
            i0, ia2_0, _ = members[0]
            p0 = plans[i0]
            call0, tg0, sec0, krow0_0 = p0[1], p0[6], p0[7], p0[10]
            enc = enc_of.get(sid)
            if enc is None:
                enc = _encode_stream(
                    krow0_0[ia2_0], tg0[ia2_0], call0.writes[ia2_0],
                    store.num_slots * C * S,
                    sec=sec0[ia2_0] if sec0 is not None else None)
                enc_of[sid] = enc
                self.shared_encodings += 1
            m = ia2_0.size
            L = len(members)
            caps_v = np.concatenate(
                [plans[i][8][ia2] for i, ia2, _ in members])
            ok_v = np.concatenate([okv for _, _, okv in members])
            sv_v = np.concatenate(
                [np.int64(bases[plans[i][0]]) + ia2
                 for i, ia2, _ in members])
            ftags, fdirty, fcount, fsector, fstamp = store.flat()
            h_v = np.zeros(L * m, dtype=bool)
            ea_v = np.full(L * m, -1, dtype=np.int64)
            ed_v = np.zeros(L * m, dtype=bool)
            sm_v = np.zeros(L * m, dtype=bool) if fsector is not None \
                else None
            t0 = time.perf_counter()
            lenc = _tile_encoding_lanes(
                enc, [plans[i][2] * S for i, _, _ in members])
            _replay_encoding_lanes(lenc, ftags, fdirty, fcount, geo,
                                   caps_v, h_v, ea_v, ed_v, ok=ok_v,
                                   sector=fsector, stamp=fstamp,
                                   stamp_vals=sv_v, sm_out=sm_v)
            self.replay_seconds += time.perf_counter() - t0
            self.lane_batched_rounds += 1
            self.shared_replays += L
            for j, (i, ia2, okv) in enumerate(members):
                sl = slice(j * m, (j + 1) * m)
                pre1[i] = (ia2, okv, h_v[sl], ea_v[sl], ed_v[sl],
                           sm_v[sl] if sm_v is not None else None)

        for i, (k, call, lo, idx0a, idx1a, sets, tg, sec, cap0, cap1,
                krow0, krow1, replay, sel_b0,
                drains_k) in enumerate(plans):
            n = call.addrs.shape[0]
            sid = call.stream
            clock0 = bases[k]
            sv = np.arange(clock0, clock0 + n, dtype=np.int64)
            h0 = np.zeros(n, dtype=bool)
            sm0 = np.zeros(n, dtype=bool)
            f0 = np.zeros(n, dtype=bool)
            ea0 = np.full(n, -1, dtype=np.int64)
            ed0 = np.zeros(n, dtype=bool)
            h1 = np.zeros(n, dtype=bool)
            sm1 = np.zeros(n, dtype=bool)
            f1 = np.zeros(n, dtype=bool)
            ea1 = np.full(n, -1, dtype=np.int64)
            ed1 = np.zeros(n, dtype=bool)

            # Phase 1: stage-0 probes of two-stage accesses, replayed
            # against the stream's shared encoding.  Flagged rows and
            # zero-way partitions are whole-group masks: they produce
            # default outcomes here (phase 2 overwrites the flagged
            # ones) and no state writes.  Lane-batched rounds land the
            # outcomes via the pre-pass; singleton streams replay here.
            hoisted = pre1.get(i)
            if hoisted is not None:
                ia2, okv, h_t, ea_t, ed_t, sm_t = hoisted
                h0[ia2] = h_t
                ea0[ia2] = ea_t
                ed0[ia2] = ed_t
                if sm_t is not None:
                    sm0[ia2] = sm_t
                    f0[ia2] = ~(h_t | sm_t) & okv
                else:
                    f0[ia2] = ~h_t & okv
            else:
                ia2 = np.flatnonzero(call.two_stage)
                okv = (~replay & (cap0 > 0))[ia2]
                # Fully-masked lanes (e.g. every row flagged after a
                # repartition) skip the kernel pass outright: a replay
                # with an all-False ok-mask writes neither outputs nor
                # state.
                if ia2.size and bool(okv.any()):
                    enc = enc_of.get(sid)
                    if enc is None:
                        enc = _encode_stream(
                            krow0[ia2], tg[ia2], call.writes[ia2],
                            store.num_slots * C * S,
                            sec=sec[ia2] if sec is not None else None)
                        enc_of[sid] = enc
                        self.shared_encodings += 1
                    m = ia2.size
                    h_t = np.zeros(m, dtype=bool)
                    ea_t = np.full(m, -1, dtype=np.int64)
                    ed_t = np.zeros(m, dtype=bool)
                    ftags, fdirty, fcount, fsector, fstamp = store.flat()
                    sm_t = np.zeros(m, dtype=bool) \
                        if fsector is not None else None
                    t0 = time.perf_counter()
                    _replay_encoding(enc, ftags, fdirty, fcount, geo,
                                     lo * S, cap0[ia2], h_t, ea_t, ed_t,
                                     ok=okv, sector=fsector, stamp=fstamp,
                                     stamp_vals=sv[ia2], sm_out=sm_t)
                    self.replay_seconds += time.perf_counter() - t0
                    self.shared_replays += 1
                    h0[ia2] = h_t
                    ea0[ia2] = ea_t
                    ed0[ia2] = ed_t
                    if sm_t is not None:
                        sm0[ia2] = sm_t
                        f0[ia2] = ~(h_t | sm_t) & okv
                    else:
                        f0[ia2] = ~h_t & okv

            # Drained rows: phase 1 solved their under slots natively;
            # derive which of those fills evict the over slot's LRU.
            dr = None
            if drains_k is not None:
                assert count0 is not None and o_slot is not None
                dr = self._drain_events(drains_k, o_slot, count0, cap0,
                                        idx0a, sets, call.two_stage,
                                        replay, f0,
                                        krow0 + np.int64(lo * S))

            # Phase 2: stream-order replay of flagged sets.
            ir = np.flatnonzero(replay)
            if ir.size:
                self._replay_flagged(ir, idx0a, idx1a, sets, tg,
                                     call.writes, sec, call.part0,
                                     call.part1, call.two_stage,
                                     ways_list, clock0, h0, sm0, f0,
                                     ea0, ed0, h1, sm1, f1, ea1, ed1)

            # Phase 3: single-stage probes + stage-1 probes of stage-0
            # misses, interleaved in stream order (per lane: the stream
            # depends on this lane's stage-0 hits).  Drained rows run
            # in passes between drain applications, exactly as in the
            # solo staged path.
            p1k = call.two_stage & ~replay & ~h0
            ib = np.flatnonzero(sel_b0 | p1k)
            if ib.size or (dr is not None and dr[0].size):
                use1 = p1k[ib]
                krow_b = np.where(use1, krow1[ib], krow0[ib]) + \
                    np.int64(lo * S)
                cap_b = np.where(use1, cap1[ib], cap0[ib])

                def run_b(sub: np.ndarray) -> None:
                    ftags, fdirty, fcount, fsector, fstamp = store.flat()
                    bi = ib[sub]
                    res = _batch_resolve(
                        ftags, fdirty, fcount, geo, krow_b[sub], tg[bi],
                        call.writes[bi], cap=cap_b[sub], sector=fsector,
                        sec=sec[bi] if sec is not None else None,
                        stamp=fstamp, stamp_vals=sv[bi])
                    pos = cap_b[sub] > 0
                    u1 = use1[sub]
                    b0 = bi[~u1]
                    b1 = bi[u1]
                    if res.sector_miss is not None:
                        fl_t = ~(res.hits | res.sector_miss) & pos
                        sm0[b0] = res.sector_miss[~u1]
                        sm1[b1] = res.sector_miss[u1]
                    else:
                        fl_t = ~res.hits & pos
                    h0[b0] = res.hits[~u1]
                    f0[b0] = fl_t[~u1]
                    ea0[b0] = res.evicted_addr[~u1]
                    ed0[b0] = res.evicted_dirty[~u1]
                    h1[b1] = res.hits[u1]
                    f1[b1] = fl_t[u1]
                    ea1[b1] = res.evicted_addr[u1]
                    ed1[b1] = res.evicted_dirty[u1]

                if dr is None:
                    if ib.size:
                        run_b(np.arange(ib.size, dtype=np.int64))
                else:
                    assert drains_k is not None
                    dr_pos, dr_row, dr_rid, dr_t, occ_over = dr
                    rid_b = np.where(use1, idx1a[ib], idx0a[ib]) * \
                        np.int64(S) + sets[ib]
                    at_drain = drains_k.reshape(-1)[rid_b]
                    pass_of = np.zeros(ib.size, dtype=np.int64)
                    max_t = int(dr_t.max()) + 1 if dr_t.size else 0
                    for t in range(max_t):
                        sel_t = dr_t == t
                        pos_at = np.full(C * S, n, dtype=np.int64)
                        pos_at[dr_rid[sel_t]] = dr_pos[sel_t]
                        pass_of[at_drain] += \
                            ib[at_drain] > pos_at[rid_b[at_drain]]
                    cap_b = np.where(at_drain,
                                     occ_over[rid_b] - pass_of, cap_b)
                    for t in range(max_t + 1):
                        selp = (pass_of == t) if t else \
                            (~at_drain | (pass_of == 0))
                        sub = np.flatnonzero(selp)
                        if sub.size:
                            run_b(sub)
                        if t < max_t:
                            sel_t = dr_t == t
                            self._apply_drain(dr_row[sel_t],
                                              dr_pos[sel_t], ea0, ed0)

            results[k] = self._staged_outcome(
                [call.lane], idx0a, idx1a, call.two_stage, h0, sm0, f0,
                ea0, ed0, h1, sm1, f1, ea1, ed1)
        return results
