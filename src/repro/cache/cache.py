"""Functional set-associative cache model.

The cache is *functional*: it maintains real tag state so that hit/miss
behaviour (and hence LLC hit rate, the key EAB-model input) is exact for a
given access stream.  Timing is handled by the simulator engine, not here.

Three variants are provided:

* :class:`SetAssociativeCache` — conventional cache with true LRU.
* Sectored operation (``CacheConfig.sectored``) — sectors share one tag;
  a sector miss on a present line fetches only the missing sector.
* Way partitioning (:meth:`SetAssociativeCache.set_partition`) — lines are
  tagged with a partition id and each partition owns a subset of ways, as
  required by the Static (L1.5) and Dynamic LLC baselines.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..arch.config import CacheConfig

#: Partition id used when the cache is not partitioned.
UNPARTITIONED = 0


def validate_partition_ways(associativity: int,
                            ways_by_partition: Dict[int, int]) -> None:
    """Validate a partition->ways map against the associativity.

    Shared by the scalar and the vectorized cache backends so both raise
    identical errors for identical inputs.
    """
    total = sum(ways_by_partition.values())
    if total != associativity:
        raise ValueError(
            f"partition ways sum to {total}, "
            f"expected associativity {associativity}")
    if any(w < 0 for w in ways_by_partition.values()):
        raise ValueError("partition way counts cannot be negative")


@dataclass(slots=True)
class CacheLine:
    """State of one resident cache line."""

    tag: int
    dirty: bool = False
    partition: int = UNPARTITIONED
    sector_valid: int = 0  # bitmask of valid sectors (sectored caches)

    def sector_present(self, sector: int) -> bool:
        return bool(self.sector_valid >> sector & 1)


@dataclass(slots=True)
class AccessResult:
    """Outcome of one cache access."""

    hit: bool
    evicted_dirty: bool = False
    evicted_addr: Optional[int] = None
    sector_miss: bool = False  # tag hit but sector absent (sectored caches)

    @property
    def miss(self) -> bool:
        return not self.hit


# Shared constant outcomes.  Results are never mutated by callers, so the
# hot path returns these singletons instead of allocating per access;
# only evictions carry per-access payload and build fresh objects.
_HIT = AccessResult(hit=True)
_MISS = AccessResult(hit=False)
_SECTOR_MISS = AccessResult(hit=False, sector_miss=True)


@dataclass
class CacheStats:
    """Running hit/miss/eviction counters."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    fills: int = 0
    sector_misses: int = 0

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def reset(self) -> None:
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_evictions = 0
        self.fills = 0
        self.sector_misses = 0


class SetAssociativeCache:
    """A set-associative cache with true LRU replacement.

    Addresses are byte addresses; the cache derives line, set and tag
    internally.  ``access`` performs lookup + fill + LRU update in one
    step, which is what the epoch-based engine needs.
    """

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self.stats = CacheStats()
        # One OrderedDict per set, ordered LRU -> MRU, keyed by tag.
        self._sets: List["OrderedDict[int, CacheLine]"] = [
            OrderedDict() for _ in range(config.num_sets)]
        # ways allocated per partition id; None means unpartitioned.
        self._partition_ways: Optional[Dict[int, int]] = None
        # Per-set partition occupancy counters, maintained incrementally
        # while partitioned (non-None exactly when _partition_ways is) so
        # victim selection never rescans the set per candidate.
        self._part_occ: Optional[List[Dict[int, int]]] = None
        self._line_shift = config.line_size.bit_length() - 1
        self._set_mask = config.num_sets - 1
        self._sets_pow2 = (config.num_sets & (config.num_sets - 1)) == 0
        # Hot-path constants hoisted out of the config (access() dominates
        # simulation wall time; attribute chains and bit_length() per probe
        # are measurable).
        self._num_sets = config.num_sets
        self._index_bits = config.num_sets.bit_length() - 1
        self._associativity = config.associativity
        self._sectored = config.sectored
        self._write_back = config.write_back
        self._write_allocate = config.write_allocate
        if config.sectored:
            self._sector_shift = config.sector_size.bit_length() - 1

    # -- Address helpers -------------------------------------------------

    def line_addr(self, addr: int) -> int:
        """The line-aligned address containing byte ``addr``."""
        return addr >> self._line_shift << self._line_shift

    def _index_tag(self, addr: int) -> Tuple[int, int]:
        line = addr >> self._line_shift
        if self._sets_pow2:
            return line & self._set_mask, line >> self._index_bits
        return line % self._num_sets, line // self._num_sets

    def _sector_of(self, addr: int) -> int:
        offset = addr & (self.config.line_size - 1)
        return offset >> self._sector_shift

    # -- Partitioning ----------------------------------------------------

    def set_partition(self, ways_by_partition: Optional[Dict[int, int]]) -> None:
        """Partition the ways of every set between partition ids.

        ``ways_by_partition`` maps a partition id to the number of ways it
        may occupy; the values must sum to the associativity.  Pass ``None``
        to remove partitioning.  Already-resident lines are left in place
        and evicted lazily as their partition overflows.
        """
        if ways_by_partition is None:
            self._partition_ways = None
            self._part_occ = None
            return
        validate_partition_ways(self.config.associativity, ways_by_partition)
        self._partition_ways = dict(ways_by_partition)
        self._recount_partitions()

    def _recount_partitions(self) -> None:
        """Rebuild the per-set partition occupancy counters from scratch."""
        occupancy: List[Dict[int, int]] = []
        for cache_set in self._sets:
            counts: Dict[int, int] = {}
            for line in cache_set.values():
                counts[line.partition] = counts.get(line.partition, 0) + 1
            occupancy.append(counts)
        self._part_occ = occupancy

    def _drop_line_partition(self, index: int, partition: int) -> None:
        counts = self._part_occ[index]
        remaining = counts[partition] - 1
        if remaining:
            counts[partition] = remaining
        else:
            del counts[partition]

    @property
    def partition_ways(self) -> Optional[Dict[int, int]]:
        if self._partition_ways is None:
            return None
        return dict(self._partition_ways)

    # -- Core operations ---------------------------------------------------

    def probe(self, addr: int) -> bool:
        """Check residency without updating LRU or stats."""
        index, tag = self._index_tag(addr)
        line = self._sets[index].get(tag)
        if line is None:
            return False
        if self._sectored:
            return line.sector_present(self._sector_of(addr))
        return True

    def access(self, addr: int, is_write: bool = False,
               partition: int = UNPARTITIONED,
               allocate_on_miss: bool = True) -> AccessResult:
        """Access byte ``addr``; fill on miss unless ``allocate_on_miss`` is False."""
        stats = self.stats
        stats.accesses += 1
        line_no = addr >> self._line_shift
        if self._sets_pow2:
            index = line_no & self._set_mask
            tag = line_no >> self._index_bits
        else:
            index = line_no % self._num_sets
            tag = line_no // self._num_sets
        cache_set = self._sets[index]
        line = cache_set.get(tag)

        if line is not None:
            sector_miss = False
            if self._sectored:
                sector = self._sector_of(addr)
                if not line.sector_valid >> sector & 1:
                    sector_miss = True
                    line.sector_valid |= 1 << sector
            cache_set.move_to_end(tag)
            if is_write and self._write_back:
                line.dirty = True
            if sector_miss:
                # A sector miss costs a memory fetch but not a tag fill.
                stats.misses += 1
                stats.sector_misses += 1
                return _SECTOR_MISS
            stats.hits += 1
            return _HIT

        stats.misses += 1
        if not allocate_on_miss or (is_write and not self._write_allocate):
            return _MISS
        evicted_dirty, evicted_addr = self._fill(index, tag, is_write, partition,
                                                 addr)
        if evicted_addr is None:
            return _MISS
        return AccessResult(hit=False, evicted_dirty=evicted_dirty,
                            evicted_addr=evicted_addr)

    def fill(self, addr: int, is_write: bool = False,
             partition: int = UNPARTITIONED) -> AccessResult:
        """Insert a line without counting a lookup (e.g. response-path fill)."""
        index, tag = self._index_tag(addr)
        if tag in self._sets[index]:
            line = self._sets[index][tag]
            if self._sectored:
                line.sector_valid |= 1 << self._sector_of(addr)
            if is_write and self._write_back:
                line.dirty = True
            self._sets[index].move_to_end(tag)
            return AccessResult(hit=True)
        evicted_dirty, evicted_addr = self._fill(index, tag, is_write, partition,
                                                 addr)
        return AccessResult(hit=False, evicted_dirty=evicted_dirty,
                            evicted_addr=evicted_addr)

    def _fill(self, index: int, tag: int, is_write: bool,
              partition: int, addr: int) -> Tuple[bool, Optional[int]]:
        cache_set = self._sets[index]
        victim_info = self._select_victim(index, cache_set, partition)
        evicted_dirty = False
        evicted_addr: Optional[int] = None
        if victim_info is not None:
            victim_tag, victim = victim_info
            del cache_set[victim_tag]
            if self._part_occ is not None:
                self._drop_line_partition(index, victim.partition)
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.dirty_evictions += 1
                evicted_dirty = True
            evicted_addr = self._rebuild_addr(index, victim_tag)
        sector_valid = 0
        if self._sectored:
            sector_valid = 1 << self._sector_of(addr)
        cache_set[tag] = CacheLine(
            tag=tag,
            dirty=is_write and self._write_back,
            partition=partition,
            sector_valid=sector_valid)
        if self._part_occ is not None:
            counts = self._part_occ[index]
            counts[partition] = counts.get(partition, 0) + 1
        self.stats.fills += 1
        return evicted_dirty, evicted_addr

    def _select_victim(self, index: int,
                       cache_set: "OrderedDict[int, CacheLine]",
                       partition: int) -> Optional[Tuple[int, CacheLine]]:
        """Pick an LRU victim respecting partition way limits, or None."""
        if self._partition_ways is None:
            if len(cache_set) < self._associativity:
                return None
            tag, line = next(iter(cache_set.items()))
            return tag, line
        limit = self._partition_ways.get(partition, 0)
        if limit == 0:
            # A partition with zero ways may not allocate; evict nothing and
            # let the caller treat the fill as a bypass.
            raise PartitionFullError(partition)
        occ_counts = self._part_occ[index]
        occupancy = occ_counts.get(partition, 0)
        if occupancy < limit and len(cache_set) < self.config.associativity:
            return None
        # Prefer evicting the LRU line of the same partition; if the
        # partition is under its limit but the set is full, evict the LRU
        # line of any over-provisioned partition.
        if occupancy >= limit:
            for tag, line in cache_set.items():
                if line.partition == partition:
                    return tag, line
        ways = self._partition_ways
        over = {p for p, occ in occ_counts.items() if occ > ways.get(p, 0)}
        if over:
            for tag, line in cache_set.items():
                if line.partition in over:
                    return tag, line
        tag, line = next(iter(cache_set.items()))
        return tag, line

    def _rebuild_addr(self, index: int, tag: int) -> int:
        if self._sets_pow2:
            line = tag << self._index_bits | index
        else:
            line = tag * self._num_sets + index
        return line << self._line_shift

    # -- Flush / invalidate ----------------------------------------------

    def flush(self) -> Tuple[int, int]:
        """Write back and invalidate everything.

        Returns ``(lines_invalidated, dirty_lines_written_back)`` so the
        caller can charge coherence traffic.
        """
        invalidated = 0
        dirty = 0
        for cache_set in self._sets:
            invalidated += len(cache_set)
            dirty += sum(1 for line in cache_set.values() if line.dirty)
            cache_set.clear()
        if self._part_occ is not None:
            for counts in self._part_occ:
                counts.clear()
        return invalidated, dirty

    def invalidate(self, addr: int) -> bool:
        """Invalidate one line; returns True if it was present."""
        index, tag = self._index_tag(addr)
        line = self._sets[index].pop(tag, None)
        if line is None:
            return False
        if self._part_occ is not None:
            self._drop_line_partition(index, line.partition)
        return True

    def invalidate_partition(self, partition: int) -> Tuple[int, int]:
        """Invalidate every line belonging to ``partition``."""
        invalidated = 0
        dirty = 0
        for index, cache_set in enumerate(self._sets):
            victims = [tag for tag, line in cache_set.items()
                       if line.partition == partition]
            for tag in victims:
                line = cache_set.pop(tag)
                invalidated += 1
                if line.dirty:
                    dirty += 1
            if victims and self._part_occ is not None:
                self._part_occ[index].pop(partition, None)
        return invalidated, dirty

    # -- Introspection ----------------------------------------------------

    def occupancy(self) -> int:
        """Number of resident lines."""
        return sum(len(s) for s in self._sets)

    def occupancy_by_partition(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for cache_set in self._sets:
            for line in cache_set.values():
                counts[line.partition] = counts.get(line.partition, 0) + 1
        return counts

    def resident_lines(self) -> Iterator[Tuple[int, CacheLine]]:
        """Yield ``(line_address, line)`` for every resident line."""
        for index, cache_set in enumerate(self._sets):
            for tag, line in cache_set.items():
                yield self._rebuild_addr(index, tag), line

    def reset(self) -> None:
        """Clear contents and statistics."""
        for cache_set in self._sets:
            cache_set.clear()
        if self._part_occ is not None:
            for counts in self._part_occ:
                counts.clear()
        self.stats.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SetAssociativeCache(name={self.name!r}, "
                f"size={self.config.size_bytes}, "
                f"ways={self.config.associativity}, "
                f"occupancy={self.occupancy()})")


class PartitionFullError(RuntimeError):
    """Raised when filling into a partition that owns zero ways."""

    def __init__(self, partition: int) -> None:
        super().__init__(f"partition {partition} owns zero ways")
        self.partition = partition
