"""Way-organized cache with pluggable replacement policies.

:class:`WayOrganizedCache` exposes the same interface as
:class:`~repro.cache.cache.SetAssociativeCache` but stores lines in
explicit way slots and delegates victim selection to a
:class:`~repro.cache.replacement.ReplacementPolicy` (tree pseudo-LRU,
SRRIP, ...).  The default LRU cache keeps its faster OrderedDict
implementation; use :func:`repro.cache.make_cache` to pick the right
variant from a :class:`~repro.arch.config.CacheConfig`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple, Union

from ..arch.config import CacheConfig
from .cache import (
    UNPARTITIONED,
    AccessResult,
    CacheLine,
    CacheStats,
    PartitionFullError,
)

if TYPE_CHECKING:  # pragma: no cover
    from .cache import SetAssociativeCache
from .replacement import ReplacementPolicy, make_policy


class WayOrganizedCache:
    """Set-associative cache with explicit ways and a pluggable policy."""

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self.stats = CacheStats()
        sets = config.num_sets
        ways = config.associativity
        self._ways: List[List[Optional[CacheLine]]] = [
            [None] * ways for _ in range(sets)]
        self._tag_to_way: List[Dict[int, int]] = [{} for _ in range(sets)]
        self._policies: List[ReplacementPolicy] = [
            make_policy(config.replacement, ways) for _ in range(sets)]
        self._partition_ways: Optional[Dict[int, int]] = None
        self._line_shift = config.line_size.bit_length() - 1
        self._sets_pow2 = (sets & (sets - 1)) == 0
        self._set_mask = sets - 1
        if config.sectored:
            self._sector_shift = config.sector_size.bit_length() - 1

    # -- Address helpers ---------------------------------------------------

    def line_addr(self, addr: int) -> int:
        return addr >> self._line_shift << self._line_shift

    def _index_tag(self, addr: int) -> Tuple[int, int]:
        line = addr >> self._line_shift
        if self._sets_pow2:
            return (line & self._set_mask,
                    line >> self.config.num_sets.bit_length() - 1)
        return line % self.config.num_sets, line // self.config.num_sets

    def _sector_of(self, addr: int) -> int:
        offset = addr & (self.config.line_size - 1)
        return offset >> self._sector_shift

    # -- Partitioning --------------------------------------------------------

    def set_partition(self, ways_by_partition: Optional[Dict[int, int]]
                      ) -> None:
        if ways_by_partition is None:
            self._partition_ways = None
            return
        total = sum(ways_by_partition.values())
        if total != self.config.associativity:
            raise ValueError(
                f"partition ways sum to {total}, "
                f"expected associativity {self.config.associativity}")
        if any(w < 0 for w in ways_by_partition.values()):
            raise ValueError("partition way counts cannot be negative")
        self._partition_ways = dict(ways_by_partition)

    @property
    def partition_ways(self) -> Optional[Dict[int, int]]:
        if self._partition_ways is None:
            return None
        return dict(self._partition_ways)

    # -- Core operations -------------------------------------------------------

    def probe(self, addr: int) -> bool:
        index, tag = self._index_tag(addr)
        way = self._tag_to_way[index].get(tag)
        if way is None:
            return False
        line = self._ways[index][way]
        if self.config.sectored:
            return line.sector_present(self._sector_of(addr))
        return True

    def access(self, addr: int, is_write: bool = False,
               partition: int = UNPARTITIONED,
               allocate_on_miss: bool = True) -> AccessResult:
        self.stats.accesses += 1
        index, tag = self._index_tag(addr)
        way = self._tag_to_way[index].get(tag)
        if way is not None:
            line = self._ways[index][way]
            self._policies[index].on_hit(way)
            sector_miss = False
            if self.config.sectored:
                sector = self._sector_of(addr)
                if not line.sector_present(sector):
                    sector_miss = True
                    line.sector_valid |= 1 << sector
            if is_write and self.config.write_back:
                line.dirty = True
            if sector_miss:
                self.stats.misses += 1
                self.stats.sector_misses += 1
                return AccessResult(hit=False, sector_miss=True)
            self.stats.hits += 1
            return AccessResult(hit=True)
        self.stats.misses += 1
        if not allocate_on_miss or (is_write and not self.config.write_allocate):
            return AccessResult(hit=False)
        evicted_dirty, evicted_addr = self._install(index, tag, is_write,
                                                    partition, addr)
        return AccessResult(hit=False, evicted_dirty=evicted_dirty,
                            evicted_addr=evicted_addr)

    def fill(self, addr: int, is_write: bool = False,
             partition: int = UNPARTITIONED) -> AccessResult:
        index, tag = self._index_tag(addr)
        way = self._tag_to_way[index].get(tag)
        if way is not None:
            line = self._ways[index][way]
            if self.config.sectored:
                line.sector_valid |= 1 << self._sector_of(addr)
            if is_write and self.config.write_back:
                line.dirty = True
            self._policies[index].on_hit(way)
            return AccessResult(hit=True)
        evicted_dirty, evicted_addr = self._install(index, tag, is_write,
                                                    partition, addr)
        return AccessResult(hit=False, evicted_dirty=evicted_dirty,
                            evicted_addr=evicted_addr)

    # -- Fill / eviction internals ------------------------------------------------

    def _partition_occupancy(self, index: int, partition: int) -> int:
        return sum(1 for line in self._ways[index]
                   if line is not None and line.partition == partition)

    def _install(self, index: int, tag: int, is_write: bool,
                 partition: int, addr: int) -> Tuple[bool, Optional[int]]:
        way, evicted = self._choose_slot(index, partition)
        evicted_dirty = False
        evicted_addr: Optional[int] = None
        if evicted is not None:
            del self._tag_to_way[index][evicted.tag]
            self.stats.evictions += 1
            if evicted.dirty:
                self.stats.dirty_evictions += 1
                evicted_dirty = True
            evicted_addr = self._rebuild_addr(index, evicted.tag)
        sector_valid = 0
        if self.config.sectored:
            sector_valid = 1 << self._sector_of(addr)
        line = CacheLine(tag=tag,
                         dirty=is_write and self.config.write_back,
                         partition=partition, sector_valid=sector_valid)
        self._ways[index][way] = line
        self._tag_to_way[index][tag] = way
        self._policies[index].on_fill(way)
        self.stats.fills += 1
        return evicted_dirty, evicted_addr

    def _choose_slot(self, index: int, partition: int
                     ) -> Tuple[int, Optional[CacheLine]]:
        ways = self._ways[index]
        if self._partition_ways is None:
            for way, line in enumerate(ways):
                if line is None:
                    return way, None
            victim_way = self._policies[index].victim(
                list(range(len(ways))))
            return victim_way, ways[victim_way]
        limit = self._partition_ways.get(partition, 0)
        if limit == 0:
            raise PartitionFullError(partition)
        occupancy = self._partition_occupancy(index, partition)
        if occupancy < limit:
            for way, line in enumerate(ways):
                if line is None:
                    return way, None
            # Set full but this partition is under its limit: evict from
            # an over-provisioned partition.
            for way, line in enumerate(ways):
                other = line.partition
                other_limit = self._partition_ways.get(other, 0)
                if self._partition_occupancy(index, other) > other_limit:
                    return way, line
        # Evict within the same partition, policy-guided.
        candidates = [way for way, line in enumerate(ways)
                      if line is not None and line.partition == partition]
        if not candidates:
            candidates = [way for way, line in enumerate(ways)
                          if line is not None]
        victim_way = self._policies[index].victim(candidates)
        return victim_way, ways[victim_way]

    def _rebuild_addr(self, index: int, tag: int) -> int:
        if self._sets_pow2:
            line = tag << self.config.num_sets.bit_length() - 1 | index
        else:
            line = tag * self.config.num_sets + index
        return line << self._line_shift

    # -- Flush / invalidate -----------------------------------------------------

    def flush(self) -> Tuple[int, int]:
        invalidated = 0
        dirty = 0
        for index in range(self.config.num_sets):
            for way, line in enumerate(self._ways[index]):
                if line is None:
                    continue
                invalidated += 1
                if line.dirty:
                    dirty += 1
                self._ways[index][way] = None
            self._tag_to_way[index].clear()
        return invalidated, dirty

    def invalidate(self, addr: int) -> bool:
        index, tag = self._index_tag(addr)
        way = self._tag_to_way[index].pop(tag, None)
        if way is None:
            return False
        self._ways[index][way] = None
        return True

    def invalidate_partition(self, partition: int) -> Tuple[int, int]:
        invalidated = 0
        dirty = 0
        for index in range(self.config.num_sets):
            for way, line in enumerate(self._ways[index]):
                if line is None or line.partition != partition:
                    continue
                invalidated += 1
                if line.dirty:
                    dirty += 1
                del self._tag_to_way[index][line.tag]
                self._ways[index][way] = None
        return invalidated, dirty

    # -- Introspection -------------------------------------------------------------

    def occupancy(self) -> int:
        return sum(1 for ways in self._ways for line in ways
                   if line is not None)

    def occupancy_by_partition(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for ways in self._ways:
            for line in ways:
                if line is not None:
                    counts[line.partition] = counts.get(line.partition, 0) + 1
        return counts

    def resident_lines(self) -> Iterator[Tuple[int, CacheLine]]:
        for index, ways in enumerate(self._ways):
            for line in ways:
                if line is not None:
                    yield self._rebuild_addr(index, line.tag), line

    def reset(self) -> None:
        for index in range(self.config.num_sets):
            for way in range(self.config.associativity):
                self._ways[index][way] = None
            self._tag_to_way[index].clear()
            self._policies[index] = make_policy(
                self.config.replacement, self.config.associativity)
        self.stats.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"WayOrganizedCache(name={self.name!r}, "
                f"policy={self.config.replacement!r}, "
                f"occupancy={self.occupancy()})")


def make_cache(config: CacheConfig, name: str = "cache"
               ) -> Union["SetAssociativeCache", WayOrganizedCache]:
    """Build the right cache variant for ``config.replacement``."""
    if config.replacement == "lru":
        from .cache import SetAssociativeCache
        return SetAssociativeCache(config, name=name)
    return WayOrganizedCache(config, name=name)
