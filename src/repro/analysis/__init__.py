"""Analysis: working-set profiling, cached experiment running, tables,
terminal charts and CSV export."""

from .charts import bar_chart, grouped_bar_chart, series_chart, \
    stacked_bar_chart
from .export import export_experiment, write_csv
from .runner import (
    cache_size,
    clear_cache,
    hmean_speedup,
    run,
    run_matrix,
    speedups_vs_baseline,
)
from .tables import format_series, format_table, normalize
from .working_set import (
    SHARING_FALSE,
    SHARING_NONE,
    SHARING_TRUE,
    WorkingSetPoint,
    classify_lines,
    working_set_profile,
)

__all__ = [
    "bar_chart",
    "grouped_bar_chart",
    "series_chart",
    "stacked_bar_chart",
    "export_experiment",
    "write_csv",
    "cache_size",
    "clear_cache",
    "hmean_speedup",
    "run",
    "run_matrix",
    "speedups_vs_baseline",
    "format_series",
    "format_table",
    "normalize",
    "SHARING_FALSE",
    "SHARING_NONE",
    "SHARING_TRUE",
    "WorkingSetPoint",
    "classify_lines",
    "working_set_profile",
]
