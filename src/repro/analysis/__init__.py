"""Analysis: working-set profiling, cached experiment running, tables,
terminal charts and CSV export."""

from .charts import bar_chart, grouped_bar_chart, series_chart, \
    stacked_bar_chart
from .diskcache import SCHEMA_VERSION, ResultCache, content_key
from .export import (
    export_experiment,
    flatten_run_summaries,
    write_csv,
    write_json,
)
from .runner import (
    RunnerTelemetry,
    cache_size,
    clear_cache,
    default_jobs,
    hmean_speedup,
    reset_telemetry,
    run,
    run_matrix,
    set_default_cache_dir,
    speedups_vs_baseline,
    telemetry,
)
from .tables import format_series, format_table, normalize
from .working_set import (
    SHARING_FALSE,
    SHARING_NONE,
    SHARING_TRUE,
    WorkingSetPoint,
    classify_lines,
    working_set_profile,
)

__all__ = [
    "bar_chart",
    "grouped_bar_chart",
    "series_chart",
    "stacked_bar_chart",
    "export_experiment",
    "flatten_run_summaries",
    "write_csv",
    "write_json",
    "SCHEMA_VERSION",
    "ResultCache",
    "content_key",
    "RunnerTelemetry",
    "cache_size",
    "clear_cache",
    "default_jobs",
    "hmean_speedup",
    "reset_telemetry",
    "run",
    "run_matrix",
    "set_default_cache_dir",
    "speedups_vs_baseline",
    "telemetry",
    "format_series",
    "format_table",
    "normalize",
    "SHARING_FALSE",
    "SHARING_NONE",
    "SHARING_TRUE",
    "WorkingSetPoint",
    "classify_lines",
    "working_set_profile",
]
