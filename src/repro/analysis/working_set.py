"""Windowed working-set and sharing analysis (paper Figure 11).

Figure 11 reports, for each benchmark, the working-set size within time
windows of 1K to 100K cycles under the SM-side organization, split into
truly shared, falsely shared and non-shared data (Section 2.2
definitions, applied at whole-trace granularity):

* a line is **truly shared** if more than one chip accesses it anywhere
  in the trace;
* **falsely shared** if only one chip accesses it but another chip
  accesses a different line of the same page;
* **non-shared** otherwise.

Within a window, a truly shared line counts once per accessing chip
(that is what gets *replicated* under an SM-side LLC), which is exactly
the quantity that must fit in the system LLC for SM-side to win.

Trace positions are converted to cycles using each epoch's compute
floor, so a "window" is a contiguous slice of the access stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..workloads.generator import KernelTrace, TraceGenerator
from ..workloads.spec import BenchmarkSpec

MB = 1024 * 1024

SHARING_TRUE = "true"
SHARING_FALSE = "false"
SHARING_NONE = "none"


@dataclass(frozen=True)
class WorkingSetPoint:
    """Mean working set (bytes) within windows of one size.

    ``true/false/non_shared_bytes`` count every touched line, with truly
    shared lines counted once per accessing chip (the replication an
    SM-side LLC performs) — the paper's Figure 11 metric.

    ``active_demand_bytes`` is the *re-referenced* per-chip demand: the
    mean over windows of the worst chip's distinct lines that it accessed
    at least twice within the window.  This is the quantity that must fit
    one chip's LLC for an SM-side organization to win; unlike the raw
    touched-byte count it is not inflated by cold streaming data.
    """

    window_cycles: float
    true_shared_bytes: float
    false_shared_bytes: float
    non_shared_bytes: float
    active_demand_bytes: float = 0.0

    @property
    def total_bytes(self) -> float:
        return (self.true_shared_bytes + self.false_shared_bytes
                + self.non_shared_bytes)

    def as_mb(self) -> Dict[str, float]:
        return {
            "window_cycles": self.window_cycles,
            "true_mb": self.true_shared_bytes / MB,
            "false_mb": self.false_shared_bytes / MB,
            "none_mb": self.non_shared_bytes / MB,
            "total_mb": self.total_bytes / MB,
            "active_demand_mb": self.active_demand_bytes / MB,
        }


def _flatten_trace(kernels: Iterable[KernelTrace]
                   ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate a trace into (chips, addrs, cycle_timestamps)."""
    chips: List[np.ndarray] = []
    addrs: List[np.ndarray] = []
    times: List[np.ndarray] = []
    now = 0.0
    for kernel in kernels:
        for epoch in kernel.epochs:
            n = len(epoch)
            chips.append(epoch.chips)
            addrs.append(epoch.addrs)
            times.append(now + np.arange(n) * (epoch.compute_cycles / n))
            now += epoch.compute_cycles
    if not addrs:
        raise ValueError("empty trace")
    return (np.concatenate(chips), np.concatenate(addrs),
            np.concatenate(times))


def classify_lines(chips: np.ndarray, addrs: np.ndarray, line_size: int,
                   page_size: int) -> Dict[int, str]:
    """Whole-trace sharing class of every line (Section 2.2)."""
    lines = addrs // line_size
    pages = addrs // page_size
    line_chips: Dict[int, int] = {}
    page_chips: Dict[int, int] = {}
    for line, page, chip in zip(lines.tolist(), pages.tolist(),
                                chips.tolist()):
        bit = 1 << chip
        line_chips[line] = line_chips.get(line, 0) | bit
        page_chips[page] = page_chips.get(page, 0) | bit
    lines_per_page = page_size // line_size
    classes: Dict[int, str] = {}
    for line, mask in line_chips.items():
        if mask & (mask - 1):  # more than one bit set
            classes[line] = SHARING_TRUE
        elif page_chips[line // lines_per_page] != mask:
            classes[line] = SHARING_FALSE
        else:
            classes[line] = SHARING_NONE
    return classes


def working_set_profile(spec: BenchmarkSpec, num_chips: int = 4,
                        window_cycles: Sequence[float] = (
                            1_000, 10_000, 100_000),
                        line_size: int = 128, page_size: int = 4096,
                        accesses_per_epoch: int = 8192,
                        scale: float = 1.0,
                        clusters_per_chip: int = 32
                        ) -> List[WorkingSetPoint]:
    """Compute the Figure 11 series for one benchmark.

    Returns one :class:`WorkingSetPoint` per window size: the mean
    distinct-byte footprint per window, with truly shared lines counted
    once per accessing chip (SM-side replication).  ``scale`` shrinks the
    workload like the simulator does; callers that want paper-scale MB
    values should divide by ``scale`` (or run with ``scale=1.0``).
    """
    generator = TraceGenerator(
        spec, num_chips=num_chips, clusters_per_chip=clusters_per_chip,
        line_size=line_size, page_size=page_size,
        accesses_per_epoch_per_chip=accesses_per_epoch, scale=scale)
    chips, addrs, times = _flatten_trace(generator.kernels())
    classes = classify_lines(chips, addrs, line_size, page_size)
    lines = (addrs // line_size).tolist()
    chip_list = chips.tolist()
    points = []
    for window in window_cycles:
        points.append(_windowed_point(window, times, lines, chip_list,
                                      classes, line_size))
    return points


def _windowed_point(window: float, times: np.ndarray, lines: List[int],
                    chips: List[int], classes: Dict[int, str],
                    line_size: int) -> WorkingSetPoint:
    end = float(times[-1]) if len(times) else 0.0
    num_windows = max(1, int(end // window) + 1)
    boundaries = np.searchsorted(times, np.arange(1, num_windows + 1) * window)
    totals = {SHARING_TRUE: 0, SHARING_FALSE: 0, SHARING_NONE: 0}
    active_total = 0
    start = 0
    windows_counted = 0
    for boundary in boundaries.tolist():
        if boundary <= start:
            start = boundary
            continue
        seen_true = set()
        seen_other = set()
        # (line, chip) -> times that chip touched the line this window.
        per_chip_counts: Dict[Tuple[int, int], int] = {}
        for i in range(start, boundary):
            line = lines[i]
            chip = chips[i]
            cls = classes[line]
            if cls == SHARING_TRUE:
                # Replicated: count one copy per accessing chip.
                seen_true.add((line, chip))
            else:
                seen_other.add(line)
            key = (line, chip)
            per_chip_counts[key] = per_chip_counts.get(key, 0) + 1
        totals[SHARING_TRUE] += len(seen_true)
        for line in seen_other:
            totals[classes[line]] += 1
        # Active demand: the worst chip's re-referenced line count.
        active_by_chip: Dict[int, int] = {}
        for (line, chip), count in per_chip_counts.items():
            if count >= 2:
                active_by_chip[chip] = active_by_chip.get(chip, 0) + 1
        active_total += max(active_by_chip.values(), default=0)
        windows_counted += 1
        start = boundary
    if windows_counted == 0:
        windows_counted = 1
    return WorkingSetPoint(
        window_cycles=window,
        true_shared_bytes=totals[SHARING_TRUE] * line_size / windows_counted,
        false_shared_bytes=totals[SHARING_FALSE] * line_size / windows_counted,
        non_shared_bytes=totals[SHARING_NONE] * line_size / windows_counted,
        active_demand_bytes=active_total * line_size / windows_counted)
