"""First-order interconnect/memory energy estimation.

The paper's energy claims are limited to NoC power/area
(:mod:`repro.noc.power`); this module adds a complementary *dynamic
energy* estimate per run, useful for comparing LLC organizations: data
movement dominates, and the organizations differ mainly in how many
bytes cross which fabric.

The per-byte costs are first-order, technology-style constants (pJ/B)
with the usual ordering

    on-chip NoC  <  LLC array  <  DRAM  <  inter-chip SerDes

Only *ratios between runs* are meaningful, like the NoC power model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..sim.stats import RunStats

#: Per-byte dynamic energy (picojoules/byte), first-order 22nm-class
#: figures: on-chip wires are cheap, DRAM and off-chip SerDes expensive.
PJ_PER_BYTE = {
    "noc": 0.8,
    "llc": 1.2,
    "dram": 15.0,
    "inter_chip": 10.0,
}

#: Static (leakage + clocking) power in pJ/cycle charged per run cycle.
PJ_PER_CYCLE_STATIC = 50.0


@dataclass(frozen=True)
class EnergyEstimate:
    """Energy breakdown for one run (picojoules)."""

    noc: float
    llc: float
    dram: float
    inter_chip: float
    static: float

    @property
    def dynamic(self) -> float:
        return self.noc + self.llc + self.dram + self.inter_chip

    @property
    def total(self) -> float:
        return self.dynamic + self.static

    def breakdown(self) -> Dict[str, float]:
        return {
            "noc": self.noc,
            "llc": self.llc,
            "dram": self.dram,
            "inter_chip": self.inter_chip,
            "static": self.static,
        }


def estimate_energy(stats: RunStats, line_size: int = 128) -> EnergyEstimate:
    """Estimate a run's data-movement energy from its traffic counters.

    NoC bytes are approximated as one response line per access (every
    request's data crosses the intra-chip fabric once on its way to the
    SM) and LLC bytes as one line per lookup — both organization-
    independent; the organization-dependent terms (DRAM, inter-chip) come
    straight from the run's counters.
    """
    if stats.accesses == 0:
        raise ValueError("cannot estimate energy for an empty run")
    noc_bytes = stats.accesses * line_size
    llc_bytes = stats.llc_lookups * line_size
    return EnergyEstimate(
        noc=noc_bytes * PJ_PER_BYTE["noc"],
        llc=llc_bytes * PJ_PER_BYTE["llc"],
        dram=stats.dram_bytes * PJ_PER_BYTE["dram"],
        inter_chip=stats.inter_chip_bytes * PJ_PER_BYTE["inter_chip"],
        static=stats.cycles * PJ_PER_CYCLE_STATIC)


def energy_ratio(candidate: RunStats, baseline: RunStats,
                 line_size: int = 128) -> float:
    """Total-energy ratio of ``candidate`` over ``baseline``."""
    candidate_energy = estimate_energy(candidate, line_size).total
    baseline_energy = estimate_energy(baseline, line_size).total
    if baseline_energy <= 0:
        raise ValueError("baseline has no energy")
    return candidate_energy / baseline_energy
