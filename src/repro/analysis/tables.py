"""Plain-text table/series formatting for experiment reports.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output consistent and dependency-free.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 float_format: str = "{:.2f}") -> str:
    """Render rows as an aligned ASCII table."""
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [len(h) for h in headers]
    for cells in rendered:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) if i else cell.ljust(widths[i])
                         for i, cell in enumerate(cells))
    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(cells) for cells in rendered)
    return "\n".join(out)


def format_series(title: str, series: Mapping[str, Mapping[str, float]],
                  float_format: str = "{:.3f}") -> str:
    """Render a figure's named series as ``name: key=value ...`` lines."""
    lines = [title]
    for name, points in series.items():
        parts = " ".join(
            f"{key}={float_format.format(value)}"
            for key, value in points.items())
        lines.append(f"  {name}: {parts}")
    return "\n".join(lines)


def normalize(values: Mapping[str, float],
              reference_key: str) -> Dict[str, float]:
    """Normalize a mapping by one of its entries."""
    reference = values[reference_key]
    if reference == 0:
        raise ValueError(f"reference {reference_key!r} is zero")
    return {key: value / reference for key, value in values.items()}
