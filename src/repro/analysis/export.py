"""CSV export of experiment results.

Every ``repro.experiments`` module returns plain dicts; these helpers
flatten the common result shapes into CSV files so the tables/series can
be plotted or diffed outside Python.  ``export_experiment`` dispatches
on the result's structure; ``write_csv`` is the low-level primitive.
"""

from __future__ import annotations

import csv
import json
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from ..sim.stats import RunStats


def write_csv(path: str, headers: Sequence[str],
              rows: Iterable[Sequence[object]]) -> int:
    """Write rows to ``path``; returns the number of data rows."""
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(list(row))
            count += 1
    return count


def write_json(path: str, payload: object) -> None:
    """Write ``payload`` as pretty-printed JSON (benchmark reports)."""
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def flatten_run_summaries(results: Mapping[Tuple[str, str], RunStats]
                          ) -> List[Dict[str, object]]:
    """One ``RunStats.summary()`` row per (benchmark, organization) pair.

    Row order follows the mapping's own (submission) order, so exports of
    a ``run_matrix`` result are deterministic.
    """
    return [stats.summary() for stats in results.values()]


def flatten_speedups(speedups: Mapping[tuple, float]
                     ) -> List[Sequence[object]]:
    """Flatten a ``(benchmark, organization) -> value`` mapping."""
    return [[bench, org, value]
            for (bench, org), value in sorted(speedups.items())]


def flatten_grouped(series: Mapping[str, Mapping[str, float]]
                    ) -> List[Sequence[object]]:
    """Flatten a ``group -> {key -> value}`` mapping."""
    rows: List[Sequence[object]] = []
    for group, values in series.items():
        for key, value in values.items():
            rows.append([group, key, value])
    return rows


def export_experiment(result: Dict[str, object], path: str) -> int:
    """Export an experiment result to CSV, dispatching on its shape.

    Supported shapes (in priority order): ``speedups`` ((bench, org) ->
    value), ``rows`` (list of dicts), ``series`` / ``sweeps`` /
    ``profiles`` (named series of point dicts), and grouped mappings
    (``performance``, ``remote_fraction``, ...).  Returns the number of
    rows written; raises ``ValueError`` for unrecognized shapes.
    """
    if "speedups" in result:
        return write_csv(path, ["benchmark", "organization", "speedup"],
                         flatten_speedups(result["speedups"]))
    if "rows" in result and isinstance(result["rows"], list):
        rows = result["rows"]
        if rows and isinstance(rows[0], dict):
            headers = list(rows[0].keys())
            return write_csv(path, headers,
                             ([row.get(h) for h in headers] for row in rows))
        if rows and isinstance(rows[0], Mapping):
            raise ValueError("unsupported row mapping type")
    for key in ("series", "sweeps", "profiles"):
        if key in result:
            named = result[key]
            flat: List[Sequence[object]] = []
            headers: List[str] = []
            for name, points in named.items():
                for point in points:
                    if not headers:
                        headers = ["name"] + list(point.keys())
                    flat.append([name] + [point.get(h)
                                          for h in headers[1:]])
            return write_csv(path, headers, flat)
    for key in ("performance", "remote_fraction", "aggregate"):
        if key in result and isinstance(result[key], Mapping):
            value = result[key]
            first = next(iter(value.values()), None)
            if isinstance(first, Mapping):
                return write_csv(path, ["group", "key", "value"],
                                 flatten_grouped(value))
            return write_csv(path, ["key", "value"],
                             sorted(value.items()))
    raise ValueError("unrecognized experiment result shape; "
                     f"keys: {sorted(result)}")
