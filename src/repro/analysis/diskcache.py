"""Persistent on-disk cache for simulation results.

Experiment matrices re-run the same (benchmark, organization, config)
pairs across pytest sessions, figure scripts and the CLI.  The in-process
memo in :mod:`repro.analysis.runner` only helps within one process; this
module adds a content-addressed store under ``.repro_cache/`` so a warm
cache survives process boundaries.

Keys are sha256 hashes of a *structural* encoding of every input that
can change the simulation outcome (spec, organization, config, scale,
density, engine params).  Dataclasses are encoded field by field, so two
structurally equal configs produce the same key regardless of object
identity.

The store is versioned: payloads live under ``<root>/v<SCHEMA_VERSION>/``
and bumping ``SCHEMA_VERSION`` (whenever ``RunStats`` or the timing
model changes shape) makes every old entry invisible; stale version
directories are deleted lazily the first time the new version opens the
root.  Writes are atomic (temp file + ``os.replace``) so a crashed or
parallel writer can never leave a torn payload.  Unreadable payloads
are treated as misses, but instead of being deleted they are moved to
``<root>/quarantine/`` — a torn or incompatible payload is evidence of
a writer bug or a schema drift, and the bytes are the forensics.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import shutil
import tempfile
from pathlib import Path
from typing import Optional, Union

from ..resilience.faults import fire
from ..sim.engine import EngineParams
from ..sim.stats import KernelStats, RunStats

#: Bump whenever the timing model or the RunStats schema changes in a way
#: that makes previously stored results wrong or unreadable.
SCHEMA_VERSION = 1


def schema_token() -> str:
    """Fingerprint of the result/parameter schema, folded into every key.

    Derived from ``SCHEMA_VERSION`` plus the *field lists* of the
    dataclasses whose shape determines what a stored payload means:
    :class:`RunStats`, :class:`KernelStats` and :class:`EngineParams`.
    Adding, removing or renaming a field changes the token, so stored
    results from a different code shape miss automatically even when
    nobody remembered to bump ``SCHEMA_VERSION``.  Field lists are taken
    in declaration order (a reordering is deliberately *not* a schema
    change for pickled payloads, but declaration order is deterministic,
    so the token is stable across processes either way).
    """
    parts = [f"schema_version={SCHEMA_VERSION}"]
    for cls in (RunStats, KernelStats, EngineParams):
        names = ",".join(f.name for f in dataclasses.fields(cls))
        parts.append(f"{cls.__qualname__}({names})")
    return hashlib.sha256(
        ";".join(parts).encode("utf-8")).hexdigest()[:16]

#: Default cache root (relative to the working directory), overridable
#: with the ``REPRO_CACHE_DIR`` environment variable.
DEFAULT_CACHE_DIR = ".repro_cache"


def default_cache_root() -> Path:
    return Path(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))


def _encode(value: object) -> object:
    """Stable, JSON-serializable structural encoding of ``value``."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__qualname__,
            "fields": {
                f.name: _encode(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, dict):
        return {"__dict__": sorted(
            (str(k), _encode(v)) for k, v in value.items())}
    if isinstance(value, (list, tuple)):
        return [_encode(item) for item in value]
    if isinstance(value, float):
        # repr round-trips floats exactly; avoids json float formatting
        # drift across python versions.
        return {"__float__": repr(value)}
    if value is None or isinstance(value, (bool, int, str)):
        return value
    # Last resort: objects with a stable repr (enums, paths).  Callables
    # and open-ended objects are rejected so keys stay deterministic.
    if callable(value):
        raise TypeError(
            f"cannot build a cache key from callable {value!r}")
    return {"__repr__": f"{type(value).__qualname__}:{value!r}"}


def content_key(**parts: object) -> str:
    """sha256 hex digest of the structural encoding of ``parts``.

    The current :func:`schema_token` is folded into every key, so a
    change to the ``RunStats``/``KernelStats``/``EngineParams`` field
    lists invalidates old entries even without a ``SCHEMA_VERSION`` bump.
    """
    encoded = {name: _encode(value) for name, value in sorted(parts.items())}
    encoded["__schema__"] = schema_token()
    payload = json.dumps(
        encoded, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed on-disk store for :class:`RunStats` payloads."""

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.version_dir = self.root / f"v{SCHEMA_VERSION}"
        # Quarantine lives beside (not under) the version dir so stale
        # schema eviction and ``clear()`` leave the forensics alone.
        self.quarantine_dir = self.root / "quarantine"
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.quarantined = 0
        self._opened = False

    # -- Layout -------------------------------------------------------------

    def _open(self) -> None:
        """Create the version directory and evict stale schema versions."""
        if self._opened:
            return
        self.version_dir.mkdir(parents=True, exist_ok=True)
        for entry in self.root.iterdir():
            if (entry.is_dir() and entry.name.startswith("v")
                    and entry != self.version_dir):
                shutil.rmtree(entry, ignore_errors=True)
        self._opened = True

    def _path(self, key: str) -> Path:
        # Two-level fan-out keeps directory listings short at scale.
        return self.version_dir / key[:2] / f"{key}.pkl"

    # -- Access -------------------------------------------------------------

    def load(self, key: str) -> Optional[RunStats]:
        """Return the stored result for ``key``, or None on a miss.

        Corrupt or unreadable payloads count as misses and are moved to
        the quarantine directory for later inspection.
        """
        self._open()
        path = self._path(key)
        try:
            with path.open("rb") as handle:
                stats = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            # Torn write or a payload from an incompatible code state.
            self._quarantine(path)
            self.misses += 1
            return None
        if not isinstance(stats, RunStats):
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return stats

    def _quarantine(self, path: Path) -> None:
        """Move an unreadable payload aside instead of deleting it."""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        try:
            os.replace(path, self.quarantine_dir / path.name)
        except OSError:
            # A concurrent reader already moved (or removed) it; either
            # way the payload is out of the hot path.
            path.unlink(missing_ok=True)
        self.quarantined += 1

    def store(self, key: str, stats: RunStats) -> None:
        """Persist ``stats`` under ``key`` atomically."""
        self._open()
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key[:8]}-", suffix=".tmp", dir=path.parent)
        # try/finally instead of a broad except: nothing is swallowed
        # (KeyboardInterrupt/SystemExit propagate untouched) and the
        # temp file is reaped on every exit path — after a successful
        # ``os.replace`` the unlink is a no-op ENOENT.
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(stats, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        finally:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
        self.stores += 1
        if fire("cache.torn_payload", key=key) is not None:
            # Injected fault: truncate the payload we just committed,
            # simulating a torn write for the next reader to quarantine.
            path.write_bytes(path.read_bytes()[:16])

    def clear(self) -> None:
        """Delete every entry of the current schema version."""
        shutil.rmtree(self.version_dir, ignore_errors=True)
        self._opened = False

    def __len__(self) -> int:
        if not self.version_dir.is_dir():
            return 0
        return sum(1 for _ in self.version_dir.glob("*/*.pkl"))
