"""Experiment runner with in-process result caching.

Several paper figures share the same underlying runs (e.g. Figures 1, 8,
9 and 10 all need the 16 benchmarks under the five organizations), so
the runner memoizes :func:`repro.sim.run.simulate` results by a
structural key (benchmark spec, organization, config, scale, density).
The cache is per-process; benches that run in one pytest session reuse
each other's runs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..arch.config import SystemConfig
from ..sim.run import (
    DEFAULT_ACCESSES_PER_EPOCH,
    DEFAULT_SCALE,
    simulate,
)
from ..sim.stats import RunStats, harmonic_mean
from ..workloads.spec import BenchmarkSpec

_CACHE: Dict[object, RunStats] = {}


def clear_cache() -> None:
    """Drop every memoized run (for tests)."""
    _CACHE.clear()


def cache_size() -> int:
    return len(_CACHE)


def run(spec: BenchmarkSpec, organization: str,
        config: Optional[SystemConfig] = None,
        scale: float = DEFAULT_SCALE,
        accesses_per_epoch: int = DEFAULT_ACCESSES_PER_EPOCH,
        use_cache: bool = True) -> RunStats:
    """Simulate (or recall) one benchmark under one organization."""
    key = (spec, organization, config, scale, accesses_per_epoch)
    if use_cache and key in _CACHE:
        return _CACHE[key]
    stats = simulate(spec, organization, config=config, scale=scale,
                     accesses_per_epoch=accesses_per_epoch)
    if use_cache:
        _CACHE[key] = stats
    return stats


def run_matrix(specs: Iterable[BenchmarkSpec], organizations: Iterable[str],
               config: Optional[SystemConfig] = None,
               scale: float = DEFAULT_SCALE,
               accesses_per_epoch: int = DEFAULT_ACCESSES_PER_EPOCH
               ) -> Dict[Tuple[str, str], RunStats]:
    """Run every (benchmark, organization) pair; returns a keyed dict."""
    results: Dict[Tuple[str, str], RunStats] = {}
    for spec in specs:
        for organization in organizations:
            results[(spec.name, organization)] = run(
                spec, organization, config=config, scale=scale,
                accesses_per_epoch=accesses_per_epoch)
    return results


def speedups_vs_baseline(results: Dict[Tuple[str, str], RunStats],
                         benchmarks: Iterable[str],
                         organizations: Iterable[str],
                         baseline: str = "memory-side"
                         ) -> Dict[Tuple[str, str], float]:
    """Per-benchmark speedup of each organization over ``baseline``."""
    speedups: Dict[Tuple[str, str], float] = {}
    for bench in benchmarks:
        base = results[(bench, baseline)].cycles
        for org in organizations:
            speedups[(bench, org)] = base / results[(bench, org)].cycles
    return speedups


def hmean_speedup(speedups: Dict[Tuple[str, str], float],
                  benchmarks: Iterable[str], organization: str) -> float:
    """Harmonic-mean speedup of one organization over a benchmark group."""
    values = [speedups[(bench, organization)] for bench in benchmarks]
    return harmonic_mean(values)
