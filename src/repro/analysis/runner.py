"""Experiment runner: memoized, disk-cached, optionally parallel.

Several paper figures share the same underlying runs (e.g. Figures 1, 8,
9 and 10 all need the 16 benchmarks under the five organizations), so
the runner memoizes :func:`repro.sim.run.simulate` results by a
structural key (benchmark spec, organization, *resolved* config, scale,
density, engine params).  Config resolution happens before the key is
built, so ``config=None`` and an explicit ``baseline()`` share cache
entries.

Three layers, checked in order:

1. the in-process memo (``_CACHE``), free within one process;
2. the optional on-disk :class:`~repro.analysis.diskcache.ResultCache`,
   which survives process boundaries (pass ``cache_dir``);
3. :func:`~repro.sim.run.simulate`, optionally fanned out across a
   supervised process pool (``n_jobs``) for matrix runs.

Matrix results are keyed and ordered deterministically by (benchmark,
organization) submission order regardless of worker completion order.

Execution is fault-tolerant (see ``docs/resilience.md``): pool tasks run
under a :class:`~repro.resilience.supervisor.Supervisor` (per-task
timeouts via ``REPRO_TASK_TIMEOUT``, retries via ``REPRO_RETRIES``, pool
respawn on worker death), and — when the disk cache is on — every
completed pair is journaled to a :class:`~repro.resilience.manifest.
SweepManifest` under the cache root, so an interrupted matrix resumes
from what it already finished instead of restarting.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union, cast

from ..arch.config import SystemConfig
from ..arch.presets import baseline
from ..resilience.manifest import SweepManifest
from ..resilience.supervisor import SupervisedTask, Supervisor
from ..sim.engine import EngineParams
from ..sim.run import (
    DEFAULT_ACCESSES_PER_EPOCH,
    DEFAULT_SCALE,
    StackedResult,
    simulate,
    simulate_stacked,
)
from ..sim.stats import RunStats, harmonic_mean
from ..workloads.spec import BenchmarkSpec
from .diskcache import ResultCache, content_key

_CACHE: Dict[object, RunStats] = {}


@dataclass
class RunnerTelemetry:
    """Where matrix runs came from (fresh simulation vs cache layers)."""

    simulated: int = 0
    memo_hits: int = 0
    disk_hits: int = 0
    disk_stores: int = 0
    #: Batched epochs (summed over fresh simulations) that fell off the
    #: vectorized probe kernel onto the per-access loop.
    demotions: int = 0
    #: Wall seconds spent *inside* ``simulate``/``simulate_stacked``
    #: (per-lane simulator time, summed over fresh results).
    sim_seconds: float = 0.0
    #: Phase breakdown of the fresh-simulation wall clock, summed over
    #: the per-run ``RunStats`` buckets: tag-store solves vs the
    #: accounting tail of batched epochs (see ``RunStats.solve_seconds``
    #: / ``charge_seconds``).
    solve_seconds: float = 0.0
    charge_seconds: float = 0.0
    #: Whole-matrix wall clock of every ``run_matrix`` call, including
    #: cache-hit resolution and dispatch overhead.  Kept separate from
    #: ``sim_seconds`` because the two measure different things (the
    #: old ``wall_seconds`` field mixed them).
    matrix_seconds: float = 0.0
    #: Stacked dispatch: pending groups routed through
    #: ``simulate_stacked``, lanes that shared a tag store, and lanes a
    #: stacked group could not host in a shared bank.
    stacked_groups: int = 0
    stacked_lanes: int = 0
    stacked_fallbacks: int = 0
    #: Supervised execution: task re-dispatches after a failed attempt,
    #: tasks that overran ``REPRO_TASK_TIMEOUT``, and process pools
    #: replaced after a worker death or hang.
    retries: int = 0
    timeouts: int = 0
    respawns: int = 0
    #: Fault containment inside stacked groups: lanes quarantined
    #: mid-drive and the subset whose solo re-run was demoted to the
    #: scalar engine (vector-kernel fault).
    quarantined_lanes: int = 0
    demoted_lanes: int = 0
    #: Unreadable disk-cache payloads moved to ``quarantine/``.
    cache_quarantined: int = 0
    #: Disk hits whose key the sweep manifest had journaled — work a
    #: previous (interrupted or completed) run of this matrix already
    #: finished — and dispatch submissions dropped by the duplicate-
    #: submission guard (a resumed-manifest entry overlapping the
    #: in-process pending set).
    resumed_pairs: int = 0
    deduped_submissions: int = 0

    def summary(self) -> str:
        line = (f"{self.simulated} simulated, {self.memo_hits} memo hits, "
                f"{self.disk_hits} disk hits, {self.disk_stores} disk "
                f"stores in {self.sim_seconds:.1f}s sim "
                f"({self.matrix_seconds:.1f}s matrix)")
        if self.solve_seconds or self.charge_seconds:
            line += (f", {self.solve_seconds:.1f}s solve + "
                     f"{self.charge_seconds:.1f}s charge")
        if self.stacked_groups:
            line += (f", {self.stacked_lanes} lanes stacked in "
                     f"{self.stacked_groups} groups")
            if self.stacked_fallbacks:
                line += f" ({self.stacked_fallbacks} unstacked)"
        if self.demotions:
            line += f", {self.demotions} vector demotions"
        if self.retries or self.timeouts or self.respawns:
            line += (f", {self.retries} retries / {self.timeouts} timeouts"
                     f" / {self.respawns} pool respawns")
        if self.quarantined_lanes:
            line += f", {self.quarantined_lanes} lanes quarantined"
            if self.demoted_lanes:
                line += f" ({self.demoted_lanes} demoted to scalar)"
        if self.cache_quarantined:
            line += f", {self.cache_quarantined} payloads quarantined"
        if self.resumed_pairs:
            line += f", {self.resumed_pairs} pairs resumed"
        if self.deduped_submissions:
            line += f", {self.deduped_submissions} submissions deduped"
        return line


_TELEMETRY = RunnerTelemetry()


def telemetry() -> RunnerTelemetry:
    """Cumulative counters for this process's runner activity."""
    return _TELEMETRY


def reset_telemetry() -> None:
    global _TELEMETRY
    _TELEMETRY = RunnerTelemetry()


def clear_cache() -> None:
    """Drop every memoized run (for tests).  Leaves the disk cache alone."""
    _CACHE.clear()


def cache_size() -> int:
    return len(_CACHE)


def default_jobs() -> int:
    """Worker count used when ``n_jobs`` is not given (env ``REPRO_JOBS``)."""
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


_DEFAULT_CACHE_DIR: Optional[Path] = None


def set_default_cache_dir(path: Optional[Union[str, Path]]) -> None:
    """Disk-cache root used by ``run_matrix`` calls that do not pass
    ``cache_dir`` themselves (``None`` disables it again).  Lets the CLI
    turn on persistence without threading a parameter through every
    experiment module."""
    global _DEFAULT_CACHE_DIR
    _DEFAULT_CACHE_DIR = Path(path) if path is not None else None


def _resolve_config(config: Optional[SystemConfig]) -> SystemConfig:
    """Resolve ``None`` to the paper baseline *before* any key is built.

    This is what makes ``run(spec, org)`` and
    ``run(spec, org, config=baseline())`` share one cache entry.
    """
    return config if config is not None else baseline()


def _resolve_params(params: Optional[EngineParams]) -> EngineParams:
    return params if params is not None else EngineParams()


def _memo_key(spec: BenchmarkSpec, organization: str, config: SystemConfig,
              scale: float, accesses_per_epoch: int,
              params: EngineParams) -> Tuple[object, ...]:
    return (spec, organization, config, scale, accesses_per_epoch, params)


def _disk_key(spec: BenchmarkSpec, organization: str, config: SystemConfig,
              scale: float, accesses_per_epoch: int,
              params: EngineParams) -> str:
    return content_key(spec=spec, organization=organization, config=config,
                       scale=scale, accesses_per_epoch=accesses_per_epoch,
                       params=params)


def _simulate_task(spec: BenchmarkSpec, organization: str,
                   config: SystemConfig, scale: float,
                   accesses_per_epoch: int,
                   params: EngineParams) -> RunStats:
    """Worker-side entry point (module-level so the pool can pickle it)."""
    return simulate(spec, organization, config=config, scale=scale,
                    accesses_per_epoch=accesses_per_epoch, params=params)


def _simulate_stacked_task(spec: BenchmarkSpec, organizations: List[str],
                           config: SystemConfig, scale: float,
                           accesses_per_epoch: int,
                           params: EngineParams) -> StackedResult:
    """Worker-side stacked entry point (module-level for pickling)."""
    return simulate_stacked(spec, organizations, config=config, scale=scale,
                            accesses_per_epoch=accesses_per_epoch,
                            params=params)


def _stacked_enabled() -> bool:
    """Whether ``run_matrix`` stacks same-trace pending groups into one
    ``simulate_stacked`` dispatch (disable with ``REPRO_STACKED=0``)."""
    return os.environ.get("REPRO_STACKED", "1") != "0"


def run(spec: BenchmarkSpec, organization: str,
        config: Optional[SystemConfig] = None,
        scale: float = DEFAULT_SCALE,
        accesses_per_epoch: int = DEFAULT_ACCESSES_PER_EPOCH,
        use_cache: bool = True,
        params: Optional[EngineParams] = None,
        disk_cache: Optional[ResultCache] = None) -> RunStats:
    """Simulate (or recall) one benchmark under one organization."""
    resolved = _resolve_config(config)
    resolved_params = _resolve_params(params)
    key = _memo_key(spec, organization, resolved, scale, accesses_per_epoch,
                    resolved_params)
    if use_cache and key in _CACHE:
        _TELEMETRY.memo_hits += 1
        return _CACHE[key]
    dkey: Optional[str] = None
    if use_cache and disk_cache is not None:
        dkey = _disk_key(spec, organization, resolved, scale,
                         accesses_per_epoch, resolved_params)
        quarantined_before = disk_cache.quarantined
        stats = disk_cache.load(dkey)
        _TELEMETRY.cache_quarantined += (disk_cache.quarantined
                                         - quarantined_before)
        if stats is not None:
            _TELEMETRY.disk_hits += 1
            _CACHE[key] = stats
            return stats
    started = time.perf_counter()
    stats = simulate(spec, organization, config=resolved, scale=scale,
                     accesses_per_epoch=accesses_per_epoch,
                     params=resolved_params)
    _TELEMETRY.simulated += 1
    _TELEMETRY.demotions += stats.demotions
    _TELEMETRY.sim_seconds += time.perf_counter() - started
    if use_cache:
        _CACHE[key] = stats
        if disk_cache is not None and dkey is not None:
            disk_cache.store(dkey, stats)
            _TELEMETRY.disk_stores += 1
    return stats


def run_matrix(specs: Iterable[BenchmarkSpec], organizations: Iterable[str],
               config: Optional[SystemConfig] = None,
               scale: float = DEFAULT_SCALE,
               accesses_per_epoch: int = DEFAULT_ACCESSES_PER_EPOCH,
               params: Optional[EngineParams] = None,
               n_jobs: Optional[int] = None,
               cache_dir: Optional[Union[str, Path]] = None
               ) -> Dict[Tuple[str, str], RunStats]:
    """Run every (benchmark, organization) pair; returns a keyed dict.

    ``n_jobs`` > 1 fans pending simulations out over a supervised
    process pool (default from the ``REPRO_JOBS`` environment variable,
    else serial) with per-task timeouts, retries and pool respawns (env
    ``REPRO_TASK_TIMEOUT``/``REPRO_RETRIES``).  ``cache_dir`` enables
    the persistent on-disk result cache; warm entries are recalled
    without re-simulating, and completed pairs are journaled to a sweep
    manifest so an interrupted matrix resumes instead of restarting.
    The returned dict is keyed and iterates in (benchmark, organization)
    submission order no matter which worker finishes first.
    """
    resolved = _resolve_config(config)
    resolved_params = _resolve_params(params)
    jobs = n_jobs if n_jobs is not None else default_jobs()
    root = cache_dir if cache_dir is not None else _DEFAULT_CACHE_DIR
    disk_cache = ResultCache(root) if root is not None else None
    cache_q_before = disk_cache.quarantined if disk_cache is not None else 0
    started = time.perf_counter()

    pairs: List[Tuple[BenchmarkSpec, str]] = [
        (spec, organization)
        for spec in specs for organization in organizations]
    # Results are keyed by spec *name*: two distinct specs sharing a
    # name would silently collapse into one key (the second spec getting
    # the first's stats), so fail loudly instead.
    spec_by_name: Dict[str, BenchmarkSpec] = {}
    for spec, _organization in pairs:
        seen = spec_by_name.setdefault(spec.name, spec)
        if seen != spec:
            raise ValueError(
                f"two distinct BenchmarkSpecs share the name "
                f"{spec.name!r}; run_matrix keys results by name, so "
                "their results would collide — rename one of them")
    results: Dict[Tuple[str, str], Optional[RunStats]] = {
        (spec.name, organization): None for spec, organization in pairs}

    # With the disk cache on, every unique pair's disk key is computed
    # up front: the sorted key set *is* the sweep identity, so the same
    # matrix always resumes the same manifest journal.
    dkey_of: Dict[Tuple[str, str], str] = {}
    manifest: Optional[SweepManifest] = None
    journaled: Set[str] = set()
    if disk_cache is not None:
        for spec, organization in pairs:
            name_key = (spec.name, organization)
            if name_key not in dkey_of:
                dkey_of[name_key] = _disk_key(
                    spec, organization, resolved, scale,
                    accesses_per_epoch, resolved_params)
        manifest = SweepManifest(
            disk_cache.root,
            content_key(pairs=sorted(dkey_of.values())))
        journaled = manifest.load()

    # Resolve the cheap layers (memo, then disk) in-process first; only
    # genuinely new work is worth a worker.  ``queued`` also dedupes
    # pairs that miss every cache layer (``results`` only catches
    # duplicates that were resolved by the time the copy is seen).
    pending: List[Tuple[BenchmarkSpec, str]] = []
    queued: Set[Tuple[str, str]] = set()
    for spec, organization in pairs:
        name_key = (spec.name, organization)
        if results[name_key] is not None or name_key in queued:
            continue  # duplicate pair in the request
        key = _memo_key(spec, organization, resolved, scale,
                        accesses_per_epoch, resolved_params)
        if key in _CACHE:
            _TELEMETRY.memo_hits += 1
            results[name_key] = _CACHE[key]
            continue
        if disk_cache is not None:
            dkey = dkey_of[name_key]
            stats = disk_cache.load(dkey)
            if stats is not None:
                _TELEMETRY.disk_hits += 1
                if dkey in journaled:
                    _TELEMETRY.resumed_pairs += 1
                _CACHE[key] = stats
                results[name_key] = stats
                continue
        pending.append((spec, organization))
        queued.add(name_key)

    # Pairs the manifest journaled as complete but whose payload is gone
    # (evicted, quarantined as torn): the journal says to re-dispatch
    # them.  They also missed every cache layer above, so the naive
    # union would submit each of them twice — the duplicate-submission
    # guard collapses the overlap by cache key.
    lost: List[Tuple[BenchmarkSpec, str]] = []
    if manifest is not None:
        for spec, organization in pairs:
            name_key = (spec.name, organization)
            if (results[name_key] is None
                    and dkey_of[name_key] in journaled):
                lost.append((spec, organization))
    dispatch: List[Tuple[BenchmarkSpec, str]] = []
    seen_keys: Set[object] = set()
    for spec, organization in pending + lost:
        dedupe_key: object = dkey_of.get(
            (spec.name, organization), (spec.name, organization))
        if dedupe_key in seen_keys:
            _TELEMETRY.deduped_submissions += 1
            continue
        seen_keys.add(dedupe_key)
        dispatch.append((spec, organization))

    # Group the dispatched pairs by benchmark: every organization of one
    # spec shares the same trace, so a group of >= 2 is dispatched as
    # one stacked kernel sweep instead of per-pair simulations.
    stacked_groups: List[Tuple[BenchmarkSpec, List[str]]] = []
    singles: List[Tuple[BenchmarkSpec, str]] = []
    if _stacked_enabled():
        orgs_by_spec: Dict[str, List[str]] = {}
        for spec, organization in dispatch:
            orgs_by_spec.setdefault(spec.name, []).append(organization)
        for name, orgs in orgs_by_spec.items():
            if len(orgs) > 1:
                stacked_groups.append((spec_by_name[name], orgs))
            else:
                singles.append((spec_by_name[name], orgs[0]))
    else:
        singles = list(dispatch)

    # Build the supervised task list.  Task keys are the pairs' disk
    # keys when available (content identity), else the name pairs; the
    # supervisor treats them as the dedupe/bookkeeping identity.
    task_meta: Dict[str, Tuple[BenchmarkSpec, List[str]]] = {}
    tasks: List[SupervisedTask] = []
    for spec, orgs in stacked_groups:
        tkey = "stacked:" + "+".join(
            str(dkey_of.get((spec.name, o), f"{spec.name}:{o}"))
            for o in orgs)
        task_meta[tkey] = (spec, orgs)
        tasks.append(SupervisedTask(
            key=tkey, label=f"{spec.name}:{'+'.join(orgs)}",
            fn=_simulate_stacked_task,
            args=(spec, orgs, resolved, scale, accesses_per_epoch,
                  resolved_params)))
    for spec, organization in singles:
        tkey = "single:" + str(dkey_of.get(
            (spec.name, organization), f"{spec.name}:{organization}"))
        task_meta[tkey] = (spec, [organization])
        tasks.append(SupervisedTask(
            key=tkey, label=f"{spec.name}:{organization}",
            fn=_simulate_task,
            args=(spec, organization, resolved, scale, accesses_per_epoch,
                  resolved_params)))

    def _install(task: SupervisedTask, result: object) -> None:
        """Install one completed task in the parent, the moment it
        lands — partial progress stays durable even if the sweep dies
        later — then journal its pairs as complete."""
        spec, orgs = task_meta[task.key]
        if isinstance(result, StackedResult):
            _install_stacked(spec, orgs, result, resolved, scale,
                             accesses_per_epoch, resolved_params,
                             disk_cache, results)
        else:
            _install_single(spec, orgs[0], cast(RunStats, result), resolved,
                            scale, accesses_per_epoch, resolved_params,
                            disk_cache, results)
        if manifest is not None:
            for organization in orgs:
                # Journal *after* the disk store above: a journaled key
                # implies its payload was written.
                manifest.mark_done(dkey_of[(spec.name, organization)],
                                   f"{spec.name}:{organization}")

    supervisor = Supervisor(max_workers=jobs, on_result=_install)
    try:
        supervisor.run(tasks)
    finally:
        _TELEMETRY.retries += supervisor.telemetry.retries
        _TELEMETRY.timeouts += supervisor.telemetry.timeouts
        _TELEMETRY.respawns += supervisor.telemetry.respawns
        if disk_cache is not None:
            _TELEMETRY.cache_quarantined += (disk_cache.quarantined
                                             - cache_q_before)
        _TELEMETRY.matrix_seconds += time.perf_counter() - started

    # None placeholders are all filled by now; rebuild to narrow the type
    # and guarantee deterministic (submission-order) iteration.
    return {name_key: stats for name_key, stats in results.items()
            if stats is not None}


def _install_single(spec: BenchmarkSpec, organization: str, stats: RunStats,
                    config: SystemConfig, scale: float,
                    accesses_per_epoch: int, params: EngineParams,
                    disk_cache: Optional[ResultCache],
                    results: Dict[Tuple[str, str], Optional[RunStats]]
                    ) -> None:
    """Record one fresh per-pair result (telemetry + caches + results)."""
    _TELEMETRY.simulated += 1
    _TELEMETRY.demotions += stats.demotions
    _TELEMETRY.sim_seconds += stats.wall_seconds
    _TELEMETRY.solve_seconds += stats.solve_seconds
    _TELEMETRY.charge_seconds += stats.charge_seconds
    _finish_pair(spec, organization, stats, config, scale,
                 accesses_per_epoch, params, disk_cache)
    results[(spec.name, organization)] = stats


def _install_stacked(spec: BenchmarkSpec, organizations: List[str],
                     stacked: StackedResult, config: SystemConfig,
                     scale: float, accesses_per_epoch: int,
                     params: EngineParams,
                     disk_cache: Optional[ResultCache],
                     results: Dict[Tuple[str, str], Optional[RunStats]]
                     ) -> None:
    """Record one stacked group's per-lane results.

    Each lane's stats go through the same memo/disk installation as a
    per-pair run (the stacked path is bit-identical, so the cache
    entries are interchangeable).
    """
    _TELEMETRY.stacked_groups += 1
    _TELEMETRY.stacked_lanes += stacked.telemetry.stacked_lanes
    _TELEMETRY.stacked_fallbacks += stacked.telemetry.solo_lanes
    _TELEMETRY.quarantined_lanes += len(stacked.telemetry.quarantined_lanes)
    _TELEMETRY.demoted_lanes += len(stacked.telemetry.demoted_lanes)
    _TELEMETRY.sim_seconds += stacked.telemetry.wall_seconds
    for organization, stats in zip(organizations, stacked.stats):
        _TELEMETRY.simulated += 1
        _TELEMETRY.demotions += stats.demotions
        _TELEMETRY.solve_seconds += stats.solve_seconds
        _TELEMETRY.charge_seconds += stats.charge_seconds
        _finish_pair(spec, organization, stats, config, scale,
                     accesses_per_epoch, params, disk_cache)
        results[(spec.name, organization)] = stats


def _finish_pair(spec: BenchmarkSpec, organization: str, stats: RunStats,
                 config: SystemConfig, scale: float, accesses_per_epoch: int,
                 params: EngineParams,
                 disk_cache: Optional[ResultCache]) -> None:
    """Install one fresh matrix result into the memo and disk layers."""
    key = _memo_key(spec, organization, config, scale, accesses_per_epoch,
                    params)
    _CACHE[key] = stats
    if disk_cache is not None:
        disk_cache.store(
            _disk_key(spec, organization, config, scale, accesses_per_epoch,
                      params),
            stats)
        _TELEMETRY.disk_stores += 1


def speedups_vs_baseline(results: Dict[Tuple[str, str], RunStats],
                         benchmarks: Iterable[str],
                         organizations: Iterable[str],
                         baseline: str = "memory-side"
                         ) -> Dict[Tuple[str, str], float]:
    """Per-benchmark speedup of each organization over ``baseline``."""
    speedups: Dict[Tuple[str, str], float] = {}
    for bench in benchmarks:
        base_stats = results[(bench, baseline)]
        for org in organizations:
            candidate = results[(bench, org)]
            if candidate.cycles <= 0:
                raise ValueError(
                    f"benchmark {bench!r} under {org!r} recorded "
                    f"{candidate.cycles} cycles; cannot compute its "
                    f"speedup over {baseline!r}")
            if base_stats.cycles <= 0:
                raise ValueError(
                    f"baseline run {bench!r} under {baseline!r} recorded "
                    f"{base_stats.cycles} cycles; cannot normalize "
                    "speedups against it")
            speedups[(bench, org)] = base_stats.cycles / candidate.cycles
    return speedups


def hmean_speedup(speedups: Dict[Tuple[str, str], float],
                  benchmarks: Iterable[str], organization: str) -> float:
    """Harmonic-mean speedup of one organization over a benchmark group."""
    values = [speedups[(bench, organization)] for bench in benchmarks]
    return harmonic_mean(values)
