"""Terminal bar charts for experiment reports.

Dependency-free rendering of the paper's figure shapes in a terminal:
grouped horizontal bars (Figure 8-style speedups), simple series bars
(Figure 14-style sweeps), and stacked bars (Figure 10/11-style
breakdowns).  All renderers return strings; the CLI and benches print
them.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

FULL = "#"
PARTIAL = "-"


def _bar(value: float, scale: float, width: int) -> str:
    """A bar of ``value`` at ``scale`` units per ``width`` chars."""
    if value <= 0 or scale <= 0:
        return ""
    cells = value / scale * width
    whole = int(cells)
    fraction = cells - whole
    bar = FULL * whole
    if fraction >= 0.5 and whole < width:
        bar += PARTIAL
    return bar[:width]


def bar_chart(values: Mapping[str, float], width: int = 40,
              reference: Optional[float] = None,
              value_format: str = "{:.2f}") -> str:
    """Horizontal bars, one per entry; optional reference line value.

    ``reference`` (e.g. 1.0 for speedups) is marked with ``|`` at its
    position on each bar's ruler.
    """
    if not values:
        raise ValueError("nothing to chart")
    peak = max(max(values.values()), reference or 0.0)
    if peak <= 0:
        raise ValueError("chart needs a positive value")
    label_width = max(len(str(k)) for k in values)
    lines = []
    ref_pos = None
    if reference is not None and reference > 0:
        ref_pos = min(width - 1, int(reference / peak * width))
    for key, value in values.items():
        bar = _bar(value, peak, width).ljust(width)
        if ref_pos is not None:
            marker = "|" if bar[ref_pos] == " " else bar[ref_pos]
            bar = bar[:ref_pos] + marker + bar[ref_pos + 1:]
        rendered_value = value_format.format(value)
        lines.append(f"{str(key).ljust(label_width)}  {bar} {rendered_value}")
    return "\n".join(lines)


def grouped_bar_chart(groups: Mapping[str, Mapping[str, float]],
                      width: int = 40,
                      reference: Optional[float] = None) -> str:
    """One block of bars per group (Figure 8-style)."""
    if not groups:
        raise ValueError("nothing to chart")
    blocks = []
    for group, values in groups.items():
        blocks.append(f"{group}:")
        chart = bar_chart(values, width=width, reference=reference)
        blocks.extend("  " + line for line in chart.splitlines())
    return "\n".join(blocks)


def stacked_bar_chart(rows: Mapping[str, Mapping[str, float]],
                      symbols: Optional[Dict[str, str]] = None,
                      width: int = 40) -> str:
    """Stacked horizontal bars (Figure 10-style breakdowns).

    Each row is a mapping of component -> value; components are drawn
    with distinct symbols in insertion order.  A legend line is
    appended.
    """
    if not rows:
        raise ValueError("nothing to chart")
    components: List[str] = []
    for values in rows.values():
        for name in values:
            if name not in components:
                components.append(name)
    default_symbols = "#=+:.%@*"
    symbol_of = {}
    for i, name in enumerate(components):
        if symbols and name in symbols:
            symbol_of[name] = symbols[name]
        else:
            symbol_of[name] = default_symbols[i % len(default_symbols)]
    peak = max(sum(values.values()) for values in rows.values())
    if peak <= 0:
        raise ValueError("chart needs a positive total")
    label_width = max(len(str(k)) for k in rows)
    lines = []
    for key, values in rows.items():
        bar = ""
        for name in components:
            value = values.get(name, 0.0)
            cells = int(round(value / peak * width))
            bar += symbol_of[name] * cells
        total = sum(values.values())
        lines.append(f"{str(key).ljust(label_width)}  {bar.ljust(width)} "
                     f"{total:.2f}")
    legend = "  ".join(f"{symbol_of[name]}={name}" for name in components)
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def series_chart(points: Sequence[Mapping[str, object]], x_key: str,
                 y_keys: Sequence[str], width: int = 40) -> str:
    """Bars per x-point and series (Figure 13/14-style sweeps)."""
    if not points:
        raise ValueError("nothing to chart")
    peak = max(float(p[y]) for p in points for y in y_keys)
    if peak <= 0:
        raise ValueError("chart needs a positive value")
    label_width = max(len(f"{p[x_key]}") for p in points)
    key_width = max(len(y) for y in y_keys)
    lines = []
    for point in points:
        for y in y_keys:
            value = float(point[y])
            bar = _bar(value, peak, width)
            lines.append(f"{str(point[x_key]).ljust(label_width)} "
                         f"{y.ljust(key_width)}  {bar} {value:.2f}")
        lines.append("")
    return "\n".join(lines[:-1])
