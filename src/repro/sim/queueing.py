"""Analytical queueing-delay estimation.

The paper accounts for queueing delays at the LLC/memory-controller
request queues (Section 3.1).  The epoch engine models *throughput*
exactly (bottleneck service time); this module adds the *latency* face
of contention: as a resource's utilization rises, requests wait longer
in its queue even before it saturates.

We use the M/D/1 mean waiting time (Poisson arrivals, deterministic
service — a good fit for fixed-size cache-line transfers)::

    W = s * rho / (2 * (1 - rho))

where ``s`` is the per-request service time and ``rho`` the utilization.
Utilization is capped just below 1: at or beyond saturation the *epoch
throughput* model already stretches time, so the queue term only needs
to cover the sub-saturation region.

``EngineParams.model_queueing`` enables the term; it feeds the engine's
MLP-limited latency bound, so it only affects end-to-end time when
latency (not bandwidth) is the binding constraint — mirroring the
paper's footnote 2.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Utilization cap: beyond this, throughput modelling takes over.
RHO_CAP = 0.95


def md1_wait(service_time: float, utilization: float,
             rho_cap: float = RHO_CAP) -> float:
    """Mean M/D/1 queue wait for one request.

    ``service_time`` is the per-request service time at the resource;
    ``utilization`` its offered load (demand / capacity), capped at
    ``rho_cap``.
    """
    if service_time < 0:
        raise ValueError("service time cannot be negative")
    if utilization < 0:
        raise ValueError("utilization cannot be negative")
    rho = min(utilization, rho_cap)
    if rho <= 0.0:
        return 0.0
    return service_time * rho / (2.0 * (1.0 - rho))


@dataclass
class QueueModel:
    """Per-epoch queue-delay bookkeeping for one resource class.

    The engine charges bytes per epoch; at settlement it asks for the
    mean wait per request given the epoch's nominal duration.
    """

    #: Resource capacity in bytes/cycle.
    capacity: float
    #: Mean request size in bytes (service time = size / capacity).
    request_bytes: float

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        if self.request_bytes <= 0:
            raise ValueError("request size must be positive")

    @property
    def service_time(self) -> float:
        return self.request_bytes / self.capacity

    def wait(self, epoch_bytes: float, epoch_cycles: float) -> float:
        """Mean queue wait per request for this epoch's load."""
        if epoch_cycles <= 0 or epoch_bytes <= 0:
            return 0.0
        utilization = epoch_bytes / epoch_cycles / self.capacity
        return md1_wait(self.service_time, utilization)
