"""CTA scheduling across chips.

The paper uses distributed CTA scheduling (Arunkumar et al.): the CTA
grid is split into contiguous blocks, one per chip, maximizing inter-CTA
locality within a chip.  The synthetic trace generator encodes the
*effect* of this policy (per-chip private regions, page-granular false
sharing); this module provides the policy itself for applications that
build their own traces from CTA-level descriptions.
"""

from __future__ import annotations

from typing import List


class DistributedCTAScheduler:
    """Contiguous block partitioning: CTAs [0..n) split into num_chips runs."""

    name = "distributed"

    def __init__(self, num_ctas: int, num_chips: int) -> None:
        if num_ctas < 1:
            raise ValueError("need at least one CTA")
        if num_chips < 1:
            raise ValueError("need at least one chip")
        self.num_ctas = num_ctas
        self.num_chips = num_chips
        self._block = -(-num_ctas // num_chips)

    def chip_of(self, cta: int) -> int:
        if not 0 <= cta < self.num_ctas:
            raise IndexError(f"CTA {cta} out of range")
        return min(cta // self._block, self.num_chips - 1)

    def ctas_of(self, chip: int) -> range:
        if not 0 <= chip < self.num_chips:
            raise IndexError(f"chip {chip} out of range")
        start = chip * self._block
        stop = min(start + self._block, self.num_ctas)
        return range(start, max(start, stop))

    def counts(self) -> List[int]:
        return [len(self.ctas_of(chip)) for chip in range(self.num_chips)]


class RoundRobinCTAScheduler:
    """Fine-grained interleaving: CTA i runs on chip i mod num_chips.

    Destroys inter-CTA locality; provided as the contrast policy.
    """

    name = "round-robin"

    def __init__(self, num_ctas: int, num_chips: int) -> None:
        if num_ctas < 1:
            raise ValueError("need at least one CTA")
        if num_chips < 1:
            raise ValueError("need at least one chip")
        self.num_ctas = num_ctas
        self.num_chips = num_chips

    def chip_of(self, cta: int) -> int:
        if not 0 <= cta < self.num_ctas:
            raise IndexError(f"CTA {cta} out of range")
        return cta % self.num_chips

    def ctas_of(self, chip: int) -> range:
        if not 0 <= chip < self.num_chips:
            raise IndexError(f"chip {chip} out of range")
        return range(chip, self.num_ctas, self.num_chips)

    def counts(self) -> List[int]:
        return [len(self.ctas_of(chip)) for chip in range(self.num_chips)]
