"""The trace-driven, epoch-based multi-chip GPU simulation engine.

The engine consumes :class:`~repro.workloads.generator.KernelTrace`
epochs and models the full request path of Figure 6 under a pluggable
:class:`~repro.llc.base.LLCOrganization`:

1. (optionally) the requesting cluster's private L1;
2. the organization's :class:`~repro.llc.base.RoutePlan` — one or two
   LLC slice probes across chips;
3. on a full miss, the home chip's DRAM partition.

Caches are functional (exact hit/miss for the access stream).  Timing is
epoch-based: every traversed resource (crossbar ports, ring segments,
LLC slices, DRAM channels) is charged bytes, and the epoch's duration is
the bottleneck resource's service time, floored by the workload's
compute time and by an MLP-limited latency bound.  This models the
paper's central quantity — *effective bandwidth ahead of the LLC* —
without cycle-level simulation.

Software coherence flushes the L1s (and, for organizations that cache
remote data, the LLC) at kernel boundaries; hardware coherence tracks
sharers in a directory and invalidates replicas on writes.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import (
    TYPE_CHECKING,
    Dict,
    Generator,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
    cast,
)

import numpy as np

from ..arch.config import SystemConfig
from ..cache.cache import (
    UNPARTITIONED,
    AccessResult,
    PartitionFullError,
    SetAssociativeCache,
)
from ..cache.vector import BatchResult, StagedResult, VectorBank
from ..cache.waycache import make_cache
from ..coherence.hardware import HardwareCoherence
from ..coherence.software import SoftwareCoherence
from ..core import sanitize as _sanitize
from ..llc.base import LLCOrganization, RoutePlan
from ..memory.dram import DramSystem
from ..memory.mapping import AddressMapping
from ..memory.pages import PageTable
from ..noc.crossbar import Crossbar
from ..noc.ring import InterChipRing
from ..resilience.faults import KernelSolveError
from ..resilience.faults import fire as fault_fire
from ..workloads.generator import EpochTrace, KernelTrace
from .stats import (
    ORIGIN_LOCAL_LLC,
    ORIGIN_LOCAL_MEM,
    ORIGIN_REMOTE_LLC,
    ORIGIN_REMOTE_MEM,
    KernelStats,
    RunStats,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..coherence.mesi import CoherenceAction


@dataclass(frozen=True)
class EngineParams:
    """Engine tuning knobs (message sizes, latencies, optional L1s)."""

    request_bytes: int = 32
    response_header_bytes: int = 16
    write_data_bytes: int = 32
    # MLP limit: maximum outstanding L1 misses per chip; bounds how much
    # latency can overlap (the latency term only binds when bandwidth is
    # plentiful, matching the paper's footnote 2).
    max_outstanding_per_chip: int = 4096
    latency_noc: float = 40.0
    latency_llc: float = 40.0
    latency_ring_hop: float = 120.0
    latency_dram: float = 200.0
    model_l1: bool = False
    # Add M/D/1 queue waits at the DRAM controllers and inter-chip links
    # to the latency bound (paper Section 3.1 queueing delays).
    model_queueing: bool = False
    # Enable dominant-accessor page migration (related-work baseline:
    # a beyond-LLC optimization the paper argues is insufficient).
    page_migration: bool = False
    # Use the batched epoch fast path when the run has no per-access
    # side effects (no hardware coherence, migration or profiling); the
    # engine transparently falls back to the per-access path otherwise.
    batched: bool = True
    # Back the LLC with the vectorized tag store so uniform batched
    # epochs resolve every probe with one stack-distance kernel call;
    # partitioned/sectored/scalar paths transparently use the
    # OrderedDict model either way.
    vectorized: bool = True

    def __post_init__(self) -> None:
        if self.request_bytes <= 0:
            raise ValueError(
                f"request_bytes must be positive, got {self.request_bytes}")
        if self.response_header_bytes < 0:
            raise ValueError(
                "response_header_bytes cannot be negative, got "
                f"{self.response_header_bytes}")
        if self.write_data_bytes < 0:
            raise ValueError(
                f"write_data_bytes cannot be negative, got "
                f"{self.write_data_bytes}")
        if self.max_outstanding_per_chip < 1:
            raise ValueError("need at least one outstanding miss")
        for leg, value in (("latency_noc", self.latency_noc),
                           ("latency_llc", self.latency_llc),
                           ("latency_ring_hop", self.latency_ring_hop),
                           ("latency_dram", self.latency_dram)):
            if not value >= 0.0:  # rejects negatives and NaN
                raise ValueError(
                    f"{leg} must be non-negative, got {value}")


#: What the driver answers a :class:`BankProbe` with: the bank call's
#: result, or ``None`` when the bank declined (caller falls back to the
#: per-access probe loop).
ProbeOutcome = Union[BatchResult, StagedResult, None]

#: The cooperative epoch protocol: :meth:`SimulationEngine.run_steps`
#: yields each batched epoch's pending bank invocation and receives the
#: outcome via ``send``.
ProbeGen = Generator["BankProbe", ProbeOutcome, None]


@dataclass
class BankProbe:
    """One batched epoch's pending vector-bank invocation.

    Yielded by :meth:`SimulationEngine.run_steps`.  The index arrays are
    *lane-local* (exactly what a standalone engine would pass);
    ``base`` is the engine's cache offset within ``bank`` and ``lane``
    the absolute ``[lo, hi)`` cache range its gate must check, so a
    driver multiplexing several engines over one stacked bank can
    concatenate probes and hand each lane back a lane-local result.
    """

    bank: VectorBank
    kind: str  # "grouped" | "staged"
    base: int
    lane: Tuple[int, int]
    addrs: np.ndarray
    writes: np.ndarray
    idx0: np.ndarray
    part0: Optional[np.ndarray] = None
    two_stage: Optional[np.ndarray] = None
    idx1: Optional[np.ndarray] = None
    part1: Optional[np.ndarray] = None
    #: Key for the ``kernel.solve_error`` fault site (the owning
    #: engine's organization name); ``None`` disables injection.
    fault_key: Optional[str] = None

    def abs_idx0(self) -> np.ndarray:
        """Stage-0 cache indices in the bank's absolute numbering."""
        return self.idx0 + self.base if self.base else self.idx0

    def abs_idx1(self) -> np.ndarray:
        """Stage-1 cache indices in the bank's absolute numbering."""
        assert self.idx1 is not None
        return self.idx1 + self.base if self.base else self.idx1

    def localize(self, staged: Optional[StagedResult]
                 ) -> Optional[StagedResult]:
        """Shift a staged result's eviction indices back lane-local."""
        if staged is None or not self.base:
            return staged
        return StagedResult(staged.hit_stage,
                            staged.evicted_cache - self.base,
                            staged.evicted_addr)

    def invoke(self) -> ProbeOutcome:
        """Resolve this probe alone (the standalone-run driver)."""
        if fault_fire("kernel.solve_error", key=self.fault_key) is not None:
            raise KernelSolveError("kernel.solve_error", key=self.fault_key)
        if self.kind == "grouped":
            return self.bank.access_many_grouped(
                self.abs_idx0(), self.addrs, self.writes,
                lanes=[self.lane])
        assert self.part0 is not None and self.two_stage is not None \
            and self.part1 is not None
        staged = self.bank.access_many_staged(
            self.addrs, self.writes, self.abs_idx0(), self.part0,
            self.two_stage, self.abs_idx1(), self.part1,
            lanes=[self.lane])
        return self.localize(staged)


class SimulationEngine:
    """Runs one benchmark trace under one LLC organization.

    An engine owns the full per-lane state of one run — crossbars, ring,
    DRAM, page table and :class:`RunStats` accumulators.  By default it
    also owns its LLC tag store; pass ``llc_bank``/``llc_bank_base`` to
    mount the engine's LLC slices as one *lane* of a shared stacked
    :class:`VectorBank` (see :mod:`repro.sim.stacked`), which changes
    where the tag rows live but not a single simulated outcome.
    """

    def __init__(self, config: SystemConfig, organization: LLCOrganization,
                 params: Optional[EngineParams] = None,
                 llc_bank: Optional[VectorBank] = None,
                 llc_bank_base: int = 0) -> None:
        self.config = config
        self.organization = organization
        self.params = params or EngineParams()
        self.stats = RunStats(organization=organization.name)
        chip_cfg = config.chip
        self.line_size = chip_cfg.llc_slice.line_size
        self.page_table = PageTable(chip_cfg.memory.page_size,
                                    config.num_chips,
                                    policy=config.page_allocation)
        self.mapping = AddressMapping(
            line_size=self.line_size,
            slices_per_chip=chip_cfg.llc_slices,
            channels_per_chip=chip_cfg.memory.channels_per_chip)
        llc_cfg = chip_cfg.llc_slice
        self._llc_bank: Optional[VectorBank] = None
        self._bank_base = 0
        if llc_bank is not None:
            # Mount this engine's LLC as one lane of a shared bank.
            if not (self.params.vectorized
                    and llc_cfg.replacement == "lru"):
                raise ValueError(
                    "a shared llc_bank requires vectorized=True and LRU "
                    "replacement")
            if llc_bank.config != llc_cfg:
                raise ValueError(
                    "shared llc_bank geometry does not match this "
                    "engine's LLC slice config")
            total = config.total_llc_slices
            if not 0 <= llc_bank_base <= len(llc_bank.caches) - total:
                raise ValueError(
                    f"llc_bank_base {llc_bank_base} leaves no room for "
                    f"{total} slices in a bank of {len(llc_bank.caches)}")
            self._llc_bank = llc_bank
            self._bank_base = llc_bank_base
            flat = llc_bank.caches[llc_bank_base:llc_bank_base + total]
            self.llc = [flat[c * chip_cfg.llc_slices:
                             (c + 1) * chip_cfg.llc_slices]
                        for c in range(config.num_chips)]
        elif self.params.vectorized and llc_cfg.replacement == "lru":
            self._llc_bank = VectorBank(
                llc_cfg, [f"llc{c}.{s}" for c in range(config.num_chips)
                          for s in range(chip_cfg.llc_slices)])
            flat = self._llc_bank.caches
            self.llc = [flat[c * chip_cfg.llc_slices:
                             (c + 1) * chip_cfg.llc_slices]
                        for c in range(config.num_chips)]
        else:
            self.llc = [
                [make_cache(llc_cfg, name=f"llc{c}.{s}")
                 for s in range(chip_cfg.llc_slices)]
                for c in range(config.num_chips)]
        self.crossbars = [Crossbar(chip_cfg.noc, chip=c)
                          for c in range(config.num_chips)]
        self.ring = InterChipRing(config.inter_chip, config.num_chips)
        self.dram = DramSystem(chip_cfg.memory, config.num_chips)
        self.l1: Optional[List[List[SetAssociativeCache]]] = None
        if self.params.model_l1:
            self.l1 = [
                [make_cache(chip_cfg.l1, name=f"l1.{c}.{cl}")
                 for cl in range(chip_cfg.num_clusters)]
                for c in range(config.num_chips)]
        self.software_coherence: Optional[SoftwareCoherence] = None
        self.hardware_coherence: Optional[HardwareCoherence] = None
        self.mesi = None
        if config.coherence.protocol == "software":
            self.software_coherence = SoftwareCoherence(
                config.coherence, self.line_size)
        elif config.coherence.protocol == "hardware-mesi":
            from ..coherence.mesi import MESIDirectory
            self.mesi = MESIDirectory(config.num_chips)
        else:
            self.hardware_coherence = HardwareCoherence(
                config.coherence, config.num_chips)
        # Per-epoch LLC slice service bytes, [chip][slice].
        self._slice_bytes = [[0.0] * chip_cfg.llc_slices
                             for _ in range(config.num_chips)]
        # Per-epoch accumulated request latency per chip (for the MLP bound).
        self._latency_sum = [0.0] * config.num_chips
        # Cycles charged outside epochs (reconfiguration, flushes).
        self._pending_cycles = 0.0
        self.last_epoch_cycles = 0.0
        self.stats.slice_requests = [0] * config.total_llc_slices
        # Figure 9 sampling accumulators (cycle-weighted).
        self._alloc_weight = 0.0
        self._alloc_local = 0.0
        self._alloc_remote = 0.0
        self._line_mask = ~(self.line_size - 1)
        self._page_shift = chip_cfg.memory.page_size.bit_length() - 1
        self.migration = None
        if self.params.page_migration:
            from ..memory.migration import DominantAccessorMigration
            # Threshold ~2 accesses per line of the page, so the policy
            # fires at the same per-line reuse regardless of page size.
            self.migration = DominantAccessorMigration(
                page_size=chip_cfg.memory.page_size,
                num_chips=config.num_chips,
                min_accesses=max(
                    8, 2 * chip_cfg.memory.page_size // self.line_size))
        organization.attach(self)

    # ------------------------------------------------------------------
    # EngineContext interface used by organizations.
    # ------------------------------------------------------------------

    def slice_of(self, addr: int) -> int:
        """LLC slice index (within a chip) that serves ``addr``."""
        return self.mapping.llc_slice_of(addr)

    def set_llc_partitioning(self, ways: Optional[Dict[int, int]]) -> None:
        """Apply way partitioning to every LLC slice in the system."""
        for chip_slices in self.llc:
            for cache in chip_slices:
                cache.set_partition(ways)

    def charge_cycles(self, cycles: float) -> None:
        """Charge overhead cycles (drain, reconfiguration) to the run."""
        if cycles < 0:
            raise ValueError("cannot charge negative cycles")
        self._pending_cycles += cycles

    def flush_llc(self, partition: Optional[int] = None,
                  chips: Optional[Iterable[int]] = None,
                  dirty_only: bool = False) -> None:
        """Write back + invalidate LLC contents, charging the cost.

        ``partition=None`` flushes everything; otherwise only lines of
        that way-partition.  ``dirty_only=True`` writes back and
        invalidates only the dirty lines, leaving clean lines resident —
        this is what SAC's memory-side -> SM-side reconfiguration needs
        (paper Section 3.6).  Dirty write-backs are charged as cycles
        (serialized at the chip's DRAM bandwidth) plus the coherence
        per-line bookkeeping cost.
        """
        chip_list = list(chips) if chips is not None else \
            list(range(self.config.num_chips))
        coherence_cfg = self.config.coherence
        dram_bw = self.config.chip.memory.chip_bw()
        home_of = self.page_table._home.get
        shift = self.page_table._page_shift
        # A flush with no coherence directory to notify can drain
        # array-backed caches wholesale (any partition/dirty_only mode):
        # home the dirty lines by unique page (pages interleave across a
        # chip's slices, so uniquing at the chip level collapses the
        # per-slice duplicates too).
        batch_ok = (self.hardware_coherence is None
                    and self.mesi is None)
        # Chips flush concurrently: the run is delayed by the slowest one.
        worst_cycles = 0.0
        for chip in chip_list:
            dirty_bytes_by_home: Dict[int, int] = {}
            invalidated = 0
            dirty = 0
            drained_chip = []
            for cache in self.llc[chip]:
                drained = None
                if batch_ok:
                    drain = getattr(cache, "drain", None)
                    if drain is not None:
                        drained, lines, dirties = drain(
                            partition=partition, dirty_only=dirty_only)
                if drained is not None:
                    drained_chip.append(drained)
                    invalidated += lines
                    dirty += dirties
                    continue
                victims = []
                for line_addr, line in list(cache.resident_lines()):
                    if partition is not None and line.partition != partition:
                        continue
                    if dirty_only and not line.dirty:
                        continue
                    if line.dirty:
                        home = self.page_table.lookup(line_addr)
                        if home is None:
                            home = chip
                        dirty_bytes_by_home[home] = \
                            dirty_bytes_by_home.get(home, 0) + self.line_size
                    if self.hardware_coherence is not None:
                        self.hardware_coherence.on_evict(
                            line_addr & self._line_mask, chip)
                    if self.mesi is not None:
                        self.mesi.evict(line_addr & self._line_mask, chip)
                    victims.append((line_addr, line.dirty))
                if dirty_only:
                    for line_addr, was_dirty in victims:
                        cache.invalidate(line_addr)
                    lines = len(victims)
                    dirties = sum(1 for _a, d in victims if d)
                elif partition is None:
                    lines, dirties = cache.flush()
                else:
                    lines, dirties = cache.invalidate_partition(partition)
                invalidated += lines
                dirty += dirties
            if drained_chip:
                all_dirty = np.concatenate(drained_chip)
                if all_dirty.size:
                    pages, counts = np.unique(all_dirty >> shift,
                                              return_counts=True)
                    for page, n in zip(pages.tolist(), counts.tolist()):
                        home = home_of(page)
                        if home is None:
                            home = chip
                        dirty_bytes_by_home[home] = \
                            dirty_bytes_by_home.get(home, 0) \
                            + self.line_size * n
            writeback = sum(dirty_bytes_by_home.values())
            remote_wb = sum(b for home, b in dirty_bytes_by_home.items()
                            if home != chip)
            cycles = (dirty * coherence_cfg.flush_cycles_per_line
                      + writeback / dram_bw)
            if remote_wb and self.config.num_chips > 1:
                cycles += remote_wb / self.config.inter_chip.chip_egress_bw()
            worst_cycles = max(worst_cycles, cycles)
            self.stats.dram_bytes += writeback
            self.stats.inter_chip_bytes += remote_wb
        self._pending_cycles += worst_cycles
        self.stats.flush_cycles += worst_cycles

    @property
    def total_dram_bw(self) -> float:
        return self.config.total_memory_bw

    @property
    def total_inter_chip_bw(self) -> float:
        return self.config.total_inter_chip_bw

    # ------------------------------------------------------------------
    # Trace execution.
    # ------------------------------------------------------------------

    def run(self, kernels: Iterable[KernelTrace],
            benchmark: str = "") -> RunStats:
        """Simulate every kernel launch and return the aggregate stats.

        This is the standalone driver of :meth:`run_steps`: every bank
        probe the generator yields is resolved immediately against this
        engine's own lane.
        """
        steps = self.run_steps(kernels, benchmark)
        outcome: ProbeOutcome = None
        while True:
            try:
                probe = steps.send(outcome)
            except StopIteration:
                return self.stats
            started = perf_counter()
            outcome = probe.invoke()
            elapsed = perf_counter() - started
            self.stats.probe_seconds += elapsed
            self.stats.solve_seconds += elapsed

    def run_steps(self, kernels: Iterable[KernelTrace],
                  benchmark: str = "") -> ProbeGen:
        """Cooperative form of :meth:`run`.

        Yields a :class:`BankProbe` for each batched epoch's pending
        vector-bank invocation and expects the outcome back via
        ``send`` (``None`` means the bank declined and the engine falls
        back to its per-access probe loop).  A stacked driver
        multiplexes many engines' generators over shared banks; the
        control flow is byte-for-byte the one a standalone :meth:`run`
        executes, which is what keeps stacked lanes bit-identical.
        """
        self.stats.benchmark = benchmark
        base_violations = _sanitize.report().count
        bank = self._llc_bank
        if bank is not None:
            base_rounds = bank.lane_batched_rounds
            base_replay = bank.replay_seconds
            base_set_replay = bank.set_replay_batches
        # Trace synthesis happens lazily while this loop pulls kernels
        # from the generator; bracket it so the probe/charge/other
        # breakdown covers the full run wall time.
        kernel_iter = iter(kernels)
        while True:
            pull_start = perf_counter()
            try:
                kernel = next(kernel_iter)
            except StopIteration:
                self.stats.other_seconds += perf_counter() - pull_start
                break
            self.stats.other_seconds += perf_counter() - pull_start
            yield from self._run_kernel(kernel)
        self._finalize_allocation_stats()
        # Violations recorded while this lane ran (0 unless
        # REPRO_SANITIZE was active and a kernel contract broke but the
        # raising error was contained upstream).
        self.stats.sanitizer_violations = \
            _sanitize.report().count - base_violations
        if bank is not None:
            # Kernel telemetry accrued while this lane ran.  On a
            # standalone engine the bank is private so the deltas are
            # exactly this run's; a stacked driver's lanes interleave on
            # one shared bank, so there the per-lane windows overlap and
            # the sweep-level truth lives in StackedTelemetry instead.
            self.stats.lane_batched_rounds = \
                bank.lane_batched_rounds - base_rounds
            self.stats.replay_seconds = bank.replay_seconds - base_replay
            self.stats.set_replay_batches = \
                bank.set_replay_batches - base_set_replay

    def _run_kernel(self, kernel: KernelTrace) -> ProbeGen:
        # Organization hooks (begin/end epoch can repartition, the
        # kernel tail flushes) are neither probes nor charges; bracket
        # the segments between epoch bodies into other_seconds so the
        # timing breakdown stays near-exhaustive.
        seg_start = perf_counter()
        kstats = KernelStats(name=kernel.name)
        self.organization.begin_kernel(self, kernel.name)
        for index, epoch in enumerate(kernel.epochs):
            self.organization.begin_epoch(self, index)
            if self.organization.profiling:
                head, tail = self._split_profile_window(epoch)
                self.stats.other_seconds += perf_counter() - seg_start
                yield from self._run_epoch(head, kstats)
                seg_start = perf_counter()
                self.organization.profile_boundary(self)
                if tail is not None:
                    self.stats.other_seconds += perf_counter() - seg_start
                    yield from self._run_epoch(tail, kstats)
                    seg_start = perf_counter()
            else:
                self.stats.other_seconds += perf_counter() - seg_start
                yield from self._run_epoch(epoch, kstats)
                seg_start = perf_counter()
            self.organization.end_epoch(self, index)
        self._sample_allocation(kstats.cycles)
        # Capture the mode the kernel actually ran in (and the coherence
        # obligations it accrued) before SAC reverts to memory-side.
        kstats.organization = self.organization.mode
        flush_partitions = self.organization.flush_partitions()
        cached_remote_data = self.organization.caches_remote_data
        self.organization.end_kernel(self)
        self._kernel_boundary_flush(flush_partitions, cached_remote_data)
        # Reconfiguration/flush overhead charged during the kernel.
        if self._pending_cycles:
            kstats.cycles += self._pending_cycles
            kstats.reconfig_cycles += self._pending_cycles
            self._pending_cycles = 0.0
        kstats.reconfigured = kstats.reconfig_cycles > 0
        self.stats.merge_kernel(kstats)
        self.stats.other_seconds += perf_counter() - seg_start

    def _split_profile_window(self, epoch: EpochTrace
                              ) -> Tuple[EpochTrace, Optional[EpochTrace]]:
        """Split an epoch into the profiling slice and the remainder.

        The profiling window (paper: 2K cycles at the start of each
        kernel) covers the first ``profile_window_cycles`` worth of the
        epoch's compute time; the rest of the epoch runs under the
        organization the SAC controller has just selected.
        """
        window = self.config.sac.profile_window_cycles
        fraction = min(1.0, window / max(1e-9, epoch.compute_cycles))
        cut = max(1, int(len(epoch) * fraction))
        if cut >= len(epoch):
            return epoch, None
        head = EpochTrace(
            chips=epoch.chips[:cut], clusters=epoch.clusters[:cut],
            addrs=epoch.addrs[:cut], writes=epoch.writes[:cut],
            compute_cycles=epoch.compute_cycles * cut / len(epoch))
        tail = EpochTrace(
            chips=epoch.chips[cut:], clusters=epoch.clusters[cut:],
            addrs=epoch.addrs[cut:], writes=epoch.writes[cut:],
            compute_cycles=epoch.compute_cycles * (len(epoch) - cut)
            / len(epoch))
        return head, tail

    def _kernel_boundary_flush(
            self, flush_partitions: List[Tuple[Optional[int], int]],
            cached_remote_data: bool) -> None:
        """Software coherence: flush L1s and remote-caching LLC partitions.

        ``flush_partitions`` and ``cached_remote_data`` are captured from
        the organization *before* its ``end_kernel`` hook so that SAC's
        revert-to-memory-side does not erase the coherence obligations of
        the mode the kernel actually ran in.
        """
        if self.l1 is not None:
            for chip_l1s in self.l1:
                for cache in chip_l1s:
                    cache.flush()  # write-through L1s: invalidate only
        if self.software_coherence is not None:
            for chip, partition in flush_partitions:
                chips = None if chip is None else [chip]
                if partition is not None and \
                        self.organization.name in ("static", "dynamic"):
                    self.flush_llc(partition=partition, chips=chips)
                else:
                    self.flush_llc(partition=None, chips=chips)
        elif (self.hardware_coherence is not None
              or self.mesi is not None) and cached_remote_data:
            # Hardware coherence keeps data consistent during execution,
            # but remote replicas must still be written back before the
            # next kernel's placement decisions (cheaper than a full
            # software flush: only the remote-homed lines).
            self._flush_remote_lines()

    def _flush_remote_lines(self) -> None:
        dram_bw = self.config.chip.memory.chip_bw()
        worst_cycles = 0.0
        for chip in range(self.config.num_chips):
            writeback = 0
            for cache in self.llc[chip]:
                victims = []
                for line_addr, line in cache.resident_lines():
                    home = self.page_table.lookup(line_addr)
                    if home is not None and home != chip:
                        victims.append((line_addr, line.dirty))
                for line_addr, dirty in victims:
                    cache.invalidate(line_addr)
                    if self.hardware_coherence is not None:
                        self.hardware_coherence.on_evict(
                            line_addr & self._line_mask, chip)
                    if self.mesi is not None:
                        self.mesi.evict(line_addr & self._line_mask, chip)
                    if dirty:
                        writeback += self.line_size
            if writeback:
                worst_cycles = max(worst_cycles, writeback / dram_bw)
                self.stats.dram_bytes += writeback
        if worst_cycles:
            self._pending_cycles += worst_cycles
            self.stats.flush_cycles += worst_cycles

    # ------------------------------------------------------------------
    # Epoch execution.
    # ------------------------------------------------------------------

    def _run_epoch(self, epoch: EpochTrace, kstats: KernelStats) -> ProbeGen:
        if self._fast_path_eligible():
            yield from self._run_epoch_batched(epoch, kstats)
            self.stats.fast_epochs += 1
        else:
            self._run_epoch_serial(epoch, kstats)
            self.stats.slow_epochs += 1

    def _fast_path_eligible(self) -> bool:
        """Whether the current epoch can take the batched fast path.

        The fast path precomputes homes, route plans and traffic totals
        with numpy; it is only safe when no component needs a per-access
        side effect beyond the functional cache probes themselves:
        hardware coherence (directory/MESI actions per write), page
        migration (per-access observation), profiling organizations
        without a batched observer and insertion-policy organizations
        (LADM's per-access ``remote_allocate``) all force the serial
        per-access path.
        """
        if not self.params.batched:
            return False
        if self.migration is not None:
            return False
        if self.hardware_coherence is not None or self.mesi is not None:
            return False
        org = self.organization
        if org.profiling or not org.observe_is_passive:
            # A profiling organization may opt back into the fast path
            # by providing a batched observer that reproduces the
            # per-access observe_access state exactly (SAC does).
            if getattr(org, "observe_batch", None) is None:
                return False
        if hasattr(org, "remote_allocate"):
            return False
        return True

    def _run_epoch_serial(self, epoch: EpochTrace, kstats: KernelStats
                          ) -> None:
        chips = epoch.chips.tolist()
        clusters = epoch.clusters.tolist()
        addrs = epoch.addrs.tolist()
        writes = epoch.writes.tolist()
        slices = self._vectorized_slices(epoch.addrs, epoch.derived).tolist()
        channels = self._vectorized_channels(
            epoch.addrs, epoch.derived).tolist()
        # The serial reference path IS the per-access loop: it defines
        # the semantics the batched/vectorized paths must reproduce.
        for i in range(len(addrs)):  # repro: noqa(hot-loop)
            self._access(chips[i], clusters[i], addrs[i], writes[i],
                         slices[i], channels[i], kstats)
        self._settle_epoch(epoch, kstats)

    # -- Batched epoch fast path -------------------------------------------

    def _run_epoch_batched(self, epoch: EpochTrace, kstats: KernelStats
                           ) -> ProbeGen:
        """Batched epoch execution.

        Functionally identical to :meth:`_run_epoch_serial`: the same L1
        and LLC probes run in the same order (the caches are the only
        sequential state), while page-home resolution, route planning and
        every resource charge are precomputed or aggregated with numpy.
        All aggregated quantities are integer byte counts or sums of
        exactly-representable latencies, so the resulting ``RunStats``
        are bit-identical to the per-access path for the default
        parameters (and agree to float round-off for any others).

        The bank invocations themselves are *yielded* as
        :class:`BankProbe` requests rather than called inline, so the
        same code path serves both standalone runs (the driver in
        :meth:`run` invokes each probe immediately) and stacked runs
        (the driver batches co-resident lanes into one call).
        ``probe_seconds`` here covers only this engine's local prep; the
        driver adds the invocation time it attributes to this lane.
        """
        prep_start = perf_counter()
        params = self.params
        config = self.config
        num_chips = config.num_chips
        n = len(epoch)
        chips_np = epoch.chips
        writes_np = epoch.writes
        addrs_np = epoch.addrs
        slices_np = self._vectorized_slices(addrs_np, epoch.derived)
        channels_np = self._vectorized_channels(addrs_np, epoch.derived)
        homes_np = self._batched_homes(epoch)
        pair_np = chips_np * num_chips + homes_np

        org = self.organization
        num_pairs = num_chips * num_chips
        plans = [org.plan(p // num_chips, p % num_chips)
                 for p in range(num_pairs)]

        # Per-(requester, home) pair stage decomposition.
        st0_chip = [plan.stages[0].chip for plan in plans]
        st0_part = [plan.stages[0].partition for plan in plans]
        st0_alloc = [plan.stages[0].allocate for plan in plans]
        st1 = [(plan.stages[1].chip, plan.stages[1].partition,
                plan.stages[1].allocate) if len(plan.stages) > 1 else None
               for plan in plans]

        # Cache probes: the only sequentially-stateful work in the epoch.
        # Uniform single-stage epochs over the vectorized tag store are
        # resolved with one grouped stack-distance kernel call; everything
        # else runs the per-access loop over a flat bound-method table.
        llc = self.llc
        llc_slices = config.chip.llc_slices
        serve0_np = np.array(st0_chip, dtype=np.int64)[pair_np]
        idx0_np = serve0_np * llc_slices + slices_np
        l1 = self.l1
        uniform = (all(s is None for s in st1)
                   and len(set(st0_part)) == 1 and len(set(st0_alloc)) == 1)
        two_stage = np.array([s is not None for s in st1],
                             dtype=bool)[pair_np]
        serve1 = np.array([s[0] if s is not None else 0 for s in st1],
                          dtype=np.int64)[pair_np]
        batch: Optional[BatchResult] = None
        staged: Optional[StagedResult] = None
        base = self._bank_base
        lane = (base, base + config.total_llc_slices)
        # Route/plan prep above is neither a probe nor a charge; book it
        # under other_seconds so the breakdown stays near-exhaustive.
        self.stats.other_seconds += perf_counter() - prep_start
        probe_start = perf_counter()
        if (uniform and l1 is None and self._llc_bank is not None
                and st0_part[0] == UNPARTITIONED and st0_alloc[0]):
            probe = BankProbe(
                bank=self._llc_bank, kind="grouped", base=base, lane=lane,
                addrs=addrs_np, writes=writes_np, idx0=idx0_np,
                fault_key=org.name)
            if org.profiling:
                # Profiling slices are lane-private head/tail cuts that
                # never match another lane's stream; resolving them
                # inline keeps the stacked driver's round alignment (and
                # hence stream sharing) intact for the shared epochs.
                batch = cast(Optional[BatchResult], probe.invoke())
                self.stats.probe_seconds += perf_counter() - probe_start
            else:
                self.stats.probe_seconds += perf_counter() - probe_start
                batch = cast(Optional[BatchResult], (yield probe))
            probe_start = perf_counter()
        if batch is not None:
            hs = np.where(batch.hits, np.int64(0), np.int64(-1))
            self.stats.vector_epochs += 1
        else:
            if (l1 is None and self._llc_bank is not None
                    and self._staged_shape_ok(plans)):
                part0_np = np.array(st0_part, dtype=np.int64)[pair_np]
                part1_np = np.array(
                    [s[1] if s is not None else 0 for s in st1],
                    dtype=np.int64)[pair_np]
                idx1_np = serve1 * llc_slices + slices_np
                probe = BankProbe(
                    bank=self._llc_bank, kind="staged", base=base,
                    lane=lane, addrs=addrs_np, writes=writes_np,
                    idx0=idx0_np, part0=part0_np, two_stage=two_stage,
                    idx1=idx1_np, part1=part1_np, fault_key=org.name)
                if org.profiling:
                    # Same round-alignment rationale as the grouped
                    # branch above.
                    staged = cast(Optional[StagedResult], probe.invoke())
                    self.stats.probe_seconds += perf_counter() - probe_start
                else:
                    self.stats.probe_seconds += perf_counter() - probe_start
                    staged = cast(Optional[StagedResult], (yield probe))
                probe_start = perf_counter()
            if staged is not None:
                hs = staged.hit_stage
                self.stats.vector_epochs += 1
            else:
                hs, ev_serves, ev_addrs = self._probe_loop(
                    epoch, uniform, idx0_np, serve0_np, addrs_np,
                    writes_np, chips_np, slices_np, pair_np, st0_part,
                    st0_alloc, st1)
                self.stats.scalar_epochs += 1
                if self._llc_bank is not None:
                    # A vector bank exists but this epoch fell off it.
                    self.stats.demotions += 1
        self.stats.probe_seconds += perf_counter() - probe_start

        # Everything below is pure accounting over the recorded outcomes.
        charge_start = perf_counter()
        probed0 = hs != -2
        kstats.accesses += n
        kstats.llc_lookups += int(probed0.sum())
        kstats.llc_hits += int((hs >= 0).sum())
        req_np = params.request_bytes + \
            params.write_data_bytes * writes_np.astype(np.int64)
        rsp = self.line_size + params.response_header_bytes
        dedicated = bool(getattr(org, "dedicated_memory_network", False))
        total_slices = config.total_llc_slices

        serve0 = serve0_np
        probed1 = probed0 & two_stage & (hs != 0)

        # Per-slice request counts and LLC service bytes.
        slice_counts = np.zeros(total_slices, dtype=np.int64)
        for probed, serve_np in ((probed0, serve0), (probed1, serve1)):
            if probed.any():
                idx = serve_np[probed] * llc_slices + slices_np[probed]
                slice_counts += np.bincount(idx, minlength=total_slices)
        requests = self.stats.slice_requests
        for g in np.flatnonzero(slice_counts).tolist():
            count = int(slice_counts[g])
            requests[g] += count
            self._slice_bytes[g // llc_slices][g % llc_slices] += \
                count * self.line_size

        # Request/response legs of every probed stage.
        for k, (probed, serve_np) in enumerate(((probed0, serve0),
                                                (probed1, serve1))):
            if not probed.any():
                continue
            pidx = np.flatnonzero(probed)
            chips_s = chips_np.take(pidx)
            serve_s = serve_np.take(pidx)
            slices_s = slices_np.take(pidx)
            req_s = req_np.take(pidx)
            local = serve_s == chips_s
            lidx = np.flatnonzero(local)
            if lidx.size:
                self._charge_local_stages(chips_s.take(lidx),
                                          slices_s.take(lidx),
                                          req_s.take(lidx), rsp)
            ridx = np.flatnonzero(~local)
            if ridx.size:
                self._charge_remote_stages(chips_s.take(ridx),
                                           serve_s.take(ridx),
                                           slices_s.take(ridx),
                                           req_s.take(ridx), rsp,
                                           skip_crossbar=dedicated and k > 0)

        # Full misses: the last probed chip forwards to the home memory.
        miss = hs == -1
        if miss.any():
            last_np = np.array([plan.stages[-1].chip for plan in plans],
                               dtype=np.int64)[pair_np]
            self._charge_memory_legs(miss, last_np, homes_np, channels_np,
                                     writes_np, req_np, rsp, dedicated)

        # Dirty evictions collected during the probe phase.
        if batch is not None:
            dirty_sel = batch.evicted_dirty
            if dirty_sel.any():
                self._charge_eviction_writebacks(
                    serve0_np[dirty_sel], batch.evicted_addr[dirty_sel])
        elif staged is not None:
            if staged.evicted_addr.size:
                self._charge_eviction_writebacks(
                    staged.evicted_cache // llc_slices, staged.evicted_addr)
        elif ev_addrs:
            self._charge_eviction_writebacks(ev_serves, ev_addrs)

        # Response origins (relative to the requesting chip).
        hits = hs >= 0
        origins = self.stats.responses_by_origin
        if hits.any():
            hit_serve = np.where(hs == 1, serve1, serve0)
            local_hits = int((hits & (hit_serve == chips_np)).sum())
            origins[ORIGIN_LOCAL_LLC] += local_hits
            origins[ORIGIN_REMOTE_LLC] += int(hits.sum()) - local_hits
        if miss.any():
            local_mem = int((miss & (homes_np == chips_np)).sum())
            origins[ORIGIN_LOCAL_MEM] += local_mem
            origins[ORIGIN_REMOTE_MEM] += int(miss.sum()) - local_mem

        # Per-access latency for the MLP bound, grouped by requester chip.
        self._accumulate_latency(plans, pair_np, chips_np, probed0, probed1,
                                 miss)
        if (org.profiling or not org.observe_is_passive) and \
                hasattr(org, "observe_batch"):
            # Replicate the serial path's per-access observe_access
            # stream in one batched call (profiling counters).
            org.observe_batch(self, chips_np, addrs_np, homes_np,
                              slices_np, hs)
        self._settle_epoch(epoch, kstats)
        self.stats.charge_seconds += perf_counter() - charge_start

    def _probe_loop(self, epoch: EpochTrace, uniform: bool,
                    idx0_np: np.ndarray, serve0_np: np.ndarray,
                    addrs_np: np.ndarray, writes_np: np.ndarray,
                    chips_np: np.ndarray, slices_np: np.ndarray,
                    pair_np: np.ndarray, st0_part: List[int],
                    st0_alloc: List[bool], st1: List
                    ) -> Tuple[np.ndarray, List[int], List[int]]:
        """Per-access probe loop of the batched path.

        The probe target (chip, slice) pair is precomputed as an index
        into a flat bound-method table.  Returns the per-access hit
        stage (-2: L1 read hit, -1: full miss, 0/1: LLC stage) plus the
        (serving chip, address) pairs of every dirty eviction.
        """
        llc = self.llc
        num_chips = self.config.num_chips
        llc_slices = self.config.chip.llc_slices
        n = len(epoch)
        probe_fns = [llc[c][s].access for c in range(num_chips)
                     for s in range(llc_slices)]
        idx0_l = idx0_np.tolist()
        chips_l = chips_np.tolist()
        addrs_l = addrs_np.tolist()
        writes_l = writes_np.tolist()
        serve0_l = serve0_np.tolist()
        l1 = self.l1
        clusters_l = epoch.clusters.tolist() if l1 is not None else None
        hit_stage = [-1] * n
        ev_serves: List[int] = []
        ev_addrs: List[int] = []
        if uniform:
            # Single-stage organizations with one partition/allocation
            # policy (memory-side, sm-side): the tightest possible loop.
            part0 = st0_part[0]
            alloc0 = st0_alloc[0]
            # Cache probes are the one sequentially-stateful phase; this
            # loop only runs when the vectorized tag store cannot (L1s,
            # partitions, no-allocate stages).
            for i in range(n):  # repro: noqa(hot-loop)
                addr = addrs_l[i]
                w = writes_l[i]
                if l1 is not None:
                    l1_result = l1[chips_l[i]][clusters_l[i]].access(addr, w)
                    if l1_result.hit and not w:
                        hit_stage[i] = -2
                        continue
                try:
                    result = probe_fns[idx0_l[i]](
                        addr, w, partition=part0, allocate_on_miss=alloc0)
                except PartitionFullError:
                    continue
                if result.hit:
                    hit_stage[i] = 0
                elif result.evicted_dirty:
                    ev_serves.append(serve0_l[i])
                    ev_addrs.append(result.evicted_addr)
        else:
            slices_l = slices_np.tolist()
            pairs_l = pair_np.tolist()
            # Two-stage/partitioned probes stay sequential for the same
            # reason as the uniform branch above.
            for i in range(n):  # repro: noqa(hot-loop)
                chip = chips_l[i]
                addr = addrs_l[i]
                w = writes_l[i]
                if l1 is not None:
                    l1_result = l1[chip][clusters_l[i]].access(addr, w)
                    if l1_result.hit and not w:
                        hit_stage[i] = -2
                        continue
                sl = slices_l[i]
                pid = pairs_l[i]
                try:
                    result = probe_fns[idx0_l[i]](
                        addr, w, partition=st0_part[pid],
                        allocate_on_miss=st0_alloc[pid])
                except PartitionFullError:
                    result = None
                if result is not None:
                    if result.hit:
                        hit_stage[i] = 0
                        continue
                    if result.evicted_dirty:
                        ev_serves.append(serve0_l[i])
                        ev_addrs.append(result.evicted_addr)
                second = st1[pid]
                if second is None:
                    continue
                serve, part, alloc = second
                try:
                    result = llc[serve][sl].access(addr, w, partition=part,
                                                   allocate_on_miss=alloc)
                except PartitionFullError:
                    continue
                if result.hit:
                    hit_stage[i] = 1
                elif result.evicted_dirty:
                    ev_serves.append(serve)
                    ev_addrs.append(result.evicted_addr)

        return np.array(hit_stage, dtype=np.int64), ev_serves, ev_addrs

    @staticmethod
    def _staged_shape_ok(plans: List[RoutePlan]) -> bool:
        """Whether the epoch's route plans fit the staged vector solver.

        The three-phase decomposition in
        :meth:`VectorBank.access_many_staged` reproduces the probe loop
        exactly for plans of at most two allocate-on-miss stages; the
        solver itself verifies the runtime row-disjointness condition
        and declines (returning ``None``) when it does not hold.
        """
        for plan in plans:
            if len(plan.stages) > 2:
                return False
            for stage in plan.stages:
                if not stage.allocate:
                    return False
        return True

    def _batched_homes(self, epoch: EpochTrace) -> np.ndarray:
        """Vectorized first-touch home resolution for one epoch.

        Unique pages are resolved (and allocated) through the page table
        in order of first touch, so round-robin allocation assigns the
        same homes as the per-access path.  The page decomposition
        (unique pages in first-touch order plus the scatter indices) is
        a pure function of the epoch's arrays and is memoized on the
        epoch, so lanes sharing the trace sort it once; the page-table
        resolution itself stays per-lane — each lane allocates its own
        table and organizations may migrate pages mid-run.
        """
        key = ("pages", self._page_shift)
        prep = epoch.derived.get(key)
        if prep is None:
            pages = epoch.addrs >> np.int64(self._page_shift)
            uniq, first_idx, inverse = np.unique(
                pages, return_index=True, return_inverse=True)
            order = np.argsort(first_idx, kind="stable")
            order.setflags(write=False)
            inverse.setflags(write=False)
            prep = (uniq[order].tolist(),
                    epoch.chips[first_idx[order]].tolist(),
                    order, inverse)
            epoch.derived[key] = prep
        pages_ft, chips_ft, order, inverse = cast(
            Tuple[List[int], List[int], np.ndarray, np.ndarray], prep)
        homes = self.page_table.bulk_home(pages_ft, chips_ft)
        homes_by_uniq = np.empty(len(pages_ft), dtype=np.int64)
        homes_by_uniq[order] = homes
        return homes_by_uniq[inverse]

    def _charge_local_stages(self, chips_s: np.ndarray,
                             slices_s: np.ndarray, req_s: np.ndarray,
                             rsp: int) -> None:
        """Aggregate same-chip stage legs onto the local crossbars.

        All array arguments are pre-compacted to the selected accesses
        (one ``flatnonzero``/``take`` at the call site instead of a
        boolean re-mask per array here).
        """
        llc_slices = self.config.chip.llc_slices
        idx = chips_s * llc_slices + slices_s
        total = self.config.total_llc_slices
        counts = np.bincount(idx, minlength=total)
        req_sums = np.bincount(idx, weights=req_s, minlength=total)
        for g in np.flatnonzero(counts).tolist():
            xbar = self.crossbars[g // llc_slices]
            port = xbar.llc_port(g % llc_slices)
            xbar.charge_request(port, int(req_sums[g]))
            xbar.charge_response(port, rsp * int(counts[g]))

    def _charge_remote_stages(self, chips_s: np.ndarray,
                              serve_s: np.ndarray, slices_s: np.ndarray,
                              req_s: np.ndarray, rsp: int,
                              skip_crossbar: bool) -> None:
        """Aggregate cross-chip stage legs onto the ring and crossbars.

        Arguments are pre-compacted like :meth:`_charge_local_stages`.
        """
        num_chips = self.config.num_chips
        num_pairs = num_chips * num_chips
        pairs = chips_s * num_chips + serve_s
        counts = np.bincount(pairs, minlength=num_pairs)
        req_sums = np.bincount(pairs, weights=req_s,
                               minlength=num_pairs)
        for p in np.flatnonzero(counts).tolist():
            src, dst = divmod(p, num_chips)
            messages = int(counts[p])
            req_total = int(req_sums[p])
            rsp_total = rsp * messages
            self.ring.charge_bulk(src, dst, req_total, messages)
            self.ring.charge_bulk(dst, src, rsp_total, messages)
            self.stats.inter_chip_bytes += req_total + rsp_total
        if skip_crossbar:
            return
        ip = self.config.chip.noc.inter_chip_ports
        links = slices_s % ip
        self._charge_xbar_ports(chips_s * ip + links, ip, True,
                                req_s, rsp)
        llc_slices = self.config.chip.llc_slices
        self._charge_xbar_ports(serve_s * llc_slices + slices_s,
                                llc_slices, False, req_s, rsp)

    def _charge_xbar_ports(self, idx: np.ndarray, ports_per_chip: int,
                           inter_chip: bool, req_sel: np.ndarray,
                           rsp: int) -> None:
        """Charge grouped request/response bytes to crossbar ports.

        ``idx`` encodes ``chip * ports_per_chip + port``; ``inter_chip``
        selects the inter-chip port bank instead of the LLC ports.
        """
        nbins = self.config.num_chips * ports_per_chip
        counts = np.bincount(idx, minlength=nbins)
        req_sums = np.bincount(idx, weights=req_sel, minlength=nbins)
        for g in np.flatnonzero(counts).tolist():
            xbar = self.crossbars[g // ports_per_chip]
            port = g % ports_per_chip
            port = xbar.inter_chip_port(port) if inter_chip else \
                xbar.llc_port(port)
            xbar.charge_request(port, int(req_sums[g]))
            xbar.charge_response(port, rsp * int(counts[g]))

    def _charge_memory_legs(self, miss: np.ndarray, last_np: np.ndarray,
                            homes_np: np.ndarray, channels_np: np.ndarray,
                            writes_np: np.ndarray, req_np: np.ndarray,
                            rsp: int, dedicated: bool) -> None:
        """Aggregate the LLC-miss -> home-DRAM legs."""
        config = self.config
        num_chips = config.num_chips
        midx = np.flatnonzero(miss)
        last_s = last_np.take(midx)
        homes_s = homes_np.take(midx)
        channels_s = channels_np.take(midx)
        writes_s = writes_np.take(midx)
        req_s = req_np.take(midx)
        tot_s = req_s + rsp
        channels_per_chip = config.chip.memory.channels_per_chip
        nbins = num_chips * channels_per_chip
        didx = homes_s * channels_per_chip + channels_s
        for is_write, ix in ((True, np.flatnonzero(writes_s)),
                             (False, np.flatnonzero(~writes_s))):
            if not ix.size:
                continue
            d = didx.take(ix)
            counts = np.bincount(d, minlength=nbins)
            sums = np.bincount(d, weights=tot_s.take(ix),
                               minlength=nbins)
            for g in np.flatnonzero(counts).tolist():
                self.dram[g // channels_per_chip].charge_bulk(
                    g % channels_per_chip, int(sums[g]), int(counts[g]),
                    is_write)
        self.stats.dram_bytes += int(tot_s.sum())
        ridx = np.flatnonzero(last_s != homes_s)
        if not ridx.size:
            return
        last_r = last_s.take(ridx)
        homes_r = homes_s.take(ridx)
        req_r = req_s.take(ridx)
        num_pairs = num_chips * num_chips
        pairs = last_r * num_chips + homes_r
        counts = np.bincount(pairs, minlength=num_pairs)
        req_sums = np.bincount(pairs, weights=req_r,
                               minlength=num_pairs)
        for p in np.flatnonzero(counts).tolist():
            last, home = divmod(p, num_chips)
            messages = int(counts[p])
            req_total = int(req_sums[p])
            rsp_total = rsp * messages
            self.ring.charge_bulk(last, home, req_total, messages)
            self.ring.charge_bulk(home, last, rsp_total, messages)
            self.stats.inter_chip_bytes += req_total + rsp_total
        if dedicated:
            return
        ip = config.chip.noc.inter_chip_ports
        links = channels_s.take(ridx) % ip
        for side_r in (last_r, homes_r):
            self._charge_xbar_ports(side_r * ip + links, ip, True,
                                    req_r, rsp)

    def _charge_eviction_writebacks(self, serves: List[int],
                                    addrs: List[int]) -> None:
        """Aggregate dirty-eviction write-backs collected by the fast path."""
        num_chips = self.config.num_chips
        wb = self.line_size + self.params.response_header_bytes
        serves_np = np.asarray(serves, dtype=np.int64)
        addrs_np = np.asarray(addrs, dtype=np.int64)
        channels = self._vectorized_channels(addrs_np)
        home_of = self.page_table._home.get
        shift = self.page_table._page_shift
        pages, inverse = np.unique(addrs_np >> shift, return_inverse=True)
        page_home = np.empty(pages.size, dtype=np.int64)
        for i, page in enumerate(pages.tolist()):
            home = home_of(page)
            page_home[i] = -1 if home is None else home
        homes_np = page_home[inverse]
        homes_np = np.where(homes_np < 0, serves_np, homes_np)
        channels_per_chip = self.config.chip.memory.channels_per_chip
        didx = homes_np * channels_per_chip + channels
        counts = np.bincount(didx,
                             minlength=num_chips * channels_per_chip)
        for g in np.flatnonzero(counts).tolist():
            self.dram[g // channels_per_chip].charge_bulk(
                g % channels_per_chip, wb * int(counts[g]), int(counts[g]),
                is_write=True)
        self.stats.dram_bytes += wb * len(addrs)
        remote = homes_np != serves_np
        if not remote.any():
            return
        pairs = serves_np[remote] * num_chips + homes_np[remote]
        counts = np.bincount(pairs, minlength=num_chips * num_chips)
        for p in np.flatnonzero(counts).tolist():
            src, dst = divmod(p, num_chips)
            total = wb * int(counts[p])
            self.ring.charge_bulk(src, dst, total, int(counts[p]))
            self.stats.inter_chip_bytes += total

    def _accumulate_latency(self, plans: List, pair_np: np.ndarray,
                            chips_np: np.ndarray, probed0: np.ndarray,
                            probed1: np.ndarray, miss: np.ndarray) -> None:
        """Accumulate the per-access latency sums used by the MLP bound.

        Per-pair leg latencies are computed with the same scalar
        expressions as :meth:`_charge_leg`/:meth:`_charge_memory_leg` and
        summed per requesting chip in access order, so the result matches
        the serial path exactly.
        """
        params = self.params
        num_chips = self.config.num_chips
        hops = self.ring.hops

        def leg_latency(src: int, dst: int) -> float:
            if src == dst:
                return 2 * params.latency_noc
            return 2 * params.latency_noc + \
                hops(src, dst) * params.latency_ring_hop

        leg0 = []
        leg1 = []
        mem = []
        for p, plan in enumerate(plans):
            requester, home = divmod(p, num_chips)
            leg0.append(leg_latency(requester, plan.stages[0].chip))
            leg1.append(leg_latency(requester, plan.stages[1].chip)
                        if len(plan.stages) > 1 else 0.0)
            last = plan.stages[-1].chip
            mem_latency = params.latency_dram
            if last != home:
                mem_latency += 2 * params.latency_noc + \
                    hops(last, home) * params.latency_ring_hop
            mem.append(mem_latency)
        # Full-length gathers from the tiny per-pair tables, zeroed by the
        # stage masks, add in the same per-element order as the masked
        # scatter-adds they replace (leg first, then the LLC latency).
        lat = np.array(leg0, dtype=np.float64)[pair_np] * probed0
        lat += params.latency_llc * probed0
        if probed1.any():
            lat += np.array(leg1, dtype=np.float64)[pair_np] * probed1
            lat += params.latency_llc * probed1
        midx = np.flatnonzero(miss)
        if midx.size:
            lat[midx] += np.array(mem, dtype=np.float64)[pair_np.take(midx)]
        sums = np.bincount(chips_np, weights=lat, minlength=num_chips)
        for chip in range(num_chips):
            if sums[chip]:
                self._latency_sum[chip] += float(sums[chip])

    def _vectorized_slices(
            self, addrs: np.ndarray,
            memo: Optional[Dict[tuple, object]] = None) -> np.ndarray:
        """Slice hash of ``addrs``; memoized in ``memo`` when given.

        The hash is a pure function of the address array plus the
        mapping parameters in the key, so a shared epoch's memo lets
        every sweep lane (and every best-of-N rep replaying the cached
        trace) reuse one computation.  Memoized arrays are frozen —
        consumers only ever read them.
        """
        key = ("slices", self.line_size, self.mapping.seed,
               self.mapping.slices_per_chip)
        if memo is not None:
            hit = memo.get(key)
            if hit is not None:
                return cast(np.ndarray, hit)
        out = _hash_mod(addrs // self.line_size, self.mapping.seed,
                        self.mapping.slices_per_chip)
        if memo is not None:
            out.setflags(write=False)
            memo[key] = out
        return out

    def _vectorized_channels(
            self, addrs: np.ndarray,
            memo: Optional[Dict[tuple, object]] = None) -> np.ndarray:
        """Channel hash of ``addrs``; memoized like the slice hash."""
        inverted = int(~np.uint64(self.mapping.seed))
        key = ("channels", self.line_size, inverted,
               self.mapping.channels_per_chip)
        if memo is not None:
            hit = memo.get(key)
            if hit is not None:
                return cast(np.ndarray, hit)
        out = _hash_mod(addrs // self.line_size, inverted,
                        self.mapping.channels_per_chip)
        if memo is not None:
            out.setflags(write=False)
            memo[key] = out
        return out

    def _access(self, chip: int, cluster: int, addr: int, is_write: bool,
                slice_index: int, channel: int, kstats: KernelStats) -> None:
        params = self.params
        kstats.accesses += 1
        if self.l1 is not None:
            l1_result = self.l1[chip][cluster].access(addr, is_write)
            if l1_result.hit and not is_write:
                # Write-through L1: writes always propagate to the LLC.
                return
        home = self.page_table.home_chip(addr, chip)
        if self.migration is not None:
            self.migration.observe(addr >> self._page_shift, chip)
        plan = self.organization.plan(chip, home)
        req_bytes = params.request_bytes + (
            params.write_data_bytes if is_write else 0)
        rsp_bytes = self.line_size + params.response_header_bytes
        dedicated = getattr(self.organization, "dedicated_memory_network",
                            False)
        latency = 0.0
        hit_stage: Optional[int] = None
        kstats.llc_lookups += 1
        line_addr = addr & self._line_mask

        for stage_index, stage in enumerate(plan.stages):
            serve = stage.chip
            cache = self.llc[serve][slice_index]
            self.stats.slice_requests[
                serve * self.config.chip.llc_slices + slice_index] += 1
            # Charge the request leg to this stage.
            latency += self._charge_leg(chip, serve, slice_index, req_bytes,
                                        rsp_bytes, dedicated and
                                        stage_index > 0)
            self._slice_bytes[serve][slice_index] += self.line_size
            allocate = stage.allocate
            if allocate and stage.partition and \
                    hasattr(self.organization, "remote_allocate"):
                # Insertion-policy organizations (LADM) decide per access
                # whether a remote line may enter the remote partition.
                allocate = self.organization.remote_allocate(chip, addr)
            result = self._llc_access(cache, serve, addr, line_addr, is_write,
                                      stage.partition, allocate,
                                      slice_index)
            latency += params.latency_llc
            if result:
                hit_stage = stage_index
                break

        if hit_stage is not None:
            kstats.llc_hits += 1
            origin = (ORIGIN_LOCAL_LLC
                      if plan.stages[hit_stage].chip == chip
                      else ORIGIN_REMOTE_LLC)
        else:
            # Full miss: the last probed chip forwards to the home memory.
            last = plan.stages[-1].chip
            latency += self._charge_memory_leg(chip, last, home, channel,
                                               req_bytes, rsp_bytes, is_write,
                                               dedicated)
            origin = ORIGIN_LOCAL_MEM if home == chip else ORIGIN_REMOTE_MEM
        self.stats.responses_by_origin[origin] += 1
        self._latency_sum[chip] += latency
        if is_write and self.hardware_coherence is not None and \
                self.organization.caches_remote_data:
            self._propagate_write_invalidations(chip, line_addr, slice_index)
        self.organization.observe_access(self, chip, addr, home, hit_stage)

    def _llc_access(self, cache: SetAssociativeCache, serve: int, addr: int,
                    line_addr: int, is_write: bool, partition: int,
                    allocate: bool, slice_index: int) -> bool:
        """Probe (and fill) one LLC slice; returns True on a hit."""
        remote_capable = self.organization.caches_remote_data
        track = self.hardware_coherence is not None and remote_capable
        track_mesi = self.mesi is not None and remote_capable
        try:
            result = cache.access(addr, is_write, partition=partition,
                                  allocate_on_miss=allocate)
        except PartitionFullError:
            return False
        if result.hit:
            if track_mesi and is_write:
                self._apply_mesi_actions(
                    serve, line_addr, slice_index,
                    self.mesi.write(line_addr, serve))
            return True
        if result.evicted_addr is not None:
            self._writeback_eviction(serve, result)
            evicted_line = result.evicted_addr & self._line_mask
            if track:
                self.hardware_coherence.on_evict(evicted_line, serve)
            if track_mesi:
                self.mesi.evict(evicted_line, serve)
        if allocate and track:
            self.hardware_coherence.on_fill(line_addr, serve)
        if allocate and track_mesi:
            transition = self.mesi.write if is_write else self.mesi.read
            self._apply_mesi_actions(serve, line_addr, slice_index,
                                     transition(line_addr, serve))
        return False

    def _apply_mesi_actions(self, serve: int, line_addr: int,
                            slice_index: int,
                            actions: "List[CoherenceAction]") -> None:
        """Charge MESI protocol messages and apply invalidations."""
        from ..coherence.mesi import ActionKind
        ctrl = self.config.coherence.invalidation_message_bytes
        wb_bytes = self.line_size + self.params.response_header_bytes
        for action in actions:
            self.ring.charge(serve, action.chip, ctrl)
            self.stats.coherence_bytes += ctrl
            self.stats.inter_chip_bytes += ctrl
            if action.kind is ActionKind.INVALIDATE:
                self.llc[action.chip][slice_index].invalidate(line_addr)
                self.stats.coherence_invalidations += 1
            if action.kind is ActionKind.TRANSFER:
                self.ring.charge(action.chip, serve, wb_bytes)
                self.stats.coherence_bytes += wb_bytes
                self.stats.inter_chip_bytes += wb_bytes
            if action.writeback:
                home = self.page_table.lookup(line_addr)
                if home is None:
                    home = action.chip
                self.dram[home].charge(
                    self.mapping.channel_of(line_addr), wb_bytes,
                    is_write=True)
                self.stats.dram_bytes += wb_bytes
                if home != action.chip:
                    self.ring.charge(action.chip, home, wb_bytes)
                    self.stats.inter_chip_bytes += wb_bytes

    def _writeback_eviction(self, chip: int,
                            result: AccessResult) -> None:
        if not result.evicted_dirty:
            return
        home = self.page_table.lookup(result.evicted_addr)
        if home is None:
            home = chip
        wb_bytes = self.line_size + self.params.response_header_bytes
        self.dram[home].charge(
            self.mapping.channel_of(result.evicted_addr), wb_bytes,
            is_write=True)
        self.stats.dram_bytes += wb_bytes
        if home != chip:
            self.ring.charge(chip, home, wb_bytes)
            self.stats.inter_chip_bytes += wb_bytes

    def _propagate_write_invalidations(self, chip: int, line_addr: int,
                                       slice_index: int) -> None:
        assert self.hardware_coherence is not None
        victims = self.hardware_coherence.on_write(line_addr, chip)
        for victim in victims:
            self.llc[victim][slice_index].invalidate(line_addr)
            self.stats.coherence_invalidations += 1

    # -- Traffic legs ---------------------------------------------------------

    def _charge_leg(self, src: int, dst: int, slice_index: int,
                    req_bytes: int, rsp_bytes: int,
                    skip_crossbar: bool) -> float:
        """Charge the SM->LLC request/response leg; returns its latency.

        Both the local and the remote leg are a request+response pair:
        the request crosses the crossbar to the LLC port and the response
        crosses back (Figure 6 paths 1-2), so both directions pay one
        ``latency_noc`` crossbar traversal each.  Remote legs additionally
        pay the ring hops between the chips.
        """
        params = self.params
        if src == dst:
            xbar = self.crossbars[src]
            port = xbar.llc_port(slice_index)
            xbar.charge_request(port, req_bytes)
            xbar.charge_response(port, rsp_bytes)
            return 2 * params.latency_noc
        hops = self.ring.hops(src, dst)
        self.ring.charge(src, dst, req_bytes)
        self.ring.charge(dst, src, rsp_bytes)
        self.stats.inter_chip_bytes += req_bytes + rsp_bytes
        if not skip_crossbar:
            link = slice_index % self.config.chip.noc.inter_chip_ports
            src_xbar = self.crossbars[src]
            dst_xbar = self.crossbars[dst]
            src_xbar.charge_request(src_xbar.inter_chip_port(link), req_bytes)
            src_xbar.charge_response(src_xbar.inter_chip_port(link), rsp_bytes)
            dst_xbar.charge_request(dst_xbar.llc_port(slice_index), req_bytes)
            dst_xbar.charge_response(dst_xbar.llc_port(slice_index), rsp_bytes)
        return 2 * params.latency_noc + hops * params.latency_ring_hop

    def _charge_memory_leg(self, requester: int, last: int, home: int,
                           channel: int, req_bytes: int, rsp_bytes: int,
                           is_write: bool, dedicated: bool) -> float:
        """Charge the LLC-miss -> home-DRAM leg; returns its latency."""
        params = self.params
        latency = params.latency_dram
        self.dram[home].charge(channel, req_bytes + rsp_bytes, is_write)
        self.stats.dram_bytes += req_bytes + rsp_bytes
        if last != home:
            # SM-side remote miss (SR): local slice -> inter-chip link ->
            # remote chip, bypassing the remote LLC slice (Figure 6 path 4).
            hops = self.ring.hops(last, home)
            self.ring.charge(last, home, req_bytes)
            self.ring.charge(home, last, rsp_bytes)
            self.stats.inter_chip_bytes += req_bytes + rsp_bytes
            if not dedicated:
                link = channel % self.config.chip.noc.inter_chip_ports
                last_xbar = self.crossbars[last]
                home_xbar = self.crossbars[home]
                last_xbar.charge_request(
                    last_xbar.inter_chip_port(link), req_bytes)
                last_xbar.charge_response(
                    last_xbar.inter_chip_port(link), rsp_bytes)
                home_xbar.charge_request(
                    home_xbar.inter_chip_port(link), req_bytes)
                home_xbar.charge_response(
                    home_xbar.inter_chip_port(link), rsp_bytes)
            latency += 2 * params.latency_noc + hops * params.latency_ring_hop
        return latency

    # -- Epoch settlement ---------------------------------------------------------

    def _settle_epoch(self, epoch: EpochTrace, kstats: KernelStats) -> None:
        if self.migration is not None:
            for _page, old_home, new_home in \
                    self.migration.end_epoch(self.page_table):
                # One page crosses the ring and touches both partitions.
                page_bytes = self.config.chip.memory.page_size
                self.ring.charge(old_home, new_home, page_bytes)
                self.stats.inter_chip_bytes += page_bytes
                channel = _page % self.config.chip.memory.channels_per_chip
                self.dram[old_home].charge(channel, page_bytes,
                                           is_write=False)
                self.dram[new_home].charge(channel, page_bytes,
                                           is_write=True)
                self.stats.dram_bytes += 2 * page_bytes
        if self.hardware_coherence is not None:
            messages = self.hardware_coherence.pop_epoch_messages()
            msg_bytes = self.hardware_coherence.message_bytes
            for src, dst in messages:
                self.ring.charge(src, dst, msg_bytes)
                self.stats.coherence_bytes += msg_bytes
                self.stats.inter_chip_bytes += msg_bytes
        slice_bw = self.config.chip.llc_slice_bw_bytes_per_cycle
        slice_cycles = max((b for chip in self._slice_bytes for b in chip),
                           default=0.0) / slice_bw
        crossbar_cycles = max(x.epoch_cycles() for x in self.crossbars)
        ring_cycles = self.ring.epoch_cycles()
        dram_cycles = max(p.epoch_cycles() for p in self.dram)
        latency_cycles = max(self._latency_sum) / \
            self.params.max_outstanding_per_chip
        if self.params.model_queueing:
            latency_cycles += self._queueing_latency(epoch.compute_cycles)
        candidates = {
            "compute": epoch.compute_cycles,
            "llc_slice": slice_cycles,
            "crossbar": crossbar_cycles,
            "inter_chip": ring_cycles,
            "dram": dram_cycles,
            "latency": latency_cycles,
        }
        bottleneck = max(candidates, key=candidates.get)
        cycles = candidates[bottleneck]
        self.stats.bottleneck_cycles[bottleneck] = \
            self.stats.bottleneck_cycles.get(bottleneck, 0.0) + cycles
        kstats.cycles += cycles
        kstats.epoch_cycles.append(cycles)
        self.last_epoch_cycles = cycles
        # Reset per-epoch accumulators.
        for chip_bytes in self._slice_bytes:
            for i in range(len(chip_bytes)):
                chip_bytes[i] = 0.0
        for i in range(len(self._latency_sum)):
            self._latency_sum[i] = 0.0
        for xbar in self.crossbars:
            xbar.end_epoch()
        self.ring.end_epoch()
        self.dram.end_epoch()

    def _queueing_latency(self, nominal_cycles: float) -> float:
        """Mean M/D/1 queue delay per chip for this epoch's load.

        Evaluated against the epoch's nominal (compute-floor) duration:
        the queue term covers the sub-saturation region, the throughput
        model covers saturation.
        """
        from .queueing import QueueModel
        rsp = self.line_size + self.params.response_header_bytes
        extra = 0.0
        dram_model = QueueModel(
            capacity=self.config.chip.memory.channel_bw_bytes_per_cycle,
            request_bytes=rsp)
        for partition in self.dram:
            per_channel = partition.epoch_bytes() / \
                self.config.chip.memory.channels_per_chip
            wait = dram_model.wait(per_channel, nominal_cycles)
            requests = per_channel / rsp * \
                self.config.chip.memory.channels_per_chip
            extra = max(extra, wait * requests)
        ring_model = QueueModel(
            capacity=self.ring.config.pair_bw(self.config.num_chips)
            if self.config.num_chips > 1 else 1.0,
            request_bytes=rsp)
        for load in self.ring.segment_loads().values():
            wait = ring_model.wait(load, nominal_cycles)
            extra = max(extra, wait * load / rsp)
        return extra / self.params.max_outstanding_per_chip

    # -- Figure 9 sampling ---------------------------------------------------------

    def _sample_allocation(self, weight: float) -> None:
        """Sample the local/remote composition of the LLC (Figure 9)."""
        local = 0
        remote = 0
        lookup = self.page_table.lookup
        shift = self.page_table._page_shift
        # Sorted snapshot of the page table for vectorized lookups on
        # the native path; unallocated pages count as local (same as
        # the scalar path's None).
        ptab = self.page_table._home
        pt_pages = np.fromiter(ptab.keys(), dtype=np.int64,
                               count=len(ptab))
        pt_homes = np.fromiter(ptab.values(), dtype=np.int64,
                               count=len(ptab))
        psort = np.argsort(pt_pages)
        pt_pages = pt_pages[psort]
        pt_homes = pt_homes[psort]
        for chip in range(self.config.num_chips):
            for cache in self.llc[chip]:
                addrs = None
                native = getattr(cache, "resident_addrs", None)
                if native is not None:
                    addrs = native()
                if addrs is None:
                    for line_addr, _line in cache.resident_lines():
                        home = lookup(line_addr)
                        if home is None or home == chip:
                            local += 1
                        else:
                            remote += 1
                    continue
                if not len(addrs):
                    continue
                pages, counts = np.unique(addrs >> shift,
                                          return_counts=True)
                pos = np.searchsorted(pt_pages, pages)
                pos = np.minimum(pos, max(pt_pages.size - 1, 0))
                known = pt_pages.size > 0
                found = (pt_pages[pos] == pages) if known else \
                    np.zeros(pages.shape, dtype=bool)
                homes = np.where(found, pt_homes[pos] if known else 0,
                                 chip)
                rem = int(counts[homes != chip].sum())
                remote += rem
                local += int(counts.sum()) - rem
        total = local + remote
        if total == 0 or weight <= 0:
            return
        self._alloc_weight += weight
        self._alloc_local += weight * local / total
        self._alloc_remote += weight * remote / total

    def _finalize_allocation_stats(self) -> None:
        if self._alloc_weight > 0:
            self.stats.llc_local_fraction = \
                self._alloc_local / self._alloc_weight
            self.stats.llc_remote_fraction = \
                self._alloc_remote / self._alloc_weight


def _hash_mod(lines: np.ndarray, seed: int, modulus: int) -> np.ndarray:
    """Vectorized splitmix64 finalizer mod ``modulus`` (matches
    :func:`repro.memory.mapping._mix`)."""
    v = lines.astype(np.uint64) ^ np.uint64(seed & 0xFFFFFFFFFFFFFFFF)
    with np.errstate(over="ignore"):
        v = (v ^ (v >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        v = (v ^ (v >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        v = v ^ (v >> np.uint64(31))
    return (v % np.uint64(modulus)).astype(np.int64)


#: Alias used by organizations' type hints.
EngineContext = SimulationEngine
