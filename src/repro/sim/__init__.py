"""Simulation engine: trace-driven, epoch-based multi-chip GPU model."""

from .cta import DistributedCTAScheduler, RoundRobinCTAScheduler
from .engine import EngineContext, EngineParams, SimulationEngine
from .eventsim import EventDrivenEngine, validate_against_epoch_model
from .queueing import QueueModel, md1_wait
from .run import (
    DEFAULT_ACCESSES_PER_EPOCH,
    DEFAULT_SCALE,
    ORGANIZATIONS,
    StackedResult,
    StackedTelemetry,
    make_organization,
    scaled_config,
    simulate,
    simulate_stacked,
)
from .stats import (
    ORIGIN_LOCAL_LLC,
    ORIGIN_LOCAL_MEM,
    ORIGIN_REMOTE_LLC,
    ORIGIN_REMOTE_MEM,
    ORIGINS,
    KernelStats,
    RunStats,
    harmonic_mean,
    speedup,
)

__all__ = [
    "DistributedCTAScheduler",
    "RoundRobinCTAScheduler",
    "EngineContext",
    "EngineParams",
    "SimulationEngine",
    "EventDrivenEngine",
    "validate_against_epoch_model",
    "QueueModel",
    "md1_wait",
    "DEFAULT_ACCESSES_PER_EPOCH",
    "DEFAULT_SCALE",
    "ORGANIZATIONS",
    "StackedResult",
    "StackedTelemetry",
    "make_organization",
    "scaled_config",
    "simulate",
    "simulate_stacked",
    "ORIGIN_LOCAL_LLC",
    "ORIGIN_LOCAL_MEM",
    "ORIGIN_REMOTE_LLC",
    "ORIGIN_REMOTE_MEM",
    "ORIGINS",
    "KernelStats",
    "RunStats",
    "harmonic_mean",
    "speedup",
]
