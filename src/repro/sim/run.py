"""High-level run orchestration.

``simulate`` is the main entry point of the library: it builds the trace
generator, the LLC organization and the engine for one benchmark and
returns :class:`~repro.sim.stats.RunStats`.

Because the paper's full-size system (16 MB of LLC, hundred-MB
footprints) would need tens of millions of trace accesses for caches to
warm, experiments run at a *reduced scale*: workload region sizes and
cache capacities shrink by the same factor (default 1/16), preserving
the capacity ratios that determine every decision boundary in the
paper.  Bandwidths are left untouched, so all bandwidth bottlenecks are
unchanged.  ``scale=1.0`` runs the full-size system.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, Optional, Union

from ..arch.config import SystemConfig
from ..arch.presets import baseline, with_llc_capacity_scale
from ..core.sac import SharingAwareCaching
from ..llc.base import LLCOrganization
from ..llc.ladm import LADMLLC
from ..llc.organizations import DynamicLLC, MemorySideLLC, SMSideLLC, StaticLLC
from ..workloads.generator import TraceGenerator
from ..workloads.spec import BenchmarkSpec
from .engine import EngineParams, SimulationEngine
from .stats import RunStats

#: Default system/workload shrink factor for experiments.
DEFAULT_SCALE = 1.0 / 16.0

#: Default trace density (per chip, per epoch).
DEFAULT_ACCESSES_PER_EPOCH = 8192

ORGANIZATIONS = ("memory-side", "sm-side", "static", "dynamic", "sac")

#: Additional related-work organizations accepted by make_organization.
EXTRA_ORGANIZATIONS = ("ladm",)

#: Count of :func:`simulate` invocations in this process.  Tests and the
#: runner's cache-effectiveness assertions hook this to prove that warm
#: caches do not re-simulate (the count is per-process: workers in a
#: parallel ``run_matrix`` pool increment their own copies).
_SIMULATE_CALLS = 0


def simulate_calls() -> int:
    """Number of times ``simulate`` ran in this process."""
    return _SIMULATE_CALLS


def reset_simulate_calls() -> None:
    """Reset the ``simulate`` call counter (for tests)."""
    global _SIMULATE_CALLS
    _SIMULATE_CALLS = 0


def _note_simulate_calls(count: int = 1) -> None:
    """Record fresh simulations (``simulate_stacked`` counts per lane)."""
    global _SIMULATE_CALLS
    _SIMULATE_CALLS += count


def make_organization(name: str, config: SystemConfig,
                      **kwargs: object) -> LLCOrganization:
    """Build one of the five evaluated LLC organizations by name."""
    if name == "memory-side":
        return MemorySideLLC(config.num_chips, **kwargs)
    if name == "sm-side":
        return SMSideLLC(config.num_chips, **kwargs)
    if name == "static":
        return StaticLLC(config.num_chips, **kwargs)
    if name == "dynamic":
        return DynamicLLC(config.num_chips, **kwargs)
    if name == "ladm":
        return LADMLLC(config.num_chips, **kwargs)
    if name == "sac":
        return SharingAwareCaching(config, **kwargs)
    raise ValueError(
        f"unknown organization {name!r}; choose from "
        f"{ORGANIZATIONS + EXTRA_ORGANIZATIONS}")


def scaled_config(config: SystemConfig, scale: float) -> SystemConfig:
    """Shrink cache capacities by ``scale`` (leaves bandwidths alone).

    The SAC profiling window shrinks with the same factor: the paper's
    2K-cycle window is a sub-percent fraction of its (multi-million
    cycle) kernels, and keeping the window fixed while kernels shrink
    would inflate the relative profiling overhead by orders of
    magnitude.  Scaling it keeps the window-to-kernel ratio faithful.
    """
    # A scale of exactly 1.0 is the "unscaled" sentinel: callers pass the
    # literal, no arithmetic produces it, so exact equality is intended.
    if scale == 1.0:  # repro: noqa(float-eq)
        return config
    scaled = with_llc_capacity_scale(config, scale)
    l1 = config.chip.l1.scaled(scale)
    # Note: the page size deliberately does NOT scale.  Scaling it keeps
    # the page count per MB constant (smoothing first-touch placement at
    # tiny inputs) but changes the false-sharing granularity and the
    # per-page reuse the sharing profiles were calibrated against; the
    # 4 KB granularity is part of the workload definition (Table 3).
    chip = dataclasses.replace(scaled.chip, l1=l1)
    # Floor at 500 cycles: below that the sampled CRD sees too few
    # requests to estimate the SM-side hit rate reliably.  The decision
    # threshold theta widens a little for the same reason — the shorter
    # window makes the counter estimates noisier, so the guard band the
    # paper uses against borderline flips must grow with that noise.
    sac = dataclasses.replace(
        config.sac,
        profile_window_cycles=max(
            500, round(config.sac.profile_window_cycles * scale)),
        theta=max(config.sac.theta, 0.08),
        drain_cycles=max(50, round(config.sac.drain_cycles * scale)))
    return scaled.with_updates(chip=chip, sac=sac)


def simulate(spec: BenchmarkSpec,
             organization: Union[str, LLCOrganization],
             config: Optional[SystemConfig] = None,
             scale: float = DEFAULT_SCALE,
             accesses_per_epoch: int = DEFAULT_ACCESSES_PER_EPOCH,
             params: Optional[EngineParams] = None,
             org_kwargs: Optional[Dict[str, object]] = None) -> RunStats:
    """Simulate ``spec`` under ``organization`` and return the run stats.

    ``organization`` is an organization name (see ``ORGANIZATIONS``) or a
    pre-built :class:`LLCOrganization` (in which case ``org_kwargs`` is
    ignored and the caller is responsible for matching the scaled
    config).
    """
    _note_simulate_calls()
    base = config or baseline()
    run_config = scaled_config(base, scale)
    if isinstance(organization, str):
        org = make_organization(organization, run_config,
                                **(org_kwargs or {}))
    else:
        org = organization
    generator = TraceGenerator(
        spec,
        num_chips=run_config.num_chips,
        clusters_per_chip=run_config.chip.num_clusters,
        line_size=run_config.line_size,
        page_size=run_config.page_size,
        accesses_per_epoch_per_chip=accesses_per_epoch,
        scale=scale)
    engine = SimulationEngine(run_config, org, params=params)
    started = time.perf_counter()
    stats = engine.run(generator.kernels(), benchmark=spec.name)
    stats.wall_seconds = time.perf_counter() - started
    return stats


# Re-exported here so the stacked entry point lives next to ``simulate``
# (the import sits at module end because ``stacked`` imports the helpers
# above).
from .stacked import (  # noqa: E402
    StackedResult,
    StackedTelemetry,
    simulate_stacked,
)

__all__ = [
    "DEFAULT_ACCESSES_PER_EPOCH",
    "DEFAULT_SCALE",
    "EXTRA_ORGANIZATIONS",
    "ORGANIZATIONS",
    "StackedResult",
    "StackedTelemetry",
    "make_organization",
    "reset_simulate_calls",
    "scaled_config",
    "simulate",
    "simulate_calls",
    "simulate_stacked",
]
