"""Simulation statistics.

``RunStats`` aggregates everything the paper's figures need: cycles
(performance), LLC hit rates (Figure 1b), response-origin breakdown and
effective LLC bandwidth (Figures 1c and 10), LLC local/remote allocation
(Figure 9), per-slice request counts (LSU), inter-chip and DRAM traffic,
and per-kernel cycle/organization records (Figure 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Response-origin keys, relative to the *requesting* chip.
ORIGIN_LOCAL_LLC = "local_llc"
ORIGIN_REMOTE_LLC = "remote_llc"
ORIGIN_LOCAL_MEM = "local_mem"
ORIGIN_REMOTE_MEM = "remote_mem"
ORIGINS = (ORIGIN_LOCAL_LLC, ORIGIN_REMOTE_LLC,
           ORIGIN_LOCAL_MEM, ORIGIN_REMOTE_MEM)

#: Host-side telemetry fields — wall-clock timings and execution-path
#: counters that legitimately differ between two runs of the same
#: workload, and are therefore excluded from
#: :meth:`RunStats.comparable_dict`.  Every ``RunStats`` field must be in
#: exactly one of ``comparable_dict()`` or this registry (enforced by the
#: ``stats-drift`` lint rule), and every attribute *write* to a
#: ``RunStats``/``KernelStats``/``StackedTelemetry`` object anywhere
#: under ``src/repro`` must target a name registered here or in
#: ``comparable_dict()`` (the cross-module ``telemetry-registry`` rule);
#: the ``repro.sim.stacked.StackedTelemetry`` counters are therefore
#: listed too.
TELEMETRY_FIELDS = frozenset({
    "wall_seconds",
    "fast_epochs",
    "slow_epochs",
    "probe_seconds",
    "solve_seconds",
    "charge_seconds",
    "vector_epochs",
    "scalar_epochs",
    "demotions",
    "stacked_lanes",
    "stacked_probe_calls",
    "stacked_shared_streams",
    "lane_quarantined",
    "lane_demoted",
    "sanitizer_violations",
    "lane_batched_rounds",
    "replay_seconds",
    "other_seconds",
    "set_replay_batches",
    # StackedTelemetry counters (repro/sim/stacked.py).
    "lanes",
    "solo_lanes",
    "duplicate_lanes",
    "banks",
    "bank_invocations",
    "shared_encodings",
    "shared_replays",
    "quarantined_lanes",
    "demoted_lanes",
})


@dataclass
class KernelStats:
    """Per-kernel-launch record."""

    name: str
    cycles: float = 0.0
    accesses: int = 0
    llc_hits: int = 0
    llc_lookups: int = 0
    # Organization active for the bulk of the kernel ("memory-side" or
    # "sm-side"); for SAC this is the post-profiling decision.
    organization: Optional[str] = None
    reconfigured: bool = False
    reconfig_cycles: float = 0.0
    # Per-epoch durations, in execution order (time-varying analyses).
    epoch_cycles: List[float] = field(default_factory=list)

    @property
    def llc_hit_rate(self) -> float:
        if self.llc_lookups == 0:
            return 0.0
        return self.llc_hits / self.llc_lookups


@dataclass
class RunStats:
    """Aggregate statistics for one benchmark under one LLC organization."""

    benchmark: str = ""
    organization: str = ""
    cycles: float = 0.0
    accesses: int = 0
    # First-level LLC lookup outcomes (requests that found their data in
    # *some* LLC slice count as hits).
    llc_hits: int = 0
    llc_lookups: int = 0
    responses_by_origin: Dict[str, int] = field(
        default_factory=lambda: {origin: 0 for origin in ORIGINS})
    inter_chip_bytes: int = 0
    dram_bytes: int = 0
    coherence_bytes: int = 0
    coherence_invalidations: int = 0
    flush_cycles: float = 0.0
    # Average fraction of resident LLC lines holding local vs remote data
    # (Figure 9), sampled at every kernel boundary.
    llc_local_fraction: float = 0.0
    llc_remote_fraction: float = 0.0
    # Global per-slice request counts (for LSU diagnostics).
    slice_requests: List[int] = field(default_factory=list)
    # Cycles attributed to each epoch's binding resource ("compute",
    # "llc_slice", "crossbar", "inter_chip", "dram", "latency").
    bottleneck_cycles: Dict[str, float] = field(default_factory=dict)
    kernels: List[KernelStats] = field(default_factory=list)
    # -- Run telemetry (excluded from comparable_dict): -------------------
    # Host wall-clock of the simulation (set by ``repro.sim.run.simulate``)
    # and how many epochs took the batched vs the per-access path.
    wall_seconds: float = 0.0
    fast_epochs: int = 0
    slow_epochs: int = 0
    # Wall-clock spent in the cache-probe phase of batched epochs and how
    # many of those epochs resolved via the vectorized tag-store kernel.
    probe_seconds: float = 0.0
    # Breakdown of the batched-epoch wall clock: ``solve_seconds`` is the
    # subset of ``probe_seconds`` spent inside tag-store bank solves (the
    # stack-distance kernel), ``charge_seconds`` is the accounting tail of
    # each batched epoch (traffic/latency charging after the probe phase).
    # Serial epochs sit outside both buckets.
    solve_seconds: float = 0.0
    charge_seconds: float = 0.0
    vector_epochs: int = 0
    # Batched epochs that ran the per-access probe loop instead, and the
    # subset that did so despite a vector bank being attached (a config
    # silently falling off the vector path shows up here).
    scalar_epochs: int = 0
    demotions: int = 0
    # Stacked-run telemetry: how many lanes shared this run's tag store
    # (0 for standalone runs and for lanes the stacked driver hosted in
    # their own bank), and how many driver-side bank invocations this
    # lane's epochs participated in.
    stacked_lanes: int = 0
    stacked_probe_calls: int = 0
    # Stacked rounds in which this lane's probe was resolved against a
    # reuse encoding shared with at least one other lane (the lane either
    # contributed the encoding or replayed another lane's).
    stacked_shared_streams: int = 0
    # Resilience telemetry: 1 when this lane faulted inside a stacked
    # drive and these stats come from its solo re-run; ``lane_demoted``
    # additionally marks that the re-run fell back to the scalar engine
    # because the vector kernel itself faulted.
    lane_quarantined: int = 0
    lane_demoted: int = 0
    # Kernel-contract violations the runtime sanitizer recorded during
    # this run (always 0 unless ``REPRO_SANITIZE=1``; see
    # ``repro.core.sanitize``).  A nonzero count survives even when the
    # raising ``SanitizerError`` was absorbed by a containment layer.
    sanitizer_violations: int = 0
    # Lane-batched replay telemetry: rounds in which this lane's replay
    # was fused into one lane-major kernel call with other same-stream
    # lanes, and wall-clock spent inside replay kernel passes this run
    # attributed to this lane (a subset of ``solve_seconds``).
    lane_batched_rounds: int = 0
    replay_seconds: float = 0.0
    # Wall-clock of the batched-epoch pipeline that the
    # probe/solve/charge brackets did not capture (directly measured,
    # not a computed residual) — the timing-breakdown invariant bounds
    # this at 5% of the run.
    other_seconds: float = 0.0
    # Epochs (or row batches) that demoted rows to the stream-order
    # ``_SetReplay`` interpreter; stays 0 when the vectorized
    # over-allotment drain covers every repartition epoch.
    set_replay_batches: int = 0

    @property
    def llc_hit_rate(self) -> float:
        if self.llc_lookups == 0:
            return 0.0
        return self.llc_hits / self.llc_lookups

    @property
    def llc_miss_rate(self) -> float:
        return 1.0 - self.llc_hit_rate if self.llc_lookups else 0.0

    @property
    def effective_llc_bandwidth(self) -> float:
        """LLC responses delivered per cycle (paper Figures 1c and 10)."""
        if self.cycles <= 0:
            return 0.0
        return sum(self.responses_by_origin.values()) / self.cycles

    def bandwidth_breakdown(self) -> Dict[str, float]:
        """Responses per cycle, split by origin (Figure 10 series)."""
        if self.cycles <= 0:
            return {origin: 0.0 for origin in ORIGINS}
        return {origin: count / self.cycles
                for origin, count in self.responses_by_origin.items()}

    def merge_kernel(self, kernel: KernelStats) -> None:
        self.kernels.append(kernel)
        self.cycles += kernel.cycles
        self.accesses += kernel.accesses
        self.llc_hits += kernel.llc_hits
        self.llc_lookups += kernel.llc_lookups

    def bottleneck_fractions(self) -> Dict[str, float]:
        """Fraction of (epoch) time attributed to each binding resource."""
        total = sum(self.bottleneck_cycles.values())
        if total <= 0:
            return {}
        return {resource: cycles / total
                for resource, cycles in self.bottleneck_cycles.items()}

    def dominant_bottleneck(self) -> Optional[str]:
        """The resource that bound the most epoch time, if any."""
        if not self.bottleneck_cycles:
            return None
        return max(self.bottleneck_cycles, key=self.bottleneck_cycles.get)

    @property
    def accesses_per_second(self) -> float:
        """Simulation throughput (host wall-clock accesses/sec)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.accesses / self.wall_seconds

    def bottleneck_summary(self) -> str:
        """Human-readable bottleneck digest, e.g. ``"dram 62% / compute 38%"``."""
        fractions = self.bottleneck_fractions()
        if not fractions:
            return "none"
        ranked = sorted(fractions.items(), key=lambda kv: -kv[1])
        return " / ".join(f"{name} {frac:.0%}" for name, frac in ranked)

    def summary(self) -> Dict[str, object]:
        """Flat digest of the run (for reports and CSV export)."""
        return {
            "benchmark": self.benchmark,
            "organization": self.organization,
            "cycles": self.cycles,
            "accesses": self.accesses,
            "llc_hit_rate": self.llc_hit_rate,
            "effective_llc_bandwidth": self.effective_llc_bandwidth,
            "inter_chip_mb": self.inter_chip_bytes / 1e6,
            "dram_mb": self.dram_bytes / 1e6,
            "coherence_invalidations": self.coherence_invalidations,
            "flush_cycles": self.flush_cycles,
            "llc_remote_fraction": self.llc_remote_fraction,
            "dominant_bottleneck": self.dominant_bottleneck(),
            "bottleneck_summary": self.bottleneck_summary(),
            "kernels": len(self.kernels),
            "wall_seconds": self.wall_seconds,
            "accesses_per_second": self.accesses_per_second,
            "fast_epochs": self.fast_epochs,
            "slow_epochs": self.slow_epochs,
            "vector_epochs": self.vector_epochs,
            "scalar_epochs": self.scalar_epochs,
            "demotions": self.demotions,
            "probe_seconds": self.probe_seconds,
            "solve_seconds": self.solve_seconds,
            "charge_seconds": self.charge_seconds,
            "stacked_lanes": self.stacked_lanes,
            "stacked_probe_calls": self.stacked_probe_calls,
            "stacked_shared_streams": self.stacked_shared_streams,
            "lane_quarantined": self.lane_quarantined,
            "lane_demoted": self.lane_demoted,
            "sanitizer_violations": self.sanitizer_violations,
            "lane_batched_rounds": self.lane_batched_rounds,
            "replay_seconds": self.replay_seconds,
            "other_seconds": self.other_seconds,
            "set_replay_batches": self.set_replay_batches,
        }

    def comparable_dict(self) -> Dict[str, object]:
        """Every simulated (physics) field, excluding host telemetry.

        Two runs of the same workload through different execution paths
        (batched vs per-access, serial vs parallel) must produce equal
        ``comparable_dict()``s; wall-clock and path counters are
        legitimately different and therefore excluded.
        """
        return {
            "benchmark": self.benchmark,
            "organization": self.organization,
            "cycles": self.cycles,
            "accesses": self.accesses,
            "llc_hits": self.llc_hits,
            "llc_lookups": self.llc_lookups,
            "responses_by_origin": dict(self.responses_by_origin),
            "inter_chip_bytes": self.inter_chip_bytes,
            "dram_bytes": self.dram_bytes,
            "coherence_bytes": self.coherence_bytes,
            "coherence_invalidations": self.coherence_invalidations,
            "flush_cycles": self.flush_cycles,
            "llc_local_fraction": self.llc_local_fraction,
            "llc_remote_fraction": self.llc_remote_fraction,
            "slice_requests": list(self.slice_requests),
            "bottleneck_cycles": dict(self.bottleneck_cycles),
            "kernels": [
                {
                    "name": k.name,
                    "cycles": k.cycles,
                    "accesses": k.accesses,
                    "llc_hits": k.llc_hits,
                    "llc_lookups": k.llc_lookups,
                    "organization": k.organization,
                    "reconfigured": k.reconfigured,
                    "reconfig_cycles": k.reconfig_cycles,
                    "epoch_cycles": list(k.epoch_cycles),
                }
                for k in self.kernels],
        }


def speedup(baseline: RunStats, candidate: RunStats) -> float:
    """Speedup of ``candidate`` over ``baseline`` (cycles ratio)."""
    if candidate.cycles <= 0:
        raise ValueError(
            f"candidate run {candidate.benchmark!r} under "
            f"{candidate.organization!r} recorded no cycles; "
            "cannot compute a speedup")
    if baseline.cycles <= 0:
        raise ValueError(
            f"baseline run {baseline.benchmark!r} under "
            f"{baseline.organization!r} recorded no cycles; "
            "cannot compute a speedup")
    return baseline.cycles / candidate.cycles


def harmonic_mean(values: List[float]) -> float:
    """Harmonic mean, the paper's average for speedups (Figure 8)."""
    if not values:
        raise ValueError("harmonic mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("harmonic mean requires positive values")
    return len(values) / sum(1.0 / v for v in values)
