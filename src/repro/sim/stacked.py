"""Stacked multi-configuration sweeps over one shared trace.

``simulate_stacked`` runs one benchmark under many LLC organizations
(or config variants) as *lanes* of a single cooperative drive:

* every lane gets its own :class:`~repro.sim.engine.SimulationEngine` —
  its own crossbars, ring, DRAM, page table and per-lane ``RunStats``
  charge accumulators — so the timing model never mixes lanes;
* lanes whose scaled LLC slice geometry matches share one stacked
  :class:`~repro.cache.vector.VectorBank`: their tag rows sit side by
  side on the ``caches`` axis of the SoA slot store, and one grouped
  (or staged) stack-distance solve resolves every lane's epoch probes
  in a single kernel invocation instead of one call per lane;
* the trace is generated (and memoized) once and replayed by every
  lane, so trace generation is also O(1) in the number of lanes.

The engines expose their epochs through the
:meth:`~repro.sim.engine.SimulationEngine.run_steps` generator — the
exact control flow a standalone ``run()`` drives — so each lane's
``RunStats`` physics fields are bit-identical to its standalone
``simulate()`` run; only host telemetry (wall clock, probe timing,
stacked counters) differs.  Lanes the stacked path cannot host in a
shared bank (mismatched geometry, non-LRU replacement, unvectorized
params) still run in the same cooperative drive with their own bank and
are counted as ``solo_lanes``.

Fault containment: an exception raised by one lane mid-drive (or an
armed ``lane.raise``/``kernel.solve_error`` fault site, see
:mod:`repro.resilience.faults`) *quarantines* that lane instead of
killing the co-run — the surviving lanes finish the shared drive with
their physics untouched, and each quarantined lane is then re-run solo
through the ordinary ``simulate()`` path (demoted to the scalar engine
when the vector kernel itself faulted), so one bad config degrades a
group instead of aborting it.
"""

from __future__ import annotations

import contextlib
import dataclasses
from copy import deepcopy
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..arch.config import SystemConfig
from ..arch.presets import baseline
from ..cache.vector import GroupedLaneCall, StagedLaneCall, VectorBank
from ..llc.base import LLCOrganization
from ..resilience.faults import InjectedLaneFault, KernelSolveError
from ..resilience.faults import fire as fault_fire
from ..workloads.generator import KernelTrace, TraceGenerator
from ..workloads.spec import BenchmarkSpec
from .engine import (
    BankProbe,
    EngineParams,
    ProbeGen,
    ProbeOutcome,
    SimulationEngine,
)
from .stats import RunStats


@dataclass
class StackedTelemetry:
    """How one stacked run dispatched its lanes (host telemetry)."""

    #: Total lanes simulated.
    lanes: int = 0
    #: Lanes co-resident in a shared tag store (groups of >= 2).
    stacked_lanes: int = 0
    #: Lanes that could not share a bank (geometry mismatch, non-LRU,
    #: unvectorized, or a singleton group) and ran on their own store.
    solo_lanes: int = 0
    #: Lanes that duplicated an earlier (organization, config) lane and
    #: copied its stats instead of simulating (no engine, no probes).
    duplicate_lanes: int = 0
    #: Shared banks built (one per matching-geometry group).
    banks: int = 0
    #: Successful vector-kernel calls issued by the driver.
    bank_invocations: int = 0
    #: Wall seconds spent inside those calls.
    probe_seconds: float = 0.0
    #: Whole co-run wall clock.
    wall_seconds: float = 0.0
    #: Reuse encodings built by shared bank calls (one per unique
    #: (set, tag) stream per round) and lane replays resolved against
    #: them; replays exceeding encodings is the shared path paying off.
    shared_encodings: int = 0
    shared_replays: int = 0
    #: Rounds the shared banks resolved with one lane-major batched
    #: replay call (>= 2 lanes folded into a single kernel pass), the
    #: wall seconds spent inside replay kernel passes, and how many
    #: times a bank fell back to the stream-order ``_SetReplay``
    #: interpreter (0 when the vectorized drain covers every
    #: repartition epoch).
    lane_batched_rounds: int = 0
    replay_seconds: float = 0.0
    set_replay_batches: int = 0
    #: Lane indices that faulted mid-drive and were re-run solo, and the
    #: subset whose re-run was demoted to the scalar engine because the
    #: vector kernel itself faulted.
    quarantined_lanes: List[int] = field(default_factory=list)
    demoted_lanes: List[int] = field(default_factory=list)


@dataclass
class StackedResult:
    """Per-lane stats plus the dispatch telemetry of one stacked run."""

    stats: List[RunStats] = field(default_factory=list)
    telemetry: StackedTelemetry = field(default_factory=StackedTelemetry)


def simulate_stacked(spec: BenchmarkSpec,
                     organizations: Sequence[Union[str, LLCOrganization]],
                     config: Optional[SystemConfig] = None,
                     configs: Optional[Sequence[Optional[SystemConfig]]]
                     = None,
                     scale: Optional[float] = None,
                     accesses_per_epoch: Optional[int] = None,
                     params: Optional[EngineParams] = None,
                     org_kwargs: Optional[Dict[str, object]] = None
                     ) -> StackedResult:
    """Simulate ``spec`` under every organization as stacked lanes.

    ``organizations[i]`` pairs with ``configs[i]`` when ``configs`` is
    given (a fig14-style sensitivity sweep: same organization list,
    varying configs); otherwise every lane shares ``config``.  All lane
    configs must agree on the trace shape (chip count, clusters, line
    and page size) — lanes replay one shared trace by construction.

    Returns a :class:`StackedResult` whose ``stats[i]`` is bit-identical
    (per ``RunStats.comparable_dict``) to
    ``simulate(spec, organizations[i], config=..., ...)``.
    """
    # Imported here: ``run`` re-exports this module's names at its tail,
    # so a module-level import would be circular.
    from .run import (
        DEFAULT_ACCESSES_PER_EPOCH,
        DEFAULT_SCALE,
        _note_simulate_calls,
        make_organization,
        scaled_config,
        simulate,
    )

    if not organizations:
        raise ValueError("simulate_stacked needs at least one lane")
    resolved_scale = scale if scale is not None else DEFAULT_SCALE
    density = accesses_per_epoch if accesses_per_epoch is not None \
        else DEFAULT_ACCESSES_PER_EPOCH
    if configs is not None:
        if len(configs) != len(organizations):
            raise ValueError(
                f"configs has {len(configs)} entries for "
                f"{len(organizations)} organizations")
        lane_bases = [c if c is not None else baseline() for c in configs]
    else:
        base = config if config is not None else baseline()
        lane_bases = [base] * len(organizations)
    run_cfgs = [scaled_config(c, resolved_scale) for c in lane_bases]

    shape = _trace_shape(run_cfgs[0])
    for i, rc in enumerate(run_cfgs[1:], start=1):
        if _trace_shape(rc) != shape:
            raise ValueError(
                f"lane {i} has trace shape {_trace_shape(rc)} but lane 0 "
                f"has {shape}; stacked lanes must share one trace "
                "(chip count, clusters per chip, line size, page size)")
    resolved_params = params if params is not None else EngineParams()

    telemetry = StackedTelemetry(lanes=len(organizations))

    # Duplicate-lane fast path: lanes naming the same organization under
    # an equal config replay identical physics over the one shared
    # trace, so a single engine serves all of them — the duplicates
    # copy its stats after the drive (no engine, no probes, no extra
    # encoding or replay).  Organization *instances* may carry state and
    # are never deduplicated.
    primaries: List[int] = []
    primary_of: List[int] = []
    for i, org_i in enumerate(organizations):
        match = -1
        if isinstance(org_i, str):
            for j in primaries:
                if (isinstance(organizations[j], str)
                        and organizations[j] == org_i
                        and run_cfgs[j] == run_cfgs[i]):
                    match = j
                    break
        if match < 0:
            primaries.append(i)
            primary_of.append(i)
        else:
            primary_of.append(match)
            telemetry.duplicate_lanes += 1

    # Group bank-eligible lanes by scaled tag-store geometry.  Groups of
    # one (and ineligible lanes) run with their own store.
    groups: Dict[object, List[int]] = {}
    for i in primaries:
        rc = run_cfgs[i]
        llc_cfg = rc.chip.llc_slice
        if (resolved_params.vectorized and resolved_params.batched
                and llc_cfg.replacement == "lru"):
            key: object = (llc_cfg, rc.num_chips, rc.chip.llc_slices)
        else:
            key = ("solo", i)
        groups.setdefault(key, []).append(i)
    lane_bank: Dict[int, Tuple[VectorBank, int]] = {}
    group_size: Dict[int, int] = {}
    for members in groups.values():
        if len(members) < 2:
            continue
        rc = run_cfgs[members[0]]
        total = rc.total_llc_slices
        names = [f"lane{i}.llc{c}.{s}"
                 for i in members
                 for c in range(rc.num_chips)
                 for s in range(rc.chip.llc_slices)]
        bank = VectorBank(rc.chip.llc_slice, names)
        for pos, i in enumerate(members):
            lane_bank[i] = (bank, pos * total)
            group_size[i] = len(members)
        telemetry.banks += 1
        telemetry.stacked_lanes += len(members)
    telemetry.solo_lanes = (telemetry.lanes - telemetry.stacked_lanes
                            - telemetry.duplicate_lanes)

    engine_of: Dict[int, SimulationEngine] = {}
    # What a quarantined lane's solo re-run simulates: the original name
    # for string lanes, a pristine pre-drive snapshot for organization
    # instances (the attached instance accumulates drive state).
    rerun_org: Dict[int, Union[str, LLCOrganization]] = {}
    for i in primaries:
        organization = organizations[i]
        rc = run_cfgs[i]
        if isinstance(organization, str):
            org = make_organization(organization, rc, **(org_kwargs or {}))
            rerun_org[i] = organization
        else:
            org = organization
            rerun_org[i] = deepcopy(org)
        bank, bank_base = lane_bank.get(i, (None, 0))
        engine_of[i] = SimulationEngine(
            rc, org, params=resolved_params,
            llc_bank=bank, llc_bank_base=bank_base)
    engines = [engine_of[i] for i in primaries]

    # Every lane replays the memoized trace (one generation, N replays).
    generator = TraceGenerator(
        spec,
        num_chips=run_cfgs[0].num_chips,
        clusters_per_chip=run_cfgs[0].chip.num_clusters,
        line_size=run_cfgs[0].line_size,
        page_size=run_cfgs[0].page_size,
        accesses_per_epoch_per_chip=density,
        scale=resolved_scale)
    kernels = generator.generate()

    _note_simulate_calls(len(engines))
    started = perf_counter()
    faulted = _drive(engines, kernels, spec.name, telemetry)

    # Quarantined lanes re-run solo through the ordinary simulate()
    # path — same spec, config, scale and density — so their stats are
    # bit-identical to a standalone run by construction.  A lane whose
    # fault came from the vector kernel is demoted to the scalar engine
    # (the per-access probe loop), since its vector path is the thing
    # that faulted.
    rerun_stats: Dict[int, RunStats] = {}
    for pos in sorted(faulted):
        p = primaries[pos]
        kernel_fault = isinstance(faulted[pos], KernelSolveError)
        rerun_params = resolved_params
        if kernel_fault:
            rerun_params = dataclasses.replace(
                resolved_params, vectorized=False)
        stats = simulate(spec, rerun_org[p], config=lane_bases[p],
                         scale=resolved_scale, accesses_per_epoch=density,
                         params=rerun_params, org_kwargs=org_kwargs)
        stats.lane_quarantined = 1
        telemetry.quarantined_lanes.append(p)
        if kernel_fault:
            stats.lane_demoted = 1
            telemetry.demoted_lanes.append(p)
        rerun_stats[p] = stats
    telemetry.wall_seconds = perf_counter() - started

    seen_banks = set()
    for bank, _ in lane_bank.values():
        if id(bank) in seen_banks:
            continue
        seen_banks.add(id(bank))
        telemetry.shared_encodings += bank.shared_encodings
        telemetry.shared_replays += bank.shared_replays
        telemetry.lane_batched_rounds += bank.lane_batched_rounds
        telemetry.replay_seconds += bank.replay_seconds
        telemetry.set_replay_batches += bank.set_replay_batches

    # Host wall clock is a co-run quantity; attribute it evenly across
    # all lanes (duplicates included — they ride the same wall) so the
    # per-lane throughput numbers stay meaningful.
    share = telemetry.wall_seconds / len(organizations)
    stats_list: List[RunStats] = []
    for i in range(len(organizations)):
        p = primary_of[i]
        stats = rerun_stats.get(p, engine_of[p].stats)
        if p != i:
            # A fresh copy per duplicate: callers may mutate lanes
            # independently, and the physics fields are bit-identical
            # to a standalone run of the duplicated pair by
            # construction.
            stats = deepcopy(stats)
        stats.wall_seconds = share
        if p not in rerun_stats:
            # A quarantined lane's stats come from its standalone
            # re-run; it was not co-resident in any shared store.
            stats.stacked_lanes = group_size.get(p, 0)
        stats_list.append(stats)
    return StackedResult(stats=stats_list, telemetry=telemetry)


def _trace_shape(config: SystemConfig) -> Tuple[int, int, int, int]:
    return (config.num_chips, config.chip.num_clusters,
            config.line_size, config.page_size)


def _pump(step: ProbeGen, outcome: ProbeOutcome, org_name: str
          ) -> Tuple[Optional[BankProbe], Optional[BaseException]]:
    """Resume one lane; ``(None, None)`` means it finished its trace.

    A lane that raises mid-resume (or whose armed ``lane.raise`` site
    fires) comes back as ``(None, error)`` — the quarantine verdict —
    instead of unwinding the whole co-run.
    """
    try:
        if fault_fire("lane.raise", key=org_name) is not None:
            raise InjectedLaneFault("lane.raise", key=org_name)
        return step.send(outcome), None
    except StopIteration:
        return None, None
    except Exception as error:
        return None, error


def _retire(step: ProbeGen) -> None:
    """Close a quarantined lane's generator, absorbing cleanup faults.

    The generator already failed (or is being abandoned mid-epoch); an
    exception out of its unwind must not take the surviving lanes down
    with it, so suppression here is deliberate.
    """
    with contextlib.suppress(Exception):
        step.close()


def _drive(engines: Sequence[SimulationEngine],
           kernels: Iterable[KernelTrace], benchmark: str,
           telemetry: StackedTelemetry) -> Dict[int, BaseException]:
    """Cooperatively drive every lane's generator to completion.

    Each round groups the pending probes by (bank, kind) and issues one
    bank call per group; lanes that yielded nothing this round (serial
    epochs, finished traces) simply aren't in any group.  Lanes may sit
    at different epochs (SAC splits profiling windows): probes are
    row-disjoint across lanes, so a combined call is exact regardless.

    Returns the quarantine verdicts: ``{engine position: error}`` for
    every lane that faulted mid-drive.  Surviving lanes are unaffected —
    each lane's probes stay row-disjoint and its generator is pumped
    with exactly the outcomes a standalone run would compute, so losing
    a sibling changes nothing the survivors observe.
    """
    quarantined: Dict[int, BaseException] = {}
    steps: List[ProbeGen] = [
        engine.run_steps(kernels, benchmark) for engine in engines]
    probes: List[Optional[BankProbe]] = []
    for i, step in enumerate(steps):
        probe, error = _pump(step, None, engines[i].organization.name)
        if error is not None:
            quarantined[i] = error
            _retire(step)
        probes.append(probe)
    # The per-lane loops below are deliberate round bookkeeping —
    # regrouping probe handles, charging stats, pumping generators —
    # a few dict/attr operations per lane per round.  The per-access
    # work all happens inside _invoke_group's one shared bank call.
    while True:
        groups: Dict[Tuple[int, str], List[int]] = {}
        for i, probe in enumerate(probes):  # repro: noqa(hot-loop)
            if probe is not None:
                groups.setdefault((id(probe.bank), probe.kind),
                                  []).append(i)
        if not groups:
            break
        for members in list(groups.values()):
            member_probes: List[BankProbe] = []
            for i in members:  # repro: noqa(hot-loop)
                probe = probes[i]
                assert probe is not None
                member_probes.append(probe)
            failed: Dict[int, BaseException] = {}
            try:
                outcomes, elapsed, sids = _invoke_group(member_probes)
            except Exception as group_error:
                # The shared path faulted before touching bank state
                # (the injected site fires pre-dispatch; a real fault
                # mid-solve is raised by the kernel before results are
                # committed).  Re-resolve each member alone to pin the
                # failure on specific lanes; the rest keep their round.
                outcomes, elapsed, failed = _solo_fallback(
                    member_probes, group_error)
                sids = None
            # Lane-major round accounting: the per-lane charge shares
            # and shared-stream verdicts are computed as vector gathers
            # over the member axis, so the pump loop below only scatters
            # precomputed scalars into each lane's RunStats.
            resolved = np.array([o is not None  # repro: noqa(hot-loop)
                                 for o in outcomes], dtype=bool)
            if resolved.any():
                telemetry.bank_invocations += 1
            telemetry.probe_seconds += elapsed
            sizes = np.array([p.addrs.shape[0]  # repro: noqa(hot-loop)
                              for p in member_probes], dtype=np.int64)
            total = int(sizes.sum())
            shares = elapsed * sizes / total if total \
                else np.zeros(len(members))
            shared = np.zeros(len(members), dtype=bool)
            if sids is not None:
                sid_np = np.array(sids, dtype=np.int64)
                per_sid = np.bincount(sid_np[resolved],
                                      minlength=int(sid_np.max()) + 1)
                shared = resolved & (per_sid[sid_np] >= 2)
            for pos, (i, outcome) in enumerate(  # repro: noqa(hot-loop)
                    zip(members, outcomes)):
                if pos in failed:
                    quarantined[i] = failed[pos]
                    _retire(steps[i])
                    probes[i] = None
                    continue
                stats = engines[i].stats
                stats.stacked_probe_calls += 1
                if shared[pos]:
                    stats.stacked_shared_streams += 1
                if total:
                    stats.probe_seconds += float(shares[pos])
                    stats.solve_seconds += float(shares[pos])
                next_probe, error = _pump(
                    steps[i], outcome, engines[i].organization.name)
                if error is not None:
                    quarantined[i] = error
                    _retire(steps[i])
                probes[i] = next_probe
    return quarantined


def _solo_fallback(probes: List[BankProbe], group_error: BaseException
                   ) -> Tuple[List[ProbeOutcome], float,
                              Dict[int, BaseException]]:
    """Re-resolve each probe of a failed group call individually.

    Probes that still fail are reported (position -> error, with the
    original shared-path ``group_error`` attached as context) so the
    driver can quarantine exactly the faulting lanes; the others get
    their ordinary outcomes and the round proceeds.
    """
    outcomes: List[ProbeOutcome] = []
    failed: Dict[int, BaseException] = {}
    started = perf_counter()
    for pos, probe in enumerate(probes):
        try:
            outcomes.append(probe.invoke())
        except Exception as error:
            error.__context__ = group_error
            outcomes.append(None)
            failed[pos] = error
    return outcomes, perf_counter() - started, failed


def _arrays_equal(a: Optional[np.ndarray], b: Optional[np.ndarray]) -> bool:
    if a is None or b is None:
        return a is b
    return a is b or bool(np.array_equal(a, b))


def _same_stream(a: BankProbe, b: BankProbe) -> bool:
    """True when two probes carry element-identical lane-local streams.

    Lanes replaying the memoized trace at the same epoch usually share
    the very array objects, so the identity fast path makes this cheap;
    lanes sitting at different epochs (SAC profiling splits) fail on
    shape before any element compare.
    """
    if not (_arrays_equal(a.addrs, b.addrs)
            and _arrays_equal(a.writes, b.writes)
            and _arrays_equal(a.idx0, b.idx0)):
        return False
    if a.kind == "grouped":
        return True
    return (_arrays_equal(a.part0, b.part0)
            and _arrays_equal(a.two_stage, b.two_stage)
            and _arrays_equal(a.idx1, b.idx1)
            and _arrays_equal(a.part1, b.part1))


def _invoke_group(probes: List[BankProbe]
                  ) -> Tuple[List[ProbeOutcome], float,
                             Optional[List[int]]]:
    """Resolve one (bank, kind) group with one shared-stream bank call.

    Member probes are labelled with stream ids (equal ids <=>
    element-identical lane-local streams) and handed to the bank's
    shared entry point, which encodes each unique stream once and
    replays it per lane.  Per-lane ``None`` outcomes send just those
    lanes to their per-access fallback.  Returns the per-probe stream
    ids alongside the outcomes (``None`` for single-probe rounds).
    """
    started = perf_counter()
    if len(probes) == 1:
        outcome = probes[0].invoke()
        return [outcome], perf_counter() - started, None
    # Armed kernel.solve_error sites fire here, *before* any bank call
    # touches shared state, so the driver's solo fallback can replay the
    # round from scratch.  (Single-probe rounds hit the same site inside
    # ``BankProbe.invoke``.)
    for p in probes:
        if fault_fire("kernel.solve_error", key=p.fault_key) is not None:
            raise KernelSolveError("kernel.solve_error", key=p.fault_key)
    first = probes[0]
    bank = first.bank
    sids: List[int] = []
    reps: List[BankProbe] = []
    for p in probes:
        for s, rep in enumerate(reps):
            if _same_stream(p, rep):
                sids.append(s)
                break
        else:
            sids.append(len(reps))
            reps.append(p)
    outcomes: List[ProbeOutcome]
    if first.kind == "grouped":
        gcalls = [GroupedLaneCall(p.lane, p.idx0, p.addrs, p.writes, sid)
                  for p, sid in zip(probes, sids)]
        outcomes = list(bank.access_many_grouped_shared(gcalls))
        return outcomes, perf_counter() - started, sids
    scalls: List[StagedLaneCall] = []
    for p, sid in zip(probes, sids):
        assert p.part0 is not None and p.two_stage is not None \
            and p.idx1 is not None and p.part1 is not None
        scalls.append(StagedLaneCall(p.lane, p.addrs, p.writes, p.idx0,
                                     p.part0, p.two_stage, p.idx1,
                                     p.part1, sid))
    staged_list = bank.access_many_staged_shared(scalls)
    outcomes = [p.localize(res)
                for p, res in zip(probes, staged_list)]
    return outcomes, perf_counter() - started, sids
