"""Stacked multi-configuration sweeps over one shared trace.

``simulate_stacked`` runs one benchmark under many LLC organizations
(or config variants) as *lanes* of a single cooperative drive:

* every lane gets its own :class:`~repro.sim.engine.SimulationEngine` —
  its own crossbars, ring, DRAM, page table and per-lane ``RunStats``
  charge accumulators — so the timing model never mixes lanes;
* lanes whose scaled LLC slice geometry matches share one stacked
  :class:`~repro.cache.vector.VectorBank`: their tag rows sit side by
  side on the ``caches`` axis of the SoA slot store, and one grouped
  (or staged) stack-distance solve resolves every lane's epoch probes
  in a single kernel invocation instead of one call per lane;
* the trace is generated (and memoized) once and replayed by every
  lane, so trace generation is also O(1) in the number of lanes.

The engines expose their epochs through the
:meth:`~repro.sim.engine.SimulationEngine.run_steps` generator — the
exact control flow a standalone ``run()`` drives — so each lane's
``RunStats`` physics fields are bit-identical to its standalone
``simulate()`` run; only host telemetry (wall clock, probe timing,
stacked counters) differs.  Lanes the stacked path cannot host in a
shared bank (mismatched geometry, non-LRU replacement, unvectorized
params) still run in the same cooperative drive with their own bank and
are counted as ``solo_lanes``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..arch.config import SystemConfig
from ..arch.presets import baseline
from ..cache.vector import VectorBank
from ..llc.base import LLCOrganization
from ..workloads.generator import KernelTrace, TraceGenerator
from ..workloads.spec import BenchmarkSpec
from .engine import (
    BankProbe,
    EngineParams,
    ProbeGen,
    ProbeOutcome,
    SimulationEngine,
)
from .stats import RunStats


@dataclass
class StackedTelemetry:
    """How one stacked run dispatched its lanes (host telemetry)."""

    #: Total lanes simulated.
    lanes: int = 0
    #: Lanes co-resident in a shared tag store (groups of >= 2).
    stacked_lanes: int = 0
    #: Lanes that could not share a bank (geometry mismatch, non-LRU,
    #: unvectorized, or a singleton group) and ran on their own store.
    solo_lanes: int = 0
    #: Shared banks built (one per matching-geometry group).
    banks: int = 0
    #: Successful vector-kernel calls issued by the driver.
    bank_invocations: int = 0
    #: Wall seconds spent inside those calls.
    probe_seconds: float = 0.0
    #: Whole co-run wall clock.
    wall_seconds: float = 0.0


@dataclass
class StackedResult:
    """Per-lane stats plus the dispatch telemetry of one stacked run."""

    stats: List[RunStats] = field(default_factory=list)
    telemetry: StackedTelemetry = field(default_factory=StackedTelemetry)


def simulate_stacked(spec: BenchmarkSpec,
                     organizations: Sequence[Union[str, LLCOrganization]],
                     config: Optional[SystemConfig] = None,
                     configs: Optional[Sequence[Optional[SystemConfig]]]
                     = None,
                     scale: Optional[float] = None,
                     accesses_per_epoch: Optional[int] = None,
                     params: Optional[EngineParams] = None,
                     org_kwargs: Optional[Dict[str, object]] = None
                     ) -> StackedResult:
    """Simulate ``spec`` under every organization as stacked lanes.

    ``organizations[i]`` pairs with ``configs[i]`` when ``configs`` is
    given (a fig14-style sensitivity sweep: same organization list,
    varying configs); otherwise every lane shares ``config``.  All lane
    configs must agree on the trace shape (chip count, clusters, line
    and page size) — lanes replay one shared trace by construction.

    Returns a :class:`StackedResult` whose ``stats[i]`` is bit-identical
    (per ``RunStats.comparable_dict``) to
    ``simulate(spec, organizations[i], config=..., ...)``.
    """
    # Imported here: ``run`` re-exports this module's names at its tail,
    # so a module-level import would be circular.
    from .run import (
        DEFAULT_ACCESSES_PER_EPOCH,
        DEFAULT_SCALE,
        _note_simulate_calls,
        make_organization,
        scaled_config,
    )

    if not organizations:
        raise ValueError("simulate_stacked needs at least one lane")
    resolved_scale = scale if scale is not None else DEFAULT_SCALE
    density = accesses_per_epoch if accesses_per_epoch is not None \
        else DEFAULT_ACCESSES_PER_EPOCH
    if configs is not None:
        if len(configs) != len(organizations):
            raise ValueError(
                f"configs has {len(configs)} entries for "
                f"{len(organizations)} organizations")
        lane_bases = [c if c is not None else baseline() for c in configs]
    else:
        base = config if config is not None else baseline()
        lane_bases = [base] * len(organizations)
    run_cfgs = [scaled_config(c, resolved_scale) for c in lane_bases]

    shape = _trace_shape(run_cfgs[0])
    for i, rc in enumerate(run_cfgs[1:], start=1):
        if _trace_shape(rc) != shape:
            raise ValueError(
                f"lane {i} has trace shape {_trace_shape(rc)} but lane 0 "
                f"has {shape}; stacked lanes must share one trace "
                "(chip count, clusters per chip, line size, page size)")
    resolved_params = params if params is not None else EngineParams()

    telemetry = StackedTelemetry(lanes=len(organizations))

    # Group bank-eligible lanes by scaled tag-store geometry.  Groups of
    # one (and ineligible lanes) run with their own store.
    groups: Dict[object, List[int]] = {}
    for i, rc in enumerate(run_cfgs):
        llc_cfg = rc.chip.llc_slice
        if (resolved_params.vectorized and resolved_params.batched
                and llc_cfg.replacement == "lru"):
            key: object = (llc_cfg, rc.num_chips, rc.chip.llc_slices)
        else:
            key = ("solo", i)
        groups.setdefault(key, []).append(i)
    lane_bank: Dict[int, Tuple[VectorBank, int]] = {}
    group_size: Dict[int, int] = {}
    for members in groups.values():
        if len(members) < 2:
            continue
        rc = run_cfgs[members[0]]
        total = rc.total_llc_slices
        names = [f"lane{i}.llc{c}.{s}"
                 for i in members
                 for c in range(rc.num_chips)
                 for s in range(rc.chip.llc_slices)]
        bank = VectorBank(rc.chip.llc_slice, names)
        for pos, i in enumerate(members):
            lane_bank[i] = (bank, pos * total)
            group_size[i] = len(members)
        telemetry.banks += 1
        telemetry.stacked_lanes += len(members)
    telemetry.solo_lanes = telemetry.lanes - telemetry.stacked_lanes

    engines: List[SimulationEngine] = []
    for i, organization in enumerate(organizations):
        rc = run_cfgs[i]
        if isinstance(organization, str):
            org = make_organization(organization, rc, **(org_kwargs or {}))
        else:
            org = organization
        bank, bank_base = lane_bank.get(i, (None, 0))
        engines.append(SimulationEngine(
            rc, org, params=resolved_params,
            llc_bank=bank, llc_bank_base=bank_base))

    # Every lane replays the memoized trace (one generation, N replays).
    generator = TraceGenerator(
        spec,
        num_chips=run_cfgs[0].num_chips,
        clusters_per_chip=run_cfgs[0].chip.num_clusters,
        line_size=run_cfgs[0].line_size,
        page_size=run_cfgs[0].page_size,
        accesses_per_epoch_per_chip=density,
        scale=resolved_scale)
    kernels = generator.generate()

    _note_simulate_calls(len(engines))
    started = perf_counter()
    _drive(engines, kernels, spec.name, telemetry)
    telemetry.wall_seconds = perf_counter() - started

    # Host wall clock is a co-run quantity; attribute it evenly so the
    # per-lane throughput numbers stay meaningful.
    share = telemetry.wall_seconds / len(engines)
    for i, engine in enumerate(engines):
        engine.stats.wall_seconds = share
        engine.stats.stacked_lanes = group_size.get(i, 0)
    return StackedResult(stats=[e.stats for e in engines],
                         telemetry=telemetry)


def _trace_shape(config: SystemConfig) -> Tuple[int, int, int, int]:
    return (config.num_chips, config.chip.num_clusters,
            config.line_size, config.page_size)


def _advance(step: ProbeGen, outcome: ProbeOutcome) -> Optional[BankProbe]:
    """Resume one lane; ``None`` means the lane finished its trace."""
    try:
        return step.send(outcome)
    except StopIteration:
        return None


def _drive(engines: Sequence[SimulationEngine],
           kernels: Iterable[KernelTrace], benchmark: str,
           telemetry: StackedTelemetry) -> None:
    """Cooperatively drive every lane's generator to completion.

    Each round groups the pending probes by (bank, kind) and issues one
    bank call per group; lanes that yielded nothing this round (serial
    epochs, finished traces) simply aren't in any group.  Lanes may sit
    at different epochs (SAC splits profiling windows): probes are
    row-disjoint across lanes, so a combined call is exact regardless.
    """
    steps: List[ProbeGen] = [
        engine.run_steps(kernels, benchmark) for engine in engines]
    probes: List[Optional[BankProbe]] = [
        _advance(step, None) for step in steps]
    while True:
        groups: Dict[Tuple[int, str], List[int]] = {}
        for i, probe in enumerate(probes):
            if probe is not None:
                groups.setdefault((id(probe.bank), probe.kind),
                                  []).append(i)
        if not groups:
            break
        for members in list(groups.values()):
            member_probes: List[BankProbe] = []
            for i in members:
                probe = probes[i]
                assert probe is not None
                member_probes.append(probe)
            outcomes, elapsed = _invoke_group(member_probes)
            if outcomes[0] is not None:
                telemetry.bank_invocations += 1
            telemetry.probe_seconds += elapsed
            total = sum(p.addrs.shape[0] for p in member_probes)
            for i, probe, outcome in zip(members, member_probes, outcomes):
                stats = engines[i].stats
                stats.stacked_probe_calls += 1
                if total:
                    stats.probe_seconds += \
                        elapsed * probe.addrs.shape[0] / total
                probes[i] = _advance(steps[i], outcome)


def _invoke_group(probes: List[BankProbe]
                  ) -> Tuple[List[ProbeOutcome], float]:
    """Resolve one (bank, kind) group with a single bank call.

    Probe arrays are concatenated lane-major (each lane's stream order
    is preserved within its rows, and lanes never share a row), the
    bank is called once with every lane's range, and the combined
    result is sliced back per lane.  A ``None`` from the bank sends
    every member lane to its per-access fallback, exactly as a
    standalone decline would.
    """
    started = perf_counter()
    if len(probes) == 1:
        outcome = probes[0].invoke()
        return [outcome], perf_counter() - started
    first = probes[0]
    bank = first.bank
    sizes = [int(p.addrs.shape[0]) for p in probes]
    bounds = np.cumsum([0] + sizes).tolist()
    addrs = np.concatenate([p.addrs for p in probes])
    writes = np.concatenate([p.writes for p in probes])
    idx0 = np.concatenate([p.abs_idx0() for p in probes])
    lanes = [p.lane for p in probes]
    outcomes: List[ProbeOutcome]
    if first.kind == "grouped":
        batch = bank.access_many_grouped(idx0, addrs, writes, lanes=lanes)
        if batch is None:
            return [None] * len(probes), perf_counter() - started
        outcomes = []
        for k in range(len(probes)):
            a, b = bounds[k], bounds[k + 1]
            outcomes.append(batch._replace(
                hits=batch.hits[a:b],
                evicted_addr=batch.evicted_addr[a:b],
                evicted_dirty=batch.evicted_dirty[a:b],
                sector_miss=(batch.sector_miss[a:b]
                             if batch.sector_miss is not None else None)))
        return outcomes, perf_counter() - started
    part0_parts: List[np.ndarray] = []
    two_stage_parts: List[np.ndarray] = []
    part1_parts: List[np.ndarray] = []
    for p in probes:
        assert p.part0 is not None and p.two_stage is not None \
            and p.part1 is not None
        part0_parts.append(p.part0)
        two_stage_parts.append(p.two_stage)
        part1_parts.append(p.part1)
    part0 = np.concatenate(part0_parts)
    two_stage = np.concatenate(two_stage_parts)
    idx1 = np.concatenate([p.abs_idx1() for p in probes])
    part1 = np.concatenate(part1_parts)
    staged = bank.access_many_staged(addrs, writes, idx0, part0,
                                     two_stage, idx1, part1, lanes=lanes)
    if staged is None:
        return [None] * len(probes), perf_counter() - started
    outcomes = []
    for k, probe in enumerate(probes):
        a, b = bounds[k], bounds[k + 1]
        lo, hi = probe.lane
        sel = (staged.evicted_cache >= lo) & (staged.evicted_cache < hi)
        outcomes.append(staged._replace(
            hit_stage=staged.hit_stage[a:b],
            evicted_cache=staged.evicted_cache[sel] - probe.base,
            evicted_addr=staged.evicted_addr[sel]))
    return outcomes, perf_counter() - started
