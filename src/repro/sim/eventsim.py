"""Event-driven validation engine.

The primary engine (:mod:`repro.sim.engine`) settles time per *epoch*:
it charges bytes to resources and takes the bottleneck's service time.
This module provides an independent, finer-grained timing model to
validate that choice: an open-loop FCFS **queueing-network replay**.

Every access becomes a request injected at its issue time (spread by the
workload's compute rate) and then traverses its resource path — the
requesting chip's crossbar port, ring segments, the serving LLC slice,
and on a miss the home DRAM channel — where each resource is a
single-server FCFS queue with service time ``bytes / bandwidth``::

    depart(r) = max(arrive, free_until[r]) + service
    free_until[r] = depart(r)

The run's cycle count is the last departure.  Caches are the same
functional models as the primary engine, so hit/miss behaviour is
identical; only the *timing* model differs.  Agreement between the two
models on which LLC organization wins (and roughly by how much) is the
validation criterion — see ``benchmarks/test_validation.py``.

Scope: fixed organizations (memory-side / SM-side / static / dynamic);
SAC's reconfiguration and coherence flush costs are epoch-level policies
and are validated separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    NoReturn,
    Optional,
    Sequence,
    Tuple,
)

from ..arch.config import SystemConfig
from ..cache.cache import PartitionFullError
from ..cache.waycache import make_cache
from ..llc.base import LLCOrganization
from ..memory.mapping import AddressMapping
from ..memory.pages import PageTable
from ..workloads.generator import KernelTrace

if TYPE_CHECKING:  # pragma: no cover
    from ..workloads.spec import BenchmarkSpec


@dataclass
class EventStats:
    """Outcome of one event-driven replay."""

    cycles: float = 0.0
    accesses: int = 0
    llc_hits: int = 0
    total_latency: float = 0.0
    # Busy time per resource class (diagnostics).
    busy: Dict[str, float] = None

    @property
    def llc_hit_rate(self) -> float:
        return self.llc_hits / self.accesses if self.accesses else 0.0

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.accesses if self.accesses else 0.0


class _Server:
    """A single-server FCFS queue."""

    __slots__ = ("bandwidth", "free_until", "busy")

    def __init__(self, bandwidth: float) -> None:
        self.bandwidth = bandwidth
        self.free_until = 0.0
        self.busy = 0.0

    def serve(self, arrive: float, num_bytes: float) -> float:
        service = num_bytes / self.bandwidth
        start = arrive if arrive > self.free_until else self.free_until
        depart = start + service
        self.free_until = depart
        self.busy += service
        return depart


class EventDrivenEngine:
    """Queueing-network replay of a trace under one LLC organization."""

    REQUEST_BYTES = 32.0
    RESPONSE_BYTES = 144.0

    def __init__(self, config: SystemConfig,
                 organization: LLCOrganization) -> None:
        self.config = config
        self.organization = organization
        chip = config.chip
        self.line_size = chip.llc_slice.line_size
        self.page_table = PageTable(chip.memory.page_size, config.num_chips,
                                    policy=config.page_allocation)
        self.mapping = AddressMapping(
            line_size=self.line_size, slices_per_chip=chip.llc_slices,
            channels_per_chip=chip.memory.channels_per_chip)
        self.llc = [[make_cache(chip.llc_slice, name=f"ev{c}.{s}")
                     for s in range(chip.llc_slices)]
                    for c in range(config.num_chips)]
        # Resource servers.
        port_bw = chip.noc.port_bw_bytes_per_cycle
        self._noc_ports = [
            [_Server(port_bw) for _ in range(chip.noc.output_ports)]
            for _ in range(config.num_chips)]
        pair_bw = config.inter_chip.pair_bw(config.num_chips)
        self._segments: Dict[Tuple[int, int], _Server] = {}
        self._pair_bw = pair_bw
        slice_bw = chip.llc_slice_bw_bytes_per_cycle
        self._slices = [
            [_Server(slice_bw) for _ in range(chip.llc_slices)]
            for _ in range(config.num_chips)]
        channel_bw = chip.memory.channel_bw_bytes_per_cycle
        self._channels = [
            [_Server(channel_bw) for _ in range(chip.memory.channels_per_chip)]
            for _ in range(config.num_chips)]
        organization.attach(self)

    # Minimal EngineContext surface for organizations that need it.
    def slice_of(self, addr: int) -> int:
        return self.mapping.llc_slice_of(addr)

    def set_llc_partitioning(self, ways: Optional[Dict[int, int]]) -> None:
        for chip_slices in self.llc:
            for cache in chip_slices:
                cache.set_partition(ways)

    @property
    def stats(self) -> NoReturn:
        # Dynamic LLC reads traffic counters; not tracked here.
        raise AttributeError("event engine does not expose RunStats")

    def _segment(self, src: int, dst: int) -> _Server:
        server = self._segments.get((src, dst))
        if server is None:
            server = _Server(self._pair_bw)
            self._segments[(src, dst)] = server
        return server

    def _ring_path(self, src: int, dst: int) -> List[Tuple[int, int]]:
        chips = self.config.num_chips
        if src == dst:
            return []
        if self.config.inter_chip.topology == "fully-connected":
            return [(src, dst)]
        forward = (dst - src) % chips
        backward = (src - dst) % chips
        step = 1 if forward <= backward else -1
        path = []
        node = src
        while node != dst:
            nxt = (node + step) % chips
            path.append((node, nxt))
            node = nxt
        return path

    # -- Replay ------------------------------------------------------------

    def run(self, kernels: Iterable[KernelTrace]) -> EventStats:
        stats = EventStats(busy={})
        now = 0.0
        finish = 0.0
        software = self.config.coherence.protocol == "software"
        for kernel in kernels:
            for epoch in kernel.epochs:
                n = len(epoch)
                rate = n / epoch.compute_cycles  # injections per cycle
                chips = epoch.chips.tolist()
                addrs = epoch.addrs.tolist()
                writes = epoch.writes.tolist()
                for i in range(n):
                    issue = now + i / rate
                    depart = self._request(issue, chips[i], addrs[i],
                                           writes[i], stats)
                    if depart > finish:
                        finish = depart
                    stats.total_latency += depart - issue
                    stats.accesses += 1
                # The next epoch injects after this one's compute time
                # and after the system drained (closed kernel boundary).
                now = max(now + epoch.compute_cycles, finish)
            if software and self.organization.flush_partitions():
                # Software coherence: write back + invalidate the LLC at
                # the kernel boundary (whole-cache flush; the per-
                # partition distinction does not change the event model's
                # cold-restart effect materially).
                finish = max(finish, self._flush(now))
                now = max(now, finish)
        stats.cycles = max(now, finish)
        stats.busy = self._collect_busy()
        return stats

    def _flush(self, now: float) -> float:
        """Flush every LLC slice, serializing dirty write-backs at DRAM."""
        done = now
        for chip in range(self.config.num_chips):
            for slice_index, cache in enumerate(self.llc[chip]):
                dirty_lines = [addr for addr, line in cache.resident_lines()
                               if line.dirty]
                cache.flush()
                for addr in dirty_lines:
                    home = self.page_table.lookup(addr)
                    if home is None:
                        home = chip
                    channel = self.mapping.channel_of(addr)
                    t = self._channels[home][channel].serve(
                        now, self.line_size)
                    if t > done:
                        done = t
        return done

    def _request(self, issue: float, chip: int, addr: int, is_write: bool,
                 stats: EventStats) -> float:
        home = self.page_table.home_chip(addr, chip)
        plan = self.organization.plan(chip, home)
        slice_index = self.mapping.llc_slice_of(addr)
        req = self.REQUEST_BYTES + (32.0 if is_write else 0.0)
        rsp = self.RESPONSE_BYTES
        t = issue
        hit = False
        last = chip
        for stage in plan.stages:
            serve = stage.chip
            # Request leg: ring segments when crossing chips, then the
            # serving chip's NoC port into the LLC slice.
            for src, dst in self._ring_path(last, serve):
                t = self._segment(src, dst).serve(t, req)
            t = self._noc_ports[serve][slice_index].serve(t, req)
            t = self._slices[serve][slice_index].serve(t, self.line_size)
            cache = self.llc[serve][slice_index]
            try:
                result = cache.access(addr, is_write,
                                      partition=stage.partition,
                                      allocate_on_miss=stage.allocate)
            except PartitionFullError:
                result = None
            if result is not None and result.hit:
                hit = True
                last = serve
                break
            last = serve
        if hit:
            stats.llc_hits += 1
        else:
            # Miss: traverse to the home chip's DRAM channel.
            for src, dst in self._ring_path(last, home):
                t = self._segment(src, dst).serve(t, req)
            channel = self.mapping.channel_of(addr)
            t = self._channels[home][channel].serve(t, req + rsp)
            last = home
        # Response leg back to the requester.
        for src, dst in self._ring_path(last, chip):
            t = self._segment(src, dst).serve(t, rsp)
        t = self._noc_ports[chip][slice_index % len(self._noc_ports[chip])] \
            .serve(t, rsp)
        return t

    def _collect_busy(self) -> Dict[str, float]:
        busy = {"noc": 0.0, "ring": 0.0, "llc": 0.0, "dram": 0.0}
        for ports in self._noc_ports:
            busy["noc"] += sum(s.busy for s in ports)
        busy["ring"] += sum(s.busy for s in self._segments.values())
        for slices in self._slices:
            busy["llc"] += sum(s.busy for s in slices)
        for channels in self._channels:
            busy["dram"] += sum(s.busy for s in channels)
        return busy


def validate_against_epoch_model(
        spec: "BenchmarkSpec",
        organizations: Sequence[str] = ("memory-side", "sm-side"),
        config: Optional[SystemConfig] = None,
        scale: float = 1.0 / 16,
        accesses_per_epoch: int = 2048) -> Dict[str, Tuple[float, float]]:
    """Run both timing models on the same trace; return their cycles.

    Returns ``{org: (epoch_cycles, event_cycles)}``.  The validation
    criterion is *ordering agreement*: both models should prefer the
    same organization.
    """
    from ..arch.presets import baseline
    from ..workloads.generator import TraceGenerator
    from .engine import SimulationEngine
    from .run import make_organization, scaled_config

    run_config = scaled_config(config or baseline(), scale)
    results = {}
    for name in organizations:
        generator = TraceGenerator(
            spec, num_chips=run_config.num_chips,
            clusters_per_chip=run_config.chip.num_clusters,
            line_size=run_config.line_size,
            page_size=run_config.page_size,
            accesses_per_epoch_per_chip=accesses_per_epoch, scale=scale)
        epoch_engine = SimulationEngine(
            run_config, make_organization(name, run_config))
        epoch_stats = epoch_engine.run(generator.kernels(),
                                       benchmark=spec.name)
        generator2 = TraceGenerator(
            spec, num_chips=run_config.num_chips,
            clusters_per_chip=run_config.chip.num_clusters,
            line_size=run_config.line_size,
            page_size=run_config.page_size,
            accesses_per_epoch_per_chip=accesses_per_epoch, scale=scale)
        event_engine = EventDrivenEngine(
            run_config, make_organization(name, run_config))
        event_stats = event_engine.run(generator2.kernels())
        results[name] = (epoch_stats.cycles, event_stats.cycles)
    return results
