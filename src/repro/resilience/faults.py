"""Deterministic fault injection for the execution layer.

Every recovery path in the supervised runner and the stacked driver —
worker respawns, task retries, lane quarantine, torn-payload
quarantine, vector-kernel demotion — must be exercised by ordinary
tier-1 tests, and real nondeterminism (killing processes at random,
corrupting files with real races) would make those tests flaky by
construction.  A :class:`FaultPlan` instead *arms* named sites in the
production code to fire on the Nth hit of that site, so each failure is
injected at a precise, reproducible point of an otherwise ordinary run.

Site catalog (see ``docs/resilience.md``):

``worker.crash``
    Checked at the start of every supervised pool task (worker side).
    Firing hard-kills the worker process (``os._exit``), which the
    parent observes as a broken pool.
``worker.hang``
    Checked at the start of every supervised pool task.  Firing sleeps
    for the entry's value (default ``30.0`` seconds), long enough to
    trip any reasonable ``REPRO_TASK_TIMEOUT``, but finite so tests
    never leak a truly stuck process.
``lane.raise``
    Checked by the stacked driver each time it pumps a lane, keyed by
    the lane's organization name.  Firing raises
    :class:`InjectedLaneFault` from inside the cooperative drive,
    exercising lane quarantine.
``kernel.solve_error``
    Checked immediately before every vector-bank invocation, keyed by
    the owning engine's organization name.  Firing raises
    :class:`KernelSolveError`, the marker the stacked driver uses to
    demote a quarantined lane's solo re-run to the scalar engine.
``cache.torn_payload``
    Checked after every successful :meth:`ResultCache.store`, keyed by
    the cache key.  Firing truncates the just-written payload,
    simulating a torn write that the next load must quarantine.

Arming.  ``REPRO_FAULTS`` holds a comma-separated list of entries::

    site[:key][@nth][*count][=value]

``site`` must be in :data:`SITES`.  ``key`` restricts the entry to
hits carrying that exact key (no key matches every hit).  ``nth``
(default 1) is the 1-based hit on which the entry starts firing;
``count`` (default 1) is how many consecutive hits fire (a bare ``*``
means every hit from ``nth`` on); ``value`` is a site-specific float
(e.g. the hang duration).  Programmatic arming uses
:func:`install`/:func:`armed` with a :class:`FaultPlan`, which takes
precedence over the environment.

Hit counters are per-process.  The process-fatal worker sites
(``worker.crash``/``worker.hang``) additionally honour a shared marker
directory (``REPRO_FAULT_STATE``): the first process to fire a given
entry claims it with an atomically created marker file, so a respawned
worker re-running the same task does not crash again forever.
"""

from __future__ import annotations

import hashlib
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

#: Every site a :class:`FaultPlan` may arm.
SITES = frozenset({
    "worker.crash",
    "worker.hang",
    "lane.raise",
    "kernel.solve_error",
    "cache.torn_payload",
})

#: Sites whose firings are coordinated across processes through the
#: marker directory (they kill or stall the process that fires them, so
#: a per-process counter alone would re-fire in every respawned worker).
_MARKED_SITES = frozenset({"worker.crash", "worker.hang"})

#: Site-specific default values returned by :meth:`FaultPlan.fire` when
#: the armed entry carries no explicit ``=value``.
_DEFAULT_VALUES = {"worker.hang": 30.0}


class InjectedFault(RuntimeError):
    """Base class of every deliberately injected failure."""

    def __init__(self, site: str, key: Optional[str] = None) -> None:
        self.site = site
        self.key = key
        suffix = f" (key={key!r})" if key is not None else ""
        super().__init__(f"injected fault at site {site!r}{suffix}")


class InjectedLaneFault(InjectedFault):
    """Raised mid-drive by an armed ``lane.raise`` site."""


class KernelSolveError(InjectedFault):
    """Raised by an armed ``kernel.solve_error`` site.

    The stacked driver treats this (and any exception raised while
    resolving a vector-bank invocation) as a kernel fault: the
    quarantined lane's solo re-run is demoted to the scalar engine.
    """


@dataclass
class FaultEntry:
    """One armed site of a :class:`FaultPlan`."""

    site: str
    key: Optional[str] = None
    #: 1-based hit on which the entry starts firing.
    nth: int = 1
    #: Consecutive firing hits; ``None`` means unbounded.
    count: Optional[int] = 1
    #: Site-specific payload handed back by :meth:`FaultPlan.fire`.
    value: Optional[float] = None
    #: Process-local hit counter (not part of the armed identity).
    hits: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; choose from "
                f"{sorted(SITES)}")
        if self.nth < 1:
            raise ValueError(f"nth must be >= 1, got {self.nth}")
        if self.count is not None and self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")

    @classmethod
    def parse(cls, text: str) -> "FaultEntry":
        """Parse one ``site[:key][@nth][*count][=value]`` entry."""
        spec = text.strip()
        value: Optional[float] = None
        count: Optional[int] = 1
        nth = 1
        try:
            if "=" in spec:
                spec, raw = spec.rsplit("=", 1)
                value = float(raw)
            if "*" in spec:
                spec, raw = spec.rsplit("*", 1)
                count = None if raw == "" else int(raw)
            if "@" in spec:
                spec, raw = spec.rsplit("@", 1)
                nth = int(raw)
        except ValueError as error:
            raise ValueError(
                f"malformed fault entry {text!r}: {error}") from None
        key: Optional[str] = None
        if ":" in spec:
            spec, key = spec.split(":", 1)
        return cls(site=spec, key=key, nth=nth, count=count, value=value)

    def matches(self, site: str, key: Optional[str]) -> bool:
        return self.site == site and (self.key is None or self.key == key)


class FaultPlan:
    """A set of armed fault entries with deterministic firing."""

    def __init__(self, entries: List[FaultEntry],
                 state_dir: Optional[Union[str, Path]] = None) -> None:
        self.entries = entries
        self.state_dir = Path(state_dir) if state_dir else None
        #: Fired events (site, key, firing index) for observability.
        self.fired: List[Tuple[str, Optional[str], int]] = []

    @classmethod
    def parse(cls, text: str,
              state_dir: Optional[Union[str, Path]] = None) -> "FaultPlan":
        """Build a plan from a ``REPRO_FAULTS``-style spec string."""
        entries = [FaultEntry.parse(part)
                   for part in text.split(",") if part.strip()]
        return cls(entries, state_dir=state_dir)

    def fire(self, site: str, key: Optional[str] = None) -> Optional[float]:
        """Record one hit of ``site``; return the entry value if it fires.

        Entries are consulted in arming order; the first entry whose
        firing window covers this hit wins (later matching entries are
        not charged a hit for this call).  Returns ``None`` when no
        entry fires.
        """
        for entry in self.entries:
            if not entry.matches(site, key):
                continue
            entry.hits += 1
            index = entry.hits - entry.nth
            if index < 0:
                continue
            if entry.count is not None and index >= entry.count:
                continue
            if site in _MARKED_SITES and self.state_dir is not None \
                    and not self._claim(self.state_dir, site, key, index):
                continue
            self.fired.append((site, key, index))
            if entry.value is not None:
                return entry.value
            return _DEFAULT_VALUES.get(site, 1.0)
        return None

    @staticmethod
    def _claim(state_dir: Path, site: str, key: Optional[str],
               index: int) -> bool:
        """Atomically claim one cross-process firing via a marker file."""
        state_dir.mkdir(parents=True, exist_ok=True)
        token = hashlib.sha256(
            f"{site}|{key}|{index}".encode("utf-8")).hexdigest()[:24]
        marker = state_dir / f"{token}.fired"
        try:
            with open(marker, "x", encoding="utf-8") as handle:
                handle.write(f"{site}:{key}:{index}\n")
        except FileExistsError:
            return False
        return True


_ACTIVE: Optional[FaultPlan] = None
_ENV_CACHE: Tuple[Tuple[str, str], Optional[FaultPlan]] = (("", ""), None)


def install(plan: Optional[FaultPlan]) -> None:
    """Arm ``plan`` process-wide (``None`` disarms programmatic plans)."""
    global _ACTIVE
    _ACTIVE = plan


def reset() -> None:
    """Disarm everything and drop the parsed-environment cache."""
    global _ACTIVE, _ENV_CACHE
    _ACTIVE = None
    _ENV_CACHE = (("", ""), None)


def active() -> Optional[FaultPlan]:
    """The armed plan: installed programmatically, else ``REPRO_FAULTS``."""
    if _ACTIVE is not None:
        return _ACTIVE
    spec = os.environ.get("REPRO_FAULTS", "")
    if not spec:
        return None
    state = os.environ.get("REPRO_FAULT_STATE", "")
    global _ENV_CACHE
    if _ENV_CACHE[0] != (spec, state):
        _ENV_CACHE = ((spec, state),
                      FaultPlan.parse(spec, state_dir=state or None))
    return _ENV_CACHE[1]


def fire(site: str, key: Optional[str] = None) -> Optional[float]:
    """Hit ``site`` on the active plan; ``None`` when nothing is armed.

    This is the single call production code embeds at each site; with
    no plan armed it is one dict lookup.
    """
    plan = active()
    if plan is None:
        return None
    return plan.fire(site, key)


@contextmanager
def armed(plan: Union[str, FaultPlan]) -> Iterator[FaultPlan]:
    """Context manager arming ``plan`` (spec string or plan) for a test."""
    resolved = FaultPlan.parse(plan) if isinstance(plan, str) else plan
    install(resolved)
    try:
        yield resolved
    finally:
        install(None)
