"""Supervised task execution for matrix sweeps.

The bare ``ProcessPoolExecutor`` block the runner used to inline had
three fatal failure modes: one worker crash (``BrokenProcessPool``)
aborted the whole matrix and lost every in-flight result, a hung worker
stalled it forever, and a transient task exception was terminal on the
first occurrence.  The :class:`Supervisor` contains all three:

* **Retries** — a task that raises is re-dispatched up to
  ``REPRO_RETRIES`` times (default 2) with capped exponential backoff
  and a *seeded deterministic* jitter, so two supervisors never
  thundering-herd in lockstep yet every run of the same sweep sleeps
  the same schedule.
* **Timeouts** — ``REPRO_TASK_TIMEOUT`` (seconds, default off) bounds
  each task's wall clock from dispatch.  Queued-but-unstarted tasks are
  requeued without penalty; a running task that overruns is treated as
  hung, counted, and its pool is abandoned (a truly stuck worker cannot
  be reclaimed through ``concurrent.futures``) and respawned.
* **Respawns** — a broken or abandoned pool is replaced and only the
  incomplete tasks are re-dispatched; results collected before the
  failure are kept (the ``on_result`` callback runs in the parent as
  each task completes, so progress is durable even mid-failure).

Failures that survive every retry are collected and raised together as
:class:`TaskFailedError` *after* the remaining tasks complete —
maximum durable progress, then a loud exit.  ``KeyboardInterrupt`` and
``SystemExit`` are never caught.

Fault sites ``worker.crash`` and ``worker.hang`` (see
:mod:`repro.resilience.faults`) are checked at the top of every pool
task, worker-side, so tests can exercise each recovery path
deterministically.
"""

from __future__ import annotations

import os
import random
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, \
    wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from .faults import fire

#: Default number of re-dispatches after a task's first failed attempt.
DEFAULT_RETRIES = 2


def default_retries() -> int:
    """Retry budget per task (env ``REPRO_RETRIES``, default 2)."""
    try:
        return max(0, int(os.environ.get("REPRO_RETRIES",
                                         str(DEFAULT_RETRIES))))
    except ValueError:
        return DEFAULT_RETRIES


def default_task_timeout() -> Optional[float]:
    """Per-task wall-clock ceiling in seconds (env ``REPRO_TASK_TIMEOUT``,
    unset/non-positive disables timeouts)."""
    raw = os.environ.get("REPRO_TASK_TIMEOUT", "")
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else None


@dataclass
class SupervisedTask:
    """One unit of supervised work.

    ``key`` is the dedupe identity (the runner uses the pair's cache
    key); ``label`` is the human-readable name used in error reports
    and as the fault-site key; ``fn`` must be module-level picklable.
    """

    key: str
    label: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...]


@dataclass
class SupervisorTelemetry:
    """What the supervisor had to do beyond first-attempt successes."""

    retries: int = 0
    timeouts: int = 0
    respawns: int = 0


class TaskTimeoutError(RuntimeError):
    """A supervised task overran ``REPRO_TASK_TIMEOUT``."""


class TaskFailedError(RuntimeError):
    """One or more tasks failed after exhausting their retries."""

    def __init__(self, failures: Dict[str, BaseException]) -> None:
        self.failures = failures
        detail = "; ".join(
            f"{label}: {type(error).__name__}: {error}"
            for label, error in sorted(failures.items()))
        super().__init__(
            f"{len(failures)} task(s) failed after retries: {detail}")


def run_supervised(fn: Callable[..., Any], args: Tuple[Any, ...],
                   label: str) -> Any:
    """Worker-side wrapper around every pool task.

    Checks the process-fatal fault sites before running the payload, so
    injected crashes/hangs happen where real ones do: inside a worker,
    before any result exists.
    """
    value = fire("worker.crash", key=label)
    if value is not None:
        os._exit(max(1, int(value)))
    value = fire("worker.hang", key=label)
    if value is not None:
        time.sleep(value)
    return fn(*args)


class Supervisor:
    """Runs :class:`SupervisedTask` lists with retries, timeouts and
    pool respawns; see the module docstring for the policy."""

    #: How often the pool loop wakes to check deadlines (seconds).
    _POLL = 0.05

    #: Pool respawns allowed per ``run()`` before the supervisor gives
    #: up on the remaining tasks — a task that kills its worker on every
    #: attempt never raises into ``_note_failure``, so without this cap
    #: a crash-looping payload would respawn forever.
    _MAX_RESPAWNS = 8

    def __init__(self, max_workers: int = 1,
                 timeout: Optional[float] = None,
                 retries: Optional[int] = None,
                 backoff_base: float = 0.02,
                 backoff_cap: float = 2.0,
                 seed: int = 0,
                 on_result: Optional[
                     Callable[[SupervisedTask, Any], None]] = None,
                 telemetry: Optional[SupervisorTelemetry] = None) -> None:
        self.max_workers = max(1, max_workers)
        self.timeout = timeout if timeout is not None \
            else default_task_timeout()
        self.retries = retries if retries is not None else default_retries()
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.seed = seed
        self.on_result = on_result
        self.telemetry = telemetry if telemetry is not None \
            else SupervisorTelemetry()

    # -- Entry points -------------------------------------------------------

    def run(self, tasks: List[SupervisedTask]) -> Dict[str, Any]:
        """Run every task; returns ``{task.key: result}``.

        Duplicate keys are executed once (the duplicate-submission
        guard; the shared result is installed under the one key).
        Dispatches to a process pool when both the task count and
        ``max_workers`` exceed one, else runs serially in-process.
        """
        deduped: List[SupervisedTask] = []
        seen: Set[str] = set()
        for task in tasks:
            if task.key in seen:
                continue
            seen.add(task.key)
            deduped.append(task)
        if not deduped:
            return {}
        if len(deduped) > 1 and self.max_workers > 1:
            return self._run_pool(deduped)
        return self._run_serial(deduped)

    # -- Serial path --------------------------------------------------------

    def _run_serial(self, tasks: List[SupervisedTask]) -> Dict[str, Any]:
        results: Dict[str, Any] = {}
        failures: Dict[str, BaseException] = {}
        for task in tasks:
            attempt = 0
            while True:
                attempt += 1
                try:
                    result = task.fn(*task.args)
                except Exception as error:
                    if attempt > self.retries:
                        # Out of budget: record and move on so the rest
                        # of the sweep still lands durably.
                        failures[task.label] = error
                        break
                    self.telemetry.retries += 1
                    self._sleep_backoff(attempt)
                    continue
                results[task.key] = result
                self._deliver(task, result)
                break
        if failures:
            raise TaskFailedError(failures)
        return results

    # -- Pool path ----------------------------------------------------------

    def _run_pool(self, tasks: List[SupervisedTask]) -> Dict[str, Any]:
        results: Dict[str, Any] = {}
        failures: Dict[str, BaseException] = {}
        todo: Dict[str, SupervisedTask] = {t.key: t for t in tasks}
        attempts: Dict[str, int] = {t.key: 0 for t in tasks}
        round_no = 0
        respawns = 0
        while todo:
            if round_no:
                self._sleep_backoff(round_no)
            round_no += 1
            if self._pool_round(todo, attempts, results, failures):
                respawns += 1
                if respawns > self._MAX_RESPAWNS:
                    for task in todo.values():
                        failures[task.label] = RuntimeError(
                            f"abandoned after {respawns} pool respawns "
                            "(crash-looping worker payload?)")
                    todo.clear()
        if failures:
            raise TaskFailedError(failures)
        return results

    def _pool_round(self, todo: Dict[str, SupervisedTask],
                    attempts: Dict[str, int],
                    results: Dict[str, Any],
                    failures: Dict[str, BaseException]) -> bool:
        """Dispatch every incomplete task on a fresh pool, collecting
        until the batch drains or the pool must be abandoned.  Returns
        True when the pool was abandoned (caller respawns)."""
        batch = list(todo.values())
        pool = ProcessPoolExecutor(max_workers=min(self.max_workers,
                                                   len(batch)))
        abandon = False
        try:
            future_of: Dict[Future[Any], SupervisedTask] = {}
            deadline_of: Dict[Future[Any], Optional[float]] = {}
            for task in batch:
                attempts[task.key] += 1
                if attempts[task.key] > 1:
                    self.telemetry.retries += 1
                future = pool.submit(run_supervised, task.fn, task.args,
                                     task.label)
                future_of[future] = task
                deadline_of[future] = (time.monotonic() + self.timeout) \
                    if self.timeout is not None else None
            outstanding: Set[Future[Any]] = set(future_of)
            while outstanding:
                done, outstanding = wait(outstanding, timeout=self._POLL,
                                         return_when=FIRST_COMPLETED)
                for future in done:
                    task = future_of[future]
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        # A worker died mid-task.  Every sibling future
                        # is broken too; abandon the pool and let the
                        # outer loop re-dispatch whatever is incomplete.
                        abandon = True
                        continue
                    except Exception as error:
                        self._note_failure(task, error, attempts, todo,
                                           failures)
                        continue
                    results[task.key] = result
                    todo.pop(task.key, None)
                    self._deliver(task, result)
                if abandon:
                    break
                if self.timeout is not None and outstanding:
                    abandon = self._expire_overruns(
                        outstanding, future_of, deadline_of, attempts,
                        todo, failures)
                    if abandon:
                        break
            if abandon:
                self.telemetry.respawns += 1
        finally:
            # An abandoned pool may hold a hung or dead worker; do not
            # block on it — the leaked process either already exited or
            # finishes its finite sleep and exits on its own.
            pool.shutdown(wait=not abandon, cancel_futures=True)
        return abandon

    def _expire_overruns(self, outstanding: Set[Future[Any]],
                         future_of: Dict[Future[Any], SupervisedTask],
                         deadline_of: Dict[Future[Any], Optional[float]],
                         attempts: Dict[str, int],
                         todo: Dict[str, SupervisedTask],
                         failures: Dict[str, BaseException]) -> bool:
        """Handle tasks past their deadline; True when the pool must go."""
        now = time.monotonic()
        hung = False
        for future in list(outstanding):
            deadline = deadline_of[future]
            if deadline is None or now <= deadline or future.done():
                continue
            task = future_of[future]
            if future.cancel():
                # Never started — it sat in the queue behind slower
                # work.  Requeue without charging an attempt.
                attempts[task.key] -= 1
                self.telemetry.retries -= 1 if attempts[task.key] >= 1 \
                    else 0
                outstanding.discard(future)
                hung = True
                continue
            self.telemetry.timeouts += 1
            self._note_failure(
                task,
                TaskTimeoutError(
                    f"task {task.label!r} exceeded {self.timeout}s"),
                attempts, todo, failures)
            outstanding.discard(future)
            hung = True
        return hung

    # -- Shared helpers -----------------------------------------------------

    def _deliver(self, task: SupervisedTask, result: Any) -> None:
        if self.on_result is not None:
            self.on_result(task, result)

    def _note_failure(self, task: SupervisedTask, error: BaseException,
                      attempts: Dict[str, int],
                      todo: Dict[str, SupervisedTask],
                      failures: Dict[str, BaseException]) -> None:
        """Retire a failed attempt: keep the task queued while it has
        retry budget, else record the terminal failure."""
        if attempts[task.key] > self.retries:
            failures[task.label] = error
            todo.pop(task.key, None)

    def _sleep_backoff(self, round_no: int) -> None:
        """Capped exponential backoff with seeded deterministic jitter."""
        delay = min(self.backoff_cap,
                    self.backoff_base * (2.0 ** (round_no - 1)))
        jitter = random.Random(f"{self.seed}:{round_no}").random()
        time.sleep(delay * (0.5 + jitter))
