"""Fault containment for sweep execution.

Three pieces: :mod:`~repro.resilience.supervisor` (retries, timeouts,
pool respawns around matrix tasks), :mod:`~repro.resilience.manifest`
(the completed-pair journal that lets an interrupted sweep resume), and
:mod:`~repro.resilience.faults` (deterministic fault injection so every
recovery path is testable without real nondeterminism).  See
``docs/resilience.md``.
"""

from .faults import (FaultEntry, FaultPlan, InjectedFault,
                     InjectedLaneFault, KernelSolveError, SITES, active,
                     armed, fire, install, reset)
from .manifest import SweepManifest
from .supervisor import (SupervisedTask, Supervisor, SupervisorTelemetry,
                         TaskFailedError, TaskTimeoutError, default_retries,
                         default_task_timeout, run_supervised)

__all__ = [
    "FaultEntry",
    "FaultPlan",
    "InjectedFault",
    "InjectedLaneFault",
    "KernelSolveError",
    "SITES",
    "SupervisedTask",
    "Supervisor",
    "SupervisorTelemetry",
    "SweepManifest",
    "TaskFailedError",
    "TaskTimeoutError",
    "active",
    "armed",
    "default_retries",
    "default_task_timeout",
    "fire",
    "install",
    "reset",
    "run_supervised",
]
