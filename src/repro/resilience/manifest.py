"""Sweep manifests: an append-only journal of completed matrix pairs.

A long ``run_matrix`` sweep that dies halfway (worker crash the
supervisor could not contain, OOM kill, ctrl-C) must resume instead of
restarting.  The disk cache already holds every completed payload, but
payloads alone cannot distinguish "this pair finished" from "this pair
was never part of the sweep" — and a payload can be lost after the fact
(evicted, quarantined as torn).  The manifest closes that gap: the
runner journals each pair's cache key the moment its result is
installed, so a resumed sweep knows exactly which pairs completed, can
report how much of the matrix it recovered, and can re-dispatch the
pairs whose journaled payloads went missing.

Layout: one JSONL file per sweep under ``<cache root>/manifests/``,
named by the sweep id (a content hash over the sorted cache keys of
every pair in the matrix, so the same matrix always resumes the same
journal).  Each line is one completion event::

    {"key": "<64-hex cache key>", "label": "<spec>:<organization>"}

Lines are appended atomically enough for the one-writer-per-sweep case
(O_APPEND, one line per write); a torn trailing line from a killed
process is ignored on load.  Manifests are idempotent — re-journaling a
completed key is harmless — and deliberately kept after a sweep
finishes, so a later identical sweep can still tell resumed pairs from
fresh ones.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Set, Union


class SweepManifest:
    """Journal of completed cache keys for one ``run_matrix`` sweep."""

    def __init__(self, root: Union[str, Path], sweep_id: str) -> None:
        self.root = Path(root)
        self.sweep_id = sweep_id
        self.path = self.root / "manifests" / f"{sweep_id}.jsonl"

    def load(self) -> Set[str]:
        """Cache keys journaled as complete (torn/garbled lines skipped)."""
        return set(self.entries())

    def entries(self) -> Dict[str, str]:
        """Completed ``{key: label}`` pairs, last journaled label wins."""
        done: Dict[str, str] = {}
        try:
            text = self.path.read_text(encoding="utf-8")
        except (FileNotFoundError, OSError):
            return done
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                # A torn trailing line from a killed writer; every
                # complete line before it is still valid.
                continue
            if isinstance(entry, dict) and isinstance(entry.get("key"), str):
                done[entry["key"]] = str(entry.get("label", ""))
        return done

    def mark_done(self, key: str, label: str = "") -> None:
        """Append one completion event (flushed before returning)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps({"key": key, "label": label},
                          sort_keys=True, separators=(",", ":"))
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")

    def discard(self) -> None:
        """Delete the journal (used by tests; sweeps keep theirs)."""
        self.path.unlink(missing_ok=True)
