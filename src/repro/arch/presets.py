"""Configuration presets for the SAC design space.

``baseline()`` reproduces Table 3 of the paper.  The remaining factories
produce the Figure 14 sensitivity-study configurations: inter-chip link
generations (PCIe, NVLink-2, NVLink-3, MCM interposers), memory interfaces
(GDDR5, GDDR6, HBM2), LLC capacity scaling, chip-count scaling, sectored
caches, hardware coherence and page-size variants.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Tuple

from .config import (
    CacheConfig,
    ChipConfig,
    CoherenceConfig,
    InterChipConfig,
    MemoryConfig,
    SystemConfig,
)

#: Unidirectional per-chip-pair bandwidth (GB/s) of each interconnect
#: generation swept in Figure 14.  The baseline (96 GB/s) sits between
#: NVLink-2 and NVLink-3.
INTER_CHIP_SWEEP_GBPS: Tuple[int, ...] = (48, 96, 192, 384, 768)

#: Total DRAM bandwidth (GB/s) of the memory-interface sweep in Figure 14.
MEMORY_INTERFACE_GBPS: Dict[str, int] = {
    "GDDR5": 1000,
    "GDDR6": 1750,
    "HBM2": 2800,
}


def baseline() -> SystemConfig:
    """The Table 3 baseline: 4 chips, 64 SMs + 4 MB LLC per chip."""
    return SystemConfig()


def with_inter_chip_bandwidth(config: SystemConfig,
                              pair_gbps: float) -> SystemConfig:
    """Scale the inter-chip links to ``pair_gbps`` unidirectional per pair.

    The ring keeps 3 links per chip pair; the per-link bandwidth is
    adjusted so the pair bandwidth matches the requested figure.
    """
    if pair_gbps <= 0:
        raise ValueError("inter-chip bandwidth must be positive")
    links = config.inter_chip.links_per_chip
    neighbours = min(2, max(1, config.num_chips - 1))
    links_per_pair = links / neighbours
    per_link = pair_gbps / links_per_pair / config.clock_ghz
    inter = dataclasses.replace(
        config.inter_chip, link_bw_bytes_per_cycle=max(1, round(per_link)))
    return config.with_updates(inter_chip=inter)


def with_memory_interface(config: SystemConfig, interface: str) -> SystemConfig:
    """Swap the DRAM interface (Figure 14 memory sweep)."""
    try:
        total_gbps = MEMORY_INTERFACE_GBPS[interface]
    except KeyError:
        raise ValueError(
            f"unknown memory interface {interface!r}; "
            f"choose from {sorted(MEMORY_INTERFACE_GBPS)}") from None
    channels = config.num_chips * config.chip.memory.channels_per_chip
    per_channel = total_gbps / channels / config.clock_ghz
    memory = dataclasses.replace(
        config.chip.memory,
        channel_bw_bytes_per_cycle=per_channel,
        interface=interface)
    chip = dataclasses.replace(config.chip, memory=memory)
    return config.with_updates(chip=chip)


def with_llc_capacity_scale(config: SystemConfig, factor: float) -> SystemConfig:
    """Scale every LLC slice's capacity by ``factor``."""
    if factor <= 0:
        raise ValueError("LLC capacity scale must be positive")
    chip = dataclasses.replace(
        config.chip, llc_slice=config.chip.llc_slice.scaled(factor))
    return config.with_updates(chip=chip)


def with_chip_count(config: SystemConfig, num_chips: int) -> SystemConfig:
    """Change the chip count, keeping *total* inter-chip bandwidth fixed.

    This mirrors the paper's GPU-count study: going from four to two chips
    doubles the per-link bandwidth (as NVLink does).
    """
    if num_chips < 1:
        raise ValueError("need at least one chip")
    total_bw = config.total_inter_chip_bw
    per_link = total_bw / (num_chips * config.inter_chip.links_per_chip)
    inter = dataclasses.replace(
        config.inter_chip, link_bw_bytes_per_cycle=max(1, round(per_link)))
    return config.with_updates(num_chips=num_chips, inter_chip=inter)


def with_sectored_llc(config: SystemConfig,
                      sectors_per_line: int = 4) -> SystemConfig:
    """Use sectored LLC slices (Figure 14 sectored-cache study)."""
    llc = dataclasses.replace(
        config.chip.llc_slice, sectored=True, sectors_per_line=sectors_per_line)
    chip = dataclasses.replace(config.chip, llc_slice=llc)
    return config.with_updates(chip=chip)


def with_coherence(config: SystemConfig, protocol: str) -> SystemConfig:
    """Select software or hardware coherence (Figure 14 coherence study)."""
    coherence = dataclasses.replace(config.coherence, protocol=protocol)
    return config.with_updates(coherence=coherence)


def with_page_size(config: SystemConfig, page_size: int) -> SystemConfig:
    """Change the memory page size (Figure 14 page-size study)."""
    memory = dataclasses.replace(config.chip.memory, page_size=page_size)
    chip = dataclasses.replace(config.chip, memory=memory)
    return config.with_updates(chip=chip)


def inter_chip_sweep(config: SystemConfig | None = None
                     ) -> List[Tuple[str, SystemConfig]]:
    """Labelled configs for the Figure 14 inter-chip bandwidth sweep."""
    base = config or baseline()
    sweep = []
    for gbps in INTER_CHIP_SWEEP_GBPS:
        label = f"inter-chip {gbps} GB/s" + (" *" if gbps == 96 else "")
        sweep.append((label, with_inter_chip_bandwidth(base, gbps)))
    return sweep


def memory_interface_sweep(config: SystemConfig | None = None
                           ) -> List[Tuple[str, SystemConfig]]:
    """Labelled configs for the Figure 14 memory-interface sweep."""
    base = config or baseline()
    sweep = []
    for name in ("GDDR5", "GDDR6", "HBM2"):
        label = name + (" *" if name == "GDDR6" else "")
        sweep.append((label, with_memory_interface(base, name)))
    return sweep


def llc_capacity_sweep(factors: Iterable[float] = (0.5, 1.0, 2.0),
                       config: SystemConfig | None = None
                       ) -> List[Tuple[str, SystemConfig]]:
    """Labelled configs for the Figure 14 LLC-capacity sweep."""
    base = config or baseline()
    sweep = []
    for factor in factors:
        mb = base.chip.llc_capacity_bytes * factor / (1024 * 1024)
        label = f"LLC {mb:g} MB/chip" + (" *" if factor == 1.0 else "")
        sweep.append((label, with_llc_capacity_scale(base, factor)))
    return sweep
