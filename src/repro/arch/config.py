"""Architecture configuration for the simulated multi-chip GPU.

All configuration objects are immutable dataclasses.  The baseline mirrors
Table 3 of the SAC paper: a 4-chip GPU with 64 SMs, 4 MB of LLC and 8
memory channels per chip, an intra-chip concentrated hierarchical crossbar
and an inter-chip ring built from NVLink-style bidirectional links.

Bandwidth values are stored in bytes per cycle at the GPU clock (1 GHz in
the baseline), so ``bytes/cycle == GB/s`` numerically at 1 GHz.  Helper
properties expose GB/s for readability in reports.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

GB = 1_000_000_000
KB = 1024
MB = 1024 * 1024


class ConfigError(ValueError):
    """Raised when a configuration is internally inconsistent."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of one cache (an L1 or an LLC slice).

    ``line_size`` is in bytes.  ``sectored`` enables sector caches in which
    ``sectors_per_line`` sectors share one tag; hit/miss is then tracked at
    sector granularity (paper Section 3.6 / 5.6).
    """

    size_bytes: int
    associativity: int
    line_size: int = 128
    sectored: bool = False
    sectors_per_line: int = 4
    write_back: bool = True
    write_allocate: bool = True
    replacement: str = "lru"  # "lru" | "tree-plru" | "srrip"

    def __post_init__(self) -> None:
        _require(self.replacement in ("lru", "tree-plru", "srrip"),
                 f"unknown replacement policy: {self.replacement!r}")
        _require(self.size_bytes > 0, "cache size must be positive")
        _require(self.associativity > 0, "associativity must be positive")
        _require(self.line_size > 0 and (self.line_size & (self.line_size - 1)) == 0,
                 "line size must be a positive power of two")
        _require(self.size_bytes % (self.associativity * self.line_size) == 0,
                 "cache size must be divisible by associativity * line size")
        if self.sectored:
            _require(self.sectors_per_line > 1,
                     "a sectored cache needs more than one sector per line")
            _require(self.line_size % self.sectors_per_line == 0,
                     "line size must be divisible by sectors per line")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.line_size)

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_size

    @property
    def sector_size(self) -> int:
        if not self.sectored:
            return self.line_size
        return self.line_size // self.sectors_per_line

    def scaled(self, factor: float) -> "CacheConfig":
        """Return a config with capacity scaled by ``factor``.

        Scaling keeps line size and associativity fixed and rounds the
        number of sets to at least one, which mirrors how the paper scales
        LLC capacity in the Figure 13/14 sensitivity studies.
        """
        set_bytes = self.associativity * self.line_size
        new_sets = max(1, round(self.num_sets * factor))
        return replace(self, size_bytes=new_sets * set_bytes)


@dataclass(frozen=True)
class NoCConfig:
    """The intra-chip concentrated hierarchical crossbar (paper Section 2).

    The crossbar connects ``sm_ports`` SM clusters plus the chip's
    inter-chip links on the input side to ``llc_ports`` LLC slices plus the
    inter-chip links on the output side (38 x 22 in the baseline).
    ``bisection_bw_bytes_per_cycle`` is the total bisection bandwidth.
    """

    sm_ports: int = 32
    llc_ports: int = 16
    inter_chip_ports: int = 6
    bisection_bw_bytes_per_cycle: int = 4096  # 4 TB/s at 1 GHz

    def __post_init__(self) -> None:
        _require(self.sm_ports > 0, "need at least one SM port")
        _require(self.llc_ports > 0, "need at least one LLC port")
        _require(self.inter_chip_ports >= 0, "inter-chip ports cannot be negative")
        _require(self.bisection_bw_bytes_per_cycle > 0,
                 "bisection bandwidth must be positive")

    @property
    def input_ports(self) -> int:
        return self.sm_ports + self.inter_chip_ports

    @property
    def output_ports(self) -> int:
        return self.llc_ports + self.inter_chip_ports

    @property
    def port_bw_bytes_per_cycle(self) -> float:
        """Per-LLC-port share of the bisection bandwidth."""
        return self.bisection_bw_bytes_per_cycle / self.llc_ports


@dataclass(frozen=True)
class InterChipConfig:
    """The inter-chip ring network (paper Section 2, NVLink-style).

    ``links_per_chip`` bidirectional links leave each chip;
    ``link_bw_bytes_per_cycle`` is the *unidirectional* bandwidth of one
    link.  The baseline has 6 links per chip at 64 GB/s bidirectional
    (i.e. 32 GB/s per direction x 2 directions); the paper quotes the
    default as 96 GB/s unidirectional per chip pair (3 links x 32 GB/s).
    """

    links_per_chip: int = 6
    link_bw_bytes_per_cycle: int = 32  # 32 GB/s per direction at 1 GHz
    topology: str = "ring"

    def __post_init__(self) -> None:
        _require(self.links_per_chip > 0, "need at least one inter-chip link")
        _require(self.link_bw_bytes_per_cycle > 0, "link bandwidth must be positive")
        _require(self.topology in ("ring", "fully-connected"),
                 f"unsupported inter-chip topology: {self.topology!r}")

    def chip_egress_bw(self) -> float:
        """Total unidirectional bandwidth leaving one chip (bytes/cycle)."""
        return self.links_per_chip * self.link_bw_bytes_per_cycle

    def pair_bw(self, num_chips: int) -> float:
        """Unidirectional bandwidth between one chip pair (bytes/cycle)."""
        if num_chips <= 1:
            return float("inf")
        if self.topology == "ring":
            # A ring splits a chip's links evenly between its neighbours;
            # the baseline has 3 links between each pair of adjacent chips.
            neighbours = min(2, num_chips - 1)
            return self.chip_egress_bw() / neighbours
        return self.chip_egress_bw() / (num_chips - 1)


@dataclass(frozen=True)
class MemoryConfig:
    """One chip's local memory partition."""

    channels_per_chip: int = 8
    channel_bw_bytes_per_cycle: float = 54.6875  # 1.75 TB/s / 32 channels at 1 GHz
    page_size: int = 4096
    interface: str = "GDDR6"

    def __post_init__(self) -> None:
        _require(self.channels_per_chip > 0, "need at least one memory channel")
        _require(self.channel_bw_bytes_per_cycle > 0,
                 "channel bandwidth must be positive")
        _require(self.page_size > 0 and (self.page_size & (self.page_size - 1)) == 0,
                 "page size must be a positive power of two")
        _require(bool(self.interface.strip()),
                 "memory interface label cannot be empty")

    def chip_bw(self) -> float:
        """Total DRAM bandwidth of one chip's partition (bytes/cycle)."""
        return self.channels_per_chip * self.channel_bw_bytes_per_cycle


@dataclass(frozen=True)
class CoherenceConfig:
    """Coherence protocol selection (paper Sections 2, 5.6).

    ``"software"`` — flush-based (the commercial default); ``"hardware"``
    — the paper's write-invalidate directory; ``"hardware-mesi"`` — the
    full four-state MESI protocol (extension, see repro.coherence.mesi).
    """

    protocol: str = "software"  # "software" | "hardware" | "hardware-mesi"
    # Cycles charged to write back + invalidate one dirty LLC line during a
    # software-coherence flush (amortized; the traffic itself is also
    # charged to DRAM bandwidth).
    flush_cycles_per_line: float = 0.25
    # Bytes of control traffic per hardware invalidation message.
    invalidation_message_bytes: int = 16

    def __post_init__(self) -> None:
        _require(self.protocol in ("software", "hardware", "hardware-mesi"),
                 f"unsupported coherence protocol: {self.protocol!r}")
        _require(self.flush_cycles_per_line >= 0,
                 "flush cost per line cannot be negative")
        _require(self.invalidation_message_bytes >= 0,
                 "invalidation message size cannot be negative")


@dataclass(frozen=True)
class SACConfig:
    """Runtime parameters of the SAC controller (paper Sections 3.2-3.5)."""

    profile_window_cycles: int = 2000
    theta: float = 0.05
    crd_sets: int = 8
    crd_ways: int = 16
    crd_tag_bits: int = 30
    reprofile_interval_cycles: Optional[int] = None  # None = profile once per kernel
    # Cycles to drain in-flight requests when switching routing policy.
    drain_cycles: int = 200

    def __post_init__(self) -> None:
        _require(self.profile_window_cycles > 0, "profiling window must be positive")
        _require(self.theta >= 0.0, "theta cannot be negative")
        _require(self.crd_sets > 0 and self.crd_ways > 0, "CRD must be non-empty")
        _require(0 < self.crd_tag_bits <= 64,
                 "CRD tag bits must be in (0, 64]")
        _require(self.drain_cycles >= 0, "drain cycles cannot be negative")
        if self.reprofile_interval_cycles is not None:
            _require(self.reprofile_interval_cycles > self.profile_window_cycles,
                     "re-profiling interval must exceed the profiling window")


@dataclass(frozen=True)
class ChipConfig:
    """One GPU chip: SMs, L1s, LLC slices, NoC and memory partition."""

    num_sms: int = 64
    sms_per_cluster: int = 2
    l1: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=128 * KB, associativity=8, line_size=128))
    llc_slice: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=256 * KB, associativity=16, line_size=128))
    llc_slices: int = 16
    llc_slice_bw_bytes_per_cycle: int = 256  # 16 TB/s total / 64 slices at 1 GHz
    noc: NoCConfig = field(default_factory=NoCConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)

    def __post_init__(self) -> None:
        _require(self.num_sms > 0, "need at least one SM")
        _require(self.sms_per_cluster > 0, "need at least one SM per cluster")
        _require(self.num_sms % self.sms_per_cluster == 0,
                 "SM count must divide evenly into clusters")
        _require(self.llc_slices > 0, "need at least one LLC slice")
        _require(self.llc_slice_bw_bytes_per_cycle > 0,
                 "LLC slice bandwidth must be positive")
        _require(self.llc_slice.line_size == self.l1.line_size,
                 "L1 and LLC must share a line size")
        _require(self.noc.sm_ports == self.num_sms // self.sms_per_cluster,
                 "NoC SM ports must match the number of SM clusters")
        _require(self.noc.llc_ports == self.llc_slices,
                 "NoC LLC ports must match the number of LLC slices")

    @property
    def num_clusters(self) -> int:
        return self.num_sms // self.sms_per_cluster

    @property
    def llc_capacity_bytes(self) -> int:
        return self.llc_slices * self.llc_slice.size_bytes

    @property
    def llc_bw_bytes_per_cycle(self) -> float:
        return self.llc_slices * self.llc_slice_bw_bytes_per_cycle


@dataclass(frozen=True)
class SystemConfig:
    """The full multi-chip GPU system (Table 3)."""

    num_chips: int = 4
    chip: ChipConfig = field(default_factory=ChipConfig)
    inter_chip: InterChipConfig = field(default_factory=InterChipConfig)
    coherence: CoherenceConfig = field(default_factory=CoherenceConfig)
    sac: SACConfig = field(default_factory=SACConfig)
    clock_ghz: float = 1.0
    page_allocation: str = "first-touch"
    cta_scheduling: str = "distributed"

    def __post_init__(self) -> None:
        _require(self.num_chips >= 1, "need at least one chip")
        _require(self.clock_ghz > 0, "clock must be positive")
        _require(self.page_allocation in ("first-touch", "round-robin"),
                 f"unsupported page allocation: {self.page_allocation!r}")
        _require(self.cta_scheduling in ("distributed", "round-robin"),
                 f"unsupported CTA scheduling: {self.cta_scheduling!r}")

    # -- Derived totals -------------------------------------------------

    @property
    def total_sms(self) -> int:
        return self.num_chips * self.chip.num_sms

    @property
    def total_llc_bytes(self) -> int:
        return self.num_chips * self.chip.llc_capacity_bytes

    @property
    def total_llc_slices(self) -> int:
        return self.num_chips * self.chip.llc_slices

    @property
    def total_memory_bw(self) -> float:
        """Total DRAM bandwidth across all chips (bytes/cycle)."""
        return self.num_chips * self.chip.memory.chip_bw()

    @property
    def total_inter_chip_bw(self) -> float:
        """Total unidirectional inter-chip bandwidth (bytes/cycle)."""
        return self.num_chips * self.inter_chip.chip_egress_bw()

    @property
    def line_size(self) -> int:
        return self.chip.llc_slice.line_size

    @property
    def page_size(self) -> int:
        return self.chip.memory.page_size

    def bytes_per_cycle_to_gbps(self, bytes_per_cycle: float) -> float:
        """Convert bytes/cycle to GB/s at the configured clock."""
        return bytes_per_cycle * self.clock_ghz

    def describe(self) -> Dict[str, object]:
        """Summarize the configuration as a flat dict (for reports)."""
        return {
            "chips": self.num_chips,
            "sms_total": self.total_sms,
            "llc_total_mb": self.total_llc_bytes / MB,
            "llc_slices_total": self.total_llc_slices,
            "llc_bw_gbps": self.bytes_per_cycle_to_gbps(
                self.num_chips * self.chip.llc_bw_bytes_per_cycle),
            "dram_bw_gbps": self.bytes_per_cycle_to_gbps(self.total_memory_bw),
            "inter_chip_bw_gbps": self.bytes_per_cycle_to_gbps(
                self.total_inter_chip_bw),
            "memory_interface": self.chip.memory.interface,
            "coherence": self.coherence.protocol,
            "page_size": self.page_size,
            "line_size": self.line_size,
        }

    def with_updates(self, **kwargs: object) -> "SystemConfig":
        """Return a copy with top-level fields replaced."""
        return dataclasses.replace(self, **kwargs)
