"""Committed baseline of grandfathered findings.

The baseline is a JSON document mapping finding fingerprints (see
:meth:`repro.lint.core.Finding.fingerprint`) to a short human-readable
record including a required ``justification`` string, so every
grandfathered finding carries its one-line reason in the committed
file.  Findings whose fingerprint appears in the baseline are reported
separately and do not fail the run; baselined entries that no longer
match anything are reported as stale so the file shrinks over time
instead of accreting.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List

from .core import Finding

_FORMAT = "repro.lint-baseline/1"


@dataclass
class Baseline:
    """Fingerprint -> entry map backing the baseline file."""

    entries: Dict[str, Dict[str, str]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.is_file():
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("format") != _FORMAT:
            raise ValueError(
                f"{path}: unsupported baseline format "
                f"{payload.get('format')!r} (expected {_FORMAT!r})")
        entries = payload.get("findings", {})
        if not isinstance(entries, dict):
            raise ValueError(f"{path}: 'findings' must be an object")
        return cls(entries=dict(entries))

    def save(self, path: Path) -> None:
        payload = {
            "format": _FORMAT,
            "findings": {
                fp: self.entries[fp] for fp in sorted(self.entries)
            },
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=False)
                        + "\n", encoding="utf-8")

    # -- Queries ---------------------------------------------------------

    def __contains__(self, finding: Finding) -> bool:
        return finding.fingerprint() in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def stale_fingerprints(self, findings: Iterable[Finding]) -> List[str]:
        """Baseline entries that matched nothing in this run."""
        seen = {finding.fingerprint() for finding in findings}
        return sorted(fp for fp in self.entries if fp not in seen)

    # -- Construction -----------------------------------------------------

    @classmethod
    def from_findings(cls, findings: Iterable[Finding],
                      justification: str) -> "Baseline":
        baseline = cls()
        for finding in findings:
            baseline.entries[finding.fingerprint()] = {
                "rule": finding.rule,
                "path": finding.path,
                "line": str(finding.line),
                "message": finding.message,
                "justification": justification,
            }
        return baseline
