"""Running the rule set over a file tree and classifying the results.

A run has two analysis tiers.  Per-file rules check each parsed
:class:`SourceFile` independently; *project* rules
(:class:`repro.lint.core.ProjectRule`) run once against the
:class:`repro.lint.graph.ProjectGraph` built over every parsed file and
yield findings anchored to concrete locations, so suppression and
baselining treat both tiers identically.

With a ``cache_dir`` the runner persists findings keyed by content
hash (per file) and tree token (project tier) — see
:mod:`repro.lint.cache`.  A fully unchanged tree re-parses nothing:
files are read and hashed, every finding is served from the cache, and
:attr:`Report.files_analyzed` stays at zero.

Full-registry runs also emit ``unused-suppression`` warnings for
``# repro: noqa`` comments that suppressed no finding in either tier,
so dead suppressions are flushed out instead of accreting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .baseline import Baseline
from .cache import (
    FileEntry,
    LintCache,
    ProjectEntry,
    content_hash,
    tree_token,
)
from .core import REGISTRY, Finding, ProjectRule, Rule, Severity
from .graph import build_graph
from .source import SourceFile, relpath_of

#: Directories never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".repro_cache"}

#: Rule id of the runner-emitted dead-suppression warning.
UNUSED_SUPPRESSION = "unused-suppression"


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files pass through)."""
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {path}")
        for candidate in sorted(path.rglob("*.py")):
            if not _SKIP_DIRS.intersection(candidate.parts):
                yield candidate


@dataclass
class Report:
    """Outcome of one analyzer run."""

    new: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    stale_baseline: List[str] = field(default_factory=list)
    files_checked: int = 0
    #: Files whose per-file rules actually executed this run.
    files_analyzed: int = 0
    #: Files whose findings were served from the on-disk cache.
    files_from_cache: int = 0
    #: Whether the project tier was served from the cache.
    project_from_cache: bool = False
    parse_errors: List[str] = field(default_factory=list)

    @property
    def new_errors(self) -> List[Finding]:
        return [f for f in self.new if f.severity is Severity.ERROR]

    @property
    def failed(self) -> bool:
        return bool(self.new_errors) or bool(self.parse_errors)

    def all_findings(self) -> List[Finding]:
        return self.new + self.baselined


def check_source(source: SourceFile,
                 rules: Optional[Iterable[Rule]] = None) -> List[Finding]:
    """Run per-file ``rules`` (default: every registered rule) over one
    file.

    Project rules contribute nothing here (their ``check`` is inert);
    findings suppressed by inline ``noqa`` comments are *not* filtered —
    :func:`run` classifies them so reports can show what a suppression
    is hiding.
    """
    if rules is None:
        rules = REGISTRY.instantiate()
    findings: List[Finding] = []
    for rule in rules:
        findings.extend(rule.check(source))
    findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
    return findings


class _Run:
    """State of one analyzer pass (file IO, caching, classification)."""

    def __init__(self, rule_list: List[Rule], root: Optional[Path],
                 cache: Optional[LintCache]) -> None:
        self.per_file_rules = [r for r in rule_list
                               if not isinstance(r, ProjectRule)]
        self.project_rules = [r for r in rule_list
                              if isinstance(r, ProjectRule)]
        self.root = root
        self.cache = cache
        self.report = Report()
        #: (path, relpath, text, content hash) of every discovered file.
        self.texts: List[Tuple[Path, str, str, str]] = []
        self.findings: List[Finding] = []  # unsuppressed, pre-baseline
        self.sources: Dict[str, SourceFile] = {}
        #: relpath -> noqa comment line -> rule names (as written).
        self.noqa_lines: Dict[str, Dict[int, List[str]]] = {}
        #: relpath -> comment lines that suppressed something.
        self.used_lines: Dict[str, Set[int]] = {}

    # -- Per-file tier ---------------------------------------------------

    def scan(self, paths: Sequence[Path]) -> str:
        """Read + hash every file; returns the tree token."""
        for path in iter_python_files(paths):
            text = path.read_text(encoding="utf-8")
            relpath = relpath_of(path, self.root)
            self.texts.append((path, relpath, text, content_hash(text)))
        return tree_token((r, s) for _, r, _, s in self.texts)

    def per_file(self, need_parse_all: bool) -> None:
        for path, relpath, text, sha in self.texts:
            self.report.files_checked += 1
            cached = self.cache.file_entry(relpath, sha) \
                if self.cache is not None else None
            source: Optional[SourceFile] = None
            if cached is None or need_parse_all:
                try:
                    source = SourceFile.from_text(text, path,
                                                  root=self.root)
                except SyntaxError as exc:
                    self.report.parse_errors.append(f"{path}: {exc}")
                    continue
                self.sources[relpath] = source
            if cached is not None:
                self.report.files_from_cache += 1
                self.findings.extend(cached.kept)
                self.report.suppressed.extend(cached.suppressed)
                self.noqa_lines[relpath] = dict(cached.noqa_lines)
                self.used_lines.setdefault(relpath, set()).update(
                    cached.used_lines)
                continue
            assert source is not None
            self.report.files_analyzed += 1
            self._analyze(relpath, sha, source)

    def _analyze(self, relpath: str, sha: str,
                 source: SourceFile) -> None:
        kept: List[Finding] = []
        suppressed: List[Finding] = []
        used: Set[int] = set()
        for finding in check_source(source, self.per_file_rules):
            if source.is_suppressed(finding.rule, finding.line):
                suppressed.append(finding)
                used |= _suppressors(source, finding)
            else:
                kept.append(finding)
        self.findings.extend(kept)
        self.report.suppressed.extend(suppressed)
        self.noqa_lines[relpath] = {
            line: sorted(names)
            for line, names in source.noqa_comments.items()}
        self.used_lines.setdefault(relpath, set()).update(used)
        if self.cache is not None:
            self.cache.store_file(relpath, FileEntry(
                sha=sha, kept=kept, suppressed=suppressed,
                noqa_lines={line: sorted(names) for line, names
                            in source.noqa_comments.items()},
                used_lines=sorted(used)))

    # -- Project tier ----------------------------------------------------

    def project(self, tree: str, cached: Optional[ProjectEntry]) -> None:
        if not self.project_rules:
            return
        if cached is not None:
            self.report.project_from_cache = True
            self.findings.extend(cached.kept)
            self.report.suppressed.extend(cached.suppressed)
            for relpath, lines in cached.used_lines.items():
                self.used_lines.setdefault(relpath, set()).update(lines)
            return
        graph = build_graph(list(self.sources.values()))
        kept: List[Finding] = []
        suppressed: List[Finding] = []
        used: Dict[str, Set[int]] = {}
        raw: List[Finding] = []
        for rule in self.project_rules:
            raw.extend(rule.check_project(graph))
        raw.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
        for finding in raw:
            source = self.sources.get(finding.path)
            if source is not None and \
                    source.is_suppressed(finding.rule, finding.line):
                suppressed.append(finding)
                used.setdefault(finding.path, set()).update(
                    _suppressors(source, finding))
            else:
                kept.append(finding)
        self.findings.extend(kept)
        self.report.suppressed.extend(suppressed)
        for relpath, lines in used.items():
            self.used_lines.setdefault(relpath, set()).update(lines)
        if self.cache is not None:
            self.cache.store_project(ProjectEntry(
                tree=tree, kept=kept, suppressed=suppressed,
                used_lines={k: sorted(v) for k, v in used.items()}))

    # -- Dead suppressions -----------------------------------------------

    def unused_suppressions(self) -> None:
        for relpath in sorted(self.noqa_lines):
            used = self.used_lines.get(relpath, set())
            for line, names in sorted(self.noqa_lines[relpath].items()):
                if line in used:
                    continue
                listed = ", ".join(sorted(names))
                source = self.sources.get(relpath)
                self.findings.append(Finding(
                    rule=UNUSED_SUPPRESSION, severity=Severity.WARNING,
                    path=relpath, line=line, column=0,
                    message=(f"noqa comment suppresses nothing "
                             f"(names: {listed}); remove it or fix the "
                             f"rule name"),
                    source_line=source.line_text(line)
                    if source is not None else ""))


def _suppressors(source: SourceFile, finding: Finding) -> Set[int]:
    """Comment lines whose names actually cover ``finding``."""
    lines: Set[int] = set()
    for line in source.noqa_sources.get(finding.line, [finding.line]):
        names = source.noqa_comments.get(line, frozenset())
        if "*" in names or finding.rule in names:
            lines.add(line)
    return lines


def run(paths: Sequence[Path], baseline: Optional[Baseline] = None,
        rules: Optional[Iterable[Rule]] = None,
        root: Optional[Path] = None,
        cache_dir: Optional[Path] = None) -> Report:
    """Analyze every python file under ``paths`` and classify findings.

    Each finding lands in exactly one bucket: ``suppressed`` (an inline
    ``noqa`` covers it), ``baselined`` (its fingerprint is in the
    committed baseline) or ``new`` (fails the run when of error
    severity).  ``cache_dir`` enables the on-disk finding cache; it only
    engages for full-registry runs (``rules`` left to the default).
    """
    full_registry = rules is None
    rule_list = list(rules) if rules is not None \
        else REGISTRY.instantiate()
    baseline = baseline if baseline is not None else Baseline()
    cache = LintCache.load(cache_dir) \
        if cache_dir is not None and full_registry else None

    state = _Run(rule_list, root, cache)
    tree = state.scan(paths)
    project_cached = cache.project_entry(tree) \
        if cache is not None else None
    # Project rules need every file parsed — unless the whole tier is a
    # cache hit, in which case unchanged files skip parsing entirely.
    need_parse_all = bool(state.project_rules) and project_cached is None
    state.per_file(need_parse_all)
    state.project(tree, project_cached)
    if full_registry:
        state.unused_suppressions()

    report = state.report
    for finding in state.findings:
        if finding in baseline:
            report.baselined.append(finding)
        else:
            report.new.append(finding)
    report.new.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
    report.baselined.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
    report.stale_baseline = baseline.stale_fingerprints(state.findings)
    if cache is not None:
        cache.prune(relpath for _, relpath, _, _ in state.texts)
        cache.save()
    return report
