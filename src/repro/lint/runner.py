"""Running the rule set over a file tree and classifying the results."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence

from .baseline import Baseline
from .core import REGISTRY, Finding, Rule, Severity
from .source import SourceFile

#: Directories never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".repro_cache"}


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files pass through)."""
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {path}")
        for candidate in sorted(path.rglob("*.py")):
            if not _SKIP_DIRS.intersection(candidate.parts):
                yield candidate


@dataclass
class Report:
    """Outcome of one analyzer run."""

    new: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    stale_baseline: List[str] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: List[str] = field(default_factory=list)

    @property
    def new_errors(self) -> List[Finding]:
        return [f for f in self.new if f.severity is Severity.ERROR]

    @property
    def failed(self) -> bool:
        return bool(self.new_errors) or bool(self.parse_errors)

    def all_findings(self) -> List[Finding]:
        return self.new + self.baselined


def check_source(source: SourceFile,
                 rules: Optional[Iterable[Rule]] = None) -> List[Finding]:
    """Run ``rules`` (default: every registered rule) over one file.

    Findings suppressed by inline ``noqa`` comments are *not* filtered
    here; :func:`run` classifies them so reports can show what a
    suppression is hiding.
    """
    if rules is None:
        rules = REGISTRY.instantiate()
    findings: List[Finding] = []
    for rule in rules:
        findings.extend(rule.check(source))
    findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
    return findings


def run(paths: Sequence[Path], baseline: Optional[Baseline] = None,
        rules: Optional[Iterable[Rule]] = None,
        root: Optional[Path] = None) -> Report:
    """Analyze every python file under ``paths`` and classify findings.

    Each finding lands in exactly one bucket: ``suppressed`` (an inline
    ``noqa`` covers it), ``baselined`` (its fingerprint is in the
    committed baseline) or ``new`` (fails the run when of error
    severity).
    """
    rule_list = list(rules) if rules is not None else REGISTRY.instantiate()
    baseline = baseline if baseline is not None else Baseline()
    report = Report()
    unsuppressed: List[Finding] = []
    for path in iter_python_files(paths):
        try:
            source = SourceFile.load(path, root=root)
        except SyntaxError as exc:
            report.parse_errors.append(f"{path}: {exc}")
            continue
        report.files_checked += 1
        for finding in check_source(source, rule_list):
            if source.is_suppressed(finding.rule, finding.line):
                report.suppressed.append(finding)
            else:
                unsuppressed.append(finding)
    for finding in unsuppressed:
        if finding in baseline:
            report.baselined.append(finding)
        else:
            report.new.append(finding)
    report.stale_baseline = baseline.stale_fingerprints(unsuppressed)
    return report
