"""Project-specific static analysis for the repro simulator core.

The vectorized hot paths (PR 1/PR 2) are guarded at runtime by
differential tests; this package guards them *statically* by encoding
the numerical contracts as AST-driven lint rules — no per-access loops
in vector kernels, explicit numpy dtypes, ``RunStats``/``comparable_dict``
agreement, validated config fields, no float equality in timing code,
deterministic cache-key construction, no mutable defaults and no
silencing ``except`` blocks.  See ``docs/static_analysis.md``.

Use ``python -m repro.lint`` to run it; see :mod:`repro.lint.cli`.
"""

from __future__ import annotations

from .baseline import Baseline
from .core import REGISTRY, Finding, ProjectRule, Rule, Severity, register
from .graph import ProjectGraph, build_graph
from .runner import Report, check_source, run
from .source import SourceFile
from . import rules as _rules  # noqa: F401  (populates REGISTRY on import)

__all__ = [
    "Baseline",
    "Finding",
    "ProjectGraph",
    "ProjectRule",
    "REGISTRY",
    "Report",
    "Rule",
    "Severity",
    "SourceFile",
    "build_graph",
    "check_source",
    "register",
    "run",
]
