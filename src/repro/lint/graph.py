"""Project symbol and call-graph layer for cross-module rules.

Per-file rules see one AST at a time; the contracts added by the
shared-encoding work (PR 6) span modules — the producer of a reuse
encoding lives in ``cache/vector.py`` while its consumers live in the
stacked driver, and the telemetry registry lives in ``sim/stats.py``
while stats attributes are written everywhere.  :class:`ProjectGraph`
parses the *whole analyzed file set* once and gives rules:

* module resolution — every file is named by its dotted module path
  (``repro/sim/engine.py`` -> ``repro.sim.engine``) and its imports are
  resolved to project modules and symbols;
* symbol tables — top-level functions and classes
  (:class:`FunctionInfo`, :class:`ClassInfo`), including per-class
  attribute types harvested from dataclass fields, annotated
  assignments and ``self.x = Cls(...)`` constructor assignments;
* a call graph — ``caller qualname -> callee qualnames`` over bare
  calls, ``self.method()`` dispatch, imported symbols and
  typed-receiver method calls, with :meth:`ProjectGraph.reachable`
  computing the closure from a set of roots; and
* light type inference — :meth:`ProjectGraph.infer` maps an expression
  inside a function to a project class name (or a ``list:``/``dict:``
  container of one) using parameter annotations, local assignments,
  class attribute tables and function return annotations.

Inference is deliberately *conservative*: anything ambiguous or
unresolvable is ``None`` (untracked), so graph-backed rules produce
false negatives, never false positives, on code the layer cannot type.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from .source import SourceFile

#: Container markers used in type strings: ``"RunStats"`` is an
#: instance, ``"list:RunStats"`` a sequence of them, ``"dict:RunStats"``
#: a mapping whose *values* are instances.
_LIST = "list:"
_DICT = "dict:"

#: Annotation heads treated as sequence containers (element type is the
#: first argument) and as mappings (value type is the second).
_SEQ_HEADS = frozenset({"List", "Sequence", "Tuple", "Iterable",
                        "Iterator", "FrozenSet", "Set",
                        "list", "tuple", "frozenset", "set"})
_MAP_HEADS = frozenset({"Dict", "Mapping", "MutableMapping",
                        "OrderedDict", "DefaultDict", "dict"})

#: Calls that return their first argument's type unchanged.
_PASSTHROUGH_CALLS = frozenset({"copy.deepcopy", "copy.copy",
                                "dataclasses.replace", "replace"})

_FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class FunctionInfo:
    """One module-level function or method in the analyzed set."""

    qualname: str                 # "repro.sim.engine:SimulationEngine.run"
    name: str
    module: str
    node: _FuncNode
    source: SourceFile
    class_name: Optional[str] = None

    @property
    def is_method(self) -> bool:
        return self.class_name is not None


@dataclass
class ClassInfo:
    """One class definition plus its harvested attribute types."""

    name: str
    module: str
    node: ast.ClassDef
    source: SourceFile
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: attribute name -> type string; attributes assigned conflicting
    #: types are dropped (untracked).
    attr_types: Dict[str, str] = field(default_factory=dict)


def module_name_of(relpath: str) -> str:
    """Dotted module name of a repo-relative posix path.

    Anchored at the *last* ``repro`` path segment so the repo layout
    (``src/repro/...``), installed packages and test fixtures that
    mirror the real tail all resolve to the same names; files outside
    any ``repro`` tree fall back to their stem.
    """
    parts = relpath.split("/")
    stem = parts[-1]
    if stem.endswith(".py"):
        stem = stem[:-3]
    head = parts[:-1]
    if "repro" in head:
        anchor = len(head) - 1 - head[::-1].index("repro")
        pkg = head[anchor:]
    else:
        pkg = []
    if stem == "__init__":
        return ".".join(pkg) if pkg else stem
    return ".".join(pkg + [stem])


def _ann_to_type(node: Optional[ast.AST]) -> Optional[str]:
    """Type string for an annotation expression, or None.

    Understands plain names, dotted names (last segment), ``Optional``/
    ``Union`` unwrapping, sequence and mapping subscripts, and string
    (forward-reference) annotations.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        head = node.value
        head_name = head.id if isinstance(head, ast.Name) else (
            head.attr if isinstance(head, ast.Attribute) else None)
        if head_name is None:
            return None
        args: List[ast.AST] = []
        sl: ast.AST = node.slice
        if isinstance(sl, ast.Tuple):
            args = list(sl.elts)
        else:
            args = [sl]
        if head_name == "Optional" and args:
            return _ann_to_type(args[0])
        if head_name == "Union":
            inner = {_ann_to_type(a) for a in args
                     if not (isinstance(a, ast.Constant)
                             and a.value is None)}
            inner.discard(None)
            return inner.pop() if len(inner) == 1 else None
        if head_name in _SEQ_HEADS and args:
            elem = _ann_to_type(args[0])
            return _LIST + elem if elem else None
        if head_name in _MAP_HEADS and len(args) == 2:
            value = _ann_to_type(args[1])
            return _DICT + value if value else None
    return None


def _elem_of(type_str: Optional[str]) -> Optional[str]:
    """Element/value type of a container type string."""
    if type_str is None:
        return None
    if type_str.startswith(_LIST):
        return type_str[len(_LIST):]
    if type_str.startswith(_DICT):
        return type_str[len(_DICT):]
    return None


def _dotted(node: ast.AST) -> Optional[str]:
    parts = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


class ProjectGraph:
    """Symbols, types and call edges of one analyzed file set."""

    def __init__(self, sources: Iterable[SourceFile]) -> None:
        #: relpath -> SourceFile, insertion-ordered.
        self.sources: Dict[str, SourceFile] = {}
        #: dotted module name -> relpath (first wins on collision).
        self.modules: Dict[str, str] = {}
        #: function qualname -> info.
        self.functions: Dict[str, FunctionInfo] = {}
        #: simple class name -> info; names defined in several modules
        #: land in :attr:`ambiguous` and are untracked.
        self.classes: Dict[str, ClassInfo] = {}
        self.ambiguous: Set[str] = set()
        #: caller qualname -> callee qualnames.
        self.calls: Dict[str, Set[str]] = {}
        #: class name -> direct project subclasses.
        self.subclasses: Dict[str, Set[str]] = {}
        #: module -> imported name -> (module, symbol or None).
        self._imports: Dict[str, Dict[str, Tuple[str, Optional[str]]]] = {}
        #: per-function local type environments, lazily built.
        self._envs: Dict[str, Dict[str, str]] = {}

        for source in sources:
            self._add_source(source)
        self._resolve_classes()
        # Two attribute-harvest passes: the second sees classes typed by
        # the first (``self.stats = RunStats(...)`` inside a class whose
        # own attributes feed other classes' inference).
        for _ in range(2):
            for cls in self.classes.values():
                self._harvest_attrs(cls)
            self._envs.clear()
        self._build_calls()

    # -- Construction ------------------------------------------------------

    def _add_source(self, source: SourceFile) -> None:
        module = module_name_of(source.relpath)
        self.sources[source.relpath] = source
        self.modules.setdefault(module, source.relpath)
        imports: Dict[str, Tuple[str, Optional[str]]] = {}
        self._imports[module] = imports
        for node in ast.iter_child_nodes(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    imports[name] = (target, None)
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from(module, node)
                if base is None:
                    continue
                for alias in node.names:
                    name = alias.asname or alias.name
                    imports[name] = (base, alias.name)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    qualname=f"{module}:{node.name}", name=node.name,
                    module=module, node=node, source=source)
                self.functions[info.qualname] = info
            elif isinstance(node, ast.ClassDef):
                self._add_class(module, source, node)

    def _add_class(self, module: str, source: SourceFile,
                   node: ast.ClassDef) -> None:
        bases = []
        for b in node.bases:
            name = _dotted(b)
            if name:
                bases.append(name.split(".")[-1])
        cls = ClassInfo(name=node.name, module=module, node=node,
                        source=source, bases=bases)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    qualname=f"{module}:{node.name}.{stmt.name}",
                    name=stmt.name, module=module, node=stmt,
                    source=source, class_name=node.name)
                cls.methods[stmt.name] = info
                self.functions[info.qualname] = info
        if node.name in self.classes and \
                self.classes[node.name].node is not node:
            self.ambiguous.add(node.name)
        else:
            self.classes[node.name] = cls

    def _resolve_from(self, module: str,
                      node: ast.ImportFrom) -> Optional[str]:
        """Absolute module targeted by a (possibly relative) from-import."""
        if node.level == 0:
            return node.module
        relpath = self.modules.get(module, "")
        is_pkg = relpath.endswith("__init__.py")
        pkg = module.split(".") if is_pkg else module.split(".")[:-1]
        ascend = node.level - 1
        if ascend > len(pkg):
            return None
        base = pkg[:len(pkg) - ascend] if ascend else pkg
        if node.module:
            base = base + node.module.split(".")
        return ".".join(base) if base else None

    def _resolve_classes(self) -> None:
        for name in self.ambiguous:
            self.classes.pop(name, None)
        for cls in self.classes.values():
            for base in cls.bases:
                self.subclasses.setdefault(base, set()).add(cls.name)

    def _harvest_attrs(self, cls: ClassInfo) -> None:
        """Fill ``cls.attr_types`` from its body and its methods."""
        conflicted: Set[str] = set()

        def record(attr: str, type_str: Optional[str]) -> None:
            if type_str is None or attr in conflicted:
                return
            prior = cls.attr_types.get(attr)
            if prior is not None and prior != type_str:
                conflicted.add(attr)
                del cls.attr_types[attr]
                return
            cls.attr_types[attr] = type_str

        for stmt in cls.node.body:
            if isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name):
                record(stmt.target.id, _ann_to_type(stmt.annotation))
        for method in cls.methods.values():
            for node in ast.walk(method.node):
                target: Optional[ast.expr] = None
                type_str: Optional[str] = None
                if isinstance(node, ast.AnnAssign):
                    target = node.target
                    type_str = _ann_to_type(node.annotation)
                elif isinstance(node, ast.Assign) and \
                        len(node.targets) == 1:
                    target = node.targets[0]
                    type_str = self.infer(method, node.value)
                if isinstance(target, ast.Attribute) and \
                        isinstance(target.value, ast.Name) and \
                        target.value.id == "self":
                    record(target.attr, type_str)

    def _build_calls(self) -> None:
        for info in self.functions.values():
            edges: Set[str] = set()
            for node in ast.walk(info.node):
                if isinstance(node, ast.Call):
                    callee = self._resolve_call(info, node)
                    if callee is not None:
                        edges.add(callee)
                    elif isinstance(node.func, ast.Attribute):
                        # Dynamic dispatch: the receiver's *declared*
                        # class lacks the method, but a project subclass
                        # implements it (``org.observe_batch`` on a
                        # ``LLCOrganization``).  Reachability must
                        # over-approximate, so edge to every
                        # implementation in the subclass cone.
                        edges.update(self._cone_methods(
                            info, node.func))
            self.calls[info.qualname] = edges

    def _cone_methods(self, caller: FunctionInfo,
                      func: ast.Attribute) -> Set[str]:
        receiver = self.infer(caller, func.value)
        if receiver is None or receiver.startswith((_LIST, _DICT)):
            return set()
        edges: Set[str] = set()
        seen: Set[str] = set()
        queue = [receiver]
        while queue:
            name = queue.pop()
            if name in seen:
                continue
            seen.add(name)
            cls = self.classes.get(name)
            if cls is not None and func.attr in cls.methods:
                edges.add(cls.methods[func.attr].qualname)
            queue.extend(self.subclasses.get(name, ()))
        return edges

    def _resolve_call(self, caller: FunctionInfo,
                      call: ast.Call) -> Optional[str]:
        func = call.func
        module = caller.module
        imports = self._imports.get(module, {})
        if isinstance(func, ast.Name):
            name = func.id
            # Same-module function or method of the enclosing class's
            # module-level namespace.
            qual = f"{module}:{name}"
            if qual in self.functions:
                return qual
            if name in imports:
                target_mod, symbol = imports[name]
                if symbol is None:
                    return None
                resolved = self._lookup(target_mod, symbol)
                if resolved is not None:
                    return resolved
            cls = self.classes.get(name)
            if cls is not None and cls.module == module:
                init = cls.methods.get("__init__")
                return init.qualname if init else None
            return None
        if isinstance(func, ast.Attribute):
            base = func.value
            # self.method() / cls-typed receiver.
            receiver = self.infer(caller, base)
            if receiver is not None and not receiver.startswith(
                    (_LIST, _DICT)):
                method = self.lookup_method(receiver, func.attr)
                if method is not None:
                    return method.qualname
            # module-alias calls: ``stacked.simulate_stacked(...)``.
            if isinstance(base, ast.Name) and base.id in imports:
                target_mod, symbol = imports[base.id]
                if symbol is None:
                    return self._lookup(target_mod, func.attr)
                # ``pkg.mod.func`` where ``pkg.mod`` itself was
                # imported as a symbol of a package.
                return self._lookup(f"{target_mod}.{symbol}", func.attr)
        return None

    def _lookup(self, module: Optional[str],
                symbol: str) -> Optional[str]:
        """Qualname of ``symbol`` defined in ``module``, if analyzed."""
        if module is None or module not in self.modules:
            return None
        qual = f"{module}:{symbol}"
        if qual in self.functions:
            return qual
        cls = self.classes.get(symbol)
        if cls is not None and cls.module == module:
            init = cls.methods.get("__init__")
            return init.qualname if init else None
        return None

    # -- Queries -----------------------------------------------------------

    def lookup_method(self, class_name: str,
                      method: str) -> Optional[FunctionInfo]:
        """Resolve ``method`` on ``class_name`` through project bases."""
        seen: Set[str] = set()
        queue = [class_name]
        while queue:
            name = queue.pop(0)
            if name in seen:
                continue
            seen.add(name)
            cls = self.classes.get(name)
            if cls is None:
                continue
            if method in cls.methods:
                return cls.methods[method]
            queue.extend(cls.bases)
        return None

    def function_at(self, module_suffix: str,
                    name: str) -> Optional[FunctionInfo]:
        """Find a function by module path suffix and (dotted) name.

        ``name`` may be ``func`` or ``Class.method``.  The suffix match
        mirrors :func:`repro.lint.rules._common.module_matches`.
        """
        for relpath, source in self.sources.items():
            if relpath != module_suffix and \
                    not relpath.endswith("/" + module_suffix):
                continue
            module = module_name_of(relpath)
            qual = f"{module}:{name}"
            if qual in self.functions:
                return self.functions[qual]
        return None

    def functions_in(self, source: SourceFile) -> List[FunctionInfo]:
        """Every analyzed function defined in ``source``."""
        return [info for info in self.functions.values()
                if info.source is source]

    def reachable(self, roots: Iterable[str]) -> Set[str]:
        """Call-graph closure (qualnames) from ``roots`` (inclusive)."""
        seen: Set[str] = set()
        queue = [r for r in roots if r in self.functions]
        while queue:
            qual = queue.pop()
            if qual in seen:
                continue
            seen.add(qual)
            queue.extend(self.calls.get(qual, ()))
        return seen

    # -- Type inference ----------------------------------------------------

    def infer(self, func: FunctionInfo,
              expr: ast.AST) -> Optional[str]:
        """Type string of ``expr`` inside ``func``, or None (untracked)."""
        if isinstance(expr, ast.Name):
            if expr.id == "self" and func.class_name is not None:
                return func.class_name
            return self._env(func).get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self.infer(func, expr.value)
            if base is None or base.startswith((_LIST, _DICT)):
                return None
            cls = self.classes.get(base)
            if cls is None:
                return None
            return cls.attr_types.get(expr.attr)
        if isinstance(expr, ast.Subscript):
            return _elem_of(self.infer(func, expr.value))
        if isinstance(expr, ast.Call):
            return self._infer_call(func, expr)
        if isinstance(expr, (ast.ListComp, ast.GeneratorExp)):
            # A one-generator comprehension of constructor calls types
            # as a list of that class (the ``self.caches = [...]`` idiom).
            elem = self.infer(func, expr.elt) \
                if not expr.generators[1:] else None
            return _LIST + elem if elem else None
        if isinstance(expr, ast.IfExp):
            a = self.infer(func, expr.body)
            b = self.infer(func, expr.orelse)
            return a if a == b else None
        return None

    def _infer_call(self, func: FunctionInfo,
                    call: ast.Call) -> Optional[str]:
        callee = call.func
        if isinstance(callee, ast.Name):
            name = callee.id
            if name in self.classes and name not in self.ambiguous:
                return name
            dotted = name
        else:
            dotted = _dotted(callee) or ""
        if dotted in _PASSTHROUGH_CALLS and call.args:
            return self.infer(func, call.args[0])
        # ``receiver.get(k)``/``.pop(k)`` on a typed mapping yields its
        # value type; other method calls resolve via return annotation.
        if isinstance(callee, ast.Attribute):
            receiver = self.infer(func, callee.value)
            if receiver is not None and receiver.startswith(_DICT) and \
                    callee.attr in ("get", "pop", "setdefault"):
                return _elem_of(receiver)
            if receiver is not None and \
                    not receiver.startswith((_LIST, _DICT)):
                method = self.lookup_method(receiver, callee.attr)
                if method is not None:
                    return _ann_to_type(method.node.returns)
        # Plain function call: return annotation of the resolved target.
        resolved = self._resolve_call(func, call)
        if resolved is not None and resolved in self.functions:
            target = self.functions[resolved]
            if target.name == "__init__" and target.class_name:
                return target.class_name
            return _ann_to_type(target.node.returns)
        return None

    def _env(self, func: FunctionInfo) -> Dict[str, str]:
        """Local name -> type environment of ``func`` (cached)."""
        cached = self._envs.get(func.qualname)
        if cached is not None:
            return cached
        env: Dict[str, str] = {}
        self._envs[func.qualname] = env
        conflicted: Set[str] = set()

        def record(name: str, type_str: Optional[str]) -> None:
            if type_str is None or name in conflicted:
                return
            prior = env.get(name)
            if prior is not None and prior != type_str:
                conflicted.add(name)
                del env[name]
                return
            env[name] = type_str

        args = func.node.args
        for arg in (list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)):
            record(arg.arg, _ann_to_type(arg.annotation))
        # Two passes so assignments reading later-typed locals resolve.
        for _ in range(2):
            for node in ast.walk(func.node):
                if isinstance(node, ast.Assign) and \
                        len(node.targets) == 1 and \
                        isinstance(node.targets[0], ast.Name):
                    record(node.targets[0].id,
                           self.infer(func, node.value))
                elif isinstance(node, ast.AnnAssign) and \
                        isinstance(node.target, ast.Name):
                    record(node.target.id, _ann_to_type(node.annotation))
                elif isinstance(node, ast.For) and \
                        isinstance(node.target, ast.Name):
                    record(node.target.id,
                           _elem_of(self.infer(func, node.iter)))
        return env


def build_graph(sources: Sequence[SourceFile]) -> ProjectGraph:
    """Build the project graph over ``sources``."""
    return ProjectGraph(sources)


def iter_attribute_writes(
        func: FunctionInfo) -> Iterator[Tuple[ast.Attribute, ast.AST]]:
    """(attribute target, statement) pairs written inside ``func``.

    Covers plain assignment, augmented assignment and annotated
    assignment whose target is an ``obj.attr`` expression.
    """
    for node in ast.walk(func.node):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            for leaf in _unpack_targets(target):
                if isinstance(leaf, ast.Attribute):
                    yield leaf, node


def _unpack_targets(target: ast.expr) -> Iterator[ast.expr]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _unpack_targets(elt)
    else:
        yield target
