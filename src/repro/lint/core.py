"""Core abstractions of the ``repro.lint`` static analyzer.

A :class:`Rule` inspects one parsed source file and yields
:class:`Finding` objects.  Rules self-register into :data:`REGISTRY`
via the :func:`register` decorator so that importing
:mod:`repro.lint.rules` is enough to make every project rule available
to the runner and the CLI.

Each finding carries the rule name, severity, location and a stable
*fingerprint* (derived from the rule, the file and the offending source
line's content, not its line number) used by the baseline mechanism:
grandfathered findings survive unrelated edits that merely shift line
numbers, but any change to the offending line itself re-surfaces the
finding.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterator, List, Type, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .graph import ProjectGraph
    from .source import SourceFile


class Severity(Enum):
    """How bad a finding is; errors fail the run, warnings do not."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: Severity
    path: str          # repo-relative, forward slashes
    line: int          # 1-based
    column: int        # 0-based
    message: str
    source_line: str = ""

    def fingerprint(self) -> str:
        """Content-addressed identity used by the baseline mechanism."""
        payload = "\x1f".join(
            (self.rule, self.path, self.source_line.strip(), self.message))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.column + 1}: "
                f"{self.severity} [{self.rule}] {self.message}")


class Rule:
    """Base class for all lint rules.

    Subclasses set :attr:`name` (the id used in ``noqa`` comments and
    baselines), :attr:`severity`, :attr:`description` (one line) and
    :attr:`contract` (the invariant the rule protects, shown by
    ``--list-rules``), and implement :meth:`check`.
    """

    name: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""
    contract: str = ""

    def check(self, source: "SourceFile") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, source: "SourceFile", line: int, column: int,
                message: str) -> Finding:
        """Build a finding anchored at ``line`` of ``source``."""
        return Finding(
            rule=self.name, severity=self.severity, path=source.relpath,
            line=line, column=column, message=message,
            source_line=source.line_text(line))


class ProjectRule(Rule):
    """Rule that inspects the whole analyzed file set at once.

    Per-file rules see one AST; a project rule queries the
    :class:`repro.lint.graph.ProjectGraph` the runner builds over every
    parsed file — import resolution, call edges, class attribute types —
    so it can relate a producer in one module to consumers in another.
    :meth:`check` is inert (project rules yield nothing under
    single-file harnesses); the runner calls :meth:`check_project` once
    per run, and findings still anchor to concrete file locations, so
    ``noqa`` suppression and baselining work unchanged.
    """

    def check(self, source: "SourceFile") -> Iterator[Finding]:
        return iter(())

    def check_project(self, graph: "ProjectGraph") -> Iterator[Finding]:
        raise NotImplementedError

    def finding_at(self, source: "SourceFile", node: "object",
                   message: str) -> Finding:
        """Build a finding anchored at an AST node of ``source``."""
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0)
        return self.finding(source, line, column, message)


@dataclass
class Registry:
    """Name-keyed collection of rule classes."""

    rules: Dict[str, Type[Rule]] = field(default_factory=dict)

    def add(self, rule_cls: Type[Rule]) -> Type[Rule]:
        if not rule_cls.name:
            raise ValueError(f"rule {rule_cls.__name__} has no name")
        if rule_cls.name in self.rules:
            raise ValueError(f"duplicate rule name {rule_cls.name!r}")
        self.rules[rule_cls.name] = rule_cls
        return rule_cls

    def instantiate(self) -> List[Rule]:
        return [cls() for _, cls in sorted(self.rules.items())]

    def names(self) -> List[str]:
        return sorted(self.rules)


#: The global rule registry populated by :mod:`repro.lint.rules`.
REGISTRY = Registry()


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to :data:`REGISTRY`."""
    return REGISTRY.add(rule_cls)
