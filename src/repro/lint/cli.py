"""``python -m repro.lint`` — the analyzer's command-line front end.

Exit status: 0 when no new error-severity findings (and no parse
errors), 1 when new findings exist, 2 on usage errors.  Baselined and
``noqa``-suppressed findings never fail the run; stale baseline entries
are reported (and removed by ``--prune-baseline``) so the committed
file shrinks over time.

Findings are cached under ``$REPRO_CACHE_DIR/lint`` (default
``.repro_cache/lint``) keyed by file content hash, so re-runs over an
unchanged tree re-analyze nothing; ``--no-cache`` disables it.
``--format github`` emits workflow-command annotations for CI,
``--format json`` a stable machine-readable document.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from ..core import flags as _flags
from . import rules as _rules  # noqa: F401  (imports populate REGISTRY)
from .baseline import Baseline
from .core import REGISTRY
from .formats import FORMATS, render
from .runner import run

#: Default baseline filename, looked up in the current directory.
DEFAULT_BASELINE = "lint_baseline.json"


def _default_paths() -> List[Path]:
    """``src/repro`` when run from the repo root, else the package dir."""
    candidate = Path("src") / "repro"
    if candidate.is_dir():
        return [candidate]
    return [Path(__file__).resolve().parent.parent]


def _default_cache_dir() -> Path:
    return Path(_flags.read("REPRO_CACHE_DIR")) / "lint"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Project-specific static analyzer for the repro "
                    "simulator core.")
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to analyze (default: src/repro)")
    parser.add_argument(
        "--baseline", type=Path, default=None, metavar="FILE",
        help=f"baseline file of grandfathered findings (default: "
             f"./{DEFAULT_BASELINE} when present)")
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file; report every finding as new")
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="write the current findings to the baseline file and exit 0")
    parser.add_argument(
        "--prune-baseline", action="store_true",
        help="rewrite the baseline file without its stale entries "
             "(fingerprints that no longer match any finding)")
    parser.add_argument(
        "--justification", default="grandfathered", metavar="TEXT",
        help="justification recorded for entries written by "
             "--update-baseline")
    parser.add_argument(
        "--select", action="append", default=None, metavar="RULE",
        help="run only this rule (repeatable; disables the cache)")
    parser.add_argument(
        "--format", choices=FORMATS, default="text", dest="fmt",
        help="output format (default: text; github emits ::error "
             "workflow annotations for CI)")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk finding cache "
             "($REPRO_CACHE_DIR/lint)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="describe every registered rule and exit")
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="also print findings hidden by inline noqa comments")
    parser.add_argument(
        "--quiet", action="store_true", help="print only the summary line")
    return parser


def _list_rules() -> str:
    chunks = []
    for rule in REGISTRY.instantiate():
        chunks.append(f"{rule.name} [{rule.severity}]\n"
                      f"    {rule.description}\n"
                      f"    contract: {rule.contract}")
    return "\n".join(chunks)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    selected = None
    if args.select:
        known = set(REGISTRY.names())
        unknown = sorted(set(args.select) - known)
        if unknown:
            parser.error(f"unknown rule(s): {', '.join(unknown)}; "
                         f"choose from {', '.join(sorted(known))}")
        selected = [cls() for name, cls in sorted(REGISTRY.rules.items())
                    if name in set(args.select)]

    baseline_path = args.baseline
    if baseline_path is None:
        default = Path(DEFAULT_BASELINE)
        baseline_path = default if default.is_file() else None
    baseline = Baseline()
    if baseline_path is not None and not args.no_baseline \
            and not args.update_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as exc:
            print(f"repro.lint: {exc}", file=sys.stderr)
            return 2

    cache_dir = None if args.no_cache else _default_cache_dir()
    paths = list(args.paths) if args.paths else _default_paths()
    try:
        report = run(paths, baseline=baseline, rules=selected,
                     root=Path.cwd(), cache_dir=cache_dir)
    except FileNotFoundError as exc:
        print(f"repro.lint: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        target = args.baseline if args.baseline is not None \
            else Path(DEFAULT_BASELINE)
        Baseline.from_findings(report.new + report.baselined,
                               args.justification).save(target)
        print(f"repro.lint: wrote {len(report.new) + len(report.baselined)} "
              f"finding(s) to {target}")
        return 0

    if args.prune_baseline:
        if baseline_path is None:
            print("repro.lint: --prune-baseline needs a baseline file",
                  file=sys.stderr)
            return 2
        for fp in report.stale_baseline:
            baseline.entries.pop(fp, None)
        baseline.save(baseline_path)
        print(f"repro.lint: pruned {len(report.stale_baseline)} stale "
              f"entr{'y' if len(report.stale_baseline) == 1 else 'ies'} "
              f"from {baseline_path}")
        report.stale_baseline = []

    print(render(report, args.fmt, show_suppressed=args.show_suppressed,
                 quiet=args.quiet))
    return 1 if report.failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
