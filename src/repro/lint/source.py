"""Parsed source files and inline ``noqa`` suppressions.

A :class:`SourceFile` bundles everything a rule needs: the raw text,
the split lines, the parsed AST with parent links, the repo-relative
path used in reports/baselines, and the per-line suppression map parsed
from ``# repro: noqa(rule-a, rule-b)`` comments (a bare
``# repro: noqa`` suppresses every rule on that line).  Suppressions
are matched against the line a finding is anchored to, so a noqa on a
``for`` statement suppresses the hot-loop finding it would raise.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional

#: ``# repro: noqa`` or ``# repro: noqa(rule-a, rule-b)``.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\s*(?:\(\s*(?P<rules>[\w,\s-]*)\s*\))?", re.IGNORECASE)

#: Sentinel meaning "every rule is suppressed on this line".
ALL_RULES: FrozenSet[str] = frozenset({"*"})


def _parse_noqa(text: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> suppressed rule names for ``text``.

    Comments are found with :mod:`tokenize` so that ``noqa``-looking
    content inside string literals never suppresses anything.
    """
    suppressions: Dict[int, FrozenSet[str]] = {}
    try:
        tokens = tokenize.generate_tokens(StringIO(text).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(tok.string)
            if match is None:
                continue
            rules = match.group("rules")
            if rules is None:
                names: FrozenSet[str] = ALL_RULES
            else:
                names = frozenset(
                    name.strip() for name in rules.split(",") if name.strip())
                if not names:
                    names = ALL_RULES
            line = tok.start[0]
            suppressions[line] = suppressions.get(line, frozenset()) | names
    except tokenize.TokenError:  # unterminated string etc.; AST parse
        pass                     # will have failed loudly already
    return suppressions


@dataclass
class SourceFile:
    """One parsed python file, ready for rule checks."""

    path: Path
    relpath: str
    text: str
    tree: ast.AST
    lines: List[str]
    noqa: Dict[int, FrozenSet[str]]
    _parents: Dict[int, ast.AST] = field(default_factory=dict)

    @classmethod
    def from_text(cls, text: str, path: Path,
                  root: Optional[Path] = None) -> "SourceFile":
        relpath = path.as_posix()
        if root is not None:
            try:
                relpath = path.resolve().relative_to(
                    root.resolve()).as_posix()
            except ValueError:
                pass
        tree = ast.parse(text, filename=str(path))
        source = cls(path=path, relpath=relpath, text=text, tree=tree,
                     lines=text.splitlines(), noqa=_parse_noqa(text))
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                source._parents[id(child)] = parent
        return source

    @classmethod
    def load(cls, path: Path, root: Optional[Path] = None) -> "SourceFile":
        return cls.from_text(path.read_text(encoding="utf-8"), path,
                             root=root)

    # -- Queries ---------------------------------------------------------

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def is_suppressed(self, rule: str, line: int) -> bool:
        names = self.noqa.get(line)
        if names is None:
            return False
        return "*" in names or rule in names

    def walk(self) -> Iterator[ast.AST]:
        return ast.walk(self.tree)
