"""Parsed source files and inline ``noqa`` suppressions.

A :class:`SourceFile` bundles everything a rule needs: the raw text,
the split lines, the parsed AST with parent links, the repo-relative
path used in reports/baselines, and the per-line suppression map parsed
from ``# repro: noqa(rule-a, rule-b)`` comments (a bare
``# repro: noqa`` suppresses every rule on that line).  Suppressions
are matched against the line a finding is anchored to, so a noqa on a
``for`` statement suppresses the hot-loop finding it would raise.

Findings anchor at a statement's *first* line, but the statement (or
its header, for compound statements) may span several physical lines —
a wrapped ``for`` iterable, a decorated ``def``.  A noqa comment on any
line of that span therefore also suppresses findings anchored at the
statement's first line; :attr:`SourceFile.noqa_comments` keeps the raw
per-comment map and :attr:`SourceFile.noqa_sources` the reverse anchor
-> comment-line mapping, which the runner uses to flag comments that
suppress nothing (unused-suppression).
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional

#: Matches the bare form and the rule-list form ``noqa(rule-a, rule-b)``
#: of the project's suppression comment.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\s*(?:\(\s*(?P<rules>[\w,\s-]*)\s*\))?", re.IGNORECASE)

#: Sentinel meaning "every rule is suppressed on this line".
ALL_RULES: FrozenSet[str] = frozenset({"*"})


def _parse_noqa(text: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> suppressed rule names for ``text``.

    Comments are found with :mod:`tokenize` so that ``noqa``-looking
    content inside string literals never suppresses anything.
    """
    suppressions: Dict[int, FrozenSet[str]] = {}
    try:
        tokens = tokenize.generate_tokens(StringIO(text).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(tok.string)
            if match is None:
                continue
            rules = match.group("rules")
            if rules is None:
                names: FrozenSet[str] = ALL_RULES
            else:
                names = frozenset(
                    name.strip() for name in rules.split(",") if name.strip())
                if not names:
                    names = ALL_RULES
            line = tok.start[0]
            suppressions[line] = suppressions.get(line, frozenset()) | names
    except tokenize.TokenError:  # unterminated string etc.; AST parse
        pass                     # will have failed loudly already
    return suppressions


def relpath_of(path: Path, root: Optional[Path] = None) -> str:
    """Repo-relative posix path used in reports, baselines and caches."""
    relpath = path.as_posix()
    if root is not None:
        try:
            relpath = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return relpath


#: Compound statements whose *header* (first line through the line
#: before the first body statement) can wrap; a noqa on any header line
#: suppresses findings anchored at the statement's first line.
_COMPOUND = (ast.If, ast.For, ast.AsyncFor, ast.While, ast.With,
             ast.AsyncWith, ast.Try, ast.FunctionDef,
             ast.AsyncFunctionDef, ast.ClassDef)


def _statement_spans(tree: ast.AST) -> List[tuple]:
    """(anchor, first, last) line intervals of statements and handlers.

    ``anchor`` is where findings for the statement land (its
    ``lineno``); ``first``..``last`` is the physical span a noqa
    comment may sit on — the whole statement for simple statements, the
    header (including decorators) for compound ones.
    """
    spans: List[tuple] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.stmt, ast.excepthandler)):
            continue
        anchor = node.lineno
        first = anchor
        decorators = getattr(node, "decorator_list", [])
        if decorators:
            first = min([d.lineno for d in decorators] + [anchor])
        body = getattr(node, "body", None)
        if isinstance(node, _COMPOUND + (ast.excepthandler,)) and body:
            last = max(anchor, body[0].lineno - 1)
        else:
            last = getattr(node, "end_lineno", anchor) or anchor
        if first != last or first != anchor:
            spans.append((anchor, first, last))
    return spans


@dataclass
class SourceFile:
    """One parsed python file, ready for rule checks."""

    path: Path
    relpath: str
    text: str
    tree: ast.AST
    lines: List[str]
    #: anchor line -> suppressed rule names (statement spans expanded).
    noqa: Dict[int, FrozenSet[str]]
    #: physical comment line -> rule names, exactly as written.
    noqa_comments: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    #: anchor line -> the comment lines contributing suppressions to it.
    noqa_sources: Dict[int, List[int]] = field(default_factory=dict)
    _parents: Dict[int, ast.AST] = field(default_factory=dict)

    @classmethod
    def from_text(cls, text: str, path: Path,
                  root: Optional[Path] = None) -> "SourceFile":
        tree = ast.parse(text, filename=str(path))
        comments = _parse_noqa(text)
        noqa = dict(comments)
        sources = {line: [line] for line in comments}
        if comments:
            for anchor, first, last in _statement_spans(tree):
                for line, names in comments.items():
                    if first <= line <= last and line != anchor:
                        noqa[anchor] = noqa.get(anchor, frozenset()) | names
                        sources.setdefault(anchor, []).append(line)
        source = cls(path=path, relpath=relpath_of(path, root), text=text,
                     tree=tree, lines=text.splitlines(), noqa=noqa,
                     noqa_comments=comments, noqa_sources=sources)
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                source._parents[id(child)] = parent
        return source

    @classmethod
    def load(cls, path: Path, root: Optional[Path] = None) -> "SourceFile":
        return cls.from_text(path.read_text(encoding="utf-8"), path,
                             root=root)

    # -- Queries ---------------------------------------------------------

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def is_suppressed(self, rule: str, line: int) -> bool:
        names = self.noqa.get(line)
        if names is None:
            return False
        return "*" in names or rule in names

    def walk(self) -> Iterator[ast.AST]:
        return ast.walk(self.tree)
