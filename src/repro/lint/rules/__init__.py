"""Project-specific rule set; importing this package registers them all.

Each module defines one rule (or one tightly-related family) and
documents the contract it protects.  See ``docs/static_analysis.md``
for the rule catalogue and suppression/baseline workflow.
"""

from __future__ import annotations

from . import bare_except      # noqa: F401
from . import config_validation  # noqa: F401
from . import dtype_discipline   # noqa: F401
from . import env_flag_registry  # noqa: F401
from . import float_eq           # noqa: F401
from . import hot_loop           # noqa: F401
from . import mutable_default    # noqa: F401
from . import nondeterminism     # noqa: F401
from . import reachable_hot_loop  # noqa: F401
from . import shared_encoding_alias  # noqa: F401
from . import stats_drift        # noqa: F401
from . import telemetry_registry  # noqa: F401
