"""Rule ``stats-drift`` — every stats field is comparable or telemetry.

``RunStats.comparable_dict()`` is the equality contract between the
batched, serial and parallel execution paths: differential tests
compare it across paths, and the on-disk result cache keys embed its
field list.  A ``RunStats``/``KernelStats`` field added without a
decision — include it in ``comparable_dict()`` (it is simulated
physics) or list it in the ``TELEMETRY_FIELDS`` exclusion registry (it
is host-side telemetry) — would silently escape both the differential
tests and the cache-key schema token.

The rule parses the stats module's AST: it collects the annotated
fields of each stats dataclass, the string keys used anywhere inside
its ``comparable_dict`` method, and the string constants in the
module-level ``TELEMETRY_FIELDS`` registry, then requires every field
to appear in exactly one of the two places (fields in *both* are also
flagged — a field cannot be physics and telemetry at once).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from ..core import Finding, Rule, Severity, register
from ..source import SourceFile
from ._common import module_matches

#: Module holding the stats dataclasses.
STATS_MODULES = ("repro/sim/stats.py",)

#: Dataclasses subject to the contract.  ``KernelStats`` fields appear
#: as keys of the per-kernel sub-dicts inside ``RunStats.comparable_dict``.
STATS_CLASSES = ("RunStats", "KernelStats")

#: Name of the module-level telemetry exclusion registry.
REGISTRY_NAME = "TELEMETRY_FIELDS"


def _annotated_fields(cls: ast.ClassDef) -> List[ast.AnnAssign]:
    out = []
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and \
                isinstance(stmt.target, ast.Name):
            out.append(stmt)
    return out


def _string_keys(node: ast.AST) -> Set[str]:
    """Every string constant used as a dict key under ``node``."""
    keys: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Dict):
            for key in child.keys:
                if isinstance(key, ast.Constant) and \
                        isinstance(key.value, str):
                    keys.add(key.value)
    return keys


def _registry_strings(tree: ast.AST) -> Optional[Set[str]]:
    """String constants in the ``TELEMETRY_FIELDS`` assignment, if any."""
    for node in ast.walk(tree):
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == REGISTRY_NAME:
                assert value is not None
                return {child.value for child in ast.walk(value)
                        if isinstance(child, ast.Constant)
                        and isinstance(child.value, str)}
    return None


@register
class StatsDriftRule(Rule):
    name = "stats-drift"
    severity = Severity.ERROR
    description = ("stats dataclass field missing from both "
                   "comparable_dict() and the TELEMETRY_FIELDS registry")
    contract = ("every RunStats/KernelStats field is either compared "
                "across execution paths (physics) or explicitly "
                "registered as host telemetry; nothing drifts in "
                "unclassified")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if not module_matches(source, STATS_MODULES):
            return
        telemetry = _registry_strings(source.tree)
        classes = {node.name: node for node in ast.walk(source.tree)
                   if isinstance(node, ast.ClassDef)
                   and node.name in STATS_CLASSES}
        if not classes:
            return
        if telemetry is None:
            anchor = next(iter(classes.values()))
            yield self.finding(
                source, anchor.lineno, anchor.col_offset,
                f"stats module defines {'/'.join(sorted(classes))} but no "
                f"module-level {REGISTRY_NAME} registry; add one (it may "
                f"be empty) so telemetry exclusions are explicit")
            telemetry = set()
        comparable: Set[str] = set()
        run_stats = classes.get("RunStats")
        if run_stats is not None:
            for stmt in run_stats.body:
                if isinstance(stmt, ast.FunctionDef) and \
                        stmt.name == "comparable_dict":
                    comparable = _string_keys(stmt)
        for cls in classes.values():
            for field in _annotated_fields(cls):
                name = field.target.id  # type: ignore[union-attr]
                in_comparable = name in comparable
                in_telemetry = name in telemetry
                if not in_comparable and not in_telemetry:
                    yield self.finding(
                        source, field.lineno, field.col_offset,
                        f"{cls.name}.{name} appears in neither "
                        f"comparable_dict() nor {REGISTRY_NAME}; decide "
                        f"whether it is simulated physics (compare it) or "
                        f"host telemetry (register it)")
                elif in_comparable and in_telemetry:
                    yield self.finding(
                        source, field.lineno, field.col_offset,
                        f"{cls.name}.{name} is both compared and "
                        f"registered as telemetry; pick one")
