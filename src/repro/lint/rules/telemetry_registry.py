"""Rule ``telemetry-registry`` — stats writes hit registered fields only.

The per-file ``stats-drift`` rule keeps the *declarations* of the stats
dataclasses honest: every annotated field of ``RunStats``/
``KernelStats`` must be classified as physics (``comparable_dict()``)
or host telemetry (``TELEMETRY_FIELDS``).  That check cannot see a
write site in another module inventing an attribute the dataclass never
declared — ``stats.new_counter += 1`` in the stacked driver silently
grows unclassified state that neither the differential tests nor the
cache-key schema ever notice.

This cross-module rule closes that hole using the project graph's type
inference: every attribute *write* whose receiver types as one of the
tracked stats classes (``RunStats``, ``KernelStats``,
``StackedTelemetry``), in any analyzed module, must name a string
registered in ``TELEMETRY_FIELDS`` or used as a ``comparable_dict()``
key.  Unknown receivers are untracked (false negatives over false
positives), and the rule is silent when the stats module is not part of
the analyzed set.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from ..core import Finding, ProjectRule, Severity, register
from ..graph import FunctionInfo, ProjectGraph, iter_attribute_writes
from ..source import SourceFile
from ._common import module_matches
from .stats_drift import STATS_MODULES, _registry_strings, _string_keys

#: Classes whose attribute writes must land on registered fields.
#: ``StackedTelemetry`` lives in ``repro/sim/stacked.py`` but shares the
#: registry in the stats module.
TRACKED_CLASSES = ("KernelStats", "RunStats", "StackedTelemetry")


def _registered_names(stats: SourceFile) -> Set[str]:
    """TELEMETRY_FIELDS strings plus comparable_dict() dict keys."""
    names: Set[str] = set(_registry_strings(stats.tree) or ())
    for node in ast.walk(stats.tree):
        if isinstance(node, ast.FunctionDef) and \
                node.name == "comparable_dict":
            names |= _string_keys(node)
    return names


@register
class TelemetryRegistryRule(ProjectRule):
    name = "telemetry-registry"
    severity = Severity.ERROR
    description = ("write to a stats/telemetry attribute that is not "
                   "registered in TELEMETRY_FIELDS or comparable_dict()")
    contract = ("no module can grow unclassified state on RunStats/"
                "KernelStats/StackedTelemetry; every attribute written "
                "anywhere is either compared across execution paths or "
                "declared host telemetry")

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        stats_source: Optional[SourceFile] = None
        for source in graph.sources.values():
            if module_matches(source, STATS_MODULES):
                stats_source = source
                break
        if stats_source is None:
            return
        registered = _registered_names(stats_source)
        tracked = {name for name in TRACKED_CLASSES
                   if name in graph.classes}
        if not tracked:
            return
        hits: List[Tuple[str, int, Finding]] = []
        for func in graph.functions.values():
            for target, stmt in iter_attribute_writes(func):
                receiver = graph.infer(func, target.value)
                if receiver not in tracked:
                    continue
                if target.attr in registered:
                    continue
                if self._is_declaration(func, target, stmt):
                    continue
                finding = self.finding_at(
                    func.source, stmt,
                    f"{receiver}.{target.attr} is written here but "
                    f"registered in neither TELEMETRY_FIELDS nor "
                    f"comparable_dict() (repro/sim/stats.py); classify "
                    f"it before growing the telemetry surface")
                hits.append((func.source.relpath, stmt.lineno, finding))
        for _, _, finding in sorted(hits, key=lambda h: (h[0], h[1])):
            yield finding

    @staticmethod
    def _is_declaration(func: FunctionInfo, target: ast.Attribute,
                        stmt: ast.AST) -> bool:
        """``self.x`` inits inside the tracked class itself are the
        dataclass's own declarations; ``stats-drift`` already polices
        those against the registry."""
        return (func.class_name in TRACKED_CLASSES
                and isinstance(target.value, ast.Name)
                and target.value.id == "self")
