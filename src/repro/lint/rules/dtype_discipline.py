"""Rule ``dtype-discipline`` — explicit dtypes in the vector kernels.

The structure-of-arrays LLC kernel (:mod:`repro.cache.vector`) and the
engine's batched path are bit-identical to the scalar reference only
while every array carries the dtype the kernel's arithmetic assumes
(``int64`` tags/indices, ``bool`` masks).  Default dtypes are
platform-dependent (``np.arange`` yields int32 on Windows) and silently
shift under refactors, so every numpy array construction in the
designated modules must say what it means.

Two checks:

* array-constructing calls (``np.array``, ``np.zeros``, ``np.empty``,
  ``np.full``, ``np.arange``, ``np.asarray``, ``np.ascontiguousarray``,
  ``np.frombuffer``, ``.astype(...)`` excepted) must pass an explicit
  ``dtype=`` keyword;
* arithmetic mixing a float literal into an expression rooted at a
  tag/index array name (``tags``/``idx``/``sets``/``slots``/``rows``/
  ``lines``) is flagged — integer tag math must stay integral.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..core import Finding, Rule, Severity, register
from ..source import SourceFile
from ._common import call_name, module_matches

#: Modules under dtype discipline.
DTYPE_MODULES = (
    "repro/cache/vector.py",
    "repro/sim/engine.py",
)

#: numpy constructors that take a ``dtype`` keyword and default it.
_CONSTRUCTORS = frozenset({
    "np.array", "np.asarray", "np.ascontiguousarray", "np.zeros",
    "np.empty", "np.full", "np.arange", "np.frombuffer", "np.fromiter",
    "numpy.array", "numpy.asarray", "numpy.ascontiguousarray",
    "numpy.zeros", "numpy.empty", "numpy.full", "numpy.arange",
    "numpy.frombuffer", "numpy.fromiter",
})

#: Integer tag/index array spellings used by the kernels.
_TAG_INDEX_RE = re.compile(
    r"^(tags?|tg|idx|index|indices|sets?|slots?|rows?|lines?|ranks?"
    r"|counts?)(\d*)(_np|_l|_s|_e|_big|_tab)?$")


def _has_dtype_kwarg(node: ast.Call) -> bool:
    return any(kw.arg == "dtype" for kw in node.keywords)


def _tag_array_root(node: ast.AST) -> bool:
    """Whether ``node`` (a BinOp operand) is rooted at a tag/index name."""
    current = node
    while isinstance(current, (ast.Subscript, ast.Attribute)):
        current = current.value
    if isinstance(current, ast.Name):
        return bool(_TAG_INDEX_RE.match(current.id))
    return False


@register
class DtypeDisciplineRule(Rule):
    name = "dtype-discipline"
    severity = Severity.ERROR
    description = ("numpy array construction without an explicit dtype, "
                   "or float arithmetic on an integer tag/index array")
    contract = ("the vectorized LLC kernel and the batched engine path "
                "are bit-identical to the scalar model only while every "
                "array carries an explicit, integral-where-needed dtype")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if not module_matches(source, DTYPE_MODULES):
            return
        for node in source.walk():
            if isinstance(node, ast.Call):
                name = call_name(node)
                if name in _CONSTRUCTORS and not _has_dtype_kwarg(node):
                    yield self.finding(
                        source, node.lineno, node.col_offset,
                        f"{name}(...) without an explicit dtype=; default "
                        f"dtypes are platform-dependent and drift under "
                        f"refactors")
            elif isinstance(node, ast.BinOp) and isinstance(
                    node.op, (ast.Add, ast.Sub, ast.Mult, ast.Div,
                              ast.FloorDiv, ast.Mod)):
                for this, other in ((node.left, node.right),
                                    (node.right, node.left)):
                    if isinstance(other, ast.Constant) and \
                            isinstance(other.value, float) and \
                            _tag_array_root(this):
                        yield self.finding(
                            source, node.lineno, node.col_offset,
                            "float literal mixed into tag/index array "
                            "arithmetic; integer tag math must stay "
                            "integral (use an int literal or an explicit "
                            "cast)")
                        break
