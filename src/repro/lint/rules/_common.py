"""Shared AST helpers for the rule modules."""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Sequence, Set

from ..source import SourceFile


def module_matches(source: SourceFile, suffixes: Sequence[str]) -> bool:
    """Whether ``source`` is one of the modules named by ``suffixes``.

    Matching is by posix path suffix (``sim/engine.py``), so it works
    for the repo layout, for installed packages and for test fixtures
    that mirror the tail of the real path.
    """
    rel = source.relpath
    return any(rel == suffix or rel.endswith("/" + suffix)
               for suffix in suffixes)


def collect_names(node: ast.AST) -> Set[str]:
    """Every bare identifier and attribute name appearing under ``node``."""
    names: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            names.add(child.id)
        elif isinstance(child, ast.Attribute):
            names.add(child.attr)
    return names


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """Dotted name of a call's target, e.g. ``np.zeros``."""
    return dotted_name(node.func)


def enclosing_functions(source: SourceFile,
                        node: ast.AST) -> Iterator[ast.FunctionDef]:
    """Innermost-first chain of function defs containing ``node``."""
    for ancestor in source.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield ancestor  # type: ignore[misc]


def enclosing_class(source: SourceFile,
                    node: ast.AST) -> Optional[ast.ClassDef]:
    """Nearest class definition containing ``node``, if any."""
    for ancestor in source.ancestors(node):
        if isinstance(ancestor, ast.ClassDef):
            return ancestor
    return None
