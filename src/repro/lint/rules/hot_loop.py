"""Rule ``hot-loop`` — no per-access Python loops in hot-path modules.

PR 1/PR 2 replaced per-access Python loops in the engine and the LLC
probe path with numpy kernels; simulation throughput depends on those
loops never creeping back.  This rule flags ``for``/``while`` loops in
the designated hot-path modules whose iterable (or loop condition)
mentions a per-access trace array — ``addrs``/``writes``/``chips``/
``clusters``/``slices``/``channels``/``homes``/``pairs`` and their
``_np``/``_l``/``_s``/``_r`` spellings, ``epoch.<field>`` attributes,
or the conventional batch length ``n``/``range(len(...))`` forms.

Loops over *grouped* quantities (unique pages, nonzero bincount bins,
chips, slices) are inherently bounded by the machine geometry, not the
access count, and are not flagged.  The deliberate per-access loops —
the serial reference path, the sequential probe loop, the scalar
fallback — carry inline ``# repro: noqa(hot-loop)`` suppressions with
their justification.

The rule also covers *cooperative drivers* (``_drive``-style generator
pumps, PR 5/6): in the designated driver modules, any loop nested
inside a pump's round loop (a ``while``) whose iterable mentions a
per-lane collection — ``probes``/``members``/``outcomes``/``sids``
and friends — runs O(rounds x lanes) times and is flagged.  Cheap
deliberate bookkeeping loops (stats charging, probe regrouping) carry
the same inline suppressions; anything that does real per-lane *work*
there belongs in the bank's shared entry points, which encode each
unique stream once and replay it per lane.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..core import Finding, Rule, Severity, register
from ..source import SourceFile
from ._common import module_matches

#: Modules whose loops are subject to this rule.
HOT_MODULES = (
    "repro/sim/engine.py",
    "repro/cache/vector.py",
    "repro/cache/cache.py",
)

#: Modules hosting cooperative drivers (generator pumps that resolve
#: many lanes per round): per-lane loops inside their round loops are
#: subject to the driver arm of this rule.
DRIVER_MODULES = (
    "repro/sim/stacked.py",
)

#: Per-lane collection spellings used by the stacked driver: one entry
#: per lane (or per group member) each round.  Loop targets like
#: ``probe``/``member`` stay singular, so they never match.
_LANE_ARRAY_RE = re.compile(
    r"^(probes|member_probes|outcomes|sids|reps|steps|members"
    r"|engines|lanes|gcalls|scalls)$")

#: Per-access array spellings used across the engine and cache kernels.
#: Deliberately plural-only: ``chip``/``addr``/``slice`` are scalar loop
#: variables all over the geometry-bounded accounting loops.
_ACCESS_ARRAY_RE = re.compile(
    r"^(addrs|writes|chips|clusters|slices|channels|homes|pairs"
    r"|hit_stages|accesses)(_np|_l|_s|_r|_e|_big)?$")

#: Bare batch-length names that only ever mean "number of accesses".
_LENGTH_NAMES = frozenset({"n", "num_accesses"})

#: ``epoch.<attr>`` attributes that are per-access arrays.
_EPOCH_ARRAYS = frozenset({"addrs", "writes", "chips", "clusters"})


def _mentions_access_array(expr: ast.AST) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Name):
            if _ACCESS_ARRAY_RE.match(node.id):
                return True
        elif isinstance(node, ast.Attribute):
            if node.attr in _EPOCH_ARRAYS and \
                    isinstance(node.value, ast.Name) and \
                    node.value.id in ("epoch", "trace"):
                return True
        elif isinstance(node, ast.Call):
            # range(n) / range(len(<access array>)): the canonical
            # per-access index loops.
            func = node.func
            if isinstance(func, ast.Name) and func.id == "range":
                for arg in node.args:
                    if isinstance(arg, ast.Name) and \
                            arg.id in _LENGTH_NAMES:
                        return True
    return False


def _mentions_lane_array(expr: ast.AST) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and _LANE_ARRAY_RE.match(node.id):
            return True
    return False


def _loop_suspects(node: ast.AST) -> list:
    """The (expr, subject) pairs a loop-ish node iterates or tests."""
    if isinstance(node, ast.For):
        return [(node.iter, "iterable")]
    if isinstance(node, ast.While):
        return [(node.test, "condition")]
    if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                         ast.GeneratorExp)):
        return [(gen.iter, "comprehension iterable")
                for gen in node.generators]
    return []


@register
class HotLoopRule(Rule):
    name = "hot-loop"
    severity = Severity.ERROR
    description = ("Python for/while loop over a per-access trace array "
                   "in a hot-path module")
    contract = ("the engine's batched path and the vectorized LLC probe "
                "kernel resolve whole epochs with numpy; per-access "
                "Python loops belong only to the serial reference path "
                "and must be explicitly justified")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if module_matches(source, DRIVER_MODULES):
            yield from self._check_driver(source)
        if not module_matches(source, HOT_MODULES):
            return
        for node in source.walk():
            for expr, subject in _loop_suspects(node):
                # Iterating a literal tuple/list of arrays walks a fixed
                # handful of objects, not the accesses inside them.
                if isinstance(expr, (ast.Tuple, ast.List)):
                    continue
                if _mentions_access_array(expr):
                    yield self.finding(
                        source, node.lineno, node.col_offset,
                        f"per-access Python loop ({subject} touches a "
                        f"trace/access array); vectorize it or justify "
                        f"with '# repro: noqa(hot-loop)'")
                    break

    def _check_driver(self, source: SourceFile) -> Iterator[Finding]:
        """Flag per-lane loops inside a cooperative driver's round loop.

        A pump's ``while`` round loop repeats until every lane's
        generator is exhausted; any loop under it whose iterable names
        a per-lane collection runs O(rounds x lanes) times in Python.
        """
        seen = set()
        for pump in source.walk():
            if not isinstance(pump, ast.While):
                continue
            for node in ast.walk(pump):
                if node is pump or not _loop_suspects(node) or \
                        (node.lineno, node.col_offset) in seen:
                    continue
                for expr, subject in _loop_suspects(node):
                    if _mentions_lane_array(expr):
                        seen.add((node.lineno, node.col_offset))
                        yield self.finding(
                            source, node.lineno, node.col_offset,
                            f"per-lane Python loop in a cooperative "
                            f"driver round ({subject} touches a lane "
                            f"collection); move the work into a shared "
                            f"bank entry point or justify with "
                            f"'# repro: noqa(hot-loop)'")
                        break
