"""Rule ``config-validation`` — every config field has a validator.

The engine trusts its configuration dataclasses
(:class:`repro.sim.engine.EngineParams` and the geometry/config classes
of :mod:`repro.arch.config`): a negative latency or a zero bandwidth
does not crash, it silently produces wrong timing.  Every field of the
designated frozen dataclasses must therefore be *touched* (read as
``self.<field>``) inside ``__post_init__`` — the conventional place for
``_require``-style validation in this codebase.

Exemptions, because they validate themselves elsewhere:

* ``bool``-annotated fields (two-valued; nothing to validate);
* fields annotated with another config dataclass defined in the same
  module (nested configs run their own ``__post_init__``).

Anything else that is deliberately unvalidated takes an inline
``# repro: noqa(config-validation)`` on the field's line.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from ..core import Finding, Rule, Severity, register
from ..source import SourceFile
from ._common import module_matches

#: Modules whose frozen dataclasses are subject to the rule.
CONFIG_MODULES = (
    "repro/arch/config.py",
    "repro/sim/engine.py",
)


def _is_frozen_dataclass(cls: ast.ClassDef) -> bool:
    for deco in cls.decorator_list:
        if isinstance(deco, ast.Call):
            name = deco.func
            if isinstance(name, ast.Name) and name.id == "dataclass" or \
                    isinstance(name, ast.Attribute) and \
                    name.attr == "dataclass":
                for kw in deco.keywords:
                    if kw.arg == "frozen" and \
                            isinstance(kw.value, ast.Constant) and \
                            kw.value.value is True:
                        return True
    return False


def _annotation_names(annotation: Optional[ast.expr]) -> Set[str]:
    """Bare identifiers appearing in an annotation expression."""
    if annotation is None:
        return set()
    return {node.id for node in ast.walk(annotation)
            if isinstance(node, ast.Name)}


def _post_init_reads(cls: ast.ClassDef) -> Optional[Set[str]]:
    """Names read as ``self.<name>`` inside ``__post_init__``, if defined."""
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and \
                stmt.name == "__post_init__":
            reads: Set[str] = set()
            for node in ast.walk(stmt):
                if isinstance(node, ast.Attribute) and \
                        isinstance(node.value, ast.Name) and \
                        node.value.id == "self":
                    reads.add(node.attr)
            return reads
    return None


@register
class ConfigValidationRule(Rule):
    name = "config-validation"
    severity = Severity.ERROR
    description = ("config dataclass field never touched by "
                   "__post_init__ validation")
    contract = ("a mis-set EngineParams/geometry field must fail loudly "
                "at construction, not silently skew the timing model")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if not module_matches(source, CONFIG_MODULES):
            return
        classes: List[ast.ClassDef] = [
            node for node in ast.walk(source.tree)
            if isinstance(node, ast.ClassDef) and _is_frozen_dataclass(node)]
        local_dataclasses = {cls.name for cls in classes}
        for cls in classes:
            fields = [stmt for stmt in cls.body
                      if isinstance(stmt, ast.AnnAssign)
                      and isinstance(stmt.target, ast.Name)]
            if not fields:
                continue
            reads = _post_init_reads(cls)
            if reads is None:
                yield self.finding(
                    source, cls.lineno, cls.col_offset,
                    f"frozen config dataclass {cls.name} has no "
                    f"__post_init__; add one validating its fields")
                continue
            for field in fields:
                assert isinstance(field.target, ast.Name)
                name = field.target.id
                ann_names = _annotation_names(field.annotation)
                if "bool" in ann_names:
                    continue
                if ann_names & local_dataclasses:
                    continue  # nested config validates itself
                if name not in reads:
                    yield self.finding(
                        source, field.lineno, field.col_offset,
                        f"{cls.name}.{name} is never read in "
                        f"__post_init__; validate it (or suppress with "
                        f"'# repro: noqa(config-validation)' if it truly "
                        f"cannot be invalid)")
