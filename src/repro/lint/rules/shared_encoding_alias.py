"""Rule ``shared-encoding-alias`` — shared reuse encodings are immutable.

The stacked driver's whole point (PR 6) is that one
``_StreamEncoding`` — the config-independent reuse encoding of an
access stream — is built once and *replayed* against many lanes'
state.  That sharing is only sound because replay treats the encoding
as read-only: a single in-place write (a subscript store, an
``arr.sort()``, an ``np.put``, a ``flags.writeable`` flip) poisons
every other lane that replays the same object, and nothing crashes —
the results are just silently wrong for some subset of lanes.

This rule enforces the contract statically, project-wide.  Using the
graph's type inference it classifies expressions as encoding objects
(``_StreamEncoding``/``_BucketEncoding``), containers of them, or
encoding-owned arrays (``ndarray``-typed fields of an encoding, and
locals assigned from one), and flags every mutation sink whose receiver
is encoding-owned:

* subscript/attribute stores and augmented assignments,
* mutating ndarray method calls (``sort``, ``fill``, ``put``,
  ``partition``, ``setflags``, ``resize``, ``itemset``, ``byteswap``),
* ``np.put``/``np.place``/``np.copyto``/``np.putmask`` with an
  encoding array as the destination, and ``out=`` kwargs aimed at one,
* ``flags.writeable`` tampering.

Taint is broken by materializing a copy (``.copy()``, ``.astype()``,
``np.array(...)``) — ``pi = bk.pi_chain.copy()`` is the sanctioned
replay idiom.  The dynamic half of the same contract is
``REPRO_SANITIZE=1``, which freezes encoding buffers at build time
(see ``repro.core.sanitize``); this rule catches what a run doesn't
execute.  Silent when the encoding classes are not in the analyzed set.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..core import Finding, ProjectRule, Severity, register
from ..graph import FunctionInfo, ProjectGraph, _unpack_targets
from ._common import dotted_name

#: The encoding classes whose instances are shared across lanes.
#: ``_LaneEncoding`` is the lane-stacked tiling of a shared stream
#: (PR 10): its buckets alias per-lane views of one replay pass, so a
#: cross-lane in-place write corrupts sibling lanes exactly like a
#: write through the underlying stream encoding.
ENCODING_CLASSES = ("_StreamEncoding", "_BucketEncoding", "_LaneEncoding")

#: ndarray methods that mutate the receiver in place.
MUTATING_METHODS = frozenset({
    "sort", "fill", "put", "partition", "setflags", "resize",
    "itemset", "byteswap",
})

#: numpy module-level functions whose *first* argument is mutated.
_NP_MUTATOR_NAMES = frozenset({"put", "place", "copyto", "putmask"})
_NP_HEADS = frozenset({"np", "numpy"})

#: Type strings counted as raw array fields of an encoding.
_ARRAY_TYPES = frozenset({"ndarray"})

#: Taint kinds.
_ENC = "enc"                # an encoding instance
_ENC_CONTAINER = "enc-c"    # list/tuple/dict of encodings
_ENC_ARRAY = "enc-a"        # an ndarray owned by an encoding


def _kind_of_type(type_str: Optional[str]) -> Optional[str]:
    if type_str is None:
        return None
    if type_str in ENCODING_CLASSES:
        return _ENC
    for prefix in ("list:", "dict:"):
        if type_str.startswith(prefix):
            inner = _kind_of_type(type_str[len(prefix):])
            if inner in (_ENC, _ENC_CONTAINER):
                return _ENC_CONTAINER
    return None


class _Taint:
    """Per-function classifier over the graph's type inference."""

    def __init__(self, graph: ProjectGraph, func: FunctionInfo) -> None:
        self.graph = graph
        self.func = func
        self.local: Dict[str, str] = {}
        self._build_locals()

    def _build_locals(self) -> None:
        """Names assigned encoding-owned values.

        A name *ever* assigned a clean value is dropped entirely —
        ``pi = bk.pi_chain`` then ``pi = pi.copy()`` untracks ``pi``
        (a false negative beats flagging the sanctioned copy idiom).
        """
        cleaned: Set[str] = set()
        for _ in range(2):
            for node in ast.walk(self.func.node):
                if not (isinstance(node, ast.Assign)
                        and len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Name)):
                    continue
                name = node.targets[0].id
                kind = self.classify(node.value)
                if kind is not None:
                    self.local[name] = kind
                else:
                    cleaned.add(name)
        for name in cleaned:
            self.local.pop(name, None)

    def classify(self, expr: ast.AST) -> Optional[str]:
        """Taint kind of ``expr``, or None (untracked/clean)."""
        if isinstance(expr, ast.Name):
            kind = self.local.get(expr.id)
            if kind is not None:
                return kind
            return _kind_of_type(self.graph.infer(self.func, expr))
        if isinstance(expr, ast.Attribute):
            base_kind = self.classify(expr.value)
            if base_kind == _ENC:
                cls_name = self.graph.infer(self.func, expr.value)
                cls = self.graph.classes.get(cls_name or "")
                if cls is None:
                    return None
                attr_type = cls.attr_types.get(expr.attr)
                if attr_type in _ARRAY_TYPES:
                    return _ENC_ARRAY
                return _kind_of_type(attr_type)
            return _kind_of_type(self.graph.infer(self.func, expr))
        if isinstance(expr, ast.Subscript):
            base_kind = self.classify(expr.value)
            if base_kind == _ENC_CONTAINER:
                # Element of a container of encodings.
                return _kind_of_type(
                    self.graph.infer(self.func, expr)) or _ENC
            return None
        if isinstance(expr, (ast.Call, ast.IfExp)):
            # Calls go through inference only: constructors taint,
            # ``.copy()``/``np.array(...)`` have no encoding return
            # annotation and come back clean.
            return _kind_of_type(self.graph.infer(self.func, expr))
        return None


@register
class SharedEncodingAliasRule(ProjectRule):
    name = "shared-encoding-alias"
    severity = Severity.ERROR
    description = ("in-place mutation of a shared reuse encoding "
                   "(replayed across lanes; must stay immutable)")
    contract = ("a _StreamEncoding is built once and replayed against "
                "every lane sharing the stream; replay-side code never "
                "writes through it — derive per-lane state via .copy()")

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        if not any(name in graph.classes for name in ENCODING_CLASSES):
            return
        hits: List[Tuple[str, int, int, Finding]] = []
        for func in graph.functions.values():
            taint = _Taint(graph, func)
            if not taint.local and not self._may_touch(graph, func):
                continue
            for node, message in self._sinks(taint):
                finding = self.finding_at(func.source, node, message)
                hits.append((func.source.relpath, node.lineno,
                             node.col_offset, finding))
        seen: Set[Tuple[str, int, int]] = set()
        for path, line, col, finding in sorted(
                hits, key=lambda h: (h[0], h[1], h[2])):
            if (path, line, col) in seen:
                continue
            seen.add((path, line, col))
            yield finding

    @staticmethod
    def _may_touch(graph: ProjectGraph, func: FunctionInfo) -> bool:
        """Cheap pre-filter: does any expression in ``func`` possibly
        involve an encoding?  Parameter/attribute types are enough —
        the classifier re-checks precisely."""
        env = graph._env(func)
        if any(_kind_of_type(t) for t in env.values()):
            return True
        if func.class_name:
            cls = graph.classes.get(func.class_name)
            if cls and any(_kind_of_type(t)
                           for t in cls.attr_types.values()):
                return True
        return False

    def _sinks(self, taint: _Taint) -> Iterator[Tuple[ast.AST, str]]:
        for node in ast.walk(taint.func.node):
            if isinstance(node, (ast.Assign, ast.AugAssign,
                                 ast.AnnAssign)):
                targets: List[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                else:
                    targets = [node.target]
                for target in targets:
                    for leaf in _unpack_targets(target):
                        message = self._store_message(taint, leaf)
                        if message is not None:
                            yield node, message
            elif isinstance(node, ast.Call):
                message = self._call_message(taint, node)
                if message is not None:
                    yield node, message

    def _store_message(self, taint: _Taint,
                       target: ast.expr) -> Optional[str]:
        if isinstance(target, ast.Subscript):
            if taint.classify(target.value) == _ENC_ARRAY:
                return ("subscript store into a shared encoding array; "
                        "the encoding is replayed by every lane sharing "
                        "the stream — write into a .copy() instead")
        elif isinstance(target, ast.Attribute):
            if target.attr == "writeable" and \
                    isinstance(target.value, ast.Attribute) and \
                    target.value.attr == "flags" and \
                    taint.classify(target.value.value) == _ENC_ARRAY:
                return ("re-enables writes on a shared encoding array "
                        "(flags.writeable); encodings are frozen under "
                        "REPRO_SANITIZE and must stay immutable")
            base_kind = taint.classify(target.value)
            if base_kind == _ENC:
                return ("assignment to a field of a shared encoding; "
                        "encodings are immutable once built — construct "
                        "a new one instead")
            if base_kind == _ENC_ARRAY:
                return ("attribute store on a shared encoding array "
                        "mutates buffer metadata in place; operate on a "
                        ".copy() instead")
        return None

    def _call_message(self, taint: _Taint,
                      call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Attribute) and \
                func.attr in MUTATING_METHODS and \
                taint.classify(func.value) == _ENC_ARRAY:
            return (f".{func.attr}() mutates a shared encoding array in "
                    f"place; take a .copy() first (replay must not "
                    f"write through the encoding)")
        dotted = dotted_name(func)
        if dotted is not None:
            parts = dotted.split(".")
            if len(parts) == 2 and parts[0] in _NP_HEADS and \
                    parts[1] in _NP_MUTATOR_NAMES and call.args and \
                    taint.classify(call.args[0]) == _ENC_ARRAY:
                return (f"{dotted}() writes into a shared encoding "
                        f"array; destination must be a lane-local copy")
        for kw in call.keywords:
            if kw.arg == "out" and \
                    taint.classify(kw.value) == _ENC_ARRAY:
                return ("out= aims a numpy kernel at a shared encoding "
                        "array; allocate a lane-local destination")
        return None
