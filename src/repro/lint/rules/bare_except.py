"""Rule ``bare-except`` — no silent swallowing of exceptions.

The engine's batched path falls back from the vectorized tag-store
kernel to the per-access probe loop when an epoch's shape demands it;
a ``try: ... except: pass`` around a kernel call would turn a genuine
kernel bug into a silent (and slow, and possibly wrong) fallback that
no differential test can distinguish from a legitimate decline — the
``RunStats.demotions`` counter exists precisely so fallbacks are never
silent.  Flags, anywhere in ``src/repro``:

* bare ``except:`` handlers (they also swallow ``KeyboardInterrupt``);
* ``except Exception``/``except BaseException`` handlers whose body
  does nothing (only ``pass``/``continue``/``...``) — catching broadly
  is sometimes right, *silently* is not: at minimum re-raise, return a
  sentinel the caller checks, or record why discarding is safe.

The companion rule ``broad-except`` covers the non-silent remainder: a
broad handler whose body does real work but neither re-raises, nor
logs, nor even *references* the caught exception has still thrown the
error away — the supervisor/quarantine handlers in this repo all bind
the exception and record it, which is the shape the rule sanctions.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..core import Finding, Rule, Severity, register
from ..source import SourceFile
from ._common import dotted_name

_BROAD = frozenset({"Exception", "BaseException"})


def _broad_names(node: ast.expr) -> bool:
    """Whether the handler type includes Exception/BaseException."""
    if isinstance(node, ast.Tuple):
        return any(_broad_names(elt) for elt in node.elts)
    name = dotted_name(node)
    return name in _BROAD or (name is not None
                              and name.split(".")[-1] in _BROAD)


def _body_is_silent(body: list) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass) or isinstance(stmt, ast.Continue):
            continue
        if isinstance(stmt, ast.Expr) and \
                isinstance(stmt.value, ast.Constant) and \
                stmt.value.value is Ellipsis:
            continue
        return False
    return True


@register
class BareExceptRule(Rule):
    name = "bare-except"
    severity = Severity.ERROR
    description = ("bare except, or except Exception whose body "
                   "silently discards the error")
    contract = ("a kernel bug must surface as a failure, never as a "
                "silent fallback from the vectorized kernel to the "
                "probe loop")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in source.walk():
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    source, node.lineno, node.col_offset,
                    "bare 'except:' swallows everything including "
                    "KeyboardInterrupt; name the exceptions you expect")
            elif _broad_names(node.type) and _body_is_silent(node.body):
                yield self.finding(
                    source, node.lineno, node.col_offset,
                    "'except Exception' with a do-nothing body silently "
                    "discards errors; handle, log or re-raise")


#: Call names (last dotted segment) accepted as "the error was
#: surfaced": stdlib logging methods, ``warnings.warn`` and ``print``.
_LOG_NAMES = frozenset({
    "print", "warn", "warning", "error", "exception", "log", "debug",
    "info", "critical",
})


def _body_walk(body: list) -> Iterator[ast.AST]:
    for stmt in body:
        yield from ast.walk(stmt)


def _reraises(body: list) -> bool:
    return any(isinstance(n, ast.Raise) for n in _body_walk(body))


def _logs(body: list) -> bool:
    for n in _body_walk(body):
        if isinstance(n, ast.Call):
            name = dotted_name(n.func)
            if name is not None and name.split(".")[-1] in _LOG_NAMES:
                return True
    return False


def _references(body: list, name: Optional[str]) -> bool:
    """Whether the bound exception ``name`` is used anywhere in the body."""
    if name is None:
        return False
    return any(isinstance(n, ast.Name) and n.id == name
               for n in _body_walk(body))


@register
class BroadExceptRule(Rule):
    name = "broad-except"
    severity = Severity.ERROR
    description = ("except Exception/BaseException that neither "
                   "re-raises, logs, nor uses the caught exception")
    contract = ("a contained failure must leave a trace — re-raise it, "
                "log it, or bind and record the exception object — so "
                "retries, quarantines and degradations stay observable")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in source.walk():
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None or not _broad_names(node.type):
                continue
            if _body_is_silent(node.body):
                continue  # bare-except already flags silent bodies
            if (_reraises(node.body) or _logs(node.body)
                    or _references(node.body, node.name)):
                continue
            yield self.finding(
                source, node.lineno, node.col_offset,
                "broad 'except Exception' discards the error unseen; "
                "re-raise, log, or bind it ('except Exception as e') "
                "and record it")
