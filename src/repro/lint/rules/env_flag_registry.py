"""Rule ``env-flag-registry`` — every ``REPRO_*`` env flag is declared.

Environment flags are the package's ad-hoc configuration surface:
``REPRO_JOBS``, ``REPRO_FAULTS``, ``REPRO_SANITIZE`` and friends are
read wherever they are consumed, so nothing structural ever guaranteed
a flag was spelled once, documented, or discoverable.
``repro/core/flags.py`` is the registry — one :class:`EnvFlag`
declaration per flag, with its default and one-line contract — and this
rule closes the loop: any ``os.environ``/``os.getenv`` access of a
``REPRO_*`` name anywhere in the analyzed set that is not declared in
the registry is an error, as is a declaration with an empty
description.

The rule is silent when the registry module is not part of the
analyzed file set (single-file runs, fixture trees without one).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..core import Finding, ProjectRule, Severity, register
from ..graph import ProjectGraph
from ..source import SourceFile
from ._common import dotted_name

#: Module holding the flag registry.
FLAGS_MODULES = ("repro/core/flags.py",)

#: Dotted call targets that read one environment variable by name.
_READ_CALLS = frozenset({
    "os.environ.get", "environ.get", "os.getenv", "getenv",
    "os.environ.pop", "environ.pop",
    "os.environ.setdefault", "environ.setdefault",
})

#: Dotted names whose subscript is an environment access.
_ENVIRON_NAMES = frozenset({"os.environ", "environ"})


def _flag_literal(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str) \
            and node.value.startswith("REPRO_"):
        return node.value
    return None


def declared_flags(source: SourceFile) -> Dict[str, ast.Call]:
    """``EnvFlag("NAME", ...)`` declarations in the registry module."""
    declarations: Dict[str, ast.Call] = {}
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None or name.split(".")[-1] != "EnvFlag":
            continue
        if node.args:
            flag = _flag_literal(node.args[0])
            if flag is not None:
                declarations[flag] = node
    return declarations


def _env_reads(source: SourceFile) -> Iterator[Tuple[str, ast.AST]]:
    """(flag name, node) for every literal ``REPRO_*`` environ access."""
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Call):
            target = dotted_name(node.func)
            if target in _READ_CALLS and node.args:
                flag = _flag_literal(node.args[0])
                if flag is not None:
                    yield flag, node
        elif isinstance(node, ast.Subscript):
            target = dotted_name(node.value)
            if target in _ENVIRON_NAMES:
                flag = _flag_literal(node.slice)
                if flag is not None:
                    yield flag, node
        elif isinstance(node, ast.Compare):
            # ``"REPRO_X" in os.environ`` membership probes.
            if len(node.ops) == 1 and \
                    isinstance(node.ops[0], (ast.In, ast.NotIn)) and \
                    dotted_name(node.comparators[0]) in _ENVIRON_NAMES:
                flag = _flag_literal(node.left)
                if flag is not None:
                    yield flag, node


def _description_arg(call: ast.Call) -> Optional[ast.AST]:
    for kw in call.keywords:
        if kw.arg == "description":
            return kw.value
    if len(call.args) >= 3:
        return call.args[2]
    return None


@register
class EnvFlagRegistryRule(ProjectRule):
    name = "env-flag-registry"
    severity = Severity.ERROR
    description = ("REPRO_* environment flag accessed without a "
                   "declaration in repro/core/flags.py")
    contract = ("every environment flag the package reads is declared "
                "exactly once in the repro.core.flags registry with a "
                "default and a one-line contract; the README flag table "
                "is generated from it")

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        registry_source: Optional[SourceFile] = None
        for relpath, source in graph.sources.items():
            if any(relpath == m or relpath.endswith("/" + m)
                   for m in FLAGS_MODULES):
                registry_source = source
                break
        if registry_source is None:
            return
        declarations = declared_flags(registry_source)
        declared: Set[str] = set(declarations)
        for flag, call in sorted(declarations.items()):
            desc = _description_arg(call)
            if isinstance(desc, ast.Constant) and \
                    isinstance(desc.value, str) and not desc.value.strip():
                yield self.finding_at(
                    registry_source, call,
                    f"flag {flag} is declared with an empty description; "
                    f"document its contract (the README table is "
                    f"generated from it)")
        hits: List[Tuple[str, str, ast.AST, SourceFile]] = []
        for source in graph.sources.values():
            if source is registry_source:
                continue
            for flag, node in _env_reads(source):
                if flag not in declared:
                    hits.append((source.relpath, flag, node, source))
        for _, flag, node, source in sorted(
                hits, key=lambda h: (h[0], h[2].lineno)):
            yield self.finding_at(
                source, node,
                f"environment flag {flag} is read here but not declared "
                f"in the repro.core.flags registry; add an EnvFlag entry "
                f"(name, default, one-line contract)")
