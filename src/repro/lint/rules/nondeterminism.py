"""Rule ``nondeterminism`` — seeded RNGs and order-stable cache keys.

The content-addressed result cache (:mod:`repro.analysis.diskcache`)
assumes that identical inputs always re-derive identical keys and that
simulations are replayable; both break if nondeterminism leaks in.
Two checks:

* **Global RNG use** (all of ``src/repro``): calls through the global
  ``random.*`` module functions or the legacy ``np.random.*`` global
  state are flagged — they draw from interpreter-wide hidden state.
  Explicitly seeded constructions (``np.random.default_rng(seed)``,
  ``random.Random(seed)``, ``np.random.Generator(...)``,
  ``np.random.SeedSequence(...)``) are the sanctioned idiom; calling
  ``default_rng()``/``Random()`` with *no* seed is flagged too.
* **Iteration-order dependence in key construction** (diskcache
  module only): iterating ``.items()``/``.keys()``/``.values()`` or a
  set without an enclosing ``sorted(...)`` (or a ``json.dumps(...,
  sort_keys=True)``) makes the key depend on dict/set order and is
  flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..core import Finding, Rule, Severity, register
from ..source import SourceFile
from ._common import call_name, module_matches

#: Module whose key construction must be iteration-order independent.
KEY_MODULES = ("repro/analysis/diskcache.py",)

#: Seeded-RNG constructors: fine *with* at least one argument.
_SEEDED_CTORS = frozenset({
    "np.random.default_rng", "numpy.random.default_rng",
    "random.Random",
})

#: Always-acceptable RNG machinery (explicit-state types).
_EXPLICIT_STATE = frozenset({
    "np.random.Generator", "numpy.random.Generator",
    "np.random.SeedSequence", "numpy.random.SeedSequence",
    "np.random.PCG64", "numpy.random.PCG64",
})


def _sorted_ancestor(source: SourceFile, node: ast.AST) -> bool:
    """Whether ``node`` sits inside sorted(...) or a sort_keys dump."""
    current: Optional[ast.AST] = node
    for ancestor in source.ancestors(node):
        if isinstance(ancestor, ast.Call):
            name = call_name(ancestor)
            if name == "sorted":
                return True
            if name is not None and name.endswith("dumps") and any(
                    kw.arg == "sort_keys"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in ancestor.keywords):
                return True
        current = ancestor
    return False


@register
class NondeterminismRule(Rule):
    name = "nondeterminism"
    severity = Severity.ERROR
    description = ("unseeded/global RNG use, or iteration-order-dependent "
                   "dict/set use in cache-key construction")
    contract = ("simulations replay identically and the on-disk result "
                "cache re-derives identical keys for identical inputs")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        in_key_module = module_matches(source, KEY_MODULES)
        for node in source.walk():
            if isinstance(node, ast.Call):
                name = call_name(node)
                if name is None:
                    continue
                if name in _SEEDED_CTORS:
                    if not node.args and not node.keywords:
                        yield self.finding(
                            source, node.lineno, node.col_offset,
                            f"{name}() without a seed draws entropy from "
                            f"the OS; pass an explicit seed")
                    continue
                if name in _EXPLICIT_STATE:
                    continue
                if name.startswith(("np.random.", "numpy.random.")):
                    yield self.finding(
                        source, node.lineno, node.col_offset,
                        f"{name}(...) uses numpy's *global* RNG state; "
                        f"thread an explicitly seeded "
                        f"np.random.default_rng(seed) through instead")
                elif name.startswith("random.") and \
                        name.count(".") == 1:
                    yield self.finding(
                        source, node.lineno, node.col_offset,
                        f"{name}(...) uses the interpreter-global RNG; "
                        f"use a seeded random.Random(seed) instance")
            if in_key_module:
                yield from self._check_key_order(source, node)

    def _check_key_order(self, source: SourceFile,
                         node: ast.AST) -> Iterator[Finding]:
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in ("items", "keys", "values") and \
                not node.args and not node.keywords:
            if not _sorted_ancestor(source, node):
                yield self.finding(
                    source, node.lineno, node.col_offset,
                    f".{node.func.attr}() iterated outside sorted(...) in "
                    f"cache-key construction; dict order must not reach "
                    f"the key")
        elif isinstance(node, (ast.Set, ast.SetComp)):
            if not _sorted_ancestor(source, node):
                yield self.finding(
                    source, node.lineno, node.col_offset,
                    "set constructed in cache-key construction; set "
                    "iteration order must not reach the key (sort it)")
