"""Rule ``float-eq`` — no float equality in timing/EAB-model code.

The timing model (queueing delays, EAB bandwidth accounting, epoch
settlement) works in float cycles; ``==``/``!=`` against a float is a
latent bug there because algebraically-equal quantities computed along
different execution paths (batched vs serial) differ by round-off.
The rule flags comparisons where either side is a float literal inside
the designated timing modules.  Threshold comparisons (``<``, ``<=``,
...) are the correct tool and are not flagged; the rare deliberate
sentinel check (e.g. "scale factor is exactly the default 1.0")
carries an inline ``# repro: noqa(float-eq)`` justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, Rule, Severity, register
from ..source import SourceFile
from ._common import module_matches

#: Timing/EAB-model modules subject to the rule.
TIMING_MODULES = (
    "repro/sim/engine.py",
    "repro/sim/queueing.py",
    "repro/sim/run.py",
    "repro/sim/eventsim.py",
    "repro/core/eab.py",
    "repro/core/sac.py",
    "repro/core/overhead.py",
    "repro/noc/crossbar.py",
    "repro/noc/ring.py",
    "repro/memory/dram.py",
)


@register
class FloatEqRule(Rule):
    name = "float-eq"
    severity = Severity.ERROR
    description = "== / != against a float literal in timing-model code"
    contract = ("quantities computed along different execution paths "
                "agree only to round-off; timing code must use "
                "thresholds, not float equality")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if not module_matches(source, TIMING_MODULES):
            return
        for node in source.walk():
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (operands[i], operands[i + 1]):
                    if isinstance(side, ast.Constant) and \
                            isinstance(side.value, float):
                        yield self.finding(
                            source, node.lineno, node.col_offset,
                            f"float equality against {side.value!r}; use a "
                            f"threshold (or justify a deliberate sentinel "
                            f"with '# repro: noqa(float-eq)')")
                        break
