"""Rule ``mutable-default`` — no mutable default arguments.

A mutable default (``def f(x, acc=[])``) is evaluated once at function
definition and shared across calls; in a simulator that reuses engine
and analysis objects across a run matrix, state bleeding between calls
corrupts results silently.  Flags list/dict/set displays and
``list()``/``dict()``/``set()``/``bytearray()`` calls (and
``collections`` equivalents) used as parameter defaults anywhere in
``src/repro``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, Rule, Severity, register
from ..source import SourceFile
from ._common import call_name

#: Calls that construct a fresh mutable object.
_MUTABLE_CALLS = frozenset({
    "list", "dict", "set", "bytearray",
    "collections.OrderedDict", "collections.defaultdict",
    "collections.deque", "OrderedDict", "defaultdict", "deque",
})


def _is_mutable(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return call_name(node) in _MUTABLE_CALLS
    return False


@register
class MutableDefaultRule(Rule):
    name = "mutable-default"
    severity = Severity.ERROR
    description = "mutable default argument shared across calls"
    contract = ("no hidden state bleeds between runs of a matrix; every "
                "call starts from the arguments it was given")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        for node in source.walk():
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            args = node.args
            defaults = list(args.defaults) + [
                d for d in args.kw_defaults if d is not None]
            for default in defaults:
                if _is_mutable(default):
                    where = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        source, default.lineno, default.col_offset,
                        f"mutable default argument in {where}(); use None "
                        f"and construct inside the function (or "
                        f"dataclasses.field(default_factory=...))")
