"""Rule ``reachable-hot-loop`` — hot-loop discipline follows the calls.

The per-file ``hot-loop`` rule is scoped to a fixed module list
(``HOT_MODULES``/``DRIVER_MODULES``); helper code *called from* the hot
path but living elsewhere escaped it — move a per-access loop into
``repro/sim/util.py`` and the lint goes quiet while the throughput
regression stays.  This rule extends the same per-access heuristics to
every function **reachable** (via the project call graph) from the
kernel round loops:

* ``SimulationEngine._run_epoch_batched`` — the batched epoch kernel,
  and
* the stacked driver's ``_drive`` pump,

minus functions in modules the per-file rule already covers (no double
reporting).  Reachability is the call-graph closure, so a helper two
hops away is still held to the discipline; code unreachable from the
kernels may loop however it likes.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from ..core import Finding, ProjectRule, Severity, register
from ..graph import ProjectGraph
from ._common import module_matches
from .hot_loop import (
    DRIVER_MODULES,
    HOT_MODULES,
    _loop_suspects,
    _mentions_access_array,
)

#: (module suffix, dotted function name) roots of the hot region.
HOT_ROOTS: Tuple[Tuple[str, str], ...] = (
    ("repro/sim/engine.py", "SimulationEngine._run_epoch_batched"),
    ("repro/sim/stacked.py", "_drive"),
)


@register
class ReachableHotLoopRule(ProjectRule):
    name = "reachable-hot-loop"
    severity = Severity.ERROR
    description = ("per-access Python loop in a helper reachable from "
                   "the kernel round loops")
    contract = ("the hot-loop discipline follows the call graph: any "
                "function the batched epoch kernel or the stacked pump "
                "can reach is hot-path code, wherever it lives")

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        roots: List[str] = []
        for suffix, name in HOT_ROOTS:
            info = graph.function_at(suffix, name)
            if info is not None:
                roots.append(info.qualname)
        if not roots:
            return
        hot = graph.reachable(roots)
        hits: List[Tuple[str, int, Finding]] = []
        seen: Set[Tuple[str, int, int]] = set()
        for qual in sorted(hot):
            func = graph.functions[qual]
            # The fixed module lists are the per-file rule's beat.
            if module_matches(func.source, HOT_MODULES) or \
                    module_matches(func.source, DRIVER_MODULES):
                continue
            for node in ast.walk(func.node):
                for expr, subject in _loop_suspects(node):
                    if isinstance(expr, (ast.Tuple, ast.List)):
                        continue
                    if not _mentions_access_array(expr):
                        continue
                    key = (func.source.relpath, node.lineno,
                           node.col_offset)
                    if key in seen:
                        continue
                    seen.add(key)
                    finding = self.finding_at(
                        func.source, node,
                        f"per-access Python loop ({subject} touches a "
                        f"trace/access array) in {func.name}, which is "
                        f"reachable from the kernel round loops; "
                        f"vectorize it or justify with "
                        f"'# repro: noqa(reachable-hot-loop)'")
                    hits.append((key[0], key[1], finding))
                    break
        for _, _, finding in sorted(hits, key=lambda h: (h[0], h[1])):
            yield finding
