"""Report renderers — ``text`` (human), ``json`` (tooling), ``github``.

``text`` is the default terminal output.  ``json`` emits one stable
document (format tag ``repro.lint-report/1``) with every bucket fully
serialized, fingerprints included, for scripting against.  ``github``
emits `workflow command`_ annotations (``::error``/``::warning``) so CI
findings surface inline on the pull-request diff, followed by the
human summary for the raw log.

.. _workflow command: https://docs.github.com/en/actions/reference
   /workflow-commands-for-github-actions
"""

from __future__ import annotations

import json
from typing import Dict, List

from .core import Finding, Severity
from .runner import Report

#: Recognized ``--format`` values.
FORMATS = ("text", "json", "github")


def summary_line(report: Report) -> str:
    cached = ""
    if report.files_from_cache or report.project_from_cache:
        parts = [f"{report.files_from_cache} from cache"]
        if report.project_from_cache:
            parts.append("project tier cached")
        cached = f" ({', '.join(parts)})"
    return (
        f"repro.lint: {report.files_checked} files{cached}, "
        f"{len(report.new)} new finding(s), "
        f"{len(report.baselined)} baselined, "
        f"{len(report.suppressed)} suppressed, "
        f"{len(report.stale_baseline)} stale baseline entr"
        f"{'y' if len(report.stale_baseline) == 1 else 'ies'}")


def render_text(report: Report, show_suppressed: bool = False,
                quiet: bool = False) -> str:
    lines: List[str] = []
    if not quiet:
        for finding in report.new:
            lines.append(finding.render())
        for finding in report.baselined:
            lines.append(f"{finding.render()} (baselined)")
        if show_suppressed:
            for finding in report.suppressed:
                lines.append(f"{finding.render()} (noqa)")
        for fp in report.stale_baseline:
            lines.append(f"stale baseline entry {fp}: no longer matches "
                         f"anything (remove it, or run --prune-baseline)")
        for error in report.parse_errors:
            lines.append(f"parse error: {error}")
    lines.append(summary_line(report))
    return "\n".join(lines)


def _finding_payload(finding: Finding) -> Dict[str, object]:
    return {
        "rule": finding.rule,
        "severity": finding.severity.value,
        "path": finding.path,
        "line": finding.line,
        "column": finding.column,
        "message": finding.message,
        "fingerprint": finding.fingerprint(),
    }


def render_json(report: Report) -> str:
    payload: Dict[str, object] = {
        "format": "repro.lint-report/1",
        "failed": report.failed,
        "files_checked": report.files_checked,
        "files_analyzed": report.files_analyzed,
        "files_from_cache": report.files_from_cache,
        "project_from_cache": report.project_from_cache,
        "new": [_finding_payload(f) for f in report.new],
        "baselined": [_finding_payload(f) for f in report.baselined],
        "suppressed": [_finding_payload(f) for f in report.suppressed],
        "stale_baseline": list(report.stale_baseline),
        "parse_errors": list(report.parse_errors),
    }
    return json.dumps(payload, indent=2)


def _escape_property(value: str) -> str:
    """Escape a workflow-command property value (GitHub's own rules)."""
    return (value.replace("%", "%25").replace("\r", "%0D")
            .replace("\n", "%0A").replace(":", "%3A").replace(",", "%2C"))


def _escape_data(value: str) -> str:
    return (value.replace("%", "%25").replace("\r", "%0D")
            .replace("\n", "%0A"))


def render_github(report: Report) -> str:
    lines: List[str] = []
    for finding in report.new:
        level = "error" if finding.severity is Severity.ERROR \
            else "warning"
        lines.append(
            f"::{level} file={_escape_property(finding.path)},"
            f"line={finding.line},col={finding.column + 1},"
            f"title={_escape_property('repro.lint ' + finding.rule)}::"
            f"{_escape_data(finding.message)}")
    for error in report.parse_errors:
        lines.append(f"::error title=repro.lint parse error::"
                     f"{_escape_data(error)}")
    lines.append(summary_line(report))
    return "\n".join(lines)


def render(report: Report, fmt: str, show_suppressed: bool = False,
           quiet: bool = False) -> str:
    if fmt == "json":
        return render_json(report)
    if fmt == "github":
        return render_github(report)
    if fmt == "text":
        return render_text(report, show_suppressed=show_suppressed,
                           quiet=quiet)
    raise ValueError(f"unknown format {fmt!r} (choose from "
                     f"{', '.join(FORMATS)})")
