"""On-disk finding cache — unchanged files are never re-analyzed.

One JSON document (``<cache_dir>/findings.json``) holds, per analyzed
file, the content hash it was analyzed at plus the findings that run
produced (kept and ``noqa``-suppressed, fully serialized), the file's
noqa comment lines and which of them actually suppressed something.
Project-rule findings are keyed by a *tree token* — the hash of every
analyzed file's (relpath, content hash) pair — since any file edit can
change cross-module results.

Every token bakes in the **registry token**: a hash over the source of
the whole ``repro.lint`` package, so editing any rule, the graph layer
or this module invalidates the cache wholesale.  Caching only engages
for full-registry runs (a ``--select`` subset would poison entries) and
is opt-in via the runner's ``cache_dir`` argument; a missing/corrupt
cache file degrades to a cold run, never an error.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from .core import Finding, Severity

_FORMAT = "repro.lint-cache/1"

#: Filename inside the cache directory.
_CACHE_NAME = "findings.json"


def registry_token() -> str:
    """Hash of the analyzer's own source; changes invalidate everything."""
    digest = hashlib.sha256(_FORMAT.encode("utf-8"))
    package = Path(__file__).resolve().parent
    for path in sorted(package.rglob("*.py")):
        digest.update(path.relative_to(package).as_posix().encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


def content_hash(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def tree_token(files: Iterable[Tuple[str, str]]) -> str:
    """Token over (relpath, content hash) pairs of the analyzed set."""
    digest = hashlib.sha256()
    for relpath, sha in sorted(files):
        digest.update(relpath.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(sha.encode("utf-8"))
        digest.update(b"\x01")
    return digest.hexdigest()[:16]


def _finding_to_dict(finding: Finding) -> Dict[str, object]:
    return {
        "rule": finding.rule,
        "severity": finding.severity.value,
        "path": finding.path,
        "line": finding.line,
        "column": finding.column,
        "message": finding.message,
        "source_line": finding.source_line,
    }


def _finding_from_dict(payload: Dict[str, object]) -> Finding:
    return Finding(
        rule=str(payload["rule"]),
        severity=Severity(str(payload["severity"])),
        path=str(payload["path"]),
        line=int(payload["line"]),        # type: ignore[arg-type]
        column=int(payload["column"]),    # type: ignore[arg-type]
        message=str(payload["message"]),
        source_line=str(payload.get("source_line", "")),
    )


class FileEntry:
    """Cached per-file analysis result."""

    def __init__(self, sha: str, kept: List[Finding],
                 suppressed: List[Finding],
                 noqa_lines: Dict[int, List[str]],
                 used_lines: List[int]) -> None:
        self.sha = sha
        self.kept = kept
        self.suppressed = suppressed
        self.noqa_lines = noqa_lines
        self.used_lines = used_lines


class ProjectEntry:
    """Cached project-rule result for one exact tree."""

    def __init__(self, tree: str, kept: List[Finding],
                 suppressed: List[Finding],
                 used_lines: Dict[str, List[int]]) -> None:
        self.tree = tree
        self.kept = kept
        self.suppressed = suppressed
        self.used_lines = used_lines


class LintCache:
    """The cache document plus load/store plumbing."""

    def __init__(self, path: Optional[Path], token: str) -> None:
        self.path = path
        self.token = token
        self.files: Dict[str, FileEntry] = {}
        self.project: Optional[ProjectEntry] = None
        self._dirty = False

    # -- Persistence -----------------------------------------------------

    @classmethod
    def load(cls, cache_dir: Path) -> "LintCache":
        token = registry_token()
        path = cache_dir / _CACHE_NAME
        cache = cls(path, token)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cache
        if not isinstance(payload, dict) or \
                payload.get("format") != _FORMAT or \
                payload.get("token") != token:
            return cache
        try:
            for relpath, entry in payload.get("files", {}).items():
                cache.files[relpath] = FileEntry(
                    sha=str(entry["sha"]),
                    kept=[_finding_from_dict(f) for f in entry["kept"]],
                    suppressed=[_finding_from_dict(f)
                                for f in entry["suppressed"]],
                    noqa_lines={int(k): list(v) for k, v in
                                entry.get("noqa_lines", {}).items()},
                    used_lines=[int(v) for v in
                                entry.get("used_lines", [])])
            project = payload.get("project")
            if isinstance(project, dict):
                cache.project = ProjectEntry(
                    tree=str(project["tree"]),
                    kept=[_finding_from_dict(f) for f in project["kept"]],
                    suppressed=[_finding_from_dict(f)
                                for f in project["suppressed"]],
                    used_lines={k: [int(v) for v in vs] for k, vs in
                                project.get("used_lines", {}).items()})
        except (KeyError, TypeError, ValueError):
            # Partially-corrupt document: fall back to a cold cache.
            return cls(path, token)
        return cache

    def save(self) -> None:
        if self.path is None or not self._dirty:
            return
        payload: Dict[str, object] = {
            "format": _FORMAT,
            "token": self.token,
            "files": {
                relpath: {
                    "sha": entry.sha,
                    "kept": [_finding_to_dict(f) for f in entry.kept],
                    "suppressed": [_finding_to_dict(f)
                                   for f in entry.suppressed],
                    "noqa_lines": {str(k): v for k, v in
                                   sorted(entry.noqa_lines.items())},
                    "used_lines": sorted(entry.used_lines),
                }
                for relpath, entry in sorted(self.files.items())
            },
        }
        if self.project is not None:
            payload["project"] = {
                "tree": self.project.tree,
                "kept": [_finding_to_dict(f) for f in self.project.kept],
                "suppressed": [_finding_to_dict(f)
                               for f in self.project.suppressed],
                "used_lines": {k: sorted(v) for k, v in
                               sorted(self.project.used_lines.items())},
            }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, indent=1) + "\n",
                       encoding="utf-8")
        tmp.replace(self.path)

    # -- Queries/updates -------------------------------------------------

    def file_entry(self, relpath: str, sha: str) -> Optional[FileEntry]:
        entry = self.files.get(relpath)
        if entry is not None and entry.sha == sha:
            return entry
        return None

    def store_file(self, relpath: str, entry: FileEntry) -> None:
        self.files[relpath] = entry
        self._dirty = True

    def prune(self, keep: Iterable[str]) -> None:
        """Drop entries for files no longer in the analyzed set."""
        alive = set(keep)
        for relpath in list(self.files):
            if relpath not in alive:
                del self.files[relpath]
                self._dirty = True

    def project_entry(self, tree: str) -> Optional[ProjectEntry]:
        if self.project is not None and self.project.tree == tree:
            return self.project
        return None

    def store_project(self, entry: ProjectEntry) -> None:
        self.project = entry
        self._dirty = True
