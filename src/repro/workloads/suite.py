"""The 16-benchmark workload suite (paper Table 4).

Each benchmark reproduces the published characteristics — CTA count,
footprint, truly-shared and falsely-shared megabytes — and encodes an
access pattern whose *hot working set* places it on the correct side of
the SAC decision boundary:

* **SM-side preferred (SP)** benchmarks direct most traffic at shared
  data with a small truly-shared hot set (≲ 2.5 MB): replicating it per
  chip fits the 4 MB LLC, so an SM-side LLC serves the shared data at
  intra-chip bandwidth while a memory-side LLC saturates the inter-chip
  ring.
* **Memory-side preferred (MP)** benchmarks have footprints dominated by
  private data whose hot set fits the per-chip LLC, plus a truly-shared
  hot set of ~6-14 MB.  Under an SM-side LLC the replicated shared set
  thrashes each chip's LLC (evicting the private hot data too), driving
  DRAM traffic past its bandwidth; a memory-side LLC keeps one copy and
  stays fast.
* The paper's "atypical" benchmarks (3DC, BS, BP, DWT) are less
  memory-intensive and/or barely shared, so the organizations nearly tie.

BFS alternates a memory-side-preferred kernel (K1) with an SM-side-
preferred kernel (K2), which drives the Figure 12 time-varying study.

Hot-set sizes are expressed as per-region hot fractions: for example,
SRAD's 30 MB truly-shared region with ``hot_fraction_true = 0.40`` has a
12 MB hot set.  ``intensity`` (memory accesses per chip per 1000 compute
cycles) controls how memory-bound each benchmark is and therefore the
magnitude of its organization preference.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .spec import (
    MEMORY_SIDE_PREFERRED,
    SM_SIDE_PREFERRED,
    BenchmarkSpec,
    KernelSpec,
    PhaseSpec,
)


def _bench(name: str, suite: str, ctas: int, footprint: float, true_mb: float,
           false_mb: float, preference: str, phase: PhaseSpec,
           epochs: int = 6, iterations: int = 2) -> BenchmarkSpec:
    kernels = (KernelSpec(name=f"{name}.K1", phase=phase, epochs=epochs),)
    return BenchmarkSpec(
        name=name, suite=suite, num_ctas=ctas, footprint_mb=footprint,
        true_shared_mb=true_mb, false_shared_mb=false_mb,
        preference=preference, kernels=kernels, iterations=iterations)


def _sp_phase(weight_true: float, weight_false: float, weight_private: float,
              hot_true: float, intensity: float, hot_false: float = 0.15,
              hot_private: float = 0.10, write_fraction: float = 0.2,
              hot_weight: float = 0.85) -> PhaseSpec:
    """Phase template for SM-side preferred benchmarks."""
    return PhaseSpec(
        weight_true=weight_true, weight_false=weight_false,
        weight_private=weight_private, hot_weight=hot_weight,
        write_fraction=write_fraction, intensity=intensity,
        hot_fraction=0.15, hot_fraction_true=max(hot_true, 1e-6),
        hot_fraction_false=hot_false, hot_fraction_private=hot_private)


def _mp_phase(weight_true: float, weight_false: float, weight_private: float,
              hot_true: float, hot_private: float, intensity: float,
              hot_false: float = 0.10, write_fraction: float = 0.25,
              hot_weight: float = 0.92,
              true_affinity: float = 0.70) -> PhaseSpec:
    """Phase template for memory-side preferred benchmarks.

    MP workloads are iterative: true sharing is temporally skewed toward
    the home chip (``true_affinity``), keeping memory-side responses
    largely local while an SM-side LLC still ends up replicating the
    whole shared hot set across kernels.
    """
    return PhaseSpec(
        weight_true=weight_true, weight_false=weight_false,
        weight_private=weight_private, hot_weight=hot_weight,
        write_fraction=write_fraction, intensity=intensity,
        hot_fraction=0.2, hot_fraction_true=hot_true,
        hot_fraction_false=hot_false, hot_fraction_private=hot_private,
        true_affinity=true_affinity)


def _make_bfs() -> BenchmarkSpec:
    """BFS: alternating kernels with opposite preferences (Figure 12)."""
    # K1 traverses the frontier/visited structures shared by every chip:
    # a large truly-shared hot set (~6 MB) plus a per-chip private hot set
    # near the LLC capacity makes it memory-side preferred (replicating
    # the frontier evicts the private data and saturates DRAM).
    k1 = _mp_phase(0.45, 0.05, 0.50, hot_true=0.80, hot_private=0.98,
                   intensity=11000.0, true_affinity=0.85, hot_weight=0.96)
    # K2 expands per-chip partitions of the graph: falsely shared, with a
    # small truly-shared pivot set (~1.2 MB), so it is SM-side preferred.
    k2 = _sp_phase(0.35, 0.45, 0.20, hot_true=0.20, hot_false=0.30,
                   intensity=2600.0)
    kernels = (KernelSpec(name="BFS.K1", phase=k1, epochs=8),
               KernelSpec(name="BFS.K2", phase=k2, epochs=5))
    return BenchmarkSpec(
        name="BFS", suite="Rodinia", num_ctas=1954, footprint_mb=37,
        true_shared_mb=10, false_shared_mb=14, preference=SM_SIDE_PREFERRED,
        kernels=kernels, iterations=3)


def _build_suite() -> Tuple[BenchmarkSpec, ...]:
    benchmarks: List[BenchmarkSpec] = [
        # -- SM-side preferred (paper Table 4, top half) -------------------
        # RN: 11 MB truly shared, hot set ~1.7 MB -> replicas fit per chip.
        _bench("RN", "Tango", 512, 21, 11, 4, SM_SIDE_PREFERRED,
               _sp_phase(0.55, 0.25, 0.20, hot_true=0.27, hot_false=0.30,
                         intensity=3000.0)),
        # AN: similar profile to RN with slightly smaller shared data.
        _bench("AN", "Tango", 1024, 20, 9, 3, SM_SIDE_PREFERRED,
               _sp_phase(0.55, 0.20, 0.25, hot_true=0.33, hot_false=0.30,
                         intensity=3000.0)),
        # SN: dominated by falsely shared data (13 of 18 MB).
        _bench("SN", "Tango", 512, 18, 2, 13, SM_SIDE_PREFERRED,
               _sp_phase(0.20, 0.60, 0.20, hot_true=0.90, hot_false=0.50,
                         intensity=2700.0)),
        # CFD: large falsely-shared flux arrays, small shared boundary set.
        _bench("CFD", "Rodinia", 4031, 97, 9, 33, SM_SIDE_PREFERRED,
               _sp_phase(0.30, 0.50, 0.20, hot_true=0.24, hot_false=0.15,
                         hot_private=0.03, intensity=2450.0)),
        # BFS: alternates K1 (memory-side) and K2 (SM-side); see Figure 12.
        _make_bfs(),
        # 3DC: atypical — wide stencil, lower intensity, small tie gap.
        _bench("3DC", "Polybench", 2048, 98, 17, 38, SM_SIDE_PREFERRED,
               _sp_phase(0.25, 0.55, 0.20, hot_true=0.10, hot_false=0.12,
                         intensity=1150.0)),
        # BS: no true sharing at all; all benefit comes from false sharing.
        _bench("BS", "SDK", 480, 76, 0, 56, SM_SIDE_PREFERRED,
               _sp_phase(0.0, 0.75, 0.25, hot_true=0.5, hot_false=0.20,
                         intensity=1250.0)),
        # BT: many small CTAs; modest shared set, mostly false sharing.
        _bench("BT", "Rodinia", 48096, 31, 4, 19, SM_SIDE_PREFERRED,
               _sp_phase(0.25, 0.50, 0.25, hot_true=0.45, hot_false=0.28,
                         intensity=2050.0)),
        # -- Memory-side preferred (paper Table 4, bottom half) ------------
        # MP apps are iterative: many short kernel launches, so an SM-side
        # LLC pays a software-coherence flush and a cold refill per launch
        # while the memory-side LLC stays warm.
        # SRAD: 30 MB truly shared, hot ~9 MB -> replication thrashes the
        # per-chip LLC; the private hot set (~1.5 MB/chip) stays resident
        # under memory-side.
        _bench("SRAD", "Rodinia", 65536, 753, 30, 3, MEMORY_SIDE_PREFERRED,
               _mp_phase(0.42, 0.08, 0.50, hot_true=0.25, hot_private=0.018,
                         intensity=7600.0, true_affinity=0.90), epochs=2, iterations=6),
        # GEMM: shared input matrices (~7 MB hot) reused by every chip.
        _bench("GEMM", "Polybench", 2048, 174, 14, 21, MEMORY_SIDE_PREFERRED,
               _mp_phase(0.42, 0.08, 0.50, hot_true=0.57, hot_private=0.092,
                         intensity=7600.0, true_affinity=0.85), epochs=2, iterations=6),
        # LUD: large shared factor panels (hot ~9.5 MB).
        _bench("LUD", "Rodinia", 131068, 317, 38, 51, MEMORY_SIDE_PREFERRED,
               _mp_phase(0.42, 0.08, 0.50, hot_true=0.21, hot_private=0.056,
                         intensity=8000.0, true_affinity=0.85), epochs=2, iterations=6),
        # STEN: shared halo planes of ~9 MB.
        _bench("STEN", "Parboil", 1024, 205, 18, 17, MEMORY_SIDE_PREFERRED,
               _mp_phase(0.42, 0.08, 0.50, hot_true=0.44, hot_private=0.075,
                         intensity=7600.0, true_affinity=0.85), epochs=2, iterations=6),
        # 3MM: chained matrix products sharing ~6.6 MB of operands.
        _bench("3MM", "Polybench", 4096, 109, 12, 7, MEMORY_SIDE_PREFERRED,
               _mp_phase(0.42, 0.08, 0.50, hot_true=0.67, hot_private=0.142,
                         intensity=8200.0, true_affinity=0.92), epochs=2, iterations=6),
        # BP: atypical — almost no sharing, compute-bound; the flush per
        # launch gives memory-side a small edge.
        _bench("BP", "Rodinia", 65536, 76, 4, 0, MEMORY_SIDE_PREFERRED,
               _mp_phase(0.10, 0.0, 0.90, hot_true=0.20, hot_private=0.070,
                         intensity=2000.0), epochs=4, iterations=3),
        # DWT: atypical — tiny shared set, mildly memory-bound.
        _bench("DWT", "Rodinia", 91373, 207, 3, 10, MEMORY_SIDE_PREFERRED,
               _mp_phase(0.08, 0.12, 0.80, hot_true=0.60, hot_private=0.025,
                         intensity=2100.0), epochs=4, iterations=3),
        # NN: 154 MB of truly shared weights; hot ~9 MB, far too big to
        # replicate but cacheable once system-wide.
        _bench("NN", "Tango", 60000, 1388, 154, 0, MEMORY_SIDE_PREFERRED,
               _mp_phase(0.45, 0.0, 0.55, hot_true=0.052, hot_private=0.0104,
                         intensity=8000.0, true_affinity=0.85), epochs=2, iterations=6),
    ]
    return tuple(benchmarks)


#: All benchmarks, in the paper's Table 4 order (SP block then MP block).
SUITE: Tuple[BenchmarkSpec, ...] = _build_suite()

#: Benchmarks by name, e.g. ``BENCHMARKS["BFS"]``.
BENCHMARKS: Dict[str, BenchmarkSpec] = {b.name: b for b in SUITE}

#: The SM-side preferred group (paper Figure 1/8 left block).
SP_BENCHMARKS: Tuple[BenchmarkSpec, ...] = tuple(
    b for b in SUITE if b.preference == SM_SIDE_PREFERRED)

#: The memory-side preferred group (paper Figure 1/8 right block).
MP_BENCHMARKS: Tuple[BenchmarkSpec, ...] = tuple(
    b for b in SUITE if b.preference == MEMORY_SIDE_PREFERRED)


def get(name: str) -> BenchmarkSpec:
    """Look up a benchmark by name (raises KeyError with suggestions)."""
    try:
        return BENCHMARKS[name]
    except KeyError:
        known = ", ".join(sorted(BENCHMARKS))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None
