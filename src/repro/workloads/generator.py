"""Synthetic trace generation.

The generator turns a :class:`~repro.workloads.spec.BenchmarkSpec` into a
deterministic stream of post-L1 memory accesses (the paper's performance
counters also operate on L1 misses).  The virtual address space is laid
out in three page-aligned regions:

* **true region** — every chip draws line addresses from the same pool,
  so the same lines are accessed by multiple chips (true sharing);
* **false region** — lines within each page are statically partitioned
  across chips (line ``i`` of a page belongs to chip ``i mod num_chips``),
  so chips share pages but never lines (false sharing);
* **private region** — split into per-chip contiguous blocks that only
  the owning chip touches (no sharing).

Reuse is shaped by a hot set: ``hot_weight`` of the accesses fall into the
first ``hot_fraction`` of the region.  The hot-set size is what determines
whether replicating shared data under an SM-side LLC fits in the cache —
the decision boundary at the core of the paper.

Epoch records are numpy arrays for fast generation; the engine consumes
them row-wise.  Within an epoch the per-chip streams are shuffled together
so that first-touch page allocation spreads shared pages across chips.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from .spec import BenchmarkSpec, KernelSpec, PhaseSpec

REGION_TRUE = 0
REGION_FALSE = 1
REGION_PRIVATE = 2

#: Generated traces keyed by (spec, system shape).  Generation is
#: deterministic and the epoch arrays are frozen read-only, so replaying
#: the same benchmark (a run matrix sweeping organizations, best-of-N
#: benchmarking) reuses the trace instead of regenerating it.
_TRACE_CACHE: "OrderedDict[tuple, Tuple[KernelTrace, ...]]" = OrderedDict()
_TRACE_CACHE_MAX = 4


@dataclass(frozen=True)
class EpochTrace:
    """One epoch of accesses plus its compute floor.

    ``chips``, ``clusters``, ``addrs`` and ``writes`` are parallel arrays;
    ``compute_cycles`` is the time the epoch would take with an infinitely
    fast memory system (sets the lower bound on epoch latency).
    """

    chips: np.ndarray
    clusters: np.ndarray
    addrs: np.ndarray
    writes: np.ndarray
    compute_cycles: float
    #: Memo table for pure derivations of the (immutable) access arrays
    #: — slice/channel hashes, the page-number decomposition.  Epochs are
    #: shared across sweep lanes and cached across runs, so consumers key
    #: entries by every parameter the derivation depends on and store
    #: only read-only values.  Excluded from comparison: two epochs with
    #: the same arrays are the same epoch regardless of what has been
    #: memoized against them.
    derived: Dict[tuple, object] = field(
        default_factory=dict, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.addrs)


@dataclass(frozen=True)
class KernelTrace:
    """A kernel launch: name plus its epoch sequence."""

    name: str
    epochs: Tuple[EpochTrace, ...]

    @property
    def num_accesses(self) -> int:
        return sum(len(e) for e in self.epochs)


class TraceGenerator:
    """Generates the access trace for one benchmark on one system shape."""

    def __init__(self, spec: BenchmarkSpec, num_chips: int,
                 clusters_per_chip: int, line_size: int = 128,
                 page_size: int = 4096,
                 accesses_per_epoch_per_chip: int = 8192,
                 scale: float = 1.0) -> None:
        if num_chips < 1:
            raise ValueError("need at least one chip")
        if clusters_per_chip < 1:
            raise ValueError("need at least one cluster per chip")
        if accesses_per_epoch_per_chip < 1:
            raise ValueError("need at least one access per epoch")
        self.spec = spec
        self.num_chips = num_chips
        self.clusters_per_chip = clusters_per_chip
        self.line_size = line_size
        self.page_size = page_size
        self.accesses_per_epoch = accesses_per_epoch_per_chip
        self.scale = scale
        self._lines_per_page = max(1, page_size // line_size)

        regions = spec.region_bytes(scale)
        self._true_lines = self._to_lines(regions["true"])
        self._false_lines = self._to_lines(regions["false"])
        self._private_lines_per_chip = (
            self._to_lines(regions["private"]) // max(1, num_chips))

        # Page-aligned region base addresses.
        self._true_base = 0
        self._false_base = self._align_pages(self._true_lines * line_size)
        private_base = self._false_base + self._align_pages(
            self._false_lines * line_size)
        self._private_bases = [
            private_base + chip * self._align_pages(
                self._private_lines_per_chip * line_size)
            for chip in range(num_chips)]

    def _to_lines(self, num_bytes: int) -> int:
        return max(0, num_bytes // self.line_size)

    def _align_pages(self, num_bytes: int) -> int:
        pages = -(-num_bytes // self.page_size)
        return pages * self.page_size

    # -- Public API -------------------------------------------------------

    @property
    def total_lines(self) -> int:
        return (self._true_lines + self._false_lines
                + self.num_chips * self._private_lines_per_chip)

    def region_of(self, addr: int) -> int:
        """Classify an address into its region (for analysis/tests)."""
        if addr < self._false_base:
            return REGION_TRUE
        if addr < self._private_bases[0]:
            return REGION_FALSE
        return REGION_PRIVATE

    def kernels(self) -> Iterator[KernelTrace]:
        """Yield every kernel launch of the benchmark, in order."""
        key = (self.spec, self.num_chips, self.clusters_per_chip,
               self.line_size, self.page_size, self.accesses_per_epoch,
               self.scale)
        traces = _TRACE_CACHE.get(key)
        if traces is None:
            traces = tuple(self._generate_all())
            _TRACE_CACHE[key] = traces
            while len(_TRACE_CACHE) > _TRACE_CACHE_MAX:
                _TRACE_CACHE.popitem(last=False)
        else:
            _TRACE_CACHE.move_to_end(key)
        yield from traces

    def _generate_all(self) -> Iterator[KernelTrace]:
        seed = self.spec.effective_seed
        launch = 0
        for _ in range(self.spec.iterations):
            for kernel in self.spec.kernels:
                rng = np.random.default_rng((seed, launch))
                yield self._generate_kernel(kernel, rng, launch)
                launch += 1

    def generate(self) -> List[KernelTrace]:
        """Materialize the full trace (convenience for tests)."""
        return list(self.kernels())

    # -- Generation internals ----------------------------------------------

    def _generate_kernel(self, kernel: KernelSpec, rng: np.random.Generator,
                         launch: int) -> KernelTrace:
        epochs = tuple(self._generate_epoch(kernel.phase, rng)
                       for _ in range(kernel.epochs))
        name = f"{kernel.name}#{launch}"
        return KernelTrace(name=name, epochs=epochs)

    def _generate_epoch(self, phase: PhaseSpec,
                        rng: np.random.Generator) -> EpochTrace:
        n = self.accesses_per_epoch
        per_chip = []
        for chip in range(self.num_chips):
            per_chip.append(self._chip_accesses(chip, n, phase, rng))
        chips = np.concatenate([np.full(n, chip, dtype=np.int64)
                                for chip in range(self.num_chips)])
        addrs = np.concatenate([a for a, _ in per_chip])
        writes = np.concatenate([w for _, w in per_chip])
        clusters = rng.integers(0, self.clusters_per_chip,
                                size=len(addrs), dtype=np.int64)
        order = rng.permutation(len(addrs))
        compute = n / phase.intensity * 1000.0
        trace = EpochTrace(chips=chips[order], clusters=clusters,
                           addrs=addrs[order], writes=writes[order],
                           compute_cycles=compute)
        # Cached epochs are shared across runs: freeze the arrays so any
        # accidental in-place mutation fails loudly instead of corrupting
        # a later replay.
        for arr in (trace.chips, trace.clusters, trace.addrs, trace.writes):
            arr.flags.writeable = False
        return trace

    def _chip_accesses(self, chip: int, n: int, phase: PhaseSpec,
                       rng: np.random.Generator
                       ) -> Tuple[np.ndarray, np.ndarray]:
        weights = self._effective_weights(phase)
        regions = rng.choice(3, size=n, p=weights)
        addrs = np.empty(n, dtype=np.int64)
        for region in (REGION_TRUE, REGION_FALSE, REGION_PRIVATE):
            mask = regions == region
            count = int(mask.sum())
            if count == 0:
                continue
            addrs[mask] = self._sample_region(region, chip, count, phase, rng)
        writes = rng.random(n) < phase.write_fraction
        return addrs, writes

    def _effective_weights(self, phase: PhaseSpec) -> Sequence[float]:
        """Zero out weights of empty regions and renormalize."""
        raw = [phase.weight_true if self._true_lines else 0.0,
               phase.weight_false if self._false_lines else 0.0,
               phase.weight_private if self._private_lines_per_chip else 0.0]
        total = sum(raw)
        if total <= 0:
            raise ValueError(
                f"benchmark {self.spec.name!r}: every weighted region is empty")
        return [w / total for w in raw]

    def _hot_cold_indices(self, count: int, num_items: int, phase: PhaseSpec,
                          rng: np.random.Generator,
                          region: str) -> np.ndarray:
        """Draw ``count`` item indices from a hot/cold split of ``num_items``."""
        if num_items <= 0:
            raise ValueError("cannot sample from an empty region")
        hot_items = max(1, int(num_items * phase.region_hot_fraction(region)))
        if hot_items >= num_items:
            return rng.integers(0, num_items, size=count, dtype=np.int64)
        is_hot = rng.random(count) < phase.hot_weight
        indices = np.empty(count, dtype=np.int64)
        num_hot = int(is_hot.sum())
        if num_hot:
            indices[is_hot] = rng.integers(0, hot_items, size=num_hot,
                                           dtype=np.int64)
        num_cold = count - num_hot
        if num_cold:
            indices[~is_hot] = rng.integers(hot_items, num_items,
                                            size=num_cold, dtype=np.int64)
        return indices

    def _sample_region(self, region: int, chip: int, count: int,
                       phase: PhaseSpec,
                       rng: np.random.Generator) -> np.ndarray:
        if region == REGION_TRUE:
            return self._sample_true(chip, count, phase, rng)
        if region == REGION_FALSE:
            return self._sample_false(chip, count, phase, rng)
        lines = self._hot_cold_indices(count, self._private_lines_per_chip,
                                       phase, rng, "private")
        return self._private_bases[chip] + lines * self.line_size

    def _sample_true(self, chip: int, count: int, phase: PhaseSpec,
                     rng: np.random.Generator) -> np.ndarray:
        """Sample truly shared lines, honouring the phase's home affinity.

        The region is split into ``num_chips`` equal segments, each with
        its own hot prefix.  With probability ``true_affinity`` a chip
        accesses its own segment (the part it first touches and that is
        therefore homed locally); otherwise it accesses a uniformly random
        segment.  Every segment can be accessed by every chip, so all the
        lines remain truly shared.
        """
        seg_lines = self._true_lines // self.num_chips
        if phase.true_affinity <= 0.0 or seg_lines == 0:
            lines = self._hot_cold_indices(count, self._true_lines, phase,
                                           rng, "true")
            return self._true_base + lines * self.line_size
        segments = rng.integers(0, self.num_chips, size=count, dtype=np.int64)
        own = rng.random(count) < phase.true_affinity
        segments[own] = chip
        within = self._hot_cold_indices(count, seg_lines, phase, rng, "true")
        lines = segments * seg_lines + within
        return self._true_base + lines * self.line_size

    def _sample_false(self, chip: int, count: int, phase: PhaseSpec,
                      rng: np.random.Generator) -> np.ndarray:
        """Sample falsely shared lines: per-page line slots owned by ``chip``.

        Each page of the false region has ``lines_per_page`` lines; chip
        ``c`` only ever touches lines whose within-page index is congruent
        to ``c`` modulo the chip count, so no line is accessed by two
        chips while every page is shared.
        """
        lpp = self._lines_per_page
        slots_per_page = max(1, lpp // self.num_chips)
        num_pages = max(1, self._false_lines // lpp)
        num_slots = num_pages * slots_per_page
        slot = self._hot_cold_indices(count, num_slots, phase, rng, "false")
        page = slot // slots_per_page
        within = slot % slots_per_page
        line_in_page = (within * self.num_chips + chip) % lpp
        return (self._false_base + page * self.page_size
                + line_in_page * self.line_size)
