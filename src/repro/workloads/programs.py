"""CTA-level kernel programs.

The statistical generator (:mod:`repro.workloads.generator`) samples
region mixtures; this module offers the complementary, *structural* way
to build workloads: name your arrays, describe how each CTA accesses
them, pick a CTA scheduler, and compile the result into the same
:class:`~repro.workloads.generator.KernelTrace` epochs the engine
consumes.

Example — a GEMM-like kernel::

    a = Array("A", 64 * MB)
    b = Array("B", 16 * MB)
    c = Array("C", 64 * MB)
    kernel = KernelProgram(
        name="gemm",
        accesses=[
            ArrayAccess(a, Partitioned(), weight=0.4),   # row panels
            ArrayAccess(b, Broadcast(hot_fraction=0.5), weight=0.4),
            ArrayAccess(c, Partitioned(), weight=0.2, write_fraction=0.5),
        ],
        ctas=4096, accesses_per_cta=256, intensity=5000.0)
    workload = ProgramWorkload("gemm-app", [kernel], num_chips=4)
    stats = simulate_program(workload, "sac")

Patterns map CTA ids to addresses inside an array:

* :class:`Partitioned` — each CTA owns a contiguous slice (no sharing
  across CTAs; with a distributed scheduler, no sharing across chips);
* :class:`Broadcast` — every CTA reads the same (optionally hot-biased)
  data: true sharing across chips;
* :class:`Strided` — CTA ``i`` touches lines ``i mod C`` of each page
  group: false sharing at page granularity;
* :class:`Halo` — a partitioned pattern whose edges bleed into the
  neighbouring CTA's slice: true sharing concentrated at the borders.
"""

from __future__ import annotations

import abc
import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from .generator import EpochTrace, KernelTrace

if TYPE_CHECKING:  # pragma: no cover
    from ..arch.config import SystemConfig
    from ..llc.base import LLCOrganization
    from ..sim.cta import DistributedCTAScheduler, RoundRobinCTAScheduler
    from ..sim.engine import EngineParams
    from ..sim.stats import RunStats

MB = 1024 * 1024


@dataclass(frozen=True)
class Array:
    """A named allocation in the workload's address space."""

    name: str
    size_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"array {self.name!r} must have positive size")


class AccessPattern(abc.ABC):
    """Maps (cta, num_ctas) to line offsets within one array."""

    @abc.abstractmethod
    def sample(self, cta: int, num_ctas: int, num_lines: int, count: int,
               rng: np.random.Generator) -> np.ndarray:
        """Return ``count`` line indices in ``[0, num_lines)``."""


@dataclass(frozen=True)
class Partitioned(AccessPattern):
    """Each CTA owns a contiguous slice; reuse within it is hot-biased."""

    hot_fraction: float = 1.0
    hot_weight: float = 0.9

    def sample(self, cta: int, num_ctas: int, num_lines: int, count: int,
               rng: np.random.Generator) -> np.ndarray:
        slice_lines = max(1, num_lines // num_ctas)
        base = min(cta * slice_lines, max(0, num_lines - slice_lines))
        offsets = _hot_cold(count, slice_lines, self.hot_fraction,
                            self.hot_weight, rng)
        return base + offsets


@dataclass(frozen=True)
class Broadcast(AccessPattern):
    """Every CTA reads the same data (true sharing)."""

    hot_fraction: float = 0.5
    hot_weight: float = 0.9

    def sample(self, cta: int, num_ctas: int, num_lines: int, count: int,
               rng: np.random.Generator) -> np.ndarray:
        return _hot_cold(count, num_lines, self.hot_fraction,
                         self.hot_weight, rng)


@dataclass(frozen=True)
class Strided(AccessPattern):
    """CTA i touches line slots congruent to i (false sharing).

    With ``lines_per_page`` lines to a page and C concurrent chips, the
    lines a CTA touches interleave at page granularity, so chips share
    pages but not lines — the paper's false-sharing pattern.
    """

    interleave: int = 32  # lines between a CTA's consecutive touches
    hot_fraction: float = 1.0
    hot_weight: float = 0.9

    def sample(self, cta: int, num_ctas: int, num_lines: int, count: int,
               rng: np.random.Generator) -> np.ndarray:
        lane = cta % self.interleave
        slots = max(1, num_lines // self.interleave)
        slot = _hot_cold(count, slots, self.hot_fraction, self.hot_weight,
                         rng)
        return (slot * self.interleave + lane) % num_lines


@dataclass(frozen=True)
class Halo(AccessPattern):
    """Partitioned with a shared border (stencil halo exchange)."""

    halo_fraction: float = 0.1  # probability of touching a border line
    hot_fraction: float = 1.0
    hot_weight: float = 0.9

    def sample(self, cta: int, num_ctas: int, num_lines: int, count: int,
               rng: np.random.Generator) -> np.ndarray:
        slice_lines = max(1, num_lines // num_ctas)
        base = min(cta * slice_lines, max(0, num_lines - slice_lines))
        offsets = _hot_cold(count, slice_lines, self.hot_fraction,
                            self.hot_weight, rng)
        lines = base + offsets
        in_halo = rng.random(count) < self.halo_fraction
        # Halo touches land on the neighbour's first lines.
        neighbour = (cta + 1) % num_ctas
        nbase = min(neighbour * slice_lines, max(0, num_lines - slice_lines))
        halo_width = max(1, slice_lines // 8)
        lines[in_halo] = nbase + rng.integers(
            0, halo_width, size=int(in_halo.sum()), dtype=np.int64)
        return lines


def _hot_cold(count: int, num_items: int, hot_fraction: float,
              hot_weight: float, rng: np.random.Generator) -> np.ndarray:
    hot_items = max(1, int(num_items * hot_fraction))
    if hot_items >= num_items:
        return rng.integers(0, num_items, size=count, dtype=np.int64)
    is_hot = rng.random(count) < hot_weight
    out = np.empty(count, dtype=np.int64)
    n_hot = int(is_hot.sum())
    if n_hot:
        out[is_hot] = rng.integers(0, hot_items, size=n_hot, dtype=np.int64)
    if count - n_hot:
        out[~is_hot] = rng.integers(hot_items, num_items,
                                    size=count - n_hot, dtype=np.int64)
    return out


@dataclass(frozen=True)
class ArrayAccess:
    """One kernel operand: an array, its pattern and its traffic share."""

    array: Array
    pattern: AccessPattern
    weight: float
    write_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("access weight must be positive")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write fraction must be in [0, 1]")


@dataclass(frozen=True)
class KernelProgram:
    """A kernel: operands, grid size and memory intensity."""

    name: str
    accesses: Tuple[ArrayAccess, ...]
    ctas: int
    accesses_per_cta: int
    intensity: float = 5000.0

    def __init__(self, name: str, accesses: Sequence[ArrayAccess],
                 ctas: int, accesses_per_cta: int,
                 intensity: float = 5000.0) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "accesses", tuple(accesses))
        object.__setattr__(self, "ctas", ctas)
        object.__setattr__(self, "accesses_per_cta", accesses_per_cta)
        object.__setattr__(self, "intensity", intensity)
        if not self.accesses:
            raise ValueError("a kernel needs at least one operand")
        if ctas < 1 or accesses_per_cta < 1:
            raise ValueError("grid and per-CTA access count must be positive")
        if intensity <= 0:
            raise ValueError("intensity must be positive")

    @property
    def arrays(self) -> List[Array]:
        return [access.array for access in self.accesses]


@dataclass
class ProgramWorkload:
    """A sequence of kernel programs over one shared address space."""

    name: str
    kernels: List[KernelProgram]
    num_chips: int = 4
    clusters_per_chip: int = 32
    line_size: int = 128
    cta_scheduling: str = "distributed"
    accesses_per_epoch_per_chip: int = 8192
    iterations: int = 1
    seed: int = 0xC7A5

    _bases: dict = field(default_factory=dict, init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.kernels:
            raise ValueError("a workload needs at least one kernel")
        if self.num_chips < 1:
            raise ValueError("need at least one chip")
        if self.cta_scheduling not in ("distributed", "round-robin"):
            raise ValueError(
                f"unknown CTA scheduling: {self.cta_scheduling!r}")
        # Lay out every distinct array once, page-aligned (4 KB floor).
        base = 0
        for kernel in self.kernels:
            for array in kernel.arrays:
                if array.name in self._bases:
                    continue
                self._bases[array.name] = base
                pages = -(-array.size_bytes // 4096)
                base += pages * 4096

    def array_base(self, array: Array) -> int:
        return self._bases[array.name]

    @property
    def footprint_bytes(self) -> int:
        seen = {}
        for kernel in self.kernels:
            for array in kernel.arrays:
                seen[array.name] = array.size_bytes
        return sum(seen.values())

    # -- Compilation -------------------------------------------------------

    def _scheduler(self, ctas: int) -> Union[
            "DistributedCTAScheduler", "RoundRobinCTAScheduler"]:
        # Imported lazily: repro.sim imports repro.workloads.generator,
        # so a module-level import here would be circular.
        from ..sim.cta import DistributedCTAScheduler, RoundRobinCTAScheduler
        if self.cta_scheduling == "distributed":
            return DistributedCTAScheduler(ctas, self.num_chips)
        return RoundRobinCTAScheduler(ctas, self.num_chips)

    def kernel_traces(self) -> Iterator[KernelTrace]:
        """Compile the workload into engine-consumable kernel traces."""
        launch = 0
        for _ in range(self.iterations):
            for kernel in self.kernels:
                rng = np.random.default_rng((self.seed, launch))
                yield self._compile_kernel(kernel, rng, launch)
                launch += 1

    def _compile_kernel(self, kernel: KernelProgram,
                        rng: np.random.Generator,
                        launch: int) -> KernelTrace:
        scheduler = self._scheduler(kernel.ctas)
        per_chip = self.accesses_per_epoch_per_chip
        total_accesses = kernel.ctas * kernel.accesses_per_cta
        per_epoch = per_chip * self.num_chips
        num_epochs = max(1, -(-total_accesses // per_epoch))
        weights = np.array([a.weight for a in kernel.accesses])
        weights = weights / weights.sum()
        epochs = []
        for _epoch in range(num_epochs):
            epochs.append(self._compile_epoch(kernel, scheduler, weights,
                                              per_chip, rng))
        return KernelTrace(name=f"{kernel.name}#{launch}",
                           epochs=tuple(epochs))

    def _compile_epoch(self, kernel: KernelProgram,
                       scheduler: Union["DistributedCTAScheduler",
                                        "RoundRobinCTAScheduler"],
                       weights: np.ndarray,
                       per_chip: int, rng: np.random.Generator) -> EpochTrace:
        chips_list = []
        addrs_list = []
        writes_list = []
        for chip in range(self.num_chips):
            ctas = scheduler.ctas_of(chip)
            if len(ctas) == 0:
                continue
            # Sample which CTA issues each access, then which operand.
            cta_choice = rng.integers(0, len(ctas), size=per_chip)
            operand_choice = rng.choice(len(kernel.accesses), size=per_chip,
                                        p=weights)
            addrs = np.empty(per_chip, dtype=np.int64)
            writes = np.zeros(per_chip, dtype=bool)
            for op_index, access in enumerate(kernel.accesses):
                mask = operand_choice == op_index
                count = int(mask.sum())
                if count == 0:
                    continue
                num_lines = max(1, access.array.size_bytes // self.line_size)
                base = self._bases[access.array.name]
                # Batch the pattern sampling by CTA.
                ctas_drawn = np.asarray(ctas)[cta_choice[mask]]
                lines = np.empty(count, dtype=np.int64)
                unique_ctas, inverse = np.unique(ctas_drawn,
                                                 return_inverse=True)
                for j, cta in enumerate(unique_ctas.tolist()):
                    group = inverse == j
                    lines[group] = access.pattern.sample(
                        cta, kernel.ctas, num_lines, int(group.sum()), rng)
                addrs[mask] = base + lines * self.line_size
                if access.write_fraction:
                    writes[mask] = rng.random(count) < access.write_fraction
            chips_list.append(np.full(per_chip, chip, dtype=np.int64))
            addrs_list.append(addrs)
            writes_list.append(writes)
        chips = np.concatenate(chips_list)
        addrs = np.concatenate(addrs_list)
        writes = np.concatenate(writes_list)
        order = rng.permutation(len(addrs))
        clusters = rng.integers(0, self.clusters_per_chip, size=len(addrs),
                                dtype=np.int64)
        compute = per_chip / kernel.intensity * 1000.0
        return EpochTrace(chips=chips[order], clusters=clusters,
                          addrs=addrs[order], writes=writes[order],
                          compute_cycles=compute)


def simulate_program(workload: ProgramWorkload,
                     organization: Union[str, "LLCOrganization"],
                     config: Optional["SystemConfig"] = None,
                     scale: float = 1.0,
                     params: Optional["EngineParams"] = None) -> "RunStats":
    """Run a :class:`ProgramWorkload` under an LLC organization.

    Unlike :func:`repro.sim.run.simulate`, programs carry explicit array
    sizes, so ``scale`` here only shrinks the *caches* (pass arrays
    already sized for the system you model).
    """
    from ..arch.presets import baseline
    from ..sim.engine import SimulationEngine
    from ..sim.run import make_organization, scaled_config

    base = config or baseline()
    run_config = scaled_config(base, scale)
    if isinstance(organization, str):
        organization = make_organization(organization, run_config)
    engine = SimulationEngine(run_config, organization, params=params)
    return engine.run(workload.kernel_traces(), benchmark=workload.name)
