"""Workloads: Table 4 benchmark specs and the synthetic trace generator."""

from .generator import (
    REGION_FALSE,
    REGION_PRIVATE,
    REGION_TRUE,
    EpochTrace,
    KernelTrace,
    TraceGenerator,
)
from .programs import (
    Array,
    ArrayAccess,
    Broadcast,
    Halo,
    KernelProgram,
    Partitioned,
    ProgramWorkload,
    Strided,
    simulate_program,
)
from .spec import (
    MEMORY_SIDE_PREFERRED,
    SM_SIDE_PREFERRED,
    BenchmarkSpec,
    KernelSpec,
    PhaseSpec,
)
from .suite import BENCHMARKS, MP_BENCHMARKS, SP_BENCHMARKS, SUITE, get
from .traceio import TraceStatistics, load_trace, save_trace, trace_statistics

__all__ = [
    "REGION_FALSE",
    "REGION_PRIVATE",
    "REGION_TRUE",
    "EpochTrace",
    "KernelTrace",
    "TraceGenerator",
    "Array",
    "ArrayAccess",
    "Broadcast",
    "Halo",
    "KernelProgram",
    "Partitioned",
    "ProgramWorkload",
    "Strided",
    "simulate_program",
    "MEMORY_SIDE_PREFERRED",
    "SM_SIDE_PREFERRED",
    "BenchmarkSpec",
    "KernelSpec",
    "PhaseSpec",
    "BENCHMARKS",
    "MP_BENCHMARKS",
    "SP_BENCHMARKS",
    "SUITE",
    "get",
    "TraceStatistics",
    "load_trace",
    "save_trace",
    "trace_statistics",
]
