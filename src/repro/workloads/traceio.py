"""Trace serialization and summary statistics.

Traces are deterministic, but materializing them once and re-running
many organization/configuration variants is often faster than
regenerating, and shipping a trace is the natural interchange format if
you want to feed the engine from a *real* (e.g. binary-instrumented)
access stream.  ``save_trace``/``load_trace`` round-trip a kernel-trace
sequence through a single compressed ``.npz`` file.

``trace_statistics`` summarizes an access stream: volume, read/write
mix, footprint and the Section 2.2 sharing decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

from .generator import EpochTrace, KernelTrace

_FORMAT_VERSION = 1


def save_trace(path: str, kernels: Sequence[KernelTrace]) -> None:
    """Write a kernel-trace sequence to ``path`` (compressed .npz)."""
    kernels = list(kernels)
    if not kernels:
        raise ValueError("cannot save an empty trace")
    chips, clusters, addrs, writes = [], [], [], []
    epoch_lengths, epoch_compute = [], []
    kernel_names: List[str] = []
    kernel_epoch_counts: List[int] = []
    for kernel in kernels:
        kernel_names.append(kernel.name)
        kernel_epoch_counts.append(len(kernel.epochs))
        for epoch in kernel.epochs:
            chips.append(epoch.chips)
            clusters.append(epoch.clusters)
            addrs.append(epoch.addrs)
            writes.append(epoch.writes)
            epoch_lengths.append(len(epoch))
            epoch_compute.append(epoch.compute_cycles)
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        chips=np.concatenate(chips),
        clusters=np.concatenate(clusters),
        addrs=np.concatenate(addrs),
        writes=np.concatenate(writes),
        epoch_lengths=np.asarray(epoch_lengths, dtype=np.int64),
        epoch_compute=np.asarray(epoch_compute, dtype=np.float64),
        kernel_names=np.asarray(kernel_names),
        kernel_epoch_counts=np.asarray(kernel_epoch_counts, dtype=np.int64))


def load_trace(path: str) -> List[KernelTrace]:
    """Read a kernel-trace sequence written by :func:`save_trace`."""
    with np.load(path, allow_pickle=False) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported trace format version {version}")
        chips = data["chips"]
        clusters = data["clusters"]
        addrs = data["addrs"]
        writes = data["writes"]
        epoch_lengths = data["epoch_lengths"].tolist()
        epoch_compute = data["epoch_compute"].tolist()
        kernel_names = [str(n) for n in data["kernel_names"]]
        kernel_epoch_counts = data["kernel_epoch_counts"].tolist()
    boundaries = np.cumsum([0] + epoch_lengths)
    epochs: List[EpochTrace] = []
    for i, compute in enumerate(epoch_compute):
        lo, hi = boundaries[i], boundaries[i + 1]
        epochs.append(EpochTrace(
            chips=chips[lo:hi], clusters=clusters[lo:hi],
            addrs=addrs[lo:hi], writes=writes[lo:hi],
            compute_cycles=float(compute)))
    kernels: List[KernelTrace] = []
    cursor = 0
    for name, count in zip(kernel_names, kernel_epoch_counts):
        kernels.append(KernelTrace(
            name=name, epochs=tuple(epochs[cursor:cursor + count])))
        cursor += count
    return kernels


@dataclass(frozen=True)
class TraceStatistics:
    """Summary of one access stream."""

    accesses: int
    writes: int
    kernels: int
    epochs: int
    distinct_lines: int
    footprint_bytes: int
    true_shared_lines: int
    false_shared_lines: int
    non_shared_lines: int
    accesses_per_chip: Dict[int, int]

    @property
    def write_fraction(self) -> float:
        return self.writes / self.accesses if self.accesses else 0.0

    def sharing_fractions(self) -> Dict[str, float]:
        total = max(1, self.distinct_lines)
        return {
            "true": self.true_shared_lines / total,
            "false": self.false_shared_lines / total,
            "none": self.non_shared_lines / total,
        }


def trace_statistics(kernels: Iterable[KernelTrace], line_size: int = 128,
                     page_size: int = 4096) -> TraceStatistics:
    """Compute volume, mix and sharing decomposition of a trace."""
    kernels = list(kernels)
    if not kernels:
        raise ValueError("empty trace")
    chips_list, addrs_list = [], []
    accesses = 0
    writes = 0
    epochs = 0
    for kernel in kernels:
        for epoch in kernel.epochs:
            chips_list.append(epoch.chips)
            addrs_list.append(epoch.addrs)
            accesses += len(epoch)
            writes += int(epoch.writes.sum())
            epochs += 1
    # Imported lazily to avoid a package-level import cycle
    # (analysis -> sim -> workloads).
    from ..analysis.working_set import (
        SHARING_FALSE,
        SHARING_NONE,
        SHARING_TRUE,
        classify_lines,
    )
    chips = np.concatenate(chips_list)
    addrs = np.concatenate(addrs_list)
    classes = classify_lines(chips, addrs, line_size, page_size)
    counts = {SHARING_TRUE: 0, SHARING_FALSE: 0, SHARING_NONE: 0}
    for cls in classes.values():
        counts[cls] += 1
    unique_chips, chip_counts = np.unique(chips, return_counts=True)
    return TraceStatistics(
        accesses=accesses,
        writes=writes,
        kernels=len(kernels),
        epochs=epochs,
        distinct_lines=len(classes),
        footprint_bytes=len(classes) * line_size,
        true_shared_lines=counts[SHARING_TRUE],
        false_shared_lines=counts[SHARING_FALSE],
        non_shared_lines=counts[SHARING_NONE],
        accesses_per_chip={int(c): int(n) for c, n
                           in zip(unique_chips, chip_counts)})
