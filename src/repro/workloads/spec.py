"""Workload specifications.

A :class:`BenchmarkSpec` captures what Table 4 of the paper reports for
each benchmark — footprint, truly-shared and falsely-shared megabytes,
CTA count — plus the access-pattern knobs our synthetic generator needs:
how concentrated the hot set is, how intense the memory traffic is, and
the kernel/phase structure.

The three sharing classes follow the paper's Section 2.2 definitions:

* **true sharing** — the same cache line is accessed by multiple chips;
* **false sharing** — a line is accessed by one chip only, but another
  line of the same page is accessed by a different chip;
* **no sharing** — neither the line nor its page is touched by another
  chip.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

MB = 1024 * 1024

#: Benchmark preference labels used to group figures (paper Figure 1/8).
SM_SIDE_PREFERRED = "sm-side"
MEMORY_SIDE_PREFERRED = "memory-side"


@dataclass(frozen=True)
class PhaseSpec:
    """One behaviourally stable phase of a kernel.

    ``weight_true``, ``weight_false`` and ``weight_private`` give the
    probability that an access falls into the truly shared, falsely
    shared or unshared region; they must sum to 1.  ``hot_fraction`` and
    ``hot_weight`` shape reuse: ``hot_weight`` of the accesses go to a hot
    subset covering ``hot_fraction`` of the region, which directly sets
    the windowed working-set size (paper Figure 11).
    """

    weight_true: float
    weight_false: float
    weight_private: float
    hot_fraction: float = 0.25
    hot_weight: float = 0.8
    write_fraction: float = 0.25
    # Memory accesses issued per chip per 1000 compute cycles; larger means
    # more memory-bound.  Sets the epoch compute floor.
    intensity: float = 400.0
    # Optional per-region hot-set overrides; None falls back to hot_fraction.
    hot_fraction_true: Optional[float] = None
    hot_fraction_false: Optional[float] = None
    hot_fraction_private: Optional[float] = None
    # Temporal home-affinity of true sharing: with this probability, a
    # truly-shared access goes to the chip's *own* segment of the region
    # (the part it first touched and that is therefore homed locally
    # under first-touch allocation); otherwise any segment is accessed.
    # 0 models fully symmetric sharing, higher values model the phased
    # sharing of iterative workloads (tiles, panels, halos).
    true_affinity: float = 0.0

    def __post_init__(self) -> None:
        total = self.weight_true + self.weight_false + self.weight_private
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"phase weights must sum to 1, got {total}")
        for name in ("weight_true", "weight_false", "weight_private",
                     "hot_fraction", "hot_weight", "write_fraction",
                     "true_affinity"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        for name in ("hot_fraction_true", "hot_fraction_false",
                     "hot_fraction_private"):
            value = getattr(self, name)
            if value is not None and not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {value}")
        if self.hot_fraction == 0.0 and self.hot_weight > 0.0:
            raise ValueError("hot_weight > 0 requires a non-empty hot set")
        if self.intensity <= 0:
            raise ValueError("intensity must be positive")

    def region_hot_fraction(self, region: str) -> float:
        """Hot fraction for ``region`` ('true' | 'false' | 'private')."""
        override = getattr(self, f"hot_fraction_{region}")
        if override is not None:
            return override
        return self.hot_fraction


@dataclass(frozen=True)
class KernelSpec:
    """One kernel launch: a phase plus its length in epochs."""

    name: str
    phase: PhaseSpec
    epochs: int = 8

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("a kernel needs at least one epoch")


@dataclass(frozen=True)
class BenchmarkSpec:
    """A full benchmark: Table 4 characteristics + generator knobs."""

    name: str
    suite: str
    num_ctas: int
    footprint_mb: float
    true_shared_mb: float
    false_shared_mb: float
    preference: str
    kernels: Tuple[KernelSpec, ...]
    # How many times the kernel sequence repeats (multi-launch apps).
    iterations: int = 1
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.preference not in (SM_SIDE_PREFERRED, MEMORY_SIDE_PREFERRED):
            raise ValueError(f"unknown preference {self.preference!r}")
        if self.footprint_mb <= 0:
            raise ValueError("footprint must be positive")
        shared = self.true_shared_mb + self.false_shared_mb
        if shared > self.footprint_mb + 1e-9:
            raise ValueError("shared data cannot exceed the footprint")
        if self.num_ctas < 1:
            raise ValueError("need at least one CTA")
        if self.iterations < 1:
            raise ValueError("need at least one iteration")
        if not self.kernels:
            raise ValueError("a benchmark needs at least one kernel")

    @property
    def private_mb(self) -> float:
        return self.footprint_mb - self.true_shared_mb - self.false_shared_mb

    @property
    def effective_seed(self) -> int:
        if self.seed is not None:
            return self.seed
        # Stable across processes (unlike hash(), which is salted).
        digest = hashlib.md5(self.name.encode("utf-8")).hexdigest()
        return int(digest[:8], 16)

    def region_bytes(self, scale: float = 1.0) -> Dict[str, int]:
        """Byte sizes of the three regions, scaled by ``scale``.

        ``scale`` < 1 shrinks the workload (used together with LLC scaling
        to keep experiments fast; see ``repro.analysis.runner``).
        """
        if scale <= 0:
            raise ValueError("scale must be positive")
        return {
            "true": max(0, int(self.true_shared_mb * MB * scale)),
            "false": max(0, int(self.false_shared_mb * MB * scale)),
            "private": max(0, int(self.private_mb * MB * scale)),
        }

    def scaled_input(self, factor: float) -> "BenchmarkSpec":
        """Scale the input set by ``factor`` (paper Figure 13).

        Input scaling multiplies all three regions; CTA count scales with
        the footprint.  The name is annotated with the factor.
        """
        if factor <= 0:
            raise ValueError("input scale factor must be positive")
        suffix = f" x{factor:g}" if factor >= 1 else f" /{1 / factor:g}"
        return replace(
            self,
            name=self.name + suffix,
            footprint_mb=self.footprint_mb * factor,
            true_shared_mb=self.true_shared_mb * factor,
            false_shared_mb=self.false_shared_mb * factor,
            num_ctas=max(1, int(self.num_ctas * factor)),
            seed=self.effective_seed,
        )

    def table4_row(self) -> Dict[str, object]:
        """The row this benchmark contributes to Table 4."""
        return {
            "benchmark": self.name,
            "suite": self.suite,
            "ctas": self.num_ctas,
            "footprint_mb": round(self.footprint_mb),
            "true_shared_mb": round(self.true_shared_mb),
            "false_shared_mb": round(self.false_shared_mb),
            "preference": self.preference,
        }


def single_kernel(name: str, phase: PhaseSpec, epochs: int = 8,
                  iterations: int = 1) -> Tuple[KernelSpec, ...]:
    """Convenience: a benchmark with one repeated kernel."""
    return (KernelSpec(name=f"{name}.K1", phase=phase, epochs=epochs),)
