"""Memory substrate: page table, PAE address mapping and DRAM partitions."""

from .dram import DramPartition, DramStats, DramSystem
from .mapping import AddressMapping
from .migration import DominantAccessorMigration, MigrationStats
from .pages import PageTable, PageTableStats

__all__ = [
    "AddressMapping",
    "DominantAccessorMigration",
    "DramPartition",
    "DramStats",
    "DramSystem",
    "MigrationStats",
    "PageTable",
    "PageTableStats",
]
