"""Page table with first-touch allocation.

Multi-chip GPUs map each memory page to the partition of the chip that
first touches it (Arunkumar et al.; paper Section 4).  The page table
records that mapping and exposes the home chip of any byte address.  A
round-robin policy is provided for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple


@dataclass
class PageTableStats:
    """Allocation counters, by chip."""

    pages_allocated: int = 0
    pages_per_chip: Dict[int, int] = field(default_factory=dict)

    def record(self, chip: int) -> None:
        self.pages_allocated += 1
        self.pages_per_chip[chip] = self.pages_per_chip.get(chip, 0) + 1


class PageTable:
    """Maps pages to home memory partitions.

    ``policy`` is ``"first-touch"`` (default) or ``"round-robin"``.  Pages
    are identified by page number (``addr >> page_shift``).
    """

    def __init__(self, page_size: int, num_chips: int,
                 policy: str = "first-touch") -> None:
        if page_size <= 0 or page_size & (page_size - 1):
            raise ValueError("page size must be a positive power of two")
        if num_chips < 1:
            raise ValueError("need at least one chip")
        if policy not in ("first-touch", "round-robin"):
            raise ValueError(f"unknown page allocation policy: {policy!r}")
        self.page_size = page_size
        self.num_chips = num_chips
        self.policy = policy
        self.stats = PageTableStats()
        self._page_shift = page_size.bit_length() - 1
        self._home: Dict[int, int] = {}
        self._next_rr = 0

    def page_of(self, addr: int) -> int:
        return addr >> self._page_shift

    def home_chip(self, addr: int, requesting_chip: int) -> int:
        """Home partition of ``addr``, allocating the page on first touch."""
        page = addr >> self._page_shift
        home = self._home.get(page)
        if home is None:
            home = self._allocate(page, requesting_chip)
        return home

    def lookup(self, addr: int) -> int | None:
        """Home partition of ``addr`` if allocated, else None (no side effects)."""
        return self._home.get(addr >> self._page_shift)

    def bulk_home(self, pages: Sequence[int],
                  touch_chips: Sequence[int]) -> List[int]:
        """Resolve many pages at once, allocating unknown ones.

        ``pages`` are page numbers paired with the chip that (first)
        touches each; they must be given in first-touch order so that
        order-sensitive policies (round-robin) allocate exactly as the
        per-access path would.  Returns the home chip per page.
        """
        homes: List[int] = []
        get = self._home.get
        allocate = self._allocate
        for page, chip in zip(pages, touch_chips):
            home = get(page)
            if home is None:
                home = allocate(page, chip)
            homes.append(home)
        return homes

    def _allocate(self, page: int, requesting_chip: int) -> int:
        if self.policy == "first-touch":
            home = requesting_chip
        else:
            home = self._next_rr
            self._next_rr = (self._next_rr + 1) % self.num_chips
        self._home[page] = home
        self.stats.record(home)
        return home

    def migrate(self, page: int, new_home: int) -> int:
        """Move an allocated page to ``new_home``; returns the old home."""
        if not 0 <= new_home < self.num_chips:
            raise ValueError(f"chip {new_home} out of range")
        if page not in self._home:
            raise KeyError(f"page {page} is not allocated")
        old_home = self._home[page]
        self._home[page] = new_home
        return old_home

    def __len__(self) -> int:
        return len(self._home)

    def pages(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(page_number, home_chip)`` pairs."""
        return iter(self._home.items())

    def footprint_bytes(self) -> int:
        """Total bytes of allocated pages."""
        return len(self._home) * self.page_size

    def reset(self) -> None:
        self._home.clear()
        self._next_rr = 0
        self.stats = PageTableStats()
