"""DRAM partition bandwidth model.

Each chip owns one memory partition with ``channels_per_chip`` channels.
The epoch-based engine charges bytes to channels; this module tracks those
charges and reports per-channel and per-partition service demand, which
the engine turns into cycles (demand / bandwidth).

The model intentionally omits row-buffer and bank-conflict detail: the
paper's PAE mapping evenly spreads accesses across channels and banks, so
channel bandwidth is the binding constraint (paper Section 3.3, B_mem).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List

from ..arch.config import MemoryConfig


@dataclass
class DramStats:
    """Cumulative DRAM traffic counters for one partition."""

    reads: int = 0
    writes: int = 0
    read_bytes: int = 0
    write_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes


class DramPartition:
    """One chip's local memory partition."""

    def __init__(self, config: MemoryConfig, chip: int) -> None:
        self.config = config
        self.chip = chip
        self.stats = DramStats()
        # Bytes charged in the current epoch, by channel.
        self._epoch_channel_bytes: List[float] = [0.0] * config.channels_per_chip

    def charge(self, channel: int, num_bytes: int, is_write: bool) -> None:
        """Account ``num_bytes`` of traffic to ``channel``."""
        if not 0 <= channel < self.config.channels_per_chip:
            raise IndexError(f"channel {channel} out of range")
        if num_bytes < 0:
            raise ValueError("cannot charge negative bytes")
        self._epoch_channel_bytes[channel] += num_bytes
        if is_write:
            self.stats.writes += 1
            self.stats.write_bytes += num_bytes
        else:
            self.stats.reads += 1
            self.stats.read_bytes += num_bytes

    def charge_bulk(self, channel: int, num_bytes: int, count: int,
                    is_write: bool) -> None:
        """Account ``count`` requests totalling ``num_bytes`` on ``channel``.

        Equivalent to ``count`` individual :meth:`charge` calls (used by
        the engine's batched epoch fast path).
        """
        if not 0 <= channel < self.config.channels_per_chip:
            raise IndexError(f"channel {channel} out of range")
        if num_bytes < 0 or count < 0:
            raise ValueError("cannot charge negative bytes or counts")
        self._epoch_channel_bytes[channel] += num_bytes
        if is_write:
            self.stats.writes += count
            self.stats.write_bytes += num_bytes
        else:
            self.stats.reads += count
            self.stats.read_bytes += num_bytes

    def epoch_cycles(self) -> float:
        """Cycles needed to drain this epoch's traffic (bottleneck channel)."""
        if not any(self._epoch_channel_bytes):
            return 0.0
        return max(self._epoch_channel_bytes) / self.config.channel_bw_bytes_per_cycle

    def epoch_bytes(self) -> float:
        return sum(self._epoch_channel_bytes)

    def end_epoch(self) -> None:
        """Reset the per-epoch charge counters."""
        for i in range(len(self._epoch_channel_bytes)):
            self._epoch_channel_bytes[i] = 0.0

    def reset(self) -> None:
        self.stats = DramStats()
        self.end_epoch()


class DramSystem:
    """All memory partitions of the multi-chip system."""

    def __init__(self, config: MemoryConfig, num_chips: int) -> None:
        self.partitions: List[DramPartition] = [
            DramPartition(config, chip) for chip in range(num_chips)]

    def __getitem__(self, chip: int) -> DramPartition:
        return self.partitions[chip]

    def __iter__(self) -> Iterator[DramPartition]:
        return iter(self.partitions)

    def end_epoch(self) -> None:
        for partition in self.partitions:
            partition.end_epoch()

    def reset(self) -> None:
        for partition in self.partitions:
            partition.reset()

    def total_bytes(self) -> int:
        return sum(p.stats.total_bytes for p in self.partitions)

    def bytes_by_chip(self) -> Dict[int, int]:
        return {p.chip: p.stats.total_bytes for p in self.partitions}
