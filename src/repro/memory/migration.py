"""Page migration (related-work baseline).

The paper positions page migration (Griffin, traffic management) as a
*beyond-LLC* bandwidth optimization: pages get moved to the memory
partition of the chip that dominates their accesses, cutting remote
memory traffic.  SAC's argument is that this is insufficient because the
bandwidth that matters is *ahead of* the LLC.

:class:`DominantAccessorMigration` implements the classic policy: per
page, count accesses by chip; when a remote chip's share exceeds a
threshold (count and fraction), migrate the page to it.  Migration
copies the page over the inter-chip ring and through both DRAM
partitions, and a cooldown prevents ping-ponging.

The engine integrates it behind ``EngineParams.page_migration``; the
related-work experiment compares memory-side + migration against SAC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .pages import PageTable


@dataclass
class MigrationStats:
    """Cumulative migration activity."""

    migrations: int = 0
    bytes_moved: int = 0
    pages_considered: int = 0


@dataclass
class _PageCounters:
    counts: List[int]
    cooldown: int = 0


class DominantAccessorMigration:
    """Move a page to its dominant remote accessor."""

    def __init__(self, page_size: int, num_chips: int,
                 min_accesses: int = 64, min_share: float = 0.6,
                 cooldown_epochs: int = 4) -> None:
        if min_accesses < 1:
            raise ValueError("need a positive access threshold")
        if not 0.5 <= min_share <= 1.0:
            raise ValueError("dominance share must be in [0.5, 1.0]")
        if cooldown_epochs < 0:
            raise ValueError("cooldown cannot be negative")
        self.page_size = page_size
        self.num_chips = num_chips
        self.min_accesses = min_accesses
        self.min_share = min_share
        self.cooldown_epochs = cooldown_epochs
        self.stats = MigrationStats()
        self._pages: Dict[int, _PageCounters] = {}

    def observe(self, page: int, chip: int) -> None:
        """Record one access to ``page`` by ``chip``."""
        entry = self._pages.get(page)
        if entry is None:
            entry = _PageCounters(counts=[0] * self.num_chips)
            self._pages[page] = entry
        entry.counts[chip] += 1

    def end_epoch(self, page_table: PageTable) -> List[Tuple[int, int, int]]:
        """Decide migrations; returns ``(page, old_home, new_home)`` moves.

        The caller charges the traffic (one page over the ring + both
        DRAM partitions) and updates its own structures; the page table
        is updated here.  Counters reset each epoch so the policy tracks
        the *current* phase, not history.
        """
        moves: List[Tuple[int, int, int]] = []
        for page, entry in self._pages.items():
            if entry.cooldown > 0:
                entry.cooldown -= 1
                continue
            total = sum(entry.counts)
            if total < self.min_accesses:
                continue
            self.stats.pages_considered += 1
            dominant = max(range(self.num_chips),
                           key=lambda chip: entry.counts[chip])
            if entry.counts[dominant] < total * self.min_share:
                continue
            old_home = page_table.lookup(page * self.page_size)
            if old_home is None or old_home == dominant:
                continue
            page_table.migrate(page, dominant)
            entry.cooldown = self.cooldown_epochs
            self.stats.migrations += 1
            self.stats.bytes_moved += self.page_size
            moves.append((page, old_home, dominant))
        for entry in self._pages.values():
            for chip in range(self.num_chips):
                entry.counts[chip] = 0
        return moves

    def reset(self) -> None:
        self._pages.clear()
        self.stats = MigrationStats()
