"""Randomized address mapping (PAE-style).

The paper uses the PAE address-mapping scheme (Liu et al., ISCA 2018) to
spread memory accesses uniformly across LLC slices, memory channels and
banks.  We reproduce the property that matters — uniform, deterministic
pseudo-random distribution — with a xor-fold hash of the line address.
The mapping is pure (no state), deterministic across runs and cheap.
"""

from __future__ import annotations

from dataclasses import dataclass


def _mix(value: int) -> int:
    """A 64-bit finalizer (splitmix64-style) used as the PAE hash."""
    value &= 0xFFFFFFFFFFFFFFFF
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


@dataclass(frozen=True)
class AddressMapping:
    """Deterministic pseudo-random mapping of line addresses to resources.

    ``llc_slice_of`` picks the LLC slice (within the home chip) serving a
    line, and ``channel_of`` the DRAM channel within the home partition.
    Both hash the line address so that consecutive lines spread across
    slices/channels, as PAE guarantees.
    """

    line_size: int
    slices_per_chip: int
    channels_per_chip: int
    seed: int = 0x5AC0_5AC0

    def __post_init__(self) -> None:
        if self.line_size <= 0 or self.line_size & (self.line_size - 1):
            raise ValueError("line size must be a positive power of two")
        if self.slices_per_chip < 1:
            raise ValueError("need at least one LLC slice per chip")
        if self.channels_per_chip < 1:
            raise ValueError("need at least one memory channel per chip")

    def _line(self, addr: int) -> int:
        return addr // self.line_size

    def llc_slice_of(self, addr: int) -> int:
        """LLC slice index (0..slices_per_chip-1) within the home chip."""
        return _mix(self._line(addr) ^ self.seed) % self.slices_per_chip

    def channel_of(self, addr: int) -> int:
        """DRAM channel index (0..channels_per_chip-1) within the home chip."""
        return _mix(self._line(addr) ^ ~self.seed & 0xFFFFFFFFFFFFFFFF) \
            % self.channels_per_chip

    def global_slice_of(self, addr: int, home_chip: int) -> int:
        """Globally unique slice id ``home_chip * slices_per_chip + slice``."""
        return home_chip * self.slices_per_chip + self.llc_slice_of(addr)
