"""The Chip Request Directory (CRD).

The CRD (paper Section 3.4, Figure 7) predicts the LLC hit rate of the
SM-side configuration while the system runs memory-side.  It samples a
few of the chip's LLC sets; for each tracked line it records, per chip,
whether that chip has accessed the line before.  A repeat access by chip
*i* (bit *i* already set) would hit chip *i*'s SM-side LLC, so it counts
as a CRD hit.  ``crd_hits / crd_requests`` estimates the SM-side hit
rate.

Capacity fidelity matters: each CRD set must see the traffic of exactly
one LLC set (same ways, same insertion pressure), so the CRD indexes
lines with the *same* (slice-hash, set-index) function as the LLC and
samples every ``global_sets / crd_sets``-th global set.  Replicated
lines occupy one CRD entry whose per-chip bits approximate the per-chip
copies (the paper's RDD-inspired simplification).

Because profiling runs memory-side, each chip's CRD observes every
request homed at its memory partition, so no request escapes sampling.

Sectored caches widen the per-chip field to one bit per sector.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..arch.config import SACConfig


@dataclass
class CRDBlock:
    """One CRD entry: a tag plus per-chip (per-sector) access bits."""

    tag: int
    chip_bits: int = 0  # bit (chip * sectors + sector)


def modular_set_index(num_sets: int, line_size: int) -> Callable[[int], int]:
    """Default set-index function: ``(addr / line_size) mod num_sets``.

    Real deployments pass the composed (slice-hash, set) function via
    ``set_index_fn`` so the CRD's sampling matches the LLC exactly.
    """
    shift = line_size.bit_length() - 1

    def index(addr: int) -> int:
        return (addr >> shift) % num_sets

    return index


class ChipRequestDirectory:
    """Sampled directory predicting the SM-side LLC hit rate."""

    def __init__(self, sac: SACConfig, num_chips: int, llc_num_sets: int,
                 line_size: int, sectored: bool = False,
                 sectors_per_line: int = 4,
                 set_index_fn: Optional[Callable[[int], int]] = None) -> None:
        if llc_num_sets < 1:
            raise ValueError("the sampled LLC needs at least one set")
        if num_chips < 1:
            raise ValueError("need at least one chip")
        self.config = sac
        self.num_chips = num_chips
        self.llc_num_sets = llc_num_sets
        self.line_size = line_size
        self.sectored = sectored
        self.sectors_per_line = sectors_per_line if sectored else 1
        self.requests = 0
        self.hits = 0
        self._line_shift = line_size.bit_length() - 1
        self._set_index_fn = set_index_fn or modular_set_index(
            llc_num_sets, line_size)
        # Sample every (llc_num_sets / crd_sets)-th global LLC set.
        self._stride = max(1, llc_num_sets // sac.crd_sets)
        self._sets: List["OrderedDict[int, CRDBlock]"] = [
            OrderedDict() for _ in range(sac.crd_sets)]
        if sectored:
            self._sector_shift = (line_size // sectors_per_line).bit_length() - 1

    # -- Geometry / overhead ------------------------------------------------

    @property
    def num_sets(self) -> int:
        return self.config.crd_sets

    @property
    def num_ways(self) -> int:
        return self.config.crd_ways

    @property
    def sample_stride(self) -> int:
        return self._stride

    def storage_bits(self) -> int:
        """Total SRAM bits (tag + chip bits per block)."""
        bits_per_chip = self.sectors_per_line if self.sectored else 1
        block_bits = self.config.crd_tag_bits + self.num_chips * bits_per_chip
        return self.num_sets * self.num_ways * block_bits

    def storage_bytes(self) -> int:
        return self.storage_bits() // 8

    # -- Profiling ----------------------------------------------------------

    def _sampled_set(self, addr: int) -> Optional[int]:
        llc_set = self._set_index_fn(addr)
        if llc_set % self._stride:
            return None
        crd_set = llc_set // self._stride
        if crd_set >= self.config.crd_sets:
            return None
        return crd_set

    def sampled_mask(self, llc_sets: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`_sampled_set` predicate.

        ``llc_sets`` holds precomputed global set indices (the same
        values ``set_index_fn`` yields per address); the result marks
        the accesses that fall inside the sampled sets.  Used by the
        batched profiling path to pre-filter the (order-dependent)
        per-access :meth:`observe` stream — the two must stay in sync.
        """
        return ((llc_sets % self._stride == 0)
                & (llc_sets // self._stride < self.config.crd_sets))

    def _bit(self, chip: int, addr: int) -> int:
        if not self.sectored:
            return 1 << chip
        offset = addr & (self.line_size - 1)
        sector = offset >> self._sector_shift
        return 1 << (chip * self.sectors_per_line + sector)

    def observe(self, chip: int, addr: int) -> Optional[bool]:
        """Feed one request; returns the predicted SM-side hit, or None
        if the address falls outside the sampled sets."""
        crd_set = self._sampled_set(addr)
        if crd_set is None:
            return None
        tag = addr >> self._line_shift
        blocks = self._sets[crd_set]
        bit = self._bit(chip, addr)
        block = blocks.get(tag)
        self.requests += 1
        if block is not None:
            blocks.move_to_end(tag)
            if block.chip_bits & bit:
                self.hits += 1
                return True
            block.chip_bits |= bit
            return False
        if len(blocks) >= self.config.crd_ways:
            blocks.popitem(last=False)
        blocks[tag] = CRDBlock(tag=tag, chip_bits=bit)
        return False

    @property
    def predicted_hit_rate(self) -> float:
        """Estimated SM-side LLC hit rate (CRD hits / CRD requests)."""
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests

    def reset(self) -> None:
        for blocks in self._sets:
            blocks.clear()
        self.requests = 0
        self.hits = 0
