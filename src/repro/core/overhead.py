"""SAC hardware-overhead accounting (paper Section 3.6).

Reproduces the published budget: the CRD costs 544 bytes per chip for
conventional caches (736 for sectored), the dual LSU counter arrays 64
bytes, and four 24-bit scalar counters 12 bytes — 620 / 812 bytes per
chip in total.  The NoC-side bypass logic overhead is computed by
:mod:`repro.noc.power` (~1.6% power / ~1.9% area over the memory-side
NoC).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.config import SACConfig, SystemConfig
from ..noc import power as noc_power
from .counters import LSU_COUNTER_BITS, SCALAR_COUNTER_BITS, SCALAR_COUNTERS


@dataclass(frozen=True)
class OverheadReport:
    """Per-chip hardware overhead of SAC."""

    crd_bytes: int
    lsu_counter_bytes: int
    scalar_counter_bytes: int
    bypass_power_overhead: float  # fraction of memory-side NoC power
    bypass_area_overhead: float   # fraction of memory-side NoC area

    @property
    def total_bytes(self) -> int:
        return self.crd_bytes + self.lsu_counter_bytes + self.scalar_counter_bytes


def crd_bytes(sac: SACConfig, num_chips: int, sectored: bool,
              sectors_per_line: int = 4) -> int:
    """CRD SRAM per chip: sets x ways x (tag + chip bits)."""
    bits_per_chip = sectors_per_line if sectored else 1
    block_bits = sac.crd_tag_bits + num_chips * bits_per_chip
    return sac.crd_sets * sac.crd_ways * block_bits // 8


def overhead_report(config: SystemConfig,
                    sectored: bool | None = None) -> OverheadReport:
    """Compute the full Section 3.6 overhead budget for ``config``."""
    if sectored is None:
        sectored = config.chip.llc_slice.sectored
    crd = crd_bytes(config.sac, config.num_chips, sectored,
                    config.chip.llc_slice.sectors_per_line)
    lsu = 2 * config.chip.llc_slices * LSU_COUNTER_BITS // 8
    scalars = SCALAR_COUNTERS * SCALAR_COUNTER_BITS // 8
    costs = noc_power.report(config.chip.noc)
    sac_delta = costs["sac_vs_memory_side"]
    return OverheadReport(
        crd_bytes=crd,
        lsu_counter_bytes=lsu,
        scalar_counter_bytes=scalars,
        bypass_power_overhead=sac_delta.power,
        bypass_area_overhead=sac_delta.area)
