"""SAC core: the EAB model, profiling counters, CRD and the SAC controller."""

from .counters import ChipCounters, ProfilingCounters
from .crd import ChipRequestDirectory, CRDBlock
from .eab import (
    EABInputs,
    EABResult,
    architecture_bandwidths,
    decide,
    eab_memory_side,
    eab_sm_side,
    llc_slice_uniformity,
)
from .overhead import OverheadReport, crd_bytes, overhead_report
from .sac import SACDecision, SACStats, SharingAwareCaching

__all__ = [
    "ChipCounters",
    "ProfilingCounters",
    "ChipRequestDirectory",
    "CRDBlock",
    "EABInputs",
    "EABResult",
    "architecture_bandwidths",
    "decide",
    "eab_memory_side",
    "eab_sm_side",
    "llc_slice_uniformity",
    "OverheadReport",
    "crd_bytes",
    "overhead_report",
    "SACDecision",
    "SACStats",
    "SharingAwareCaching",
]
