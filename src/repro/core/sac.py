"""Sharing-Aware Caching: the reconfigurable LLC organization.

SAC (paper Section 3) starts every kernel in the memory-side
configuration and profiles it for a short window (2K cycles in the
paper; here the first epoch of the kernel, whose compute floor is of the
same magnitude).  The profiling counters and the CRD feed the EAB model;
if the SM-side EAB exceeds the memory-side EAB by more than theta, SAC
reconfigures the LLC to SM-side for the remainder of the kernel:

1. wait for in-flight requests to drain (``drain_cycles``),
2. write back and invalidate the dirty LLC lines (the engine charges the
   flush), and
3. switch the NoC routing policy.

When the kernel retires, SAC reverts to memory-side (drain + routing
switch only — the kernel-boundary software-coherence flush covers the
write-backs).  Optional periodic re-profiling (paper Section 3.2) can be
enabled through ``SACConfig.reprofile_interval_cycles``.

Ablation switches (used by the ablation benchmarks, not by the paper
configuration): ``use_crd=False`` substitutes the measured memory-side
hit rate for the CRD estimate, ``use_lsu=False`` pins both LSUs to 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from ..arch.config import SystemConfig
from ..llc.base import (
    MEMORY_SIDE_MODE,
    PARTITION_LOCAL,
    SM_SIDE_MODE,
    LLCOrganization,
    RoutePlan,
)
from ..llc.organizations import MemorySideLLC, SMSideLLC
from .counters import ProfilingCounters
from .eab import EABInputs, architecture_bandwidths, decide

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.engine import EngineContext


@dataclass
class SACDecision:
    """Record of one profiling decision (for reports and Figure 12)."""

    kernel: str
    chosen: str
    eab_inputs: Optional[EABInputs]
    reconfigured: bool


@dataclass
class SACStats:
    """SAC controller activity."""

    decisions: List[SACDecision] = field(default_factory=list)
    reconfigurations: int = 0
    drain_cycles_total: float = 0.0

    def chosen_for(self, kernel_prefix: str) -> List[str]:
        return [d.chosen for d in self.decisions
                if d.kernel.startswith(kernel_prefix)]


class SharingAwareCaching(LLCOrganization):
    """The SAC organization: profiling window + EAB-driven reconfiguration."""

    name = "sac"

    def __init__(self, config: SystemConfig, use_crd: bool = True,
                 use_lsu: bool = True,
                 zero_reconfig_cost: bool = False) -> None:
        self.config = config
        self.use_crd = use_crd
        self.use_lsu = use_lsu
        self.zero_reconfig_cost = zero_reconfig_cost
        self.stats = SACStats()
        self._memory_side = MemorySideLLC(config.num_chips)
        self._sm_side = SMSideLLC(config.num_chips)
        self._active: LLCOrganization = self._memory_side
        self._profiling = False
        self._counters: Optional[ProfilingCounters] = None
        self._bandwidths = architecture_bandwidths(config)
        self._kernel_name = ""
        self._cycles_since_profile = 0.0
        # Geometry for the batched observer (set by ``attach``).
        self._slice_sets = 0
        self._obs_line_shift = 0

    # -- Introspection ------------------------------------------------------

    @property
    def mode(self) -> str:
        return self._active.mode

    @property
    def profiling(self) -> bool:
        return self._profiling

    @property
    def counters(self) -> Optional[ProfilingCounters]:
        return self._counters

    @property
    def dedicated_memory_network(self) -> bool:
        """SAC reuses the single memory-side NoC even in SM-side mode
        (Figure 6: the same physical inter-chip link is logically on both
        sides), so remote-miss traffic shares the primary crossbar."""
        return False

    # -- Routing -------------------------------------------------------------

    def plan(self, chip: int, home: int) -> RoutePlan:
        return self._active.plan(chip, home)

    def flush_partitions(self) -> List[Tuple[Optional[int], int]]:
        if self._active.mode == SM_SIDE_MODE:
            return [(None, PARTITION_LOCAL)]
        return []

    # -- Lifecycle -------------------------------------------------------------

    def attach(self, ctx: "EngineContext") -> None:
        llc = self.config.chip.llc_slice
        slices = self.config.chip.llc_slices
        slice_sets = llc.num_sets
        line_shift = llc.line_size.bit_length() - 1
        self._slice_sets = slice_sets
        self._obs_line_shift = line_shift

        def global_set_index(addr: int) -> int:
            # Compose the PAE slice hash with the slice's set index so the
            # CRD samples the chip's global sets exactly as the LLC maps
            # them (capacity fidelity: one CRD set == one real set).
            return (ctx.slice_of(addr) * slice_sets
                    + (addr >> line_shift) % slice_sets)

        self._counters = ProfilingCounters(
            self.config.sac,
            num_chips=self.config.num_chips,
            slices_per_chip=slices,
            llc_num_sets=slices * slice_sets,
            line_size=llc.line_size,
            sectored=llc.sectored,
            sectors_per_line=llc.sectors_per_line,
            set_index_fn=global_set_index)

    def begin_kernel(self, ctx: "EngineContext", kernel_name: str) -> None:
        self._kernel_name = kernel_name
        self._start_profiling(ctx)

    def _start_profiling(self, ctx: "EngineContext") -> None:
        # Profiling always runs under a memory-side configuration so the
        # CRD sees every request homed at its partition.
        if self._active.mode != MEMORY_SIDE_MODE:
            self._switch(ctx, MEMORY_SIDE_MODE, flush=True)
        assert self._counters is not None
        self._counters.reset()
        self._profiling = True
        self._cycles_since_profile = 0.0

    @property
    def observe_is_passive(self) -> bool:
        # Counters only accumulate while the profiling window is open;
        # outside it the engine may batch epochs.
        return not self._profiling

    def observe_access(self, ctx: "EngineContext", chip: int, addr: int,
                       home: int, hit_stage: Optional[int]) -> None:
        if not self._profiling:
            return
        counters = self._counters
        assert counters is not None
        slice_index = ctx.slice_of(addr)
        counters.record_issue(chip, home, slice_index)
        counters.record_arrival(home, slice_index, chip, addr)
        counters.record_llc_outcome(hit_stage is not None)

    def observe_batch(self, ctx: "EngineContext", chips: np.ndarray,
                      addrs: np.ndarray, homes: np.ndarray,
                      slices: np.ndarray, hit_stages: np.ndarray) -> None:
        """Vectorized :meth:`observe_access` for one batched epoch.

        The engine calls this once per batched epoch instead of the
        per-access hook; the final counter state is identical because
        every chip counter is an order-independent sum and the CRDs
        still see their sampled addresses in access order.  Accesses
        with ``hit_stage == -2`` (L1 read hits) never reach
        :meth:`observe_access` on the serial path and are excluded.
        """
        if not self._profiling:
            return
        counters = self._counters
        assert counters is not None
        observed = hit_stages != -2
        if not bool(observed.all()):
            chips = chips[observed]
            addrs = addrs[observed]
            homes = homes[observed]
            slices = slices[observed]
            hit_stages = hit_stages[observed]
        if not len(addrs):
            return
        # Same global set index the ``attach`` closure computes per
        # address: the PAE slice hash composed with the slice-set bits.
        llc_sets = (slices * self._slice_sets
                    + ((addrs >> self._obs_line_shift) % self._slice_sets))
        counters.record_batch(chips, homes, slices, addrs, llc_sets,
                              hit_stages != -1)

    def profile_boundary(self, ctx: "EngineContext") -> None:
        if self._profiling:
            self._decide(ctx)

    def end_epoch(self, ctx: "EngineContext", epoch_index: int) -> None:
        if self._profiling:
            # Fallback for engines that do not split the profiling epoch.
            self._decide(ctx)
            return
        interval = self.config.sac.reprofile_interval_cycles
        if interval is not None:
            self._cycles_since_profile += ctx.last_epoch_cycles
            if self._cycles_since_profile >= interval:
                self._start_profiling(ctx)

    def end_kernel(self, ctx: "EngineContext") -> None:
        self._profiling = False
        if self._active.mode == SM_SIDE_MODE:
            # Revert to memory-side: drain + routing switch.  The dirty
            # write-backs are covered by the kernel-boundary flush that
            # the engine's software-coherence model performs anyway.
            self._switch(ctx, MEMORY_SIDE_MODE, flush=False)

    # -- Decision ----------------------------------------------------------------

    def eab_inputs(self) -> EABInputs:
        """Assemble the model inputs from the counters (paper Section 3.5)."""
        counters = self._counters
        if counters is None or counters.total_requests == 0:
            raise RuntimeError("no profiling data collected")
        hit_sm = (counters.llc_hit_sm_side if self.use_crd
                  else counters.llc_hit_memory_side)
        lsu_mem = counters.lsu_memory_side if self.use_lsu else 1.0
        lsu_sm = counters.lsu_sm_side if self.use_lsu else 1.0
        return EABInputs(
            r_local=counters.r_local,
            lsu_memory_side=lsu_mem,
            lsu_sm_side=lsu_sm,
            llc_hit_memory_side=counters.llc_hit_memory_side,
            llc_hit_sm_side=hit_sm,
            **self._bandwidths)

    def _decide(self, ctx: "EngineContext") -> None:
        self._profiling = False
        counters = self._counters
        if counters is None or counters.total_requests == 0:
            self.stats.decisions.append(SACDecision(
                kernel=self._kernel_name, chosen=self._active.mode,
                eab_inputs=None, reconfigured=False))
            return
        inputs = self.eab_inputs()
        chosen = decide(inputs, theta=self.config.sac.theta)
        reconfigured = chosen != self._active.mode
        if reconfigured:
            self._switch(ctx, chosen, flush=chosen == SM_SIDE_MODE)
        self.stats.decisions.append(SACDecision(
            kernel=self._kernel_name, chosen=chosen,
            eab_inputs=inputs, reconfigured=reconfigured))

    def _switch(self, ctx: "EngineContext", mode: str, flush: bool) -> None:
        """Reconfigure the routing policy, charging drain + flush costs."""
        self.stats.reconfigurations += 1
        if not self.zero_reconfig_cost:
            drain = self.config.sac.drain_cycles
            ctx.charge_cycles(drain)
            self.stats.drain_cycles_total += drain
            if flush:
                # Paper Section 3.6: reconfiguring writes back and
                # invalidates the *dirty* LLC lines; clean lines stay.
                ctx.flush_llc(partition=None, dirty_only=True)
        self._active = (self._sm_side if mode == SM_SIDE_MODE
                        else self._memory_side)

    def decision_table(self) -> Dict[str, str]:
        """Kernel launch -> chosen organization."""
        return {d.kernel: d.chosen for d in self.stats.decisions}
