"""The SAC hardware performance-counter architecture (paper Section 3.4).

Each chip carries:

* a **total requests** counter (all L1 misses issued by this chip);
* a **local requests** counter (L1 misses homed at this chip);
* ``N/4`` **memory-side slice request** counters (requests arriving at
  this chip's LLC slices under the profiled memory-side configuration);
* ``N/4`` **SM-side slice request** counters (the local slice each of
  this chip's own requests *would* use under an SM-side configuration);
* the CRD (see :mod:`repro.core.crd`) plus its hit/request counters.

Together these provide every workload-dependent EAB input: R_local, the
LSU of both configurations, and both hit rates (the memory-side hit rate
comes from the existing LLC counters; the SM-side one from the CRD).

``storage_bytes`` reproduces the paper's overhead accounting: 16-bit LSU
counters (64 B/chip for both configurations in the 4-chip baseline) plus
four 24-bit counters (12 B), plus the CRD (544 B conventional / 736 B
sectored), totalling 620 / 812 bytes per chip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from ..arch.config import SACConfig
from .crd import ChipRequestDirectory
from .eab import llc_slice_uniformity

LSU_COUNTER_BITS = 16
SCALAR_COUNTER_BITS = 24
#: total, local, CRD-hits and CRD-requests counters per chip.
SCALAR_COUNTERS = 4


@dataclass
class ChipCounters:
    """The per-chip profiling counter file."""

    chip: int
    slices_per_chip: int
    total_requests: int = 0
    local_requests: int = 0
    memory_side_slice_requests: List[int] = field(default_factory=list)
    sm_side_slice_requests: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.memory_side_slice_requests:
            self.memory_side_slice_requests = [0] * self.slices_per_chip
        if not self.sm_side_slice_requests:
            self.sm_side_slice_requests = [0] * self.slices_per_chip

    def record_issue(self, home_chip: int, slice_index: int) -> None:
        """Record one L1 miss issued by this chip.

        ``slice_index`` is where the request would land within the
        requesting chip under an SM-side LLC (PAE slice hash).
        """
        self.total_requests += 1
        if home_chip == self.chip:
            self.local_requests += 1
        self.sm_side_slice_requests[slice_index] += 1

    def record_arrival(self, slice_index: int) -> None:
        """Record a request arriving at this chip's memory-side slice."""
        self.memory_side_slice_requests[slice_index] += 1

    def reset(self) -> None:
        self.total_requests = 0
        self.local_requests = 0
        for i in range(self.slices_per_chip):
            self.memory_side_slice_requests[i] = 0
            self.sm_side_slice_requests[i] = 0


class ProfilingCounters:
    """All chips' counters plus the CRDs, with EAB-input extraction."""

    def __init__(self, sac: SACConfig, num_chips: int, slices_per_chip: int,
                 llc_num_sets: int, line_size: int, sectored: bool = False,
                 sectors_per_line: int = 4,
                 set_index_fn: Optional[Callable[[int], int]] = None) -> None:
        self.num_chips = num_chips
        self.slices_per_chip = slices_per_chip
        self.chips = [ChipCounters(chip=c, slices_per_chip=slices_per_chip)
                      for c in range(num_chips)]
        self.crds = [ChipRequestDirectory(
            sac, num_chips, llc_num_sets, line_size,
            sectored=sectored, sectors_per_line=sectors_per_line,
            set_index_fn=set_index_fn)
            for _ in range(num_chips)]
        # Memory-side LLC hit/lookup counts observed during profiling
        # (from the existing LLC performance counters).
        self.memory_side_hits = 0
        self.memory_side_lookups = 0

    # -- Recording ----------------------------------------------------------

    def record_issue(self, chip: int, home_chip: int,
                     sm_slice_index: int) -> None:
        self.chips[chip].record_issue(home_chip, sm_slice_index)

    def record_arrival(self, home_chip: int, slice_index: int,
                       requester_chip: int, addr: int) -> None:
        """Record a request reaching its home chip's memory-side slice."""
        self.chips[home_chip].record_arrival(slice_index)
        self.crds[home_chip].observe(requester_chip, addr)

    def record_llc_outcome(self, hit: bool) -> None:
        self.memory_side_lookups += 1
        if hit:
            self.memory_side_hits += 1

    def record_batch(self, chips: np.ndarray, homes: np.ndarray,
                     slices: np.ndarray, addrs: np.ndarray,
                     llc_sets: np.ndarray, hits: np.ndarray) -> None:
        """Vectorized equivalent of the three per-access recorders.

        Produces the same final counter state as calling
        :meth:`record_issue`, :meth:`record_arrival` and
        :meth:`record_llc_outcome` for every access in order: the chip
        counters are order-independent sums (bincounted here), while
        the order-dependent CRDs are fed only the accesses that fall in
        their sampled sets, in access order.  ``llc_sets`` carries the
        precomputed global set index per access (same function the CRD
        ``set_index_fn`` applies scalar-wise).
        """
        num = self.num_chips
        spc = self.slices_per_chip
        total = np.bincount(chips, minlength=num)
        local = np.bincount(chips[chips == homes], minlength=num)
        sm = np.bincount(chips * spc + slices, minlength=num * spc)
        mem = np.bincount(homes * spc + slices, minlength=num * spc)
        for c, chip in enumerate(self.chips):
            chip.total_requests += int(total[c])
            chip.local_requests += int(local[c])
            base = c * spc
            for s in range(spc):
                chip.sm_side_slice_requests[s] += int(sm[base + s])
                chip.memory_side_slice_requests[s] += int(mem[base + s])
        self.memory_side_lookups += int(len(chips))
        self.memory_side_hits += int(np.count_nonzero(hits))
        sampled = np.flatnonzero(self.crds[0].sampled_mask(llc_sets))
        if sampled.size:
            crds = self.crds
            homes_l = homes[sampled].tolist()
            chips_l = chips[sampled].tolist()
            addrs_l = addrs[sampled].tolist()
            # Each home chip's CRD is independent sequential state, so
            # feeding the sampled subset in global access order
            # preserves every CRD's own observation order.
            for h, c, a in zip(homes_l, chips_l, addrs_l):  # repro: noqa(reachable-hot-loop)
                crds[h].observe(c, a)

    # -- EAB input extraction -------------------------------------------------

    @property
    def total_requests(self) -> int:
        return sum(c.total_requests for c in self.chips)

    @property
    def r_local(self) -> float:
        total = self.total_requests
        if total == 0:
            return 1.0
        return sum(c.local_requests for c in self.chips) / total

    @property
    def llc_hit_memory_side(self) -> float:
        if self.memory_side_lookups == 0:
            return 0.0
        return self.memory_side_hits / self.memory_side_lookups

    @property
    def llc_hit_sm_side(self) -> float:
        """Pooled CRD estimate across chips."""
        requests = sum(crd.requests for crd in self.crds)
        if requests == 0:
            return 0.0
        return sum(crd.hits for crd in self.crds) / requests

    @property
    def lsu_memory_side(self) -> float:
        requests = [count for chip in self.chips
                    for count in chip.memory_side_slice_requests]
        return llc_slice_uniformity(requests)

    @property
    def lsu_sm_side(self) -> float:
        requests = [count for chip in self.chips
                    for count in chip.sm_side_slice_requests]
        return llc_slice_uniformity(requests)

    # -- Overhead accounting ---------------------------------------------------

    def storage_bytes_per_chip(self) -> int:
        """Counter + CRD SRAM per chip (620 B conventional, 812 B sectored)."""
        lsu_bytes = 2 * self.slices_per_chip * LSU_COUNTER_BITS // 8
        scalar_bytes = SCALAR_COUNTERS * SCALAR_COUNTER_BITS // 8
        return lsu_bytes + scalar_bytes + self.crds[0].storage_bytes()

    def reset(self) -> None:
        for chip in self.chips:
            chip.reset()
        for crd in self.crds:
            crd.reset()
        self.memory_side_hits = 0
        self.memory_side_lookups = 0
