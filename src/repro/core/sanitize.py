"""Runtime kernel-contract sanitizer (``REPRO_SANITIZE=1``).

The static half of the encoding-aliasing defence is the
``shared-encoding-alias`` lint rule; this module is the dynamic half.
With ``REPRO_SANITIZE=1`` in the environment:

* every reuse encoding built by ``repro.cache.vector._encode_stream``
  is frozen (:func:`freeze` marks its arrays ``writeable=False``), so
  a replay or driver that mutates shared encoding state raises
  immediately instead of corrupting every later lane bit-for-bit;
* the vector-bank entry points assert their dtype/shape contracts
  (:func:`expect`) before touching state — a float address array or a
  mismatched lane batch fails loudly at the boundary, not as a silently
  wrong verdict deep in the kernel; and
* kernel bodies run under ``np.errstate(all="raise")`` inside
  :func:`guarded`, which translates numpy's read-only ``ValueError``
  and ``FloatingPointError`` into :class:`SanitizerError` after
  recording a :class:`Violation` in the process-wide
  :func:`report` (surfaced per run as ``RunStats.sanitizer_violations``).

The sanitizer never changes verdicts: with the flag unset every helper
is a cheap no-op, and with it set a clean run is bit-identical to an
unsanitized one (freezing and error traps only *observe*).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, NamedTuple, Optional

import numpy as np

__all__ = [
    "SanitizerError",
    "SanitizerReport",
    "Violation",
    "enabled",
    "expect",
    "freeze",
    "guarded",
    "report",
]


def enabled() -> bool:
    """Whether ``REPRO_SANITIZE`` is set (and not ``0``) right now.

    Read from the environment on every call — entry points are
    per-epoch, so the lookup is negligible, and tests can flip the flag
    without re-importing anything.
    """
    return os.environ.get("REPRO_SANITIZE", "") not in ("", "0")


class Violation(NamedTuple):
    """One recorded sanitizer violation."""

    kind: str    # "encoding-write" | "contract" | "fp-error"
    site: str    # entry point or kernel phase, e.g. "VectorBank.access_many_grouped"
    detail: str


class SanitizerError(RuntimeError):
    """A kernel contract was violated while ``REPRO_SANITIZE`` was active."""


@dataclass
class SanitizerReport:
    """Accumulated violations of one process.

    The engine snapshots :attr:`count` around each run and stores the
    delta in ``RunStats.sanitizer_violations``, so a violation is
    attributable even when the raising :class:`SanitizerError` is
    swallowed by a fault-containment layer upstream.
    """

    violations: List[Violation] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.violations)

    def record(self, kind: str, site: str, detail: str) -> Violation:
        violation = Violation(kind, site, detail)
        self.violations.append(violation)
        return violation

    def clear(self) -> None:
        self.violations.clear()

    def summary(self) -> str:
        if not self.violations:
            return "sanitizer: clean"
        lines = [f"sanitizer: {self.count} violation(s)"]
        lines.extend(f"  [{v.kind}] {v.site}: {v.detail}"
                     for v in self.violations)
        return "\n".join(lines)


_REPORT = SanitizerReport()


def report() -> SanitizerReport:
    """The process-wide violation report."""
    return _REPORT


def freeze(obj: object) -> None:
    """Recursively mark every ndarray inside ``obj`` read-only.

    Encodings are NamedTuples of arrays (nesting more tuples), so a
    tuple walk covers them; non-array leaves pass through untouched.
    Safe only for freshly-allocated arrays the producer owns — callers
    must never hand it a view of caller-owned state.
    """
    if isinstance(obj, np.ndarray):
        obj.setflags(write=False)
    elif isinstance(obj, tuple):
        for item in obj:
            freeze(item)


def _fail(kind: str, site: str, detail: str) -> "SanitizerError":
    _REPORT.record(kind, site, detail)
    return SanitizerError(f"{site}: {detail}")


def expect(site: str, name: str, value: object, dtype: str,
           length: Optional[int] = None) -> None:
    """Assert one entry-point array contract (1-D, exact dtype, length).

    Raises :class:`SanitizerError` (after recording the violation) on
    the first mismatch.  Callers gate on :func:`enabled` themselves so
    the disabled path pays nothing.
    """
    if not isinstance(value, np.ndarray):
        raise _fail("contract", site,
                    f"{name} is {type(value).__name__}, expected a "
                    f"1-D ndarray[{dtype}]")
    if value.dtype != np.dtype(dtype):
        raise _fail("contract", site,
                    f"{name} has dtype {value.dtype}, expected {dtype}")
    if value.ndim != 1:
        raise _fail("contract", site,
                    f"{name} has ndim {value.ndim}, expected 1")
    if length is not None and value.shape[0] != length:
        raise _fail("contract", site,
                    f"{name} has length {value.shape[0]}, expected "
                    f"{length}")


@contextmanager
def guarded(site: str) -> Iterator[None]:
    """Run a kernel body under the sanitizer's error traps.

    Inside the block numpy floating-point anomalies raise
    (``np.errstate(all="raise")``), and both those and writes to frozen
    encoding arrays (numpy's read-only ``ValueError``) are re-raised as
    :class:`SanitizerError` after being recorded.  Unrelated
    ``ValueError``\\ s propagate untouched.
    """
    try:
        with np.errstate(all="raise"):
            yield
    except FloatingPointError as exc:
        raise _fail("fp-error", site, str(exc)) from exc
    except ValueError as exc:
        if "read-only" in str(exc):
            raise _fail("encoding-write", site, str(exc)) from exc
        raise
