"""The Effective Available Bandwidth (EAB) analytical model.

Implements Section 3.3 of the paper.  The EAB is the bandwidth the system
can provide given the workload's access pattern:

    EAB_total = EAB_local + EAB_remote
    EAB_x     = min(B_SM_LLC_x,
                    B_LLC_hit_x + min(B_LLC_miss_x, B_LLC_mem_x, B_mem_x))

with the per-configuration bandwidth terms of Table 1:

======================  =======================  =======================
term                    memory-side              SM-side
======================  =======================  =======================
B_SM_LLC  (local)       B_intra                  B_intra * R_local
B_SM_LLC  (remote)      B_inter                  B_intra * R_remote
B_LLC_hit (l|r)         B_LLC * LSU * hit * R    B_LLC * LSU * hit * R
B_LLC_miss (l|r)        B_LLC * LSU * miss * R   B_LLC * LSU * miss * R
B_LLC_mem (local)       unlimited                unlimited
B_LLC_mem (remote)      unlimited                B_inter
B_mem (l|r)             B_mem * R                B_mem * R
======================  =======================  =======================

LSU and the LLC hit rate are configuration-dependent: the memory-side
values are measured directly during the profiling window, the SM-side
values are estimated by the per-chip counters and the CRD.

All bandwidths are system aggregates in bytes/cycle; "local"/"remote" is
relative to the requesting chip, and ``R_local + R_remote = 1``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence

from ..arch.config import SystemConfig


def llc_slice_uniformity(requests: Sequence[float]) -> float:
    """LSU = (1/N) * sum_i(R_i / max_j R_j)  (paper Section 3.3).

    Equals 1 when requests spread uniformly over the N slices and 1/N
    when a single slice receives everything.  Slices with zero requests
    still count toward N.  An all-zero vector returns 1 (no evidence of
    non-uniformity).
    """
    if not requests:
        raise ValueError("LSU needs at least one slice")
    if any(r < 0 for r in requests):
        raise ValueError("request counts cannot be negative")
    peak = max(requests)
    if peak == 0:
        return 1.0
    return sum(r / peak for r in requests) / len(requests)


@dataclass(frozen=True)
class EABInputs:
    """Everything the EAB model consumes (paper Table 2).

    Architecture-dependent terms (``b_intra``, ``b_inter``, ``b_llc``,
    ``b_mem``) come from the configuration; workload terms (``r_local``)
    and interaction terms (hit rates, LSUs) come from the profiling
    counters.
    """

    r_local: float
    lsu_memory_side: float
    lsu_sm_side: float
    llc_hit_memory_side: float
    llc_hit_sm_side: float
    b_intra: float
    b_inter: float
    b_llc: float
    b_mem: float

    def __post_init__(self) -> None:
        for name in ("r_local", "lsu_memory_side", "lsu_sm_side",
                     "llc_hit_memory_side", "llc_hit_sm_side"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        for name in ("b_intra", "b_inter", "b_llc", "b_mem"):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")

    @property
    def r_remote(self) -> float:
        return 1.0 - self.r_local


@dataclass(frozen=True)
class EABResult:
    """EAB of one configuration, with its local/remote split."""

    local: float
    remote: float

    @property
    def total(self) -> float:
        return self.local + self.remote


def _eab_side(b_sm_llc: float, b_llc_hit: float, b_llc_miss: float,
              b_llc_mem: float, b_mem: float) -> float:
    """EAB_x = min(B_SM_LLC, B_LLC_hit + min(B_LLC_miss, B_LLC_mem, B_mem))."""
    return min(b_sm_llc, b_llc_hit + min(b_llc_miss, b_llc_mem, b_mem))


def eab_memory_side(inputs: EABInputs) -> EABResult:
    """EAB under the memory-side configuration (Table 1, left half)."""
    hit = inputs.llc_hit_memory_side
    lsu = inputs.lsu_memory_side
    hit_bw = inputs.b_llc * lsu * hit
    miss_bw = inputs.b_llc * lsu * (1.0 - hit)
    local = _eab_side(
        b_sm_llc=inputs.b_intra,
        b_llc_hit=hit_bw * inputs.r_local,
        b_llc_miss=miss_bw * inputs.r_local,
        b_llc_mem=math.inf,
        b_mem=inputs.b_mem * inputs.r_local)
    remote = _eab_side(
        b_sm_llc=inputs.b_inter,
        b_llc_hit=hit_bw * inputs.r_remote,
        b_llc_miss=miss_bw * inputs.r_remote,
        b_llc_mem=math.inf,
        b_mem=inputs.b_mem * inputs.r_remote)
    return EABResult(local=local, remote=remote)


def eab_sm_side(inputs: EABInputs) -> EABResult:
    """EAB under the SM-side configuration (Table 1, right half)."""
    hit = inputs.llc_hit_sm_side
    lsu = inputs.lsu_sm_side
    hit_bw = inputs.b_llc * lsu * hit
    miss_bw = inputs.b_llc * lsu * (1.0 - hit)
    local = _eab_side(
        b_sm_llc=inputs.b_intra * inputs.r_local,
        b_llc_hit=hit_bw * inputs.r_local,
        b_llc_miss=miss_bw * inputs.r_local,
        b_llc_mem=math.inf,
        b_mem=inputs.b_mem * inputs.r_local)
    remote = _eab_side(
        b_sm_llc=inputs.b_intra * inputs.r_remote,
        b_llc_hit=hit_bw * inputs.r_remote,
        b_llc_miss=miss_bw * inputs.r_remote,
        b_llc_mem=inputs.b_inter,
        b_mem=inputs.b_mem * inputs.r_remote)
    return EABResult(local=local, remote=remote)


def decide(inputs: EABInputs, theta: float = 0.05) -> str:
    """Pick the organization: SM-side only if its EAB wins by > theta.

    The threshold compensates for the SM-side coherence overhead that the
    model deliberately leaves out (paper Section 3.5).  Returns
    ``"sm-side"`` or ``"memory-side"``.
    """
    if theta < 0:
        raise ValueError("theta cannot be negative")
    memory = eab_memory_side(inputs).total
    sm = eab_sm_side(inputs).total
    if sm > memory * (1.0 + theta):
        return "sm-side"
    return "memory-side"


def architecture_bandwidths(config: SystemConfig) -> Dict[str, float]:
    """Derive the architecture-only EAB terms from a system config.

    * ``b_intra`` — aggregate SM->LLC bandwidth: each chip's response
      network owns half the crossbar bisection.
    * ``b_inter`` — aggregate inter-chip bandwidth: each chip's link
      egress, derated for multi-hop ring traffic (a request crossing two
      segments consumes both), which halves the usable bandwidth on
      average for a 4-chip ring with uniform traffic.
    * ``b_llc`` — aggregate raw LLC slice bandwidth.
    * ``b_mem`` — aggregate DRAM bandwidth.
    """
    chips = config.num_chips
    b_intra = chips * config.chip.noc.bisection_bw_bytes_per_cycle / 2
    if chips > 1:
        ring = config.inter_chip
        # Average hop count between distinct chips on a ring.
        pairs = [(s, d) for s in range(chips) for d in range(chips) if s != d]
        mean_hops = sum(min((d - s) % chips, (s - d) % chips)
                        for s, d in pairs) / len(pairs)
        b_inter = chips * ring.chip_egress_bw() / mean_hops
    else:
        b_inter = math.inf
    b_llc = chips * config.chip.llc_bw_bytes_per_cycle
    b_mem = config.total_memory_bw
    return {"b_intra": b_intra, "b_inter": b_inter,
            "b_llc": b_llc, "b_mem": b_mem}
