"""Registry of every ``REPRO_*`` environment flag the package reads.

Environment flags used to be scattered string literals — each module
invented its own ``os.environ.get("REPRO_...")`` call and nothing
guaranteed the name was spelled once, documented anywhere, or listed in
the README.  This module is the single source of truth: every flag the
package consumes is declared here as an :class:`EnvFlag` with its
default and a one-line contract, the ``env-flag-registry`` lint rule
fails the build when a ``REPRO_*`` read appears anywhere under
``src/repro`` without a declaration, and the README's flag table is
generated from :func:`markdown_table` (``python -m repro.core.flags``)
and kept in sync by a test.

Reading a flag stays ordinary ``os.environ`` access at the call site —
the registry constrains *names*, not access style — but :func:`read`
is available when a caller wants the declared default applied.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "EnvFlag",
    "FLAGS",
    "declared",
    "declared_names",
    "markdown_table",
    "read",
]


@dataclass(frozen=True)
class EnvFlag:
    """One declared environment flag.

    ``name`` must start with ``REPRO_``; ``default`` is the value
    :func:`read` returns when the variable is unset (empty string means
    "feature off" for boolean-style flags); ``description`` is the
    one-line contract shown in the README table.
    """

    name: str
    default: str
    description: str

    def __post_init__(self) -> None:
        if not self.name.startswith("REPRO_"):
            raise ValueError(
                f"environment flag {self.name!r} must start with REPRO_")
        if not self.description.strip():
            raise ValueError(f"flag {self.name} needs a description")


#: Every environment flag the package reads, alphabetical by name.
FLAGS: Tuple[EnvFlag, ...] = (
    EnvFlag(
        "REPRO_BENCH_SMOKE", "",
        "Truthy: `benchmarks/test_throughput.py` asserts only "
        "machine-independent floors (same-run speedups, zero demotions) "
        "and skips the absolute reference-machine rate comparisons."),
    EnvFlag(
        "REPRO_CACHE_DIR", ".repro_cache",
        "Directory of the on-disk result cache (and the lint finding "
        "cache under `<dir>/lint/`); the CLI's `--cache-dir` overrides "
        "it per invocation."),
    EnvFlag(
        "REPRO_FAULTS", "",
        "Comma-separated fault-injection entries "
        "(`site[:key][@nth][*count][=value]`) arming deterministic "
        "failures in the execution layer; see `docs/resilience.md`."),
    EnvFlag(
        "REPRO_FAULT_STATE", "",
        "Shared marker directory coordinating process-fatal fault sites "
        "(`worker.crash`/`worker.hang`) across respawned workers."),
    EnvFlag(
        "REPRO_JOBS", "",
        "Worker-process count for parallel matrices (`run_matrix`); the "
        "CLI's `--jobs` overrides it. Unset or empty runs serial."),
    EnvFlag(
        "REPRO_RETRIES", "1",
        "How many times the supervised runner re-queues a task whose "
        "worker crashed or timed out before quarantining it."),
    EnvFlag(
        "REPRO_SANITIZE", "",
        "Truthy: the runtime sanitizer freezes shared reuse encodings "
        "(`writeable=False`) for the duration of replay, asserts "
        "dtype/shape contracts at the vector-kernel entry points, runs "
        "solves under `np.errstate(all=\"raise\")`, and records "
        "violations in a `SanitizerReport` surfaced via "
        "`RunStats.sanitizer_violations`."),
    EnvFlag(
        "REPRO_STACKED", "1",
        "Set to `0` to disable stacked multi-config dispatch in "
        "`run_matrix` (every pending pair then simulates standalone)."),
    EnvFlag(
        "REPRO_TASK_TIMEOUT", "",
        "Per-task wall-clock budget (seconds, float) for supervised "
        "pool tasks; a worker exceeding it is treated as hung and its "
        "task retried. Unset disables the timeout."),
)

_BY_NAME: Dict[str, EnvFlag] = {flag.name: flag for flag in FLAGS}
if len(_BY_NAME) != len(FLAGS):
    raise RuntimeError("duplicate EnvFlag declarations in FLAGS")


def declared(name: str) -> EnvFlag:
    """The declaration of ``name``; raises ``KeyError`` when undeclared."""
    return _BY_NAME[name]


def declared_names() -> Tuple[str, ...]:
    """Every declared flag name, in table order."""
    return tuple(flag.name for flag in FLAGS)


def read(name: str) -> str:
    """Read ``name`` from the environment, applying the declared default.

    Only declared flags may be read through the registry — an
    undeclared name raises ``KeyError`` so a typo cannot silently
    return the default.
    """
    flag = _BY_NAME[name]
    value = os.environ.get(flag.name)
    return flag.default if value is None else value


def markdown_table() -> str:
    """The README's environment-flag table, generated from ``FLAGS``."""
    lines = ["| Flag | Default | Meaning |", "|---|---|---|"]
    for flag in FLAGS:
        default = f"`{flag.default}`" if flag.default else "*(unset)*"
        lines.append(f"| `{flag.name}` | {default} | {flag.description} |")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - convenience printer
    print(markdown_table())
