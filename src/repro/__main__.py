"""Command-line entry point: regenerate a paper table/figure.

Usage::

    python -m repro list
    python -m repro fig8
    python -m repro fig14 --fast
"""

from __future__ import annotations

import argparse
import sys
import time

from .experiments import REGISTRY


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate a table/figure of the SAC paper "
                    "(ISCA 2023).")
    parser.add_argument("experiment",
                        help="experiment name, or 'list' to enumerate")
    parser.add_argument("--fast", action="store_true",
                        help="reduced trace density (quicker, noisier)")
    parser.add_argument("--csv", metavar="PATH",
                        help="also export the result to a CSV file")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, module in REGISTRY.items():
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{name:12} {doc}")
        return 0

    module = REGISTRY.get(args.experiment)
    if module is None:
        known = ", ".join(REGISTRY)
        print(f"unknown experiment {args.experiment!r}; known: {known}, list",
              file=sys.stderr)
        return 2

    started = time.time()
    result = module.run_experiment(fast=args.fast)
    print(module.format_report(result))
    if args.csv:
        from .analysis.export import export_experiment
        try:
            rows = export_experiment(result, args.csv)
            print(f"[wrote {rows} rows to {args.csv}]")
        except ValueError as error:
            print(f"[csv export not supported for this experiment: {error}]",
                  file=sys.stderr)
    print(f"\n[{args.experiment} completed in {time.time() - started:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
