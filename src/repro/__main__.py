"""Command-line entry point: regenerate a paper table/figure.

Usage::

    python -m repro list
    python -m repro fig8
    python -m repro fig14 --fast
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional
import time

from .experiments import REGISTRY


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate a table/figure of the SAC paper "
                    "(ISCA 2023).")
    parser.add_argument("experiment",
                        help="experiment name, or 'list' to enumerate")
    parser.add_argument("--fast", action="store_true",
                        help="reduced trace density (quicker, noisier)")
    parser.add_argument("--csv", metavar="PATH",
                        help="also export the result to a CSV file")
    parser.add_argument("--jobs", type=int, metavar="N",
                        help="simulate matrix pairs across N worker "
                             "processes (default: REPRO_JOBS env, else 1)")
    parser.add_argument("--cache-dir", metavar="PATH", nargs="?",
                        const=".repro_cache", default=None,
                        help="persist results under PATH so repeated runs "
                             "skip simulation (default path: .repro_cache)")
    parser.add_argument("--task-timeout", type=float, metavar="SECONDS",
                        help="wall-clock ceiling per matrix worker task "
                             "(default: REPRO_TASK_TIMEOUT env, else none)")
    parser.add_argument("--retries", type=int, metavar="N",
                        help="re-dispatches per failed/timed-out matrix "
                             "task (default: REPRO_RETRIES env, else 2)")
    args = parser.parse_args(argv)

    if args.jobs is not None:
        if args.jobs < 1:
            parser.error("--jobs must be at least 1")
        # run_matrix reads REPRO_JOBS through default_jobs(), so setting
        # the env reaches every experiment without new plumbing.
        os.environ["REPRO_JOBS"] = str(args.jobs)
    if args.task_timeout is not None:
        if args.task_timeout <= 0:
            parser.error("--task-timeout must be positive")
        # Same pattern as --jobs: the supervisor reads the env.
        os.environ["REPRO_TASK_TIMEOUT"] = str(args.task_timeout)
    if args.retries is not None:
        if args.retries < 0:
            parser.error("--retries cannot be negative")
        os.environ["REPRO_RETRIES"] = str(args.retries)
    if args.cache_dir is not None:
        from .analysis.runner import set_default_cache_dir
        set_default_cache_dir(args.cache_dir)

    if args.experiment == "list":
        for name, module in REGISTRY.items():
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{name:12} {doc}")
        return 0

    module = REGISTRY.get(args.experiment)
    if module is None:
        known = ", ".join(REGISTRY)
        print(f"unknown experiment {args.experiment!r}; known: {known}, list",
              file=sys.stderr)
        return 2

    started = time.time()
    result = module.run_experiment(fast=args.fast)
    print(module.format_report(result))
    if args.csv:
        from .analysis.export import export_experiment
        try:
            rows = export_experiment(result, args.csv)
            print(f"[wrote {rows} rows to {args.csv}]")
        except ValueError as error:
            print(f"[csv export not supported for this experiment: {error}]",
                  file=sys.stderr)
    from .analysis.runner import telemetry
    print(f"\n[{args.experiment} completed in {time.time() - started:.1f}s"
          f"; runs: {telemetry().summary()}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
