"""MESI directory coherence.

The paper's hardware-coherence evaluation uses a write-invalidate
scheme (local copy updated, remote copies invalidated).  This module
provides the fuller four-state MESI protocol as an extension, tracked at
the granularity the SM-side LLC needs — one copy per chip:

* **M** (modified)  — one chip holds the only, dirty copy;
* **E** (exclusive) — one chip holds the only, clean copy;
* **S** (shared)    — several chips hold clean copies;
* **I** (invalid)   — untracked.

The directory processes reads, writes and evictions and returns the
coherence *actions* the interconnect must carry, so the engine can
charge their traffic:

* ``invalidate(chip)``   — drop a remote copy (write to a shared line);
* ``downgrade(chip)``    — M -> S on a remote read, with a write-back;
* ``transfer(chip)``     — cache-to-cache supply from the owner.

State-transition summary (requests from chip ``c``):

====== ======================= ==========================================
state  read by c               write by c
====== ======================= ==========================================
I      -> E (c exclusive)      -> M (c modified)
E(o)   -> S {o, c}, transfer   -> M (c), invalidate o      [o != c]
M(o)   -> S {o, c}, downgrade  -> M (c), invalidate o + wb [o != c]
S      add c                   -> M (c), invalidate others
====== ======================= ==========================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class State(enum.Enum):
    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


class ActionKind(enum.Enum):
    INVALIDATE = "invalidate"
    DOWNGRADE = "downgrade"   # M -> S, implies a write-back
    TRANSFER = "transfer"     # cache-to-cache data supply


@dataclass(frozen=True)
class CoherenceAction:
    """One message the interconnect must carry for a transition."""

    kind: ActionKind
    chip: int            # the remote chip acted upon
    writeback: bool = False


@dataclass
class MESIEntry:
    state: State = State.INVALID
    sharers: int = 0     # bitmask
    owner: Optional[int] = None  # meaningful in M/E

    def sharer_list(self, num_chips: int) -> List[int]:
        return [c for c in range(num_chips) if self.sharers >> c & 1]


@dataclass
class MESIStats:
    reads: int = 0
    writes: int = 0
    invalidations: int = 0
    downgrades: int = 0
    transfers: int = 0
    writebacks: int = 0


class MESIDirectory:
    """Directory-side MESI over per-chip LLC copies."""

    def __init__(self, num_chips: int) -> None:
        if num_chips < 1:
            raise ValueError("need at least one chip")
        self.num_chips = num_chips
        self.stats = MESIStats()
        self._entries: Dict[int, MESIEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def state_of(self, line: int) -> State:
        entry = self._entries.get(line)
        return entry.state if entry is not None else State.INVALID

    def sharers_of(self, line: int) -> List[int]:
        entry = self._entries.get(line)
        if entry is None:
            return []
        return entry.sharer_list(self.num_chips)

    def _entry(self, line: int) -> MESIEntry:
        entry = self._entries.get(line)
        if entry is None:
            entry = MESIEntry()
            self._entries[line] = entry
        return entry

    # -- Transitions -------------------------------------------------------

    def read(self, line: int, chip: int) -> List[CoherenceAction]:
        """Chip ``chip`` installs a read copy of ``line``."""
        self.stats.reads += 1
        entry = self._entry(line)
        bit = 1 << chip
        actions: List[CoherenceAction] = []
        if entry.state is State.INVALID:
            entry.state = State.EXCLUSIVE
            entry.owner = chip
            entry.sharers = bit
        elif entry.state in (State.EXCLUSIVE, State.MODIFIED):
            if entry.owner == chip:
                return actions  # silent re-read
            if entry.state is State.MODIFIED:
                actions.append(CoherenceAction(ActionKind.DOWNGRADE,
                                               entry.owner, writeback=True))
                self.stats.downgrades += 1
                self.stats.writebacks += 1
            else:
                actions.append(CoherenceAction(ActionKind.TRANSFER,
                                               entry.owner))
                self.stats.transfers += 1
            entry.state = State.SHARED
            entry.sharers |= bit
            entry.owner = None
        else:  # SHARED
            entry.sharers |= bit
        return actions

    def write(self, line: int, chip: int) -> List[CoherenceAction]:
        """Chip ``chip`` writes ``line``; it ends M with the only copy."""
        self.stats.writes += 1
        entry = self._entry(line)
        bit = 1 << chip
        actions: List[CoherenceAction] = []
        if entry.state in (State.MODIFIED, State.EXCLUSIVE) and \
                entry.owner == chip:
            entry.state = State.MODIFIED
            return actions
        for victim in entry.sharer_list(self.num_chips):
            if victim == chip:
                continue
            writeback = (entry.state is State.MODIFIED
                         and entry.owner == victim)
            actions.append(CoherenceAction(ActionKind.INVALIDATE, victim,
                                           writeback=writeback))
            self.stats.invalidations += 1
            if writeback:
                self.stats.writebacks += 1
        entry.state = State.MODIFIED
        entry.owner = chip
        entry.sharers = bit
        return actions

    def evict(self, line: int, chip: int) -> bool:
        """Chip ``chip`` drops its copy; returns True if a write-back
        (the chip held the line in M) is required."""
        entry = self._entries.get(line)
        if entry is None:
            return False
        bit = 1 << chip
        if not entry.sharers & bit:
            return False
        writeback = (entry.state is State.MODIFIED and entry.owner == chip)
        if writeback:
            self.stats.writebacks += 1
        entry.sharers &= ~bit
        if entry.sharers == 0:
            del self._entries[line]
        else:
            if entry.owner == chip:
                entry.owner = None
            if entry.state in (State.MODIFIED, State.EXCLUSIVE):
                entry.state = State.SHARED
            # A single remaining clean sharer silently stays SHARED
            # (upgrading to E would need an extra notification).
        return writeback

    def reset(self) -> None:
        self._entries.clear()
        self.stats = MESIStats()
