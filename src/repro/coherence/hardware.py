"""Hardware directory coherence.

When LLC slices may replicate a line across chips (SM-side mode), a
directory tracks the sharer set per line.  On a write, the writing chip's
copy is updated and every other copy is invalidated (the paper's chosen
implementation, Section 5.6: unlike HMG it does *not* also update the
home copy, avoiding wasted write traffic on falsely shared lines).

The directory is a dict keyed by line address holding a sharer bitmask
and a dirty bit.  Invalidation messages consume inter-chip bandwidth; the
engine charges them through :meth:`HardwareCoherence.pop_epoch_messages`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..arch.config import CoherenceConfig


@dataclass
class DirectoryStats:
    """Cumulative directory activity."""

    writes_observed: int = 0
    invalidations_sent: int = 0
    lines_tracked_peak: int = 0


@dataclass
class DirectoryEntry:
    """Sharer set of one line."""

    sharers: int = 0  # bitmask over chips
    dirty: bool = False


class HardwareCoherence:
    """Write-invalidate directory across the per-chip LLCs."""

    name = "hardware"

    def __init__(self, config: CoherenceConfig, num_chips: int) -> None:
        if config.protocol != "hardware":
            raise ValueError("HardwareCoherence requires protocol='hardware'")
        self.config = config
        self.num_chips = num_chips
        self.stats = DirectoryStats()
        self._entries: Dict[int, DirectoryEntry] = {}
        # Invalidation messages produced this epoch: (src, dst) pairs.
        self._epoch_messages: List[Tuple[int, int]] = []

    def __len__(self) -> int:
        return len(self._entries)

    def sharers_of(self, line_addr: int) -> List[int]:
        entry = self._entries.get(line_addr)
        if entry is None:
            return []
        return [chip for chip in range(self.num_chips)
                if entry.sharers >> chip & 1]

    def on_fill(self, line_addr: int, chip: int) -> None:
        """Record that ``chip`` now caches ``line_addr``."""
        entry = self._entries.get(line_addr)
        if entry is None:
            entry = DirectoryEntry()
            self._entries[line_addr] = entry
            if len(self._entries) > self.stats.lines_tracked_peak:
                self.stats.lines_tracked_peak = len(self._entries)
        entry.sharers |= 1 << chip

    def on_evict(self, line_addr: int, chip: int) -> None:
        """Record that ``chip`` no longer caches ``line_addr``."""
        entry = self._entries.get(line_addr)
        if entry is None:
            return
        entry.sharers &= ~(1 << chip)
        if entry.sharers == 0:
            del self._entries[line_addr]

    def on_write(self, line_addr: int, chip: int) -> List[int]:
        """Process a write by ``chip``; returns the chips to invalidate.

        The local copy stays (updated, dirty); every other sharer is
        dropped from the directory and must be invalidated in its LLC by
        the caller.  One invalidation message per victim chip is queued
        for this epoch's inter-chip accounting.
        """
        self.stats.writes_observed += 1
        entry = self._entries.get(line_addr)
        if entry is None:
            return []
        victims = [c for c in range(self.num_chips)
                   if c != chip and entry.sharers >> c & 1]
        for victim in victims:
            entry.sharers &= ~(1 << victim)
            self._epoch_messages.append((chip, victim))
            self.stats.invalidations_sent += 1
        entry.dirty = True
        if entry.sharers == 0:
            del self._entries[line_addr]
        return victims

    def pop_epoch_messages(self) -> List[Tuple[int, int]]:
        """Drain this epoch's invalidation messages for ring accounting."""
        messages = self._epoch_messages
        self._epoch_messages = []
        return messages

    @property
    def message_bytes(self) -> int:
        return self.config.invalidation_message_bytes

    def reset(self) -> None:
        self._entries.clear()
        self._epoch_messages.clear()
        self.stats = DirectoryStats()
