"""Coherence substrate: software flush-based and hardware directory protocols."""

from .hardware import DirectoryEntry, DirectoryStats, HardwareCoherence
from .mesi import ActionKind, CoherenceAction, MESIDirectory, MESIStats, State
from .software import FlushCost, SoftwareCoherence

__all__ = [
    "DirectoryEntry",
    "DirectoryStats",
    "FlushCost",
    "HardwareCoherence",
    "SoftwareCoherence",
    "ActionKind",
    "CoherenceAction",
    "MESIDirectory",
    "MESIStats",
    "State",
]
