"""Software-managed coherence.

Commercial GPUs keep caches coherent in software: dirty lines are written
back and caches invalidated at synchronization points — in our model, at
kernel boundaries (paper Sections 2, 4).  The private L1s are flushed at
every kernel boundary under every organization; the LLC additionally
needs flushing whenever it may hold remote data (SM-side mode, and the
remote partitions of the Static/Dynamic organizations), because the next
kernel's first-touch placement must see memory, not a stale replica.

``FlushCost`` carries both the cycle overhead (drain + write-back
serialization) and the write-back bytes the engine charges to DRAM and,
for remote-homed dirty lines, the inter-chip ring.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.config import CoherenceConfig


@dataclass(frozen=True)
class FlushCost:
    """Outcome of one flush operation."""

    lines_invalidated: int
    dirty_lines: int
    cycles: float
    writeback_bytes: int


class SoftwareCoherence:
    """Flush-based coherence cost model."""

    name = "software"

    def __init__(self, config: CoherenceConfig, line_size: int) -> None:
        if config.protocol != "software":
            raise ValueError("SoftwareCoherence requires protocol='software'")
        self.config = config
        self.line_size = line_size

    def flush_cost(self, lines_invalidated: int, dirty_lines: int) -> FlushCost:
        """Cost of writing back ``dirty_lines`` and invalidating everything."""
        if dirty_lines > lines_invalidated:
            raise ValueError("cannot have more dirty lines than lines")
        cycles = dirty_lines * self.config.flush_cycles_per_line
        return FlushCost(
            lines_invalidated=lines_invalidated,
            dirty_lines=dirty_lines,
            cycles=cycles,
            writeback_bytes=dirty_lines * self.line_size)
