"""Statement-span noqa anchoring and dead-suppression warnings."""

import textwrap
from pathlib import Path

from repro.lint import SourceFile
from repro.lint.runner import UNUSED_SUPPRESSION

from .conftest import lint_tree

ENGINE = "repro/sim/engine.py"


class TestStatementSpans:
    def test_noqa_on_wrapped_statement_line_covers_the_anchor(self):
        # The finding anchors at the ``for`` line; the comment sits on
        # the wrapped continuation of its iterable.
        source = SourceFile.from_text(textwrap.dedent("""\
            def serve(addrs, flags):
                for a in zip(addrs,
                             flags):  # repro: noqa(hot-loop)
                    touch(a)
            """), Path(ENGINE))
        assert source.is_suppressed("hot-loop", 2)

    def test_noqa_on_decorator_line_covers_the_def(self):
        source = SourceFile.from_text(textwrap.dedent("""\
            @decorate(  # repro: noqa(mutable-default)
                option=1)
            def serve(items=[]):
                pass
            """), Path(ENGINE))
        # The def anchors at its own line (3), decorators included in
        # the span.
        assert source.is_suppressed("mutable-default", 3)

    def test_noqa_on_first_line_of_file(self):
        source = SourceFile.from_text(
            "import os  # repro: noqa(nondeterminism)\n", Path(ENGINE))
        assert source.is_suppressed("nondeterminism", 1)

    def test_noqa_does_not_leak_into_the_body(self):
        source = SourceFile.from_text(textwrap.dedent("""\
            def serve(addrs, flags):
                for a in zip(addrs,
                             flags):  # repro: noqa(hot-loop)
                    for b in addrs:
                        touch(b)
            """), Path(ENGINE))
        # Header span ends before the body; line 4's loop is its own
        # statement.
        assert not source.is_suppressed("hot-loop", 4)

    def test_multiline_simple_statement_span(self):
        source = SourceFile.from_text(textwrap.dedent("""\
            threshold = compare(
                a == 1.0,  # repro: noqa(float-eq)
            )
            """), Path("repro/sim/timing.py"))
        assert source.is_suppressed("float-eq", 1)


class TestUnusedSuppression:
    def test_dead_noqa_is_warned(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/sim/engine.py": """\
                def serve(items):
                    for item in items:  # repro: noqa(hot-loop)
                        touch(item)
                """,
        })
        rules = [f.rule for f in report.new]
        assert rules == [UNUSED_SUPPRESSION]
        # Warnings never fail the run.
        assert not report.failed

    def test_live_noqa_is_not_warned(self, tmp_path):
        report = lint_tree(tmp_path, {
            "repro/sim/engine.py": """\
                def serve(addrs):
                    for i in range(len(addrs)):  # repro: noqa(hot-loop)
                        touch(addrs[i])
                """,
        })
        assert [f.rule for f in report.new] == []
        assert [f.rule for f in report.suppressed] == ["hot-loop"]

    def test_wrong_rule_name_is_warned_even_beside_a_finding(self,
                                                             tmp_path):
        report = lint_tree(tmp_path, {
            "repro/sim/engine.py": """\
                def serve(addrs):
                    for i in range(len(addrs)):  # repro: noqa(float-eq)
                        touch(addrs[i])
                """,
        })
        rules = sorted(f.rule for f in report.new)
        assert rules == ["hot-loop", UNUSED_SUPPRESSION]

    def test_selected_rule_runs_skip_the_warning(self, tmp_path):
        # With --select style subsets most rules never run, so absence
        # of a suppressed finding proves nothing.
        from repro.lint import REGISTRY
        rules = [REGISTRY.rules["float-eq"]()]
        report = lint_tree(tmp_path, {
            "repro/sim/engine.py": """\
                def serve(items):
                    for item in items:  # repro: noqa(hot-loop)
                        touch(item)
                """,
        }, rules=rules)
        assert report.new == []
