"""Strict static typing over ``src/repro`` (runs where mypy is installed).

The container used for fast local iteration does not ship mypy; the CI
lint job installs it and runs this tier plus ``mypy --strict src/repro``
directly.  Locally the test skips rather than failing.
"""

import pytest

mypy_api = pytest.importorskip(
    "mypy.api", reason="mypy not installed; the CI lint job runs this tier")


def test_mypy_strict_is_clean(repo_root):
    stdout, stderr, status = mypy_api.run(
        ["--strict", "--config-file", str(repo_root / "pyproject.toml"),
         str(repo_root / "src" / "repro")])
    assert status == 0, f"mypy --strict failed:\n{stdout}\n{stderr}"
