"""Baseline mechanism: grandfathering, staleness, fingerprint stability."""

import textwrap
from pathlib import Path

import pytest

from repro.lint import Baseline, SourceFile, check_source, run

ENGINE = "repro/sim/engine.py"

_BAD = textwrap.dedent("""\
    def serve(addrs):
        for i in range(len(addrs)):
            touch(addrs[i])
    """)


def _findings(text: str, relpath: str = ENGINE):
    return check_source(SourceFile.from_text(text, Path(relpath)))


def test_baselined_finding_does_not_fail_the_run(tmp_path):
    target = tmp_path / "repro" / "sim" / "engine.py"
    target.parent.mkdir(parents=True)
    target.write_text(_BAD)
    baseline = Baseline.from_findings(_findings(_BAD), "legacy serial path")
    report = run([tmp_path], baseline=baseline, root=tmp_path)
    assert report.new == []
    assert [f.rule for f in report.baselined] == ["hot-loop"]
    assert report.stale_baseline == []
    assert not report.failed


def test_unbaselined_finding_fails_the_run(tmp_path):
    target = tmp_path / "repro" / "sim" / "engine.py"
    target.parent.mkdir(parents=True)
    target.write_text(_BAD)
    report = run([tmp_path], baseline=Baseline(), root=tmp_path)
    assert [f.rule for f in report.new] == ["hot-loop"]
    assert report.failed


def test_stale_entries_are_reported(tmp_path):
    target = tmp_path / "repro" / "sim" / "engine.py"
    target.parent.mkdir(parents=True)
    baseline = Baseline.from_findings(_findings(_BAD), "to be fixed")
    target.write_text("def serve(addrs):\n    return vector_probe(addrs)\n")
    report = run([tmp_path], baseline=baseline, root=tmp_path)
    assert report.new == []
    assert report.stale_baseline == sorted(baseline.entries)


def test_fingerprint_survives_line_moves():
    shifted = "# a new leading comment\n\n" + _BAD
    original = _findings(_BAD)
    moved = _findings(shifted)
    assert [f.fingerprint() for f in original] == \
        [f.fingerprint() for f in moved]
    assert original[0].line != moved[0].line


def test_fingerprint_changes_when_the_line_changes():
    edited = _BAD.replace("range(len(addrs))", "range(len(addrs), 2)")
    assert _findings(_BAD)[0].fingerprint() != \
        _findings(edited)[0].fingerprint()


def test_roundtrip_through_disk(tmp_path):
    baseline = Baseline.from_findings(_findings(_BAD), "why it is ok")
    path = tmp_path / "lint_baseline.json"
    baseline.save(path)
    loaded = Baseline.load(path)
    assert loaded.entries == baseline.entries
    entry = next(iter(loaded.entries.values()))
    assert entry["justification"] == "why it is ok"


def test_load_rejects_unknown_format(tmp_path):
    path = tmp_path / "lint_baseline.json"
    path.write_text('{"format": "something-else/9", "findings": {}}')
    with pytest.raises(ValueError):
        Baseline.load(path)


def test_missing_baseline_file_is_empty(tmp_path):
    assert len(Baseline.load(tmp_path / "absent.json")) == 0
