"""Inline ``# repro: noqa`` mechanics."""

import textwrap
from pathlib import Path

from repro.lint import SourceFile, run
from repro.lint.source import ALL_RULES

from .conftest import lint_text

ENGINE = "repro/sim/engine.py"

_BAD_LOOP = """\
    def serve(addrs):
        for i in range(len(addrs)):{comment}
            touch(addrs[i])
    """


def _source(comment: str) -> SourceFile:
    return SourceFile.from_text(
        textwrap.dedent(_BAD_LOOP.format(comment=comment)), Path(ENGINE))


def test_named_noqa_suppresses_that_rule():
    source = _source("  # repro: noqa(hot-loop)")
    assert source.is_suppressed("hot-loop", 2)
    assert not source.is_suppressed("float-eq", 2)


def test_bare_noqa_suppresses_every_rule():
    source = _source("  # repro: noqa")
    assert source.noqa[2] == ALL_RULES
    assert source.is_suppressed("hot-loop", 2)
    assert source.is_suppressed("anything-else", 2)


def test_noqa_for_other_rule_does_not_suppress():
    source = _source("  # repro: noqa(float-eq)")
    assert not source.is_suppressed("hot-loop", 2)


def test_noqa_only_covers_its_own_line():
    source = _source("  # repro: noqa(hot-loop)")
    assert not source.is_suppressed("hot-loop", 1)
    assert not source.is_suppressed("hot-loop", 3)


def test_multiple_rules_in_one_noqa():
    source = _source("  # repro: noqa(hot-loop, dtype-discipline)")
    assert source.is_suppressed("hot-loop", 2)
    assert source.is_suppressed("dtype-discipline", 2)
    assert not source.is_suppressed("float-eq", 2)


def test_noqa_inside_string_literal_is_inert():
    source = SourceFile.from_text(textwrap.dedent("""\
        def serve(addrs):
            label = "# repro: noqa(hot-loop)"
            for i in range(len(addrs)):
                touch(addrs[i])
        """), Path(ENGINE))
    assert source.noqa == {}
    assert not source.is_suppressed("hot-loop", 3)


def test_runner_classifies_suppressed_findings(tmp_path):
    target = tmp_path / "repro" / "sim" / "engine.py"
    target.parent.mkdir(parents=True)
    target.write_text(textwrap.dedent(
        _BAD_LOOP.format(comment="  # repro: noqa(hot-loop)")))
    report = run([tmp_path], root=tmp_path)
    assert report.new == []
    assert [f.rule for f in report.suppressed] == ["hot-loop"]
    assert not report.failed


def test_raw_check_still_sees_suppressed_findings():
    # check_source() reports everything; classification happens in run().
    findings = lint_text(
        _BAD_LOOP.format(comment="  # repro: noqa(hot-loop)"),
        ENGINE, rule="hot-loop")
    assert len(findings) == 1
