"""The committed tree itself satisfies the analyzer (acceptance gate)."""

from repro.lint import REGISTRY, Baseline, run


def test_registry_has_all_project_rules():
    assert set(REGISTRY.names()) >= {
        "hot-loop", "dtype-discipline", "stats-drift", "config-validation",
        "float-eq", "nondeterminism", "mutable-default", "bare-except"}


def test_src_repro_is_clean_under_committed_baseline(repo_root):
    baseline = Baseline.load(repo_root / "lint_baseline.json")
    report = run([repo_root / "src" / "repro"], baseline=baseline,
                 root=repo_root)
    assert report.parse_errors == []
    rendered = "\n".join(f.render() for f in report.new)
    assert report.new == [], f"new lint findings:\n{rendered}"
    assert report.stale_baseline == []


def test_committed_baseline_is_empty_or_justified(repo_root):
    baseline = Baseline.load(repo_root / "lint_baseline.json")
    for fingerprint, entry in baseline.entries.items():
        assert entry.get("justification", "").strip(), (
            f"baseline entry {fingerprint} has no justification")
