"""Shared helpers for the repro.lint test suite."""

import textwrap
from pathlib import Path
from typing import Dict, List, Optional

import pytest

from repro.lint import Finding, SourceFile, check_source, run
from repro.lint.graph import ProjectGraph, build_graph
from repro.lint.runner import Report


def lint_text(code: str, relpath: str,
              rule: Optional[str] = None) -> List[Finding]:
    """Run every registered rule over ``code`` as if it lived at ``relpath``.

    ``relpath`` controls which path-scoped rules consider the file
    theirs (e.g. ``"repro/sim/engine.py"`` puts the snippet under the
    hot-loop, dtype and float-eq regimes).  Inline ``noqa`` comments
    are NOT applied here — this is the raw finding stream.
    """
    source = SourceFile.from_text(textwrap.dedent(code), Path(relpath))
    findings = check_source(source)
    if rule is not None:
        findings = [f for f in findings if f.rule == rule]
    return findings


def write_tree(root: Path, files: Dict[str, str]) -> None:
    """Materialize ``relpath -> code`` under ``root`` (dedented)."""
    for relpath, code in files.items():
        target = root / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(code), encoding="utf-8")


def lint_tree(root: Path, files: Dict[str, str], **kwargs) -> Report:
    """Write ``files`` under ``root`` and run the full analyzer."""
    write_tree(root, files)
    return run([root], root=root, **kwargs)


def project_graph(files: Dict[str, str]) -> ProjectGraph:
    """Build a ProjectGraph over in-memory sources (no filesystem)."""
    sources = [
        SourceFile.from_text(textwrap.dedent(code), Path(relpath))
        for relpath, code in files.items()
    ]
    return build_graph(sources)


@pytest.fixture
def repo_root() -> Path:
    return Path(__file__).resolve().parents[2]
