"""Shared helpers for the repro.lint test suite."""

import textwrap
from pathlib import Path
from typing import List, Optional

import pytest

from repro.lint import Finding, SourceFile, check_source


def lint_text(code: str, relpath: str,
              rule: Optional[str] = None) -> List[Finding]:
    """Run every registered rule over ``code`` as if it lived at ``relpath``.

    ``relpath`` controls which path-scoped rules consider the file
    theirs (e.g. ``"repro/sim/engine.py"`` puts the snippet under the
    hot-loop, dtype and float-eq regimes).  Inline ``noqa`` comments
    are NOT applied here — this is the raw finding stream.
    """
    source = SourceFile.from_text(textwrap.dedent(code), Path(relpath))
    findings = check_source(source)
    if rule is not None:
        findings = [f for f in findings if f.rule == rule]
    return findings


@pytest.fixture
def repo_root() -> Path:
    return Path(__file__).resolve().parents[2]
