"""The project graph layer: modules, calls, reachability, inference."""

from .conftest import project_graph

from repro.lint.graph import module_name_of


class TestModuleNaming:
    def test_anchored_at_last_repro_segment(self):
        assert module_name_of("src/repro/sim/engine.py") == \
            "repro.sim.engine"
        assert module_name_of("repro/cache/vector.py") == \
            "repro.cache.vector"

    def test_init_names_the_package(self):
        assert module_name_of("src/repro/sim/__init__.py") == "repro.sim"

    def test_outside_any_repro_tree_falls_back_to_stem(self):
        assert module_name_of("scripts/tool.py") == "tool"


class TestCallGraph:
    def test_same_module_and_imported_calls(self):
        graph = project_graph({
            "src/repro/a.py": """\
                from .b import helper
                def top():
                    helper()
                    local()
                def local():
                    pass
                """,
            "src/repro/b.py": """\
                def helper():
                    leaf()
                def leaf():
                    pass
                """,
        })
        reach = graph.reachable(["repro.a:top"])
        assert "repro.b:helper" in reach
        assert "repro.b:leaf" in reach
        assert "repro.a:local" in reach

    def test_typed_receiver_method_dispatch(self):
        graph = project_graph({
            "src/repro/m.py": """\
                class Engine:
                    def run(self):
                        self.step()
                    def step(self):
                        pass
                def drive(engine: Engine):
                    engine.run()
                """,
        })
        reach = graph.reachable(["repro.m:drive"])
        assert "repro.m:Engine.run" in reach
        assert "repro.m:Engine.step" in reach

    def test_subclass_cone_covers_dynamic_dispatch(self):
        # The declared base lacks the method; the project subclass
        # implementing it must still be an edge (reachability
        # over-approximates).
        graph = project_graph({
            "src/repro/m.py": """\
                class Base:
                    pass
                class Impl(Base):
                    def observe_batch(self):
                        pass
                def drive(org: Base):
                    org.observe_batch()
                """,
        })
        assert "repro.m:Impl.observe_batch" in \
            graph.reachable(["repro.m:drive"])

    def test_constructor_edges_to_init(self):
        graph = project_graph({
            "src/repro/m.py": """\
                class Bank:
                    def __init__(self):
                        prime()
                def build():
                    Bank()
                def prime():
                    pass
                """,
        })
        assert "repro.m:prime" in graph.reachable(["repro.m:build"])


class TestInference:
    def test_param_annotation_and_attribute_types(self):
        graph = project_graph({
            "src/repro/m.py": """\
                import numpy as np
                class Stats:
                    cycles: int
                class Engine:
                    def __init__(self):
                        self.stats = Stats()
                    def touch(self):
                        s = self.stats
                        return s
                """,
        })
        func = graph.functions["repro.m:Engine.touch"]
        import ast
        ret = func.node.body[-1]
        assert isinstance(ret, ast.Return)
        assert graph.infer(func, ret.value) == "Stats"

    def test_container_annotations_and_subscript(self):
        graph = project_graph({
            "src/repro/m.py": """\
                from typing import Dict, List
                class Lane:
                    pass
                def pick(lanes: List[Lane], by_id: Dict[int, Lane]):
                    a = lanes[0]
                    b = by_id.get(3)
                    return a, b
                """,
        })
        func = graph.functions["repro.m:pick"]
        env = graph._env(func)
        assert env["lanes"] == "list:Lane"
        assert env["by_id"] == "dict:Lane"
        assert env["a"] == "Lane"
        assert env["b"] == "Lane"

    def test_conflicting_assignments_untrack(self):
        graph = project_graph({
            "src/repro/m.py": """\
                class A:
                    pass
                class B:
                    pass
                def f(flag):
                    x = A()
                    if flag:
                        x = B()
                    return x
                """,
        })
        func = graph.functions["repro.m:f"]
        assert "x" not in graph._env(func)

    def test_ambiguous_class_names_are_untracked(self):
        graph = project_graph({
            "src/repro/a.py": "class Dup:\n    pass\n",
            "src/repro/b.py": "class Dup:\n    pass\n",
        })
        assert "Dup" not in graph.classes
        assert "Dup" in graph.ambiguous

    def test_return_annotation_types_calls(self):
        graph = project_graph({
            "src/repro/m.py": """\
                class Enc:
                    pass
                def make() -> Enc:
                    return Enc()
                def use():
                    e = make()
                    return e
                """,
        })
        func = graph.functions["repro.m:use"]
        assert graph._env(func)["e"] == "Enc"
