"""Exit codes and baseline workflow of ``python -m repro.lint``."""

import json
import textwrap

import pytest

from repro.lint.cli import main

_BAD = textwrap.dedent("""\
    def serve(addrs):
        for i in range(len(addrs)):
            touch(addrs[i])
    """)

_CLEAN = textwrap.dedent("""\
    def serve(addrs):
        return vector_probe(addrs)
    """)


@pytest.fixture
def tree(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    target = tmp_path / "repro" / "sim" / "engine.py"
    target.parent.mkdir(parents=True)
    return target


def test_clean_tree_exits_zero(tree, capsys):
    tree.write_text(_CLEAN)
    assert main([str(tree.parents[1])]) == 0
    assert "0 new finding(s)" in capsys.readouterr().out


def test_new_finding_exits_one(tree, capsys):
    tree.write_text(_BAD)
    assert main([str(tree.parents[1])]) == 1
    out = capsys.readouterr().out
    assert "[hot-loop]" in out
    assert "repro/sim/engine.py:2" in out


def test_missing_path_exits_two(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["no/such/dir"]) == 2


def test_unknown_rule_exits_two(tree):
    tree.write_text(_CLEAN)
    with pytest.raises(SystemExit) as exc:
        main([str(tree.parents[1]), "--select", "no-such-rule"])
    assert exc.value.code == 2


def test_select_limits_the_rules(tree, capsys):
    tree.write_text(_BAD)
    assert main([str(tree.parents[1]), "--select", "float-eq"]) == 0
    assert main([str(tree.parents[1]), "--select", "hot-loop"]) == 1


def test_update_baseline_then_pass(tree, tmp_path, capsys):
    tree.write_text(_BAD)
    root = str(tree.parents[1])
    assert main([root, "--update-baseline",
                 "--justification", "legacy loop"]) == 0
    payload = json.loads((tmp_path / "lint_baseline.json").read_text())
    assert len(payload["findings"]) == 1
    entry = next(iter(payload["findings"].values()))
    assert entry["justification"] == "legacy loop"
    capsys.readouterr()
    # The grandfathered finding no longer fails the run...
    assert main([root]) == 0
    assert "1 baselined" in capsys.readouterr().out
    # ...and --no-baseline surfaces it again.
    assert main([root, "--no-baseline"]) == 1


def test_stale_baseline_entries_do_not_fail(tree, tmp_path, capsys):
    tree.write_text(_BAD)
    root = str(tree.parents[1])
    assert main([root, "--update-baseline"]) == 0
    tree.write_text(_CLEAN)
    capsys.readouterr()
    assert main([root]) == 0
    assert "1 stale baseline entry" in capsys.readouterr().out


def test_parse_error_fails_the_run(tree, capsys):
    tree.write_text("def broken(:\n")
    assert main([str(tree.parents[1])]) == 1
    assert "parse error" in capsys.readouterr().out


def test_list_rules_names_every_rule(tree, capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in ("hot-loop", "dtype-discipline", "stats-drift",
                 "config-validation", "float-eq", "nondeterminism",
                 "mutable-default", "bare-except"):
        assert name in out


def test_noqa_visible_only_with_show_suppressed(tree, capsys):
    tree.write_text(_BAD.replace(
        "for i in range(len(addrs)):",
        "for i in range(len(addrs)):  # repro: noqa(hot-loop)"))
    root = str(tree.parents[1])
    assert main([root]) == 0
    assert "(noqa)" not in capsys.readouterr().out
    assert main([root, "--show-suppressed"]) == 0
    assert "(noqa)" in capsys.readouterr().out
