"""Per-rule fixture pairs: each rule fires on its bad snippet and stays
silent on the corresponding good one."""

from .conftest import lint_text

ENGINE = "repro/sim/engine.py"
VECTOR = "repro/cache/vector.py"
STATS = "repro/sim/stats.py"
CONFIG = "repro/arch/config.py"
QUEUEING = "repro/sim/queueing.py"
DISKCACHE = "repro/analysis/diskcache.py"
ELSEWHERE = "repro/workloads/generator.py"


# -- hot-loop ---------------------------------------------------------------

def test_hot_loop_fires_on_per_access_index_loop():
    findings = lint_text("""\
        def serve(addrs):
            total = 0
            for i in range(len(addrs)):
                total += addrs[i]
            return total
        """, ENGINE, rule="hot-loop")
    assert len(findings) == 1
    assert findings[0].line == 3


def test_hot_loop_fires_on_direct_iteration_and_comprehension():
    findings = lint_text("""\
        def serve(epoch):
            for addr in epoch.addrs:
                touch(addr)
            return [touch(a) for a in epoch.addrs]
        """, ENGINE, rule="hot-loop")
    assert len(findings) == 2


def test_hot_loop_silent_on_geometry_bounded_loops():
    findings = lint_text("""\
        def settle(self, num_chips, last_r, homes_r):
            for chip in range(num_chips):
                self.charge(chip)
            for side_r in (last_r, homes_r):
                self.account(side_r)
        """, ENGINE, rule="hot-loop")
    assert findings == []


def test_hot_loop_silent_outside_hot_modules():
    findings = lint_text("""\
        def build(addrs):
            for i in range(len(addrs)):
                yield addrs[i]
        """, ELSEWHERE, rule="hot-loop")
    assert findings == []


STACKED = "repro/sim/stacked.py"


def test_hot_loop_fires_on_per_lane_loop_in_driver_round():
    findings = lint_text("""\
        def _drive(steps):
            probes = [next(s) for s in steps]
            while True:
                for i, probe in enumerate(probes):
                    pump(probe)
                done = [collect(p) for p in probes]
                if not done:
                    break
        """, STACKED, rule="hot-loop")
    assert len(findings) == 2
    assert {f.line for f in findings} == {4, 6}
    assert all("cooperative driver" in f.message for f in findings)


def test_hot_loop_silent_on_driver_loops_outside_the_round_loop():
    findings = lint_text("""\
        def _drive(steps):
            probes = [next(s) for s in steps]
            for i, probe in enumerate(probes):
                seed(probe)
            while True:
                for g in groups.values():
                    pump(g)
                break
        """, STACKED, rule="hot-loop")
    assert findings == []


def test_hot_loop_silent_on_driver_patterns_outside_driver_modules():
    findings = lint_text("""\
        def report(probes):
            while pending():
                for p in probes:
                    render(p)
        """, ELSEWHERE, rule="hot-loop")
    assert findings == []


# -- dtype-discipline -------------------------------------------------------

def test_dtype_fires_on_defaulted_constructor():
    findings = lint_text("""\
        import numpy as np
        rows = np.arange(8)
        """, VECTOR, rule="dtype-discipline")
    assert len(findings) == 1
    assert "dtype" in findings[0].message


def test_dtype_fires_on_float_tag_arithmetic():
    findings = lint_text("""\
        def probe(tags):
            return tags * 2.0
        """, VECTOR, rule="dtype-discipline")
    assert len(findings) == 1


def test_dtype_silent_on_explicit_dtype_and_integer_math():
    findings = lint_text("""\
        import numpy as np
        rows = np.arange(8, dtype=np.int64)
        def probe(tags):
            return tags * 2
        """, VECTOR, rule="dtype-discipline")
    assert findings == []


def test_dtype_silent_outside_designated_modules():
    findings = lint_text("""\
        import numpy as np
        rows = np.arange(8)
        """, ELSEWHERE, rule="dtype-discipline")
    assert findings == []


# -- stats-drift ------------------------------------------------------------

_STATS_TEMPLATE = """\
    from dataclasses import dataclass

    TELEMETRY_FIELDS = frozenset({{"wall_seconds"}})

    @dataclass
    class RunStats:
        cycles: float = 0.0
        wall_seconds: float = 0.0
        {extra}

        def comparable_dict(self):
            return {{"cycles": self.cycles}}
    """


def test_stats_drift_fires_on_unclassified_field():
    findings = lint_text(_STATS_TEMPLATE.format(extra="mystery: int = 0"),
                         STATS, rule="stats-drift")
    assert len(findings) == 1
    assert "mystery" in findings[0].message


def test_stats_drift_fires_on_field_in_both_places():
    findings = lint_text(
        _STATS_TEMPLATE.format(extra="").replace(
            '{"cycles": self.cycles}',
            '{"cycles": self.cycles, "wall_seconds": self.wall_seconds}'),
        STATS, rule="stats-drift")
    assert len(findings) == 1
    assert "both" in findings[0].message


def test_stats_drift_fires_when_registry_missing():
    findings = lint_text("""\
        from dataclasses import dataclass

        @dataclass
        class RunStats:
            cycles: float = 0.0

            def comparable_dict(self):
                return {"cycles": self.cycles}
        """, STATS, rule="stats-drift")
    assert any("TELEMETRY_FIELDS" in f.message for f in findings)


def test_stats_drift_silent_when_every_field_classified():
    findings = lint_text(_STATS_TEMPLATE.format(extra=""),
                         STATS, rule="stats-drift")
    assert findings == []


# -- config-validation ------------------------------------------------------

def test_config_validation_fires_on_untouched_field():
    findings = lint_text("""\
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class MemoryConfig:
            latency: float = 100.0
            channels: int = 2

            def __post_init__(self):
                if self.channels <= 0:
                    raise ValueError("need channels")
        """, CONFIG, rule="config-validation")
    assert len(findings) == 1
    assert "latency" in findings[0].message


def test_config_validation_fires_on_missing_post_init():
    findings = lint_text("""\
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class MemoryConfig:
            latency: float = 100.0
        """, CONFIG, rule="config-validation")
    assert len(findings) == 1
    assert "__post_init__" in findings[0].message


def test_config_validation_exempts_bools_and_nested_configs():
    findings = lint_text("""\
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class CacheConfig:
            size: int = 64

            def __post_init__(self):
                if self.size <= 0:
                    raise ValueError("bad size")

        @dataclass(frozen=True)
        class ChipConfig:
            llc: CacheConfig = CacheConfig()
            sectored: bool = False
            slices: int = 8

            def __post_init__(self):
                if self.slices <= 0:
                    raise ValueError("bad slices")
        """, CONFIG, rule="config-validation")
    assert findings == []


# -- float-eq ---------------------------------------------------------------

def test_float_eq_fires_on_float_literal_comparison():
    findings = lint_text("""\
        def delay(rho):
            if rho == 0.0:
                return 0.0
            return 1.0 / rho
        """, QUEUEING, rule="float-eq")
    assert len(findings) == 1
    assert findings[0].line == 2


def test_float_eq_silent_on_thresholds_and_int_equality():
    findings = lint_text("""\
        def delay(rho, n):
            if rho <= 0.0:
                return 0.0
            if n == 0:
                return 0.0
            return 1.0 / rho
        """, QUEUEING, rule="float-eq")
    assert findings == []


def test_float_eq_silent_outside_timing_modules():
    findings = lint_text("""\
        def check(x):
            return x == 1.5
        """, ELSEWHERE, rule="float-eq")
    assert findings == []


# -- nondeterminism ---------------------------------------------------------

def test_nondeterminism_fires_on_global_rng():
    findings = lint_text("""\
        import random
        import numpy as np

        def shuffle(x):
            np.random.shuffle(x)
            return random.random()
        """, ELSEWHERE, rule="nondeterminism")
    assert len(findings) == 2


def test_nondeterminism_fires_on_unseeded_default_rng():
    findings = lint_text("""\
        import numpy as np
        rng = np.random.default_rng()
        """, ELSEWHERE, rule="nondeterminism")
    assert len(findings) == 1
    assert "seed" in findings[0].message


def test_nondeterminism_silent_on_seeded_rng():
    findings = lint_text("""\
        import numpy as np
        import random
        rng = np.random.default_rng(42)
        local = random.Random(7)
        """, ELSEWHERE, rule="nondeterminism")
    assert findings == []


def test_nondeterminism_fires_on_unsorted_items_in_key_module():
    findings = lint_text("""\
        def encode(parts):
            return [v for _, v in parts.items()]
        """, DISKCACHE, rule="nondeterminism")
    assert len(findings) == 1


def test_nondeterminism_silent_on_sorted_items_in_key_module():
    findings = lint_text("""\
        import json

        def encode(parts):
            first = [v for _, v in sorted(parts.items())]
            return first, json.dumps(dict(parts.items()), sort_keys=True)
        """, DISKCACHE, rule="nondeterminism")
    assert findings == []


def test_nondeterminism_ignores_dict_order_outside_key_module():
    findings = lint_text("""\
        def tally(counts):
            return [v for _, v in counts.items()]
        """, ELSEWHERE, rule="nondeterminism")
    assert findings == []


# -- mutable-default --------------------------------------------------------

def test_mutable_default_fires_on_literal_and_call_defaults():
    findings = lint_text("""\
        def f(x=[]):
            return x

        def g(y=dict()):
            return y
        """, ELSEWHERE, rule="mutable-default")
    assert len(findings) == 2


def test_mutable_default_silent_on_none_sentinel():
    findings = lint_text("""\
        def f(x=None, y=(), z="name"):
            return x, y, z
        """, ELSEWHERE, rule="mutable-default")
    assert findings == []


# -- bare-except ------------------------------------------------------------

def test_bare_except_fires_on_bare_handler():
    findings = lint_text("""\
        def load(path):
            try:
                return open(path)
            except:
                return None
        """, ELSEWHERE, rule="bare-except")
    assert len(findings) == 1


def test_bare_except_fires_on_silent_broad_handler():
    findings = lint_text("""\
        def load(path):
            try:
                return open(path)
            except Exception:
                pass
        """, ELSEWHERE, rule="bare-except")
    assert len(findings) == 1


def test_bare_except_silent_on_narrow_or_handled():
    findings = lint_text("""\
        def load(path):
            try:
                return open(path)
            except FileNotFoundError:
                pass
            except Exception as exc:
                raise RuntimeError(path) from exc
        """, ELSEWHERE, rule="bare-except")
    assert findings == []


# -- broad-except -----------------------------------------------------------

def test_broad_except_fires_on_swallow_and_substitute():
    findings = lint_text("""\
        def load(path):
            try:
                return parse(path)
            except Exception:
                return None
        """, ELSEWHERE, rule="broad-except")
    assert len(findings) == 1
    assert findings[0].line == 4


def test_broad_except_fires_on_base_exception():
    findings = lint_text("""\
        def load(path):
            try:
                return parse(path)
            except BaseException:
                return default()
        """, ELSEWHERE, rule="broad-except")
    assert len(findings) == 1


def test_broad_except_silent_when_exception_is_used():
    findings = lint_text("""\
        def load(path, errors):
            try:
                return parse(path)
            except Exception as error:
                errors.append(error)
                return None
        """, ELSEWHERE, rule="broad-except")
    assert findings == []


def test_broad_except_silent_on_reraise_or_log():
    findings = lint_text("""\
        def load(path):
            try:
                return parse(path)
            except Exception:
                log.warning("unreadable payload at %s", path)
                return None

        def must(path):
            try:
                return parse(path)
            except Exception:
                raise RuntimeError(path)
        """, ELSEWHERE, rule="broad-except")
    assert findings == []


def test_broad_except_leaves_silent_bodies_to_bare_except():
    # `except Exception: pass` is bare-except's finding; broad-except
    # must not double-report it.
    findings = lint_text("""\
        def load(path):
            try:
                return parse(path)
            except Exception:
                pass
        """, ELSEWHERE, rule="broad-except")
    assert findings == []


def test_broad_except_silent_on_narrow_handlers():
    findings = lint_text("""\
        def load(path):
            try:
                return parse(path)
            except (OSError, ValueError):
                return None
        """, ELSEWHERE, rule="broad-except")
    assert findings == []
