"""Output formats (--format json/github) and --prune-baseline."""

import json
import textwrap

import pytest

from repro.lint.cli import main
from repro.lint.formats import render

_BAD = textwrap.dedent("""\
    def serve(addrs):
        for i in range(len(addrs)):
            touch(addrs[i])
    """)

_CLEAN = textwrap.dedent("""\
    def serve(addrs):
        return vector_probe(addrs)
    """)


@pytest.fixture
def tree(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    target = tmp_path / "repro" / "sim" / "engine.py"
    target.parent.mkdir(parents=True)
    return target


class TestJsonFormat:
    def test_document_shape(self, tree, capsys):
        tree.write_text(_BAD)
        assert main([str(tree.parents[1]), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "repro.lint-report/1"
        assert payload["failed"] is True
        assert payload["files_checked"] == 1
        [finding] = payload["new"]
        assert finding["rule"] == "hot-loop"
        assert finding["path"].endswith("repro/sim/engine.py")
        assert finding["line"] == 2
        assert len(finding["fingerprint"]) == 16
        assert payload["baselined"] == []
        assert payload["parse_errors"] == []

    def test_clean_tree_document(self, tree, capsys):
        tree.write_text(_CLEAN)
        assert main([str(tree.parents[1]), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["failed"] is False
        assert payload["new"] == []


class TestGithubFormat:
    def test_error_annotation_lines(self, tree, capsys):
        tree.write_text(_BAD)
        assert main([str(tree.parents[1]), "--format", "github"]) == 1
        out = capsys.readouterr().out
        [annotation] = [l for l in out.splitlines()
                        if l.startswith("::error ")]
        assert "file=" in annotation and ",line=2,col=" in annotation
        assert "title=repro.lint hot-loop::" in annotation
        # The raw-log summary still prints after the annotations.
        assert "1 new finding(s)" in out

    def test_property_escaping(self, tree):
        # Messages with newlines/commas must stay one annotation line.
        from repro.lint.core import Finding, Severity
        from repro.lint.runner import Report

        report = Report()
        report.files_checked = 1
        report.new = [Finding(
            rule="hot-loop", severity=Severity.ERROR,
            path="a,b.py", line=1, column=0,
            message="bad: 50%\nreally", source_line="x")]
        out = render(report, "github")
        [annotation] = [l for l in out.splitlines()
                        if l.startswith("::error ")]
        assert "file=a%2Cb.py" in annotation
        # Data escaping covers %, CR and LF (colons are legal there).
        assert annotation.endswith("::bad: 50%25%0Areally")

    def test_unknown_format_raises(self):
        from repro.lint.runner import Report
        with pytest.raises(ValueError):
            render(Report(), "yaml")


class TestPruneBaseline:
    def test_prunes_stale_entries(self, tree, tmp_path, capsys):
        tree.write_text(_BAD)
        root = str(tree.parents[1])
        assert main([root, "--update-baseline"]) == 0
        # The finding disappears; its baseline entry goes stale.
        tree.write_text(_CLEAN)
        capsys.readouterr()
        assert main([root, "--prune-baseline"]) == 0
        out = capsys.readouterr().out
        assert "pruned 1 stale entry" in out
        assert "0 stale baseline entries" in out
        payload = json.loads((tmp_path / "lint_baseline.json").read_text())
        assert payload["findings"] == {}

    def test_keeps_live_entries(self, tree, tmp_path, capsys):
        tree.write_text(_BAD)
        root = str(tree.parents[1])
        assert main([root, "--update-baseline"]) == 0
        capsys.readouterr()
        assert main([root, "--prune-baseline"]) == 0
        assert "pruned 0 stale entries" in capsys.readouterr().out
        payload = json.loads((tmp_path / "lint_baseline.json").read_text())
        assert len(payload["findings"]) == 1

    def test_without_baseline_file_exits_two(self, tree, capsys):
        tree.write_text(_CLEAN)
        assert main([str(tree.parents[1]), "--prune-baseline"]) == 2
        assert "needs a baseline file" in capsys.readouterr().err
