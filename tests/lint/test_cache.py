"""Per-file finding cache: warm hits, invalidation, registry token."""

import json

from repro.lint.cache import LintCache, content_hash

from .conftest import lint_tree, write_tree

FILES = {
    "repro/sim/engine.py": """\
        def serve(addrs):
            for i in range(len(addrs)):  # repro: noqa(hot-loop)
                touch(addrs[i])
        """,
    "repro/sim/timing.py": """\
        def ready(t):
            return t > 0.5
        """,
    "repro/core/util.py": """\
        def ident(x):
            return x
        """,
}


def test_second_run_performs_zero_reanalyses(tmp_path):
    cache_dir = tmp_path / "cache"
    root = tmp_path / "tree"
    root.mkdir()
    cold = lint_tree(root, FILES, cache_dir=cache_dir)
    assert cold.files_analyzed == len(FILES)
    assert cold.files_from_cache == 0
    assert not cold.project_from_cache

    warm = lint_tree(root, {}, cache_dir=cache_dir)
    assert warm.files_analyzed == 0
    assert warm.files_from_cache == len(FILES)
    assert warm.project_from_cache
    # The cached run reproduces the findings verbatim.
    assert [f.fingerprint() for f in warm.suppressed] == \
        [f.fingerprint() for f in cold.suppressed]
    assert [f.fingerprint() for f in warm.new] == \
        [f.fingerprint() for f in cold.new]


def test_editing_one_file_invalidates_only_that_file(tmp_path):
    cache_dir = tmp_path / "cache"
    root = tmp_path / "tree"
    root.mkdir()
    lint_tree(root, FILES, cache_dir=cache_dir)

    edited = lint_tree(root, {
        "repro/sim/timing.py": """\
            def ready(t):
                return t > 0.25
            """,
    }, cache_dir=cache_dir)
    assert edited.files_analyzed == 1
    assert edited.files_from_cache == len(FILES) - 1
    # The project tier keys on the whole tree, so an edit anywhere
    # re-runs it.
    assert not edited.project_from_cache


def test_no_cache_dir_means_no_cache_io(tmp_path):
    root = tmp_path / "tree"
    root.mkdir()
    report = lint_tree(root, FILES)
    assert report.files_analyzed == len(FILES)
    again = lint_tree(root, {})
    assert again.files_analyzed == len(FILES)
    assert again.files_from_cache == 0


def test_rule_subset_runs_bypass_the_cache(tmp_path):
    from repro.lint import REGISTRY
    cache_dir = tmp_path / "cache"
    root = tmp_path / "tree"
    root.mkdir()
    lint_tree(root, FILES, cache_dir=cache_dir)
    subset = lint_tree(root, {}, cache_dir=cache_dir,
                       rules=[REGISTRY.rules["hot-loop"]()])
    # Cached entries hold the full registry's findings; a subset run
    # must not serve them.
    assert subset.files_from_cache == 0


def test_corrupt_cache_is_a_cold_start(tmp_path):
    cache_dir = tmp_path / "cache"
    root = tmp_path / "tree"
    root.mkdir()
    lint_tree(root, FILES, cache_dir=cache_dir)
    (cache_dir / "findings.json").write_text("{not json", encoding="utf-8")
    report = lint_tree(root, {}, cache_dir=cache_dir)
    assert report.files_analyzed == len(FILES)
    # And the rewrite leaves a loadable cache behind.
    again = lint_tree(root, {}, cache_dir=cache_dir)
    assert again.files_analyzed == 0


def test_registry_token_mismatch_drops_entries(tmp_path):
    cache_dir = tmp_path / "cache"
    root = tmp_path / "tree"
    root.mkdir()
    lint_tree(root, FILES, cache_dir=cache_dir)
    payload = json.loads(
        (cache_dir / "findings.json").read_text(encoding="utf-8"))
    payload["token"] = "0" * 16
    (cache_dir / "findings.json").write_text(
        json.dumps(payload), encoding="utf-8")
    report = lint_tree(root, {}, cache_dir=cache_dir)
    assert report.files_analyzed == len(FILES)


def test_deleted_files_are_pruned_from_the_cache(tmp_path):
    cache_dir = tmp_path / "cache"
    root = tmp_path / "tree"
    root.mkdir()
    lint_tree(root, FILES, cache_dir=cache_dir)
    (root / "repro/core/util.py").unlink()
    lint_tree(root, {}, cache_dir=cache_dir)
    cache = LintCache.load(cache_dir)
    assert "repro/sim/engine.py" in cache.files
    assert "repro/core/util.py" not in cache.files


def test_content_hash_is_stable_and_short():
    assert content_hash("x = 1\n") == content_hash("x = 1\n")
    assert content_hash("x = 1\n") != content_hash("x = 2\n")
    assert len(content_hash("")) == 16
