"""Good/bad fixture pairs for the four cross-module project rules."""

import textwrap

from repro.lint.rules.env_flag_registry import EnvFlagRegistryRule
from repro.lint.rules.reachable_hot_loop import ReachableHotLoopRule
from repro.lint.rules.shared_encoding_alias import SharedEncodingAliasRule
from repro.lint.rules.telemetry_registry import TelemetryRegistryRule

from .conftest import project_graph


def findings_of(rule, files):
    return list(rule.check_project(project_graph(files)))


STATS_MODULE = textwrap.dedent("""\
    TELEMETRY_FIELDS = frozenset({"wall_seconds", "lanes"})
    class RunStats:
        cycles: int = 0
        wall_seconds: float = 0.0
        def comparable_dict(self):
            return {"cycles": self.cycles}
    class StackedTelemetry:
        lanes: int = 0
    """)


class TestTelemetryRegistry:
    def test_bad_unregistered_write_is_flagged(self):
        findings = findings_of(TelemetryRegistryRule(), {
            "src/repro/sim/stats.py": STATS_MODULE,
            "src/repro/sim/driver.py": """\
                from .stats import RunStats
                def go():
                    s = RunStats()
                    s.new_counter = 3
                """,
        })
        assert [f.rule for f in findings] == ["telemetry-registry"]
        assert "RunStats.new_counter" in findings[0].message
        assert findings[0].path == "src/repro/sim/driver.py"

    def test_good_registered_writes_pass(self):
        findings = findings_of(TelemetryRegistryRule(), {
            "src/repro/sim/stats.py": STATS_MODULE,
            "src/repro/sim/driver.py": """\
                from .stats import RunStats, StackedTelemetry
                def go(t: StackedTelemetry):
                    s = RunStats()
                    s.wall_seconds = 1.0
                    s.cycles += 5
                    t.lanes += 1
                """,
        })
        assert findings == []

    def test_untracked_receiver_is_not_flagged(self):
        # A write through an unknown type must stay a false negative,
        # never a false positive.
        findings = findings_of(TelemetryRegistryRule(), {
            "src/repro/sim/stats.py": STATS_MODULE,
            "src/repro/sim/driver.py": """\
                def go(mystery):
                    mystery.new_counter = 3
                """,
        })
        assert findings == []

    def test_silent_without_stats_module(self):
        findings = findings_of(TelemetryRegistryRule(), {
            "src/repro/sim/driver.py": """\
                class RunStats:
                    pass
                def go():
                    s = RunStats()
                    s.anything = 1
                """,
        })
        assert findings == []


FLAGS_MODULE = textwrap.dedent("""\
    class EnvFlag:
        def __init__(self, name, default, description):
            pass
    FLAGS = (
        EnvFlag("REPRO_JOBS", "", description="worker count"),
    )
    """)


class TestEnvFlagRegistry:
    def test_bad_undeclared_read_is_flagged(self):
        findings = findings_of(EnvFlagRegistryRule(), {
            "src/repro/core/flags.py": FLAGS_MODULE,
            "src/repro/sim/run.py": """\
                import os
                A = os.environ.get("REPRO_SECRET", "")
                B = os.environ["REPRO_OTHER"]
                C = "REPRO_THIRD" in os.environ
                """,
        })
        assert sorted(f.message.split()[2] for f in findings) == \
            ["REPRO_OTHER", "REPRO_SECRET", "REPRO_THIRD"]

    def test_good_declared_reads_pass(self):
        findings = findings_of(EnvFlagRegistryRule(), {
            "src/repro/core/flags.py": FLAGS_MODULE,
            "src/repro/sim/run.py": """\
                import os
                A = os.environ.get("REPRO_JOBS", "")
                B = "REPRO_JOBS" in os.environ
                """,
        })
        assert findings == []

    def test_empty_description_is_flagged(self):
        findings = findings_of(EnvFlagRegistryRule(), {
            "src/repro/core/flags.py": """\
                class EnvFlag:
                    def __init__(self, name, default, description):
                        pass
                FLAGS = (EnvFlag("REPRO_X", "", description=""),)
                """,
        })
        assert len(findings) == 1
        assert "empty description" in findings[0].message

    def test_silent_without_flags_module(self):
        findings = findings_of(EnvFlagRegistryRule(), {
            "src/repro/sim/run.py": """\
                import os
                A = os.environ.get("REPRO_ANYTHING", "")
                """,
        })
        assert findings == []


ENCODING_MODULE = textwrap.dedent("""\
    import numpy as np
    from typing import NamedTuple, Tuple
    class _BucketEncoding(NamedTuple):
        idx: np.ndarray
        pi_chain: np.ndarray
        mwidth: int
    class _StreamEncoding(NamedTuple):
        n: int
        buckets: Tuple[_BucketEncoding, ...]
    """)


BAD_REPLAY = textwrap.dedent("""\
    def _replay(enc: _StreamEncoding) -> None:
        bk = enc.buckets[0]
        bk.idx[0] = 7
        bk.idx.sort()
        np.put(bk.pi_chain, 0, 1)
        bk.idx.flags.writeable = True
        np.add(bk.idx, 1, out=bk.idx)
    """)

GOOD_REPLAY = textwrap.dedent("""\
    def _replay(enc: _StreamEncoding) -> None:
        bk = enc.buckets[0]
        pi = bk.pi_chain.copy()
        pi[0] = 3
        pi.sort()
        local = np.array(bk.idx)
        local += 1
        total = bk.idx.sum()
    """)

AUG_REPLAY = textwrap.dedent("""\
    def _replay(bk: _BucketEncoding) -> None:
        bk.idx[0] += 1
    """)

LANE_MODULE = textwrap.dedent("""\
    class _LaneEncoding(NamedTuple):
        lanes: int
        n: int
        buckets: Tuple[_BucketEncoding, ...]
    """)

BAD_LANE_REPLAY = textwrap.dedent("""\
    def _replay_lanes(lenc: _LaneEncoding, k: int) -> None:
        bk = lenc.buckets[0]
        bk.idx[k] = 7
    """)

GOOD_LANE_REPLAY = textwrap.dedent("""\
    def _replay_lanes(lenc: _LaneEncoding, k: int) -> None:
        bk = lenc.buckets[0]
        rows = bk.idx.copy()
        rows[k] = 7
    """)


class TestSharedEncodingAlias:
    def test_bad_mutations_are_flagged(self):
        findings = findings_of(SharedEncodingAliasRule(), {
            "src/repro/cache/vector.py": ENCODING_MODULE + BAD_REPLAY,
        })
        assert len(findings) == 5
        assert {f.rule for f in findings} == {"shared-encoding-alias"}

    def test_good_copy_idiom_passes(self):
        findings = findings_of(SharedEncodingAliasRule(), {
            "src/repro/cache/vector.py": ENCODING_MODULE + GOOD_REPLAY,
        })
        assert findings == []

    def test_mutation_in_another_module_is_flagged(self):
        findings = findings_of(SharedEncodingAliasRule(), {
            "src/repro/cache/vector.py": ENCODING_MODULE,
            "src/repro/sim/stacked.py": """\
                from ..cache.vector import _StreamEncoding
                def poke(enc: _StreamEncoding):
                    enc.buckets[0].idx[3] = 9
                """,
        })
        assert len(findings) == 1
        assert findings[0].path == "src/repro/sim/stacked.py"

    def test_augmented_assign_is_flagged(self):
        findings = findings_of(SharedEncodingAliasRule(), {
            "src/repro/cache/vector.py": ENCODING_MODULE + AUG_REPLAY,
        })
        assert len(findings) == 1

    def test_bad_cross_lane_write_is_flagged(self):
        # The lane-stacked tiling (_LaneEncoding) is shared exactly like
        # the stream encoding it derives from: an in-place write through
        # one lane's view corrupts every sibling lane of the batched
        # replay.
        findings = findings_of(SharedEncodingAliasRule(), {
            "src/repro/cache/vector.py":
                ENCODING_MODULE + LANE_MODULE + BAD_LANE_REPLAY,
        })
        assert len(findings) == 1
        assert findings[0].rule == "shared-encoding-alias"
        assert "subscript store" in findings[0].message

    def test_good_lane_copy_idiom_passes(self):
        findings = findings_of(SharedEncodingAliasRule(), {
            "src/repro/cache/vector.py":
                ENCODING_MODULE + LANE_MODULE + GOOD_LANE_REPLAY,
        })
        assert findings == []

    def test_silent_without_encoding_classes(self):
        findings = findings_of(SharedEncodingAliasRule(), {
            "src/repro/sim/other.py": """\
                def f(arr):
                    arr[0] = 1
                """,
        })
        assert findings == []


class TestReachableHotLoop:
    ENGINE = """\
        from ..util import crunch
        class SimulationEngine:
            def _run_epoch_batched(self):
                crunch([1, 2])
        """

    def test_bad_reachable_helper_loop_is_flagged(self):
        findings = findings_of(ReachableHotLoopRule(), {
            "src/repro/sim/engine.py": self.ENGINE,
            "src/repro/util.py": """\
                def crunch(addrs):
                    for a in addrs:
                        touch(a)
                """,
        })
        assert len(findings) == 1
        assert findings[0].rule == "reachable-hot-loop"
        assert findings[0].path == "src/repro/util.py"

    def test_good_unreachable_loop_passes(self):
        findings = findings_of(ReachableHotLoopRule(), {
            "src/repro/sim/engine.py": self.ENGINE,
            "src/repro/util.py": """\
                def crunch(addrs):
                    return len(addrs)
                def offline_report(addrs):
                    for a in addrs:
                        print(a)
                """,
        })
        assert findings == []

    def test_hot_modules_are_left_to_the_per_file_rule(self):
        # engine.py is HOT_MODULES turf; no double reporting.
        findings = findings_of(ReachableHotLoopRule(), {
            "src/repro/sim/engine.py": """\
                class SimulationEngine:
                    def _run_epoch_batched(self):
                        for a in self.addrs:
                            pass
                """,
        })
        assert findings == []

    def test_silent_without_roots(self):
        findings = findings_of(ReachableHotLoopRule(), {
            "src/repro/util.py": """\
                def crunch(addrs):
                    for a in addrs:
                        pass
                """,
        })
        assert findings == []
