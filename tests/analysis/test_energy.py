"""Unit and integration tests for the energy estimate."""

import pytest

from repro.analysis.energy import (
    PJ_PER_BYTE,
    EnergyEstimate,
    energy_ratio,
    estimate_energy,
)
from repro.sim import simulate
from repro.sim.stats import RunStats
from repro.workloads import get


def make_stats(**kwargs):
    defaults = dict(benchmark="x", organization="memory-side",
                    cycles=1000.0, accesses=100, llc_lookups=100,
                    llc_hits=80)
    defaults.update(kwargs)
    stats = RunStats()
    for key, value in defaults.items():
        setattr(stats, key, value)
    return stats


class TestEstimate:
    def test_breakdown_sums(self):
        stats = make_stats(dram_bytes=1000, inter_chip_bytes=500)
        estimate = estimate_energy(stats)
        assert estimate.total == pytest.approx(
            sum(estimate.breakdown().values()))
        assert estimate.dynamic == pytest.approx(
            estimate.total - estimate.static)

    def test_dram_term_uses_counter(self):
        low = estimate_energy(make_stats(dram_bytes=0))
        high = estimate_energy(make_stats(dram_bytes=100_000))
        assert high.dram - low.dram == pytest.approx(
            100_000 * PJ_PER_BYTE["dram"])

    def test_empty_run_rejected(self):
        with pytest.raises(ValueError):
            estimate_energy(make_stats(accesses=0))

    def test_cost_ordering_is_sane(self):
        assert PJ_PER_BYTE["noc"] < PJ_PER_BYTE["llc"] \
            < PJ_PER_BYTE["inter_chip"] <= PJ_PER_BYTE["dram"]


class TestEnergyRatio:
    def test_identity(self):
        stats = make_stats(dram_bytes=100)
        assert energy_ratio(stats, stats) == pytest.approx(1.0)

    def test_sm_side_trades_ring_energy_for_dram_energy(self):
        """On an SP benchmark, caching remote data locally halves the
        inter-chip energy but pays more DRAM energy (higher miss rate) —
        the performance and energy winners need not coincide."""
        spec = get("RN")
        mem = simulate(spec, "memory-side", accesses_per_epoch=2048)
        sm = simulate(spec, "sm-side", accesses_per_epoch=2048)
        mem_energy = estimate_energy(mem)
        sm_energy = estimate_energy(sm)
        assert sm_energy.inter_chip < mem_energy.inter_chip
        assert sm_energy.dram > mem_energy.dram
        assert sm_energy.static < mem_energy.static  # finishes earlier
