"""Unit tests for the cached experiment runner and aggregation helpers."""

import pytest

from repro.analysis import (
    cache_size,
    clear_cache,
    hmean_speedup,
    run,
    run_matrix,
    speedups_vs_baseline,
)
from repro.workloads import BenchmarkSpec, KernelSpec, PhaseSpec


def tiny_spec(name="runner-tiny"):
    phase = PhaseSpec(weight_true=0.4, weight_false=0.3, weight_private=0.3)
    return BenchmarkSpec(
        name=name, suite="test", num_ctas=8, footprint_mb=4,
        true_shared_mb=1, false_shared_mb=1, preference="sm-side",
        kernels=(KernelSpec(name="k", phase=phase, epochs=1),), seed=13)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestCaching:
    def test_repeat_run_is_memoized(self):
        spec = tiny_spec()
        first = run(spec, "memory-side", accesses_per_epoch=256)
        assert cache_size() == 1
        second = run(spec, "memory-side", accesses_per_epoch=256)
        assert second is first

    def test_different_organizations_are_distinct_entries(self):
        spec = tiny_spec()
        run(spec, "memory-side", accesses_per_epoch=256)
        run(spec, "sm-side", accesses_per_epoch=256)
        assert cache_size() == 2

    def test_use_cache_false_bypasses(self):
        spec = tiny_spec()
        first = run(spec, "memory-side", accesses_per_epoch=256,
                    use_cache=False)
        assert cache_size() == 0
        second = run(spec, "memory-side", accesses_per_epoch=256,
                     use_cache=False)
        assert second is not first
        assert second.cycles == first.cycles


class TestMatrix:
    def test_matrix_covers_all_pairs(self):
        specs = [tiny_spec("a"), tiny_spec("b")]
        results = run_matrix(specs, ["memory-side", "sm-side"],
                             accesses_per_epoch=256)
        assert set(results) == {("a", "memory-side"), ("a", "sm-side"),
                                ("b", "memory-side"), ("b", "sm-side")}

    def test_speedups_normalize_to_baseline(self):
        specs = [tiny_spec("a")]
        results = run_matrix(specs, ["memory-side", "sm-side"],
                             accesses_per_epoch=256)
        speedups = speedups_vs_baseline(results, ["a"],
                                        ["memory-side", "sm-side"])
        assert speedups[("a", "memory-side")] == pytest.approx(1.0)

    def test_hmean_speedup(self):
        speedups = {("a", "x"): 2.0, ("b", "x"): 2.0}
        assert hmean_speedup(speedups, ["a", "b"], "x") == pytest.approx(2.0)


class TestConfigKeyAliasing:
    def test_none_and_explicit_baseline_share_one_entry(self):
        # Regression: the cache key must be built from the *resolved*
        # config, so config=None and an equal explicit baseline() hit
        # the same entry instead of simulating twice.
        from repro.arch import baseline
        spec = tiny_spec()
        first = run(spec, "memory-side", accesses_per_epoch=256)
        assert cache_size() == 1
        second = run(spec, "memory-side", config=baseline(),
                     accesses_per_epoch=256)
        assert cache_size() == 1
        assert second is first


class TestZeroCycleErrors:
    def _results_with_zero_cycles(self, zero_org):
        from repro.sim.stats import RunStats
        results = {}
        for org in ("memory-side", "sm-side"):
            cycles = 0.0 if org == zero_org else 100.0
            results[("a", org)] = RunStats(benchmark="a", organization=org,
                                           cycles=cycles)
        return results

    def test_zero_cycle_candidate_names_the_run(self):
        results = self._results_with_zero_cycles("sm-side")
        with pytest.raises(ValueError, match="'a' under 'sm-side'"):
            speedups_vs_baseline(results, ["a"], ["memory-side", "sm-side"])

    def test_zero_cycle_baseline_names_the_run(self):
        results = self._results_with_zero_cycles("memory-side")
        with pytest.raises(ValueError,
                           match="baseline run 'a' under 'memory-side'"):
            speedups_vs_baseline(results, ["a"], ["sm-side"])

    def test_stats_speedup_names_both_sides(self):
        from repro.sim.stats import RunStats, speedup
        good = RunStats(benchmark="b", organization="sac", cycles=10.0)
        bad = RunStats(benchmark="b", organization="static", cycles=0.0)
        with pytest.raises(ValueError, match="candidate run 'b'"):
            speedup(good, bad)
        with pytest.raises(ValueError, match="baseline run 'b'"):
            speedup(bad, good)


class TestDiskCacheIntegration:
    def test_warm_disk_cache_skips_simulation(self, tmp_path):
        from repro.sim.run import reset_simulate_calls, simulate_calls
        specs = [tiny_spec("warm-a"), tiny_spec("warm-b")]
        orgs = ["memory-side", "sm-side"]
        cold = run_matrix(specs, orgs, accesses_per_epoch=256,
                          cache_dir=tmp_path)
        clear_cache()  # drop the in-process memo; only the disk remains
        reset_simulate_calls()
        warm = run_matrix(specs, orgs, accesses_per_epoch=256,
                          cache_dir=tmp_path)
        assert simulate_calls() == 0
        assert set(warm) == set(cold)
        for key in cold:
            assert warm[key].comparable_dict() == cold[key].comparable_dict()

    def test_telemetry_counts_layers(self, tmp_path):
        from repro.analysis import reset_telemetry, telemetry
        reset_telemetry()
        specs = [tiny_spec("tele")]
        run_matrix(specs, ["memory-side"], accesses_per_epoch=256,
                   cache_dir=tmp_path)
        assert telemetry().simulated == 1
        assert telemetry().disk_stores == 1
        run_matrix(specs, ["memory-side"], accesses_per_epoch=256,
                   cache_dir=tmp_path)
        assert telemetry().memo_hits == 1
        clear_cache()
        run_matrix(specs, ["memory-side"], accesses_per_epoch=256,
                   cache_dir=tmp_path)
        assert telemetry().disk_hits == 1
        assert telemetry().simulated == 1


class TestPendingDedup:
    def test_duplicate_specs_simulate_once(self):
        # Regression: duplicate (spec, organization) pairs that missed
        # every cache layer used to be queued — and simulated — twice.
        from repro.sim.run import reset_simulate_calls, simulate_calls
        reset_simulate_calls()
        spec = tiny_spec("dup")
        results = run_matrix([spec, spec], ["memory-side"],
                             accesses_per_epoch=256)
        assert simulate_calls() == 1
        assert set(results) == {("dup", "memory-side")}

    def test_duplicate_organizations_simulate_once(self):
        from repro.sim.run import reset_simulate_calls, simulate_calls
        reset_simulate_calls()
        results = run_matrix([tiny_spec("dup-org")],
                             ["memory-side", "memory-side"],
                             accesses_per_epoch=256)
        assert simulate_calls() == 1
        assert set(results) == {("dup-org", "memory-side")}


class TestSpecNameCollision:
    def test_distinct_specs_sharing_a_name_raise(self):
        # Regression: results are keyed by spec *name*, so two distinct
        # specs with the same name used to silently collapse into one
        # entry (the second spec inheriting the first's stats).
        import dataclasses
        spec_a = tiny_spec("clash")
        spec_b = dataclasses.replace(tiny_spec("clash"), seed=99)
        with pytest.raises(ValueError, match="share the name 'clash'"):
            run_matrix([spec_a, spec_b], ["memory-side"],
                       accesses_per_epoch=256)

    def test_equal_duplicate_specs_are_fine(self):
        results = run_matrix([tiny_spec("same"), tiny_spec("same")],
                             ["memory-side"], accesses_per_epoch=256)
        assert set(results) == {("same", "memory-side")}


class TestStackedDispatch:
    ORGS = ["memory-side", "sm-side", "static", "dynamic", "sac"]

    def test_matrix_matches_per_pair_dispatch(self, monkeypatch):
        spec = tiny_spec("stack-eq")
        monkeypatch.setenv("REPRO_STACKED", "0")
        per_pair = run_matrix([spec], self.ORGS, accesses_per_epoch=256)
        clear_cache()
        monkeypatch.setenv("REPRO_STACKED", "1")
        stacked = run_matrix([spec], self.ORGS, accesses_per_epoch=256)
        assert list(stacked) == list(per_pair)
        for key in per_pair:
            assert stacked[key].comparable_dict() == \
                per_pair[key].comparable_dict()

    def test_telemetry_counts_stacked_groups(self):
        from repro.analysis import reset_telemetry, telemetry
        reset_telemetry()
        run_matrix([tiny_spec("stack-tele")], self.ORGS,
                   accesses_per_epoch=256)
        assert telemetry().simulated == 5
        assert telemetry().stacked_groups == 1
        assert telemetry().stacked_lanes == 5
        assert telemetry().stacked_fallbacks == 0
        assert "5 lanes stacked in 1 groups" in telemetry().summary()

    def test_lone_pending_pair_stays_unstacked(self):
        from repro.analysis import reset_telemetry, telemetry
        reset_telemetry()
        run_matrix([tiny_spec("stack-lone")], ["memory-side"],
                   accesses_per_epoch=256)
        assert telemetry().simulated == 1
        assert telemetry().stacked_groups == 0


class TestTelemetrySeconds:
    def test_sim_and_matrix_seconds_are_split(self):
        # Regression: the old wall_seconds field mixed simulator time
        # with whole-matrix dispatch time.  A warm (all-memo) matrix
        # accrues matrix_seconds but no sim_seconds.
        from repro.analysis import reset_telemetry, telemetry
        specs = [tiny_spec("secs")]
        run_matrix(specs, ["memory-side", "sm-side"],
                   accesses_per_epoch=256)
        assert telemetry().sim_seconds > 0.0
        assert telemetry().matrix_seconds > 0.0
        assert not hasattr(telemetry(), "wall_seconds")
        reset_telemetry()
        run_matrix(specs, ["memory-side", "sm-side"],
                   accesses_per_epoch=256)
        assert telemetry().simulated == 0
        assert telemetry().sim_seconds == 0.0
        assert telemetry().matrix_seconds > 0.0


class TestParallelMatrix:
    def test_two_workers_match_serial_and_order(self, tmp_path):
        specs = [tiny_spec("par-a"), tiny_spec("par-b")]
        orgs = ["memory-side", "sm-side"]
        serial = run_matrix(specs, orgs, accesses_per_epoch=256)
        clear_cache()
        parallel = run_matrix(specs, orgs, accesses_per_epoch=256,
                              n_jobs=2, cache_dir=tmp_path)
        # Deterministic (submission-order) iteration, identical physics.
        assert list(parallel) == list(serial)
        for key in serial:
            assert parallel[key].comparable_dict() == \
                serial[key].comparable_dict()
        # The pool populated both cache layers: a repeat is all memo hits.
        from repro.analysis import reset_telemetry, telemetry
        reset_telemetry()
        run_matrix(specs, orgs, accesses_per_epoch=256, n_jobs=2,
                   cache_dir=tmp_path)
        assert telemetry().simulated == 0
        assert telemetry().memo_hits == len(serial)


class TestSupervisedMatrix:
    """Fault-tolerant dispatch: resume journals, dedupe guard, respawn."""

    @pytest.fixture(autouse=True)
    def disarm(self, monkeypatch):
        from repro.resilience import faults
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        monkeypatch.delenv("REPRO_FAULT_STATE", raising=False)
        faults.reset()
        yield
        faults.reset()

    def test_interrupted_sweep_resumes_incomplete_pairs_only(
            self, tmp_path, monkeypatch):
        # First pass: both sm-side pairs fail terminally (an unbounded
        # injected kernel fault, zero retries).  The supervisor still
        # completes and journals the memory-side pairs before raising.
        from repro.analysis import reset_telemetry, telemetry
        from repro.resilience import faults
        from repro.resilience.supervisor import TaskFailedError
        from repro.sim.run import reset_simulate_calls, simulate_calls
        monkeypatch.setenv("REPRO_STACKED", "0")
        monkeypatch.setenv("REPRO_RETRIES", "0")
        specs = [tiny_spec("res-a"), tiny_spec("res-b")]
        orgs = ["memory-side", "sm-side"]
        with faults.armed("kernel.solve_error:sm-side@1*"):
            with pytest.raises(TaskFailedError) as excinfo:
                run_matrix(specs, orgs, accesses_per_epoch=256,
                           cache_dir=tmp_path)
        assert set(excinfo.value.failures) == {"res-a:sm-side",
                                               "res-b:sm-side"}
        # Second pass, fault disarmed, memo dropped: the journaled pairs
        # come back from disk as resumed, only the two incomplete pairs
        # re-simulate.
        clear_cache()
        reset_telemetry()
        reset_simulate_calls()
        results = run_matrix(specs, orgs, accesses_per_epoch=256,
                             cache_dir=tmp_path)
        assert len(results) == 4
        assert simulate_calls() == 2
        assert telemetry().disk_hits == 2
        assert telemetry().resumed_pairs == 2
        assert telemetry().simulated == 2

    def test_duplicate_submission_guard_dedupes_lost_pairs(
            self, tmp_path, monkeypatch):
        # A pair the manifest journaled as done but whose payload went
        # missing lands in both the pending scan and the manifest's
        # re-dispatch list; without the guard it would simulate twice.
        from repro.analysis import reset_telemetry, runner, telemetry
        from repro.analysis.diskcache import ResultCache
        from repro.sim.run import reset_simulate_calls, simulate_calls
        monkeypatch.setenv("REPRO_STACKED", "0")
        specs = [tiny_spec("res-c")]
        orgs = ["memory-side", "sm-side"]
        run_matrix(specs, orgs, accesses_per_epoch=256, cache_dir=tmp_path)
        dkey = runner._disk_key(
            specs[0], "sm-side", runner._resolve_config(None),
            runner.DEFAULT_SCALE, 256, runner._resolve_params(None))
        payload = ResultCache(tmp_path)._path(dkey)
        assert payload.is_file()
        payload.unlink()
        clear_cache()
        reset_telemetry()
        reset_simulate_calls()
        results = run_matrix(specs, orgs, accesses_per_epoch=256,
                             cache_dir=tmp_path)
        assert len(results) == 2
        assert telemetry().deduped_submissions == 1
        assert telemetry().simulated == 1
        assert simulate_calls() == 1

    def test_worker_crash_respawns_and_loses_nothing(
            self, tmp_path, monkeypatch):
        from repro.analysis import reset_telemetry, telemetry
        from repro.resilience import faults
        monkeypatch.setenv("REPRO_STACKED", "0")
        monkeypatch.setenv(
            "REPRO_FAULTS", "worker.crash:crash-a:memory-side")
        monkeypatch.setenv("REPRO_FAULT_STATE", str(tmp_path / "state"))
        faults.reset()
        reset_telemetry()
        specs = [tiny_spec("crash-a"), tiny_spec("crash-b")]
        orgs = ["memory-side", "sm-side"]
        results = run_matrix(specs, orgs, accesses_per_epoch=256, n_jobs=2)
        assert len(results) == 4
        assert telemetry().respawns == 1
        assert telemetry().retries >= 1
        # Survivor-equivalence: the crashed-and-retried matrix matches a
        # clean serial run bit for bit.
        monkeypatch.delenv("REPRO_FAULTS")
        faults.reset()
        clear_cache()
        reference = run_matrix(specs, orgs, accesses_per_epoch=256,
                               n_jobs=1)
        for pair, stats in results.items():
            assert stats.comparable_dict() == \
                reference[pair].comparable_dict(), pair
