"""Unit tests for the cached experiment runner and aggregation helpers."""

import pytest

from repro.analysis import (
    cache_size,
    clear_cache,
    hmean_speedup,
    run,
    run_matrix,
    speedups_vs_baseline,
)
from repro.workloads import BenchmarkSpec, KernelSpec, PhaseSpec


def tiny_spec(name="runner-tiny"):
    phase = PhaseSpec(weight_true=0.4, weight_false=0.3, weight_private=0.3)
    return BenchmarkSpec(
        name=name, suite="test", num_ctas=8, footprint_mb=4,
        true_shared_mb=1, false_shared_mb=1, preference="sm-side",
        kernels=(KernelSpec(name="k", phase=phase, epochs=1),), seed=13)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestCaching:
    def test_repeat_run_is_memoized(self):
        spec = tiny_spec()
        first = run(spec, "memory-side", accesses_per_epoch=256)
        assert cache_size() == 1
        second = run(spec, "memory-side", accesses_per_epoch=256)
        assert second is first

    def test_different_organizations_are_distinct_entries(self):
        spec = tiny_spec()
        run(spec, "memory-side", accesses_per_epoch=256)
        run(spec, "sm-side", accesses_per_epoch=256)
        assert cache_size() == 2

    def test_use_cache_false_bypasses(self):
        spec = tiny_spec()
        first = run(spec, "memory-side", accesses_per_epoch=256,
                    use_cache=False)
        assert cache_size() == 0
        second = run(spec, "memory-side", accesses_per_epoch=256,
                     use_cache=False)
        assert second is not first
        assert second.cycles == first.cycles


class TestMatrix:
    def test_matrix_covers_all_pairs(self):
        specs = [tiny_spec("a"), tiny_spec("b")]
        results = run_matrix(specs, ["memory-side", "sm-side"],
                             accesses_per_epoch=256)
        assert set(results) == {("a", "memory-side"), ("a", "sm-side"),
                                ("b", "memory-side"), ("b", "sm-side")}

    def test_speedups_normalize_to_baseline(self):
        specs = [tiny_spec("a")]
        results = run_matrix(specs, ["memory-side", "sm-side"],
                             accesses_per_epoch=256)
        speedups = speedups_vs_baseline(results, ["a"],
                                        ["memory-side", "sm-side"])
        assert speedups[("a", "memory-side")] == pytest.approx(1.0)

    def test_hmean_speedup(self):
        speedups = {("a", "x"): 2.0, ("b", "x"): 2.0}
        assert hmean_speedup(speedups, ["a", "b"], "x") == pytest.approx(2.0)
